//! Runs a *hand-written* RCCE program — not one produced by the
//! translator — demonstrating that the simulated SCC and its RCCE runtime
//! are a usable target in their own right: message passing with
//! `RCCE_send`/`RCCE_recv`, flag signalling, and MPB allocation.
//!
//! The program is a ring reduction: each core sends its partial sum to
//! core 0 through the ring, core 0 prints the total.
//!
//! ```text
//! cargo run --example rcce_native
//! ```

const RING_REDUCE: &str = r#"
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(&argc, &argv);
    int myID;
    myID = RCCE_ue();
    int n;
    n = RCCE_num_ues();

    int value[1];
    int acc[1];
    value[0] = (myID + 1) * (myID + 1);
    acc[0] = value[0];

    if (myID == 0) {
        int received[1];
        int i;
        for (i = 1; i < n; i++) {
            RCCE_recv(received, 4, i);
            acc[0] = acc[0] + received[0];
        }
        printf("ring reduce over %d cores: %d\n", n, acc[0]);
    } else {
        RCCE_send(value, 4, 0);
    }

    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_finalize();
    return acc[0];
}
"#;

const PINGPONG: &str = r#"
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(&argc, &argv);
    int myID;
    myID = RCCE_ue();
    char buf[1024];
    double t0 = RCCE_wtime();
    int r;
    for (r = 0; r < 16; r++) {
        if (myID == 0) {
            RCCE_send(buf, 1024, 1);
            RCCE_recv(buf, 1024, 1);
        }
        if (myID == 1) {
            RCCE_recv(buf, 1024, 0);
            RCCE_send(buf, 1024, 0);
        }
    }
    double t1 = RCCE_wtime();
    if (myID == 0) {
        double us = (t1 - t0) * 1000000.0 / 32.0;
        printf("1 KB one-way latency: %.2f us\n", us);
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_finalize();
    return 0;
}
"#;

fn run(src: &str, cores: usize) -> Result<hsm_exec::RunResult, Box<dyn std::error::Error>> {
    let program = hsm_vm::compile(&hsm_cir::parse(src)?)?;
    Ok(hsm_exec::run_rcce(
        &program,
        cores,
        &scc_sim::SccConfig::table_6_1(),
    )?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== ring reduction, 8 cores ==");
    let r = run(RING_REDUCE, 8)?;
    print!("{}", r.output_text());
    // Σ (i+1)² for i in 0..8 = 1+4+9+...+64 = 204.
    assert_eq!(r.exit_code, 204);
    println!("  ({} simulated cycles)\n", r.total_cycles);

    println!("== 1 KB ping-pong between two cores ==");
    let r = run(PINGPONG, 2)?;
    print!("{}", r.output_text());
    println!("  ({} simulated cycles)", r.total_cycles);
    Ok(())
}
