//! Runs one full evaluation point: Pi Approximation as a 16-thread pthread
//! program on one simulated core, then converted to a 16-core RCCE program
//! — the experiment behind one bar of Figure 6.1.
//!
//! ```text
//! cargo run --release --example translate_and_run
//! ```

use hsm_core::experiment::{run, Mode};
use hsm_workloads::{Bench, Params};
use scc_sim::SccConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params {
        threads: 16,
        size: 200_000,
        reps: 1,
    };
    let config = SccConfig::table_6_1();
    let bench = Bench::PiApprox;

    println!(
        "benchmark: {bench}, {} threads/cores, {} steps\n",
        params.threads, params.size
    );

    let baseline = run(bench, &params, Mode::PthreadBaseline, &config)?;
    println!(
        "pthread baseline : {:>12} cycles ({:.3} ms simulated)",
        baseline.timed_cycles,
        baseline.seconds(config.core_freq_mhz) * 1e3
    );

    let offchip = run(bench, &params, Mode::RcceOffChip, &config)?;
    println!(
        "RCCE off-chip    : {:>12} cycles ({:.1}x speedup)",
        offchip.timed_cycles,
        baseline.timed_cycles as f64 / offchip.timed_cycles as f64
    );

    let hsm = run(bench, &params, Mode::RcceHsm, &config)?;
    println!(
        "RCCE + MPB (HSM) : {:>12} cycles ({:.1}x speedup)",
        hsm.timed_cycles,
        baseline.timed_cycles as f64 / hsm.timed_cycles as f64
    );

    let expected = hsm_workloads::reference_exit(bench, &params);
    assert_eq!(baseline.exit_code, expected, "baseline result");
    assert_eq!(offchip.exit_code, expected, "off-chip result");
    assert_eq!(hsm.exit_code, expected, "HSM result");
    println!("\nall three configurations computed pi identically (exit {expected})");
    Ok(())
}
