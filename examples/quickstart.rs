//! Quickstart: the paper's running example, end to end.
//!
//! Parses Example Code 4.1, runs analysis stages 1–3 (printing Tables 4.1
//! and 4.2), translates it to RCCE C (Example Code 4.2), and executes both
//! versions on the simulated SCC.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hsm_core::{experiment, Pipeline};

const EXAMPLE_4_1: &str = r#"
#include <stdio.h>
#include <pthread.h>

int global;
int *ptr;
int sum[3] = {0};

void *tf(void * tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for(local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *) local);
    }
    for(local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One artifact-reuse session drives the whole example: every stage
    // below is computed once and memoized in the session cache.
    let session = Pipeline::new(EXAMPLE_4_1).cores(3);

    // 1. Parse into the C intermediate representation.
    let tu = session.unit()?;
    println!(
        "parsed {} functions, {} globals\n",
        tu.functions().count(),
        tu.global_decls().count()
    );

    // 2. Stages 1-3: scope, inter-thread and points-to analysis.
    let analysis = session.analysis()?;
    println!(
        "Table 4.1 — per-variable facts:\n{}",
        analysis.render_table_4_1()
    );
    println!(
        "Table 4.2 — sharing status by stage:\n{}",
        analysis.render_table_4_2()
    );

    // 3. Stages 4-5: partition shared data and translate to RCCE (the
    //    cached parse and analysis above feed straight into this).
    let translated = session.translation()?.to_source();
    println!("Example Code 4.2 — translated RCCE source:\n{translated}");

    // 4. Execute both versions on the simulated SCC (3 threads vs 3 cores).
    let baseline = session.run_baseline()?;
    let rcce = session.run()?;
    println!(
        "pthread (1 core, 3 threads): {} cycles",
        baseline.total_cycles
    );
    println!("   output: {:?}", baseline.output_sorted());
    println!("RCCE     (3 cores):          {} cycles", rcce.total_cycles);
    println!("   output: {:?}", rcce.output_sorted());
    assert!(experiment::outputs_equivalent(&baseline, &rcce));
    println!("\noutputs are equivalent — the translation preserved semantics");
    Ok(())
}
