//! Disassembles a corpus program at `O0` and `O2` side by side.
//!
//! The before/after listings in `docs/OPTIMIZER.md` were produced with
//! this tool. Usage (from the repo root):
//!
//! ```text
//! cargo run --release --example dump_opt [FILE [CORES [FUNC]]]
//! # e.g. cargo run --release --example dump_opt example_4_1.c 3 RCCE_APP
//! ```
//!
//! `FILE` is relative to `corpus/` (default `example_4_1.c`), `CORES`
//! is the translation core count (default 3), and an optional `FUNC`
//! restricts the dump to one function by name.

use hsm_core::{OptLevel, Pipeline, Scenario};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "example_4_1.c".into());
    let cores: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let func = std::env::args().nth(3);
    let src = std::fs::read_to_string(format!("corpus/{name}")).expect("read corpus program");
    let o0 = Pipeline::new(src.clone())
        .cores(cores)
        .program()
        .expect("compile at O0");
    let o2 = Pipeline::new(src)
        .cores(cores)
        .scenario(Scenario::default().opt_level(OptLevel::O2))
        .program()
        .expect("compile at O2");
    for (f0, f2) in o0.funcs.iter().zip(o2.funcs.iter()) {
        if let Some(want) = &func {
            if &f0.name != want {
                continue;
            }
        }
        println!(
            "==== fn {} ({} -> {} instrs) ====",
            f0.name,
            f0.code.len(),
            f2.code.len()
        );
        println!("---- O0 ----");
        println!("{}", hsm_vm::opt::disassemble(&f0.code));
        println!("---- O2 ----");
        println!("{}", hsm_vm::opt::disassemble(&f2.code));
    }
    println!("total static: {} -> {}", o0.code_len(), o2.code_len());
}
