//! A miniature Figure 6.3: Pi Approximation speedup at increasing core
//! counts, printed as an ASCII bar chart — driven by the parallel sweep
//! engine, so the whole core-count × mode matrix fans out over host
//! threads while the points share one artifact cache.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use hsm_core::experiment::{sweep, Mode, SweepMatrix};
use hsm_workloads::Bench;
use scc_sim::SccConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SccConfig::table_6_1();
    let counts = [1usize, 2, 4, 8, 16, 24, 32];

    // One matrix, every (core count, mode) point; `sweep` fans the points
    // out over a work-stealing pool of host threads. Results are
    // deterministic regardless of the worker count.
    let matrix = SweepMatrix::core_scaling(
        Bench::PiApprox,
        &[Mode::PthreadBaseline, Mode::RcceHsm],
        &counts,
        config,
    );
    let report = sweep(&matrix);

    println!("Pi Approximation: RCCE speedup over the 1-core pthread baseline\n");
    let bench = Bench::PiApprox.name();
    let base_cycles = report
        .outcome(&format!("{bench}@1/baseline"))
        .and_then(|o| o.result.as_ref().ok())
        .and_then(|p| p.run_result())
        .map(|r| r.timed_cycles)
        .ok_or("1-core baseline point missing")?;
    for cores in counts {
        let hsm = report
            .outcome(&format!("{bench}@{cores}/hsm"))
            .ok_or("hsm point missing")?;
        let run = match &hsm.result {
            Ok(payload) => payload.run_result().ok_or("hsm payload is not a run")?,
            Err(e) => return Err(format!("{cores}-core hsm point failed: {e}").into()),
        };
        let speedup = base_cycles as f64 / run.timed_cycles as f64;
        let bar = "#".repeat(speedup.round() as usize);
        println!("{cores:>3} cores {speedup:>6.1}x  {bar}");
    }

    println!(
        "\nswept {} points on {} worker thread(s) in {:.1} ms",
        report.outcomes.len(),
        report.workers,
        report.host_wall_nanos as f64 / 1e6
    );
    println!(
        "artifact cache: {} hits / {} misses across the sweep",
        report.cache.total_hits(),
        report.cache.total_misses()
    );
    println!("\nnear-linear scaling: the workload is compute-bound, so the");
    println!("only shared traffic is one partial-sum store per core.");
    Ok(())
}
