//! A miniature Figure 6.3: Pi Approximation speedup at increasing core
//! counts, printed as an ASCII bar chart.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use hsm_core::experiment;
use hsm_workloads::Bench;
use scc_sim::SccConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SccConfig::table_6_1();
    let counts = [1usize, 2, 4, 8, 16, 24, 32];
    println!("Pi Approximation: RCCE speedup over the 1-core pthread baseline\n");
    let rows = experiment::core_scaling(Bench::PiApprox, &counts, &config)?;
    for (cores, speedup) in rows {
        let bar = "#".repeat(speedup.round() as usize);
        println!("{cores:>3} cores {speedup:>6.1}x  {bar}");
    }
    println!("\nnear-linear scaling: the workload is compute-bound, so the");
    println!("only shared traffic is one partial-sum store per core.");
    Ok(())
}
