//! Explores Stage 4 (Algorithm 3) placement decisions interactively-ish:
//! shows how the partition plan changes as the on-chip budget shrinks and
//! how the ablation policies differ — first on a hand-written profile,
//! then on the real Stream benchmark through a `Pipeline` session whose
//! `.spec()` overrides the memory budget while parse and analysis are
//! computed once and reused from the session cache.
//!
//! ```text
//! cargo run --example partition_explorer
//! ```

use hsm_core::Pipeline;
use hsm_partition::{partition, partition_with_split, MemorySpec, Policy, SharedVar};
use hsm_workloads::Bench;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The shared-variable profile of the Stream benchmark at 32 threads,
    // as stages 1-3 would report it.
    let vars = vec![
        SharedVar::array("a", 12_288 * 8, 1_200_000, 8),
        SharedVar::array("b", 12_288 * 8, 800_000, 8),
        SharedVar::array("c", 12_288 * 8, 1_200_000, 8),
        SharedVar::new("partial", 32 * 8, 2_000),
    ];

    for budget_kb in [384usize, 256, 128, 64] {
        let spec = MemorySpec::with_on_chip(budget_kb * 1024);
        let plan = partition(&vars, &spec, Policy::SizeAscending);
        println!("== Algorithm 3, {budget_kb} KB on-chip budget ==");
        println!("{}", plan.to_text());
    }

    println!("== policy comparison at 128 KB ==");
    let spec = MemorySpec::with_on_chip(128 * 1024);
    for policy in [
        Policy::SizeAscending,
        Policy::FrequencyDensity,
        Policy::SizeDescending,
    ] {
        let plan = partition(&vars, &spec, policy);
        println!(
            "{:<18} -> {:>6.1}% of accesses served on-chip",
            format!("{policy:?}"),
            plan.on_chip_access_fraction() * 100.0
        );
    }

    println!("\n== array splitting (the LU refinement of §6) ==");
    let matrix = vec![SharedVar::array("mats", 460 * 1024, 5_000_000, 8)];
    let spec = MemorySpec::with_on_chip(384 * 1024);
    let whole = partition(&matrix, &spec, Policy::SizeAscending);
    let split = partition_with_split(&matrix, &spec, Policy::SizeAscending, true);
    println!("without splitting: {}", whole.to_text());
    println!("with splitting:    {}", split.to_text());

    // The same budget exploration on the real Stream benchmark, end to
    // end: one base session parses and analyzes the source; the budget
    // variants override `.spec()` but share its artifact cache, so only
    // the partition stage recomputes per budget.
    println!("\n== the real Stream benchmark through Pipeline::spec ==");
    let params = Bench::Stream.default_params(32);
    let src = hsm_workloads::source(Bench::Stream, &params);
    let session = Pipeline::new(src.as_str()).cores(params.threads);
    for budget_kb in [384usize, 128, 64] {
        let plan = session
            .clone()
            .spec(MemorySpec::with_on_chip(budget_kb * 1024))
            .plan()?;
        println!(
            "{budget_kb:>4} KB budget -> {:>6.1}% of accesses on-chip",
            plan.on_chip_access_fraction() * 100.0
        );
    }
    let stats = session.cache_handle().stats();
    println!(
        "session cache: parse {} hit(s)/{} miss(es), analyze {} hit(s)/{} miss(es), partition {} miss(es)",
        stats.parse.hits,
        stats.parse.misses,
        stats.analyze.hits,
        stats.analyze.misses,
        stats.partition.misses
    );
    Ok(())
}
