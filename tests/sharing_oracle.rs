//! Property tests of the sharing-soundness oracle (testkit-driven):
//!
//! * every race-free corpus program runs clean under the pthread-mode
//!   oracle (classification validated against thread semantics) and under
//!   the RCCE-mode oracle across randomized core counts in 2..=32 and
//!   both placement policies (translated synchronization validated);
//! * the adversarial programs are pinned as named must-flag cases: the
//!   oracle must report exactly the violation class each was built to
//!   trigger, naming the culprit variable. A detector that goes quiet
//!   fails these, so the clean runs above stay meaningful.

use hsm_core::{Pipeline, Policy};
use hsm_exec::ViolationClass;
use scc_sim::SccConfig;
use std::path::PathBuf;
use testkit::check;

/// The corpus programs that must be violation-free.
const RACE_FREE: [&str; 5] = [
    "example_4_1",
    "matrix_vector",
    "mutex_histogram",
    "switch_classifier",
    "escaping_local",
];

fn corpus_source(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("corpus")
        .join(format!("{name}.c"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn race_free_corpus_is_clean_under_pthread_oracle() {
    let config = SccConfig::table_6_1();
    for name in RACE_FREE {
        let report = Pipeline::new(corpus_source(name))
            .config(config.clone())
            .check_sharing()
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .report;
        assert!(
            report.is_clean(),
            "{name} must be violation-free: {:?}",
            report.violations
        );
        assert!(report.data_accesses > 0, "{name}: oracle saw no accesses");
        assert!(report.sync_events > 0, "{name}: oracle saw no sync events");
    }
}

#[test]
fn race_free_corpus_is_clean_translated_at_random_core_counts() {
    let config = SccConfig::table_6_1();
    let sources: Vec<(String, String)> = RACE_FREE
        .iter()
        .map(|&name| (name.to_string(), corpus_source(name)))
        .collect();
    check("rcce_oracle_clean", 6, |rng| {
        let (name, src) = &sources[rng.gen_range_usize(0, sources.len())];
        let cores = rng.gen_range_usize(2, 33);
        let policy = if rng.gen_bool() {
            Policy::SizeAscending
        } else {
            Policy::OffChipOnly
        };
        let report = Pipeline::new(src.as_str())
            .cores(cores)
            .policy(policy)
            .config(config.clone())
            .check_sharing_rcce()
            .unwrap_or_else(|e| panic!("{name} at {cores} cores ({policy:?}): {e}"))
            .report;
        assert!(
            report.is_clean(),
            "{name} at {cores} cores ({policy:?}) must be race-free: {:?}",
            report.violations
        );
    });
}

// --------------------------------------------- pinned must-flag cases --

#[test]
fn escaping_stack_pointer_is_flagged_as_unsoundness() {
    let check = Pipeline::new(corpus_source("adversarial/escaping_arg"))
        .check_sharing()
        .expect("pipeline");
    assert_eq!(
        check.report.classes(),
        vec![ViolationClass::Unsoundness],
        "the escape is ordered by create/join, so unsoundness is the only \
         class: {:?}",
        check.report.violations
    );
    let v = &check.report.violations[0];
    assert_eq!(v.variable.as_deref(), Some("local"), "culprit variable");
    assert_eq!(v.unit, 1, "the child thread trespasses");
    assert_eq!(v.other, Some(0), "into main's stack");
    // The program still runs and computes through shared memory — the
    // bug is only visible once private data moves to per-core storage.
    assert_eq!(check.result.exit_code, 42);
}

#[test]
fn unlocked_shared_counter_is_flagged_as_data_race() {
    let check = Pipeline::new(corpus_source("adversarial/unlocked_counter"))
        .check_sharing()
        .expect("pipeline");
    assert_eq!(
        check.report.classes(),
        vec![ViolationClass::DataRace],
        "`counter` is correctly classified shared, so the race is the \
         only violation: {:?}",
        check.report.violations
    );
    assert!(check
        .report
        .violations
        .iter()
        .all(|v| v.variable.as_deref() == Some("counter")));
}
