//! Integration test for the Jacobi extension benchmark: in-worker
//! `pthread_barrier_wait` must survive translation as chip-wide
//! `RCCE_barrier`s, and both execution modes must compute the reference
//! result.

use hsm_core::Pipeline;
use hsm_workloads::{jacobi_reference_exit, jacobi_source, Params};
use scc_sim::SccConfig;

fn params() -> Params {
    Params {
        threads: 8,
        size: 66, // 64 interior cells split evenly over 8 workers
        reps: 12,
    }
}

#[test]
fn jacobi_baseline_matches_reference() {
    let p = params();
    let src = jacobi_source(&p);
    let r = Pipeline::new(src).run_baseline().expect("baseline");
    assert_eq!(r.exit_code, jacobi_reference_exit(&p));
}

#[test]
fn jacobi_translates_barriers_and_matches_reference() {
    let p = params();
    let src = jacobi_source(&p);
    let session = Pipeline::new(src).cores(p.threads);
    let translation = session.translation().expect("translation");
    let out = translation.to_source();
    assert!(
        out.contains("RCCE_barrier(&RCCE_COMM_WORLD)"),
        "worker barrier must convert: {out}"
    );
    assert!(!out.contains("pthread_barrier"), "{out}");

    let r = session.run().expect("rcce run");
    assert_eq!(r.exit_code, jacobi_reference_exit(&p));
}

#[test]
fn jacobi_scales_with_cores() {
    let mut p = params();
    p.size = 130;
    p.reps = 16;
    let src = jacobi_source(&p);
    let session = Pipeline::new(src).cores(p.threads);
    let base = session.run_baseline().expect("baseline");
    let rcce = session.run().expect("rcce");
    let speedup = base.timed_cycles as f64 / rcce.timed_cycles as f64;
    // Barrier-per-iteration overhead keeps it well below linear, but the
    // conversion must still win.
    assert!(
        speedup > 1.5,
        "8-core Jacobi should beat the baseline: {speedup:.2}"
    );
}

/// The pthread barrier itself (baseline mode): last arriver sees the
/// serial-thread return value, everyone proceeds.
#[test]
fn pthread_barrier_semantics() {
    let src = r#"
pthread_barrier_t b;
int order[8];
int slot;
void *tf(void *tid) {
    int id = (int)tid;
    pthread_barrier_wait(&b);
    order[slot] = id;
    slot = slot + 1;
    return tid;
}
int main() {
    pthread_t t[4];
    int i;
    slot = 0;
    pthread_barrier_init(&b, NULL, 4);
    for (i = 0; i < 4; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 4; i++) pthread_join(t[i], NULL);
    pthread_barrier_destroy(&b);
    return slot;
}
"#;
    let program = hsm_vm::compile(&hsm_cir::parse(src).expect("parse")).expect("compile");
    let r = hsm_exec::run_pthread(&program, &SccConfig::table_6_1()).expect("run");
    assert_eq!(r.exit_code, 4, "all four threads passed the barrier");
}
