//! Differential harness over the optimization-level axis.
//!
//! The bytecode optimizer ([`hsm_vm::opt`]) must be unobservable: a
//! program optimized at `O1` or `O2` has to produce byte-identical
//! output, the same exit code, the same per-unit synchronization-event
//! streams and the same sharing-oracle verdicts as the unoptimized `O0`
//! build — under every execution model, for the whole corpus, including
//! the adversarial programs whose *wrong* answers are part of the
//! contract. This suite is the optimizer's safety net; `exec_models.rs`
//! is its template on the model axis.

use hsm_core::{ExecModel, OptLevel, Pipeline, Scenario};
use hsm_exec::{SyncEvent, TraceEvent, TraceSink};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// The default-mode scenario at the given memory model and level (the
/// mode field is irrelevant to the direct `run_*` entry points these
/// tests drive).
fn at(model: ExecModel, level: OptLevel) -> Scenario {
    Scenario::default().exec_model(model).opt_level(level)
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

fn read(rel: &str) -> String {
    let path = corpus_dir().join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The clean corpus with the core counts `corpus.rs` uses.
const CLEAN: [(&str, usize); 5] = [
    ("example_4_1.c", 3),
    ("matrix_vector.c", 4),
    ("mutex_histogram.c", 4),
    ("switch_classifier.c", 2),
    ("escaping_local.c", 4),
];

/// The adversarial corpus (deliberately unsound sharing).
const ADVERSARIAL: [(&str, usize); 2] = [
    ("adversarial/escaping_arg.c", 4),
    ("adversarial/unlocked_counter.c", 4),
];

/// Every execution model.
const MODELS: [ExecModel; 3] = [
    ExecModel::Coherent,
    ExecModel::NonCoherentWriteBack,
    ExecModel::SeqCstReference,
];

/// (exit code, output lines) of a run — the observable a level change
/// must not move.
fn observed(r: &hsm_exec::RunResult) -> (i64, Vec<String>) {
    (r.exit_code, r.output_sorted())
}

/// Translated (HSM) runs of the whole clean corpus: `O1` and `O2` agree
/// with `O0` under every execution model.
#[test]
fn translated_corpus_is_level_invariant_under_every_model() {
    for (name, cores) in CLEAN {
        for model in MODELS {
            let session = Pipeline::new(read(name)).cores(cores);
            let o0 = session
                .clone()
                .scenario(at(model, OptLevel::O0))
                .run()
                .unwrap_or_else(|e| panic!("{name} {model:?} O0: {e}"));
            for level in [OptLevel::O1, OptLevel::O2] {
                let opt = session
                    .clone()
                    .scenario(at(model, level))
                    .run()
                    .unwrap_or_else(|e| panic!("{name} {model:?} {level}: {e}"));
                assert_eq!(
                    observed(&o0),
                    observed(&opt),
                    "{name} under {model:?}: {level} HSM run diverged from O0"
                );
            }
        }
    }
}

/// Baseline (pthread) runs of the whole clean corpus: level-invariant
/// under every execution model — including the non-coherent one, where
/// whatever the write-back caches make of an unmodified pthread binary
/// must at least be the *same* whatever at every level.
#[test]
fn baseline_corpus_is_level_invariant_under_every_model() {
    for (name, cores) in CLEAN {
        for model in MODELS {
            let session = Pipeline::new(read(name)).cores(cores);
            let o0 = session
                .clone()
                .scenario(at(model, OptLevel::O0))
                .run_baseline()
                .unwrap_or_else(|e| panic!("{name} {model:?} O0: {e}"));
            for level in [OptLevel::O1, OptLevel::O2] {
                let opt = session
                    .clone()
                    .scenario(at(model, level))
                    .run_baseline()
                    .unwrap_or_else(|e| panic!("{name} {model:?} {level}: {e}"));
                assert_eq!(
                    observed(&o0),
                    observed(&opt),
                    "{name} under {model:?}: {level} baseline run diverged from O0"
                );
            }
        }
    }
}

/// The adversarial programs produce pinned answers per model (right under
/// `Coherent`, deterministically wrong under `NonCoherentWriteBack`).
/// Optimization must not shift either: the exact same answers appear at
/// every level.
#[test]
fn adversarial_corpus_is_level_invariant_under_every_model() {
    for (name, cores) in ADVERSARIAL {
        for model in MODELS {
            let session = Pipeline::new(read(name)).cores(cores);
            let o0 = session
                .clone()
                .scenario(at(model, OptLevel::O0))
                .run_baseline()
                .unwrap_or_else(|e| panic!("{name} {model:?} O0: {e}"));
            for level in [OptLevel::O1, OptLevel::O2] {
                let opt = session
                    .clone()
                    .scenario(at(model, level))
                    .run_baseline()
                    .unwrap_or_else(|e| panic!("{name} {model:?} {level}: {e}"));
                assert_eq!(
                    observed(&o0),
                    observed(&opt),
                    "{name} under {model:?}: {level} adversarial run diverged from O0"
                );
            }
        }
    }
}

/// The sharing oracle sees identical violation classes at every level:
/// the optimizer must not hide an unsoundness (by eliding the racy
/// access) or invent one. Checked in pthread mode for the whole corpus
/// (clean + adversarial) and in RCCE mode for the clean corpus.
#[test]
fn oracle_verdicts_are_level_invariant() {
    let programs = CLEAN.iter().chain(ADVERSARIAL.iter());
    for &(name, cores) in programs {
        let session = Pipeline::new(read(name)).cores(cores);
        let o0 = session
            .clone()
            .check_sharing()
            .unwrap_or_else(|e| panic!("{name} O0 oracle: {e}"));
        for level in [OptLevel::O1, OptLevel::O2] {
            let opt = session
                .clone()
                .scenario(at(ExecModel::Coherent, level))
                .check_sharing()
                .unwrap_or_else(|e| panic!("{name} {level} oracle: {e}"));
            assert_eq!(
                o0.report.classes(),
                opt.report.classes(),
                "{name}: {level} changed the pthread oracle verdict"
            );
            assert_eq!(
                observed(&o0.result),
                observed(&opt.result),
                "{name}: {level} changed the oracle-run observables"
            );
        }
    }
    for (name, cores) in CLEAN {
        let session = Pipeline::new(read(name)).cores(cores);
        let o0 = session
            .clone()
            .check_sharing_rcce()
            .unwrap_or_else(|e| panic!("{name} O0 rcce oracle: {e}"));
        for level in [OptLevel::O1, OptLevel::O2] {
            let opt = session
                .clone()
                .scenario(at(ExecModel::Coherent, level))
                .check_sharing_rcce()
                .unwrap_or_else(|e| panic!("{name} {level} rcce oracle: {e}"));
            assert_eq!(
                o0.report.classes(),
                opt.report.classes(),
                "{name}: {level} changed the RCCE oracle verdict"
            );
        }
    }
}

/// A sink that keeps every synchronization event and ignores the memory
/// trace.
#[derive(Default)]
struct EventLog {
    events: Vec<SyncEvent>,
}

impl TraceSink for EventLog {
    fn record(&mut self, _event: TraceEvent) {}
    fn sync(&mut self, event: SyncEvent) {
        self.events.push(event);
    }
}

/// Normalizes a sync-event stream for cross-level comparison: cycles are
/// dropped (optimization legitimately moves clocks) and events are
/// grouped per unit, since each unit's own synchronization sequence is
/// program-order determined while the cross-unit interleaving is
/// schedule-dependent.
fn per_unit_streams(events: &[SyncEvent]) -> BTreeMap<usize, Vec<String>> {
    let mut map: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for e in events {
        let (unit, label) = match *e {
            SyncEvent::ThreadStart {
                parent, unit, func, ..
            } => (parent, format!("start u{unit} f{func}")),
            SyncEvent::ThreadJoin { unit, target, .. } => (unit, format!("join u{target}")),
            SyncEvent::LockAcquire { unit, lock, .. } => (unit, format!("acquire {lock}")),
            SyncEvent::LockRelease { unit, lock, .. } => (unit, format!("release {lock}")),
            SyncEvent::BarrierArrive { unit, epoch, .. } => (unit, format!("bar-arrive {epoch}")),
            SyncEvent::BarrierRelease { unit, epoch, .. } => (unit, format!("bar-release {epoch}")),
            SyncEvent::Message { from, to, .. } => (to, format!("msg-from u{from}")),
        };
        map.entry(unit).or_default().push(label);
    }
    map
}

/// The synchronization skeleton of every corpus program is identical at
/// `O0` and `O2`, for both the pthread baseline and the translated RCCE
/// build: optimization may only remove pure compute between sync points,
/// never a sync operation (all of them are non-pure intrinsics).
#[test]
fn sync_event_streams_are_level_invariant() {
    for (name, cores) in CLEAN {
        let session = Pipeline::new(read(name)).cores(cores);
        let streams = |level: OptLevel| {
            let s = session.clone().scenario(at(ExecModel::Coherent, level));
            let mut pthread_log = EventLog::default();
            let baseline = s
                .baseline_program()
                .unwrap_or_else(|e| panic!("{name} {level} baseline: {e}"));
            hsm_exec::run_pthread_model_traced(
                &baseline,
                s.chip(),
                ExecModel::Coherent,
                &mut pthread_log,
            )
            .unwrap_or_else(|e| panic!("{name} {level} pthread traced: {e}"));
            let mut rcce_log = EventLog::default();
            let hsm = s
                .program()
                .unwrap_or_else(|e| panic!("{name} {level} program: {e}"));
            hsm_exec::run_rcce_model_traced(
                &hsm,
                cores,
                s.chip(),
                ExecModel::Coherent,
                &mut rcce_log,
            )
            .unwrap_or_else(|e| panic!("{name} {level} rcce traced: {e}"));
            (
                per_unit_streams(&pthread_log.events),
                per_unit_streams(&rcce_log.events),
            )
        };
        let (pthread_o0, rcce_o0) = streams(OptLevel::O0);
        let (pthread_o2, rcce_o2) = streams(OptLevel::O2);
        assert_eq!(
            pthread_o0, pthread_o2,
            "{name}: O2 changed the pthread sync-event streams"
        );
        assert_eq!(
            rcce_o0, rcce_o2,
            "{name}: O2 changed the RCCE sync-event streams"
        );
    }
}

/// An `O0`-vs-`O2` sweep of one benchmark shares every artifact up to
/// translation; only the compile stage forks, because the level is part
/// of the compiled program's cache key.
#[test]
fn multi_level_sweep_shares_artifacts_up_to_translation() {
    use hsm_core::experiment::{sweep, Mode, SweepMatrix, SweepTask};
    let src: Arc<str> = read("example_4_1.c").into();
    let matrix = SweepMatrix::new(scc_sim::SccConfig::table_6_1())
        .workers(2)
        .point(
            "example_4_1/O0",
            Arc::clone(&src),
            SweepTask::Run(Scenario::new(Mode::RcceHsm).opt_level(OptLevel::O0)),
            3,
        )
        .point(
            "example_4_1/O2",
            src,
            SweepTask::Run(Scenario::new(Mode::RcceHsm).opt_level(OptLevel::O2)),
            3,
        );
    let report = sweep(&matrix);
    for outcome in &report.outcomes {
        assert!(
            outcome.result.is_ok(),
            "{}: {:?}",
            outcome.name,
            outcome.result.as_ref().err()
        );
    }
    let c = report.cache;
    assert_eq!(c.translate.misses, 1, "one translation for both levels");
    assert_eq!(c.translate.hits, 1, "O2 reuses the O0 translation");
    assert_eq!(c.compile.misses, 2, "levels compile separately: {c:?}");
}

/// Property test: random corpus program × random core count × random
/// model — `O0` and `O2` agree on the observables of both the baseline
/// and the translated run.
#[test]
fn random_points_agree_across_levels() {
    let sources: Vec<(&str, String)> = CLEAN.iter().map(|&(name, _)| (name, read(name))).collect();
    testkit::prop::check("opt_levels_random_points", 6, |rng| {
        let (name, src) = &sources[rng.gen_range_usize(0, sources.len())];
        let cores = rng.gen_range_usize(2, 17);
        let model = MODELS[rng.gen_range_usize(0, MODELS.len())];
        let session = Pipeline::new(src.as_str()).cores(cores);
        let o0 = session.clone().scenario(at(model, OptLevel::O0));
        let o2 = session.scenario(at(model, OptLevel::O2));
        let base0 = o0
            .run_baseline()
            .unwrap_or_else(|e| panic!("{name}@{cores} {model:?} O0 baseline: {e}"));
        let base2 = o2
            .run_baseline()
            .unwrap_or_else(|e| panic!("{name}@{cores} {model:?} O2 baseline: {e}"));
        assert_eq!(
            observed(&base0),
            observed(&base2),
            "{name}@{cores} {model:?}: baseline diverged"
        );
        let hsm0 = o0
            .run()
            .unwrap_or_else(|e| panic!("{name}@{cores} {model:?} O0 hsm: {e}"));
        let hsm2 = o2
            .run()
            .unwrap_or_else(|e| panic!("{name}@{cores} {model:?} O2 hsm: {e}"));
        assert_eq!(
            observed(&hsm0),
            observed(&hsm2),
            "{name}@{cores} {model:?}: hsm diverged"
        );
    });
}
