//! Differential harness over the synchronization-model axis.
//!
//! PR 9 adds the task-dataflow runtime as a third way to synchronize the
//! same computation: instead of SPMD threads meeting at barriers, a
//! master core spawns tasks whose `in`/`out` region annotations induce
//! the dependence graph (BDDT-SCC style). This suite pins the contract
//! between the two models on the ported corpus:
//!
//! - The barrier original (RCCE HSM mode) and its task-annotated port
//!   (task-dataflow mode) must agree on every observable value — exit
//!   code and output lines — under **all three** memory models and at
//!   both ends of the optimizer axis. Correctness must not depend on
//!   cache coherence (the runtime DMAs task regions explicitly) or on
//!   the bytecode optimizer.
//! - Both task ports are clean under the sharing oracle: their `in`/`out`
//!   annotations cover every inter-task data flow, so happens-before
//!   race detection over the spawn/dependence/wait edges finds nothing.
//! - Task-dataflow replays are deterministic.

use hsm_core::experiment::{outputs_equivalent, Mode};
use hsm_core::{ExecModel, OptLevel, Pipeline, Scenario};
use std::path::PathBuf;

fn read(rel: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("corpus")
        .join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Barrier original → task-annotated port, with the core count both run
/// at (mirrors `hsm_bench::manifest::TASK_PROGRAMS`).
const PAIRS: [(&str, &str, usize); 2] = [
    ("matrix_vector.c", "task_matrix_vector.c", 4),
    ("mutex_histogram.c", "task_histogram.c", 4),
];

/// Barrier vs task output equality across the full memory-model ×
/// opt-level grid. This is the acceptance gate for the task runtime: the
/// third sync model computes the same answers as the barrier original
/// everywhere the barrier original is defined.
#[test]
fn barrier_and_task_agree_across_models_and_opt_levels() {
    for (barrier_name, task_name, cores) in PAIRS {
        let barrier_src = read(barrier_name);
        let task_src = read(task_name);
        for model in ExecModel::ALL {
            for level in [OptLevel::O0, OptLevel::O2] {
                let tag = format!(
                    "{barrier_name} vs {task_name} @ {}/{}",
                    model.label(),
                    level.label()
                );
                let barrier = Pipeline::new(barrier_src.clone())
                    .cores(cores)
                    .scenario(
                        Scenario::new(Mode::RcceHsm)
                            .exec_model(model)
                            .opt_level(level),
                    )
                    .run_scenario()
                    .unwrap_or_else(|e| panic!("{tag}: barrier run: {e}"));
                let task = Pipeline::new(task_src.clone())
                    .cores(cores)
                    .scenario(
                        Scenario::new(Mode::TaskDataflow)
                            .exec_model(model)
                            .opt_level(level),
                    )
                    .run_scenario()
                    .unwrap_or_else(|e| panic!("{tag}: task run: {e}"));
                assert_eq!(
                    barrier.exit_code, task.exit_code,
                    "{tag}: exit codes differ"
                );
                assert!(
                    outputs_equivalent(&barrier, &task),
                    "{tag}: outputs diverged\nbarrier: {:?}\ntask:    {:?}",
                    barrier.output_sorted(),
                    task.output_sorted()
                );
            }
        }
    }
}

/// The task ports' `in`/`out` annotations cover all their sharing: pure
/// happens-before race detection over the runtime's spawn, dependence
/// and wait edges reports a clean run for both programs.
#[test]
fn task_ports_are_oracle_clean() {
    for (_, task_name, cores) in PAIRS {
        let check = Pipeline::new(read(task_name))
            .cores(cores)
            .scenario(Scenario::new(Mode::TaskDataflow))
            .check_sharing_task()
            .unwrap_or_else(|e| panic!("{task_name}: oracle run: {e}"));
        assert!(
            check.report.is_clean(),
            "{task_name}: oracle violations: {:?}",
            check.report.violations
        );
        assert!(
            check.report.data_accesses > 0,
            "{task_name}: oracle saw no data"
        );
        assert!(
            check.report.sync_events > 0,
            "{task_name}: no spawn/dependence/wait edges observed"
        );
    }
}

/// Two task-dataflow replays of the same program are indistinguishable —
/// the dependence scheduler resolves ready tasks in a deterministic
/// order, so cycle counts and output are stable run to run.
#[test]
fn task_dataflow_is_deterministic() {
    for (_, task_name, cores) in PAIRS {
        let session = Pipeline::new(read(task_name))
            .cores(cores)
            .scenario(Scenario::new(Mode::TaskDataflow));
        let a = session
            .run_scenario()
            .unwrap_or_else(|e| panic!("{task_name}: {e}"));
        let b = session
            .run_scenario()
            .unwrap_or_else(|e| panic!("{task_name} replay: {e}"));
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{task_name}: replay diverged"
        );
    }
}
