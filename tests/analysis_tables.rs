//! Integration test E1/E2: the analysis stages reproduce Tables 4.1 and
//! 4.2 for the paper's Example Code 4.1, exercising hsm-cir + hsm-analysis
//! through their public APIs only.

use hsm_analysis::sharing::SharingStatus::{Private, Shared, Unknown};
use hsm_analysis::{ProgramAnalysis, VarKey};

const EXAMPLE_4_1: &str = r#"
#include <stdio.h>
#include <pthread.h>

int global;
int *ptr;
int sum[3] = {0};

void *tf(void * tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for(local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *) local);
    }
    for(local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
"#;

fn analyze() -> ProgramAnalysis {
    ProgramAnalysis::analyze(&hsm_cir::parse(EXAMPLE_4_1).expect("example parses"))
}

/// Table 4.1's structural columns: name, size, use-in, def-in.
#[test]
fn table_4_1_facts() {
    let a = analyze();
    let sum = a.scope.variable(&VarKey::global("sum")).expect("sum");
    assert_eq!(sum.size, 3);
    assert_eq!(sum.used_in, vec!["tf", "main"]);
    assert_eq!(sum.defined_in, vec!["tf"]);

    let ptr = a.scope.variable(&VarKey::global("ptr")).expect("ptr");
    assert_eq!((ptr.counts.reads, ptr.counts.writes), (1, 1));
    assert_eq!(ptr.used_in, vec!["tf"]);
    assert_eq!(ptr.defined_in, vec!["main"]);

    let global = a.scope.variable(&VarKey::global("global")).expect("global");
    assert_eq!(global.counts.total(), 0);
    assert!(global.used_in.is_empty() && global.defined_in.is_empty());

    let threads = a
        .scope
        .variable(&VarKey::local("main", "threads"))
        .expect("threads");
    assert_eq!(threads.size, 3);
    assert!(threads.ty.is_pthread_type());
}

/// The full Table 4.2: sharing status after each of the three stages.
#[test]
fn table_4_2_trajectories() {
    let a = analyze();
    let expected = [
        ("global", Shared, Shared, Private),
        ("ptr", Shared, Shared, Shared),
        ("sum", Shared, Shared, Shared),
        ("tLocal", Unknown, Private, Private),
        ("tid", Unknown, Private, Private),
        ("local", Unknown, Private, Private),
        ("tmp", Unknown, Private, Shared),
        ("threads", Unknown, Private, Private),
        ("rc", Unknown, Private, Private),
    ];
    for (name, s1, s2, s3) in expected {
        assert_eq!(a.status_after_stage(name, 1), s1, "{name} after stage 1");
        assert_eq!(a.status_after_stage(name, 2), s2, "{name} after stage 2");
        assert_eq!(a.status_after_stage(name, 3), s3, "{name} after stage 3");
    }
}

/// The rendered tables contain every variable and the paper's vocabulary.
#[test]
fn rendered_tables_are_complete() {
    let a = analyze();
    let t41 = a.render_table_4_1();
    let t42 = a.render_table_4_2();
    for name in [
        "global", "ptr", "sum", "tLocal", "tid", "local", "tmp", "threads", "rc",
    ] {
        assert!(t41.contains(name), "table 4.1 missing {name}");
        assert!(t42.contains(name), "table 4.2 missing {name}");
    }
    assert!(t42.contains("null"));
    assert!(t42.contains("true"));
    assert!(t42.contains("false"));
}

/// The shared set handed to Stage 4 is exactly {ptr, sum, tmp}.
#[test]
fn shared_superset_is_tight() {
    let a = analyze();
    let names: Vec<_> = a
        .shared_variables()
        .iter()
        .map(|v| v.key.name.clone())
        .collect();
    assert_eq!(names, vec!["ptr", "sum", "tmp"]);
}
