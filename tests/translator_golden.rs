//! Integration test E3: the source-to-source translation of Example Code
//! 4.1 has the structure of Example Code 4.2, via the public pipeline API.

const EXAMPLE_4_1: &str = r#"
#include <stdio.h>
#include <pthread.h>

int global;
int *ptr;
int sum[3] = {0};

void *tf(void * tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for(local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *) local);
    }
    for(local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
"#;

#[test]
fn example_4_2_is_reproduced() {
    let out = hsm_translate::translate_source(EXAMPLE_4_1).expect("translation");
    // The landmarks of Example Code 4.2, in order of appearance.
    let landmarks = [
        "#include \"RCCE.h\"",
        "int *ptr;",
        "int *sum;",
        "void *tf(void *tid)",
        "RCCE_APP",
        "RCCE_init(&argc, &argv);",
        "myID = RCCE_ue();",
        "tf((void *)myID);",
        "RCCE_barrier(&RCCE_COMM_WORLD);",
        "printf(\"Sum Array: %d\\n\", sum[myID]);",
        "RCCE_finalize();",
    ];
    let mut cursor = 0usize;
    for landmark in landmarks {
        match out[cursor..].find(landmark) {
            Some(at) => cursor += at,
            None => panic!("landmark `{landmark}` missing or out of order in:\n{out}"),
        }
    }
    // Everything pthread is gone.
    assert!(!out.contains("pthread"), "{out}");
    // The unused global disappeared, orphaned locals too.
    assert!(!out.contains("int global"), "{out}");
    assert!(!out.contains("threads"), "{out}");
    assert!(!out.contains("rc"), "{out}");
}

#[test]
fn translated_source_is_valid_and_stable() {
    let out = hsm_translate::translate_source(EXAMPLE_4_1).expect("translation");
    let reparsed = hsm_cir::parse(&out).expect("translated source parses");
    assert_eq!(hsm_cir::print_unit(&reparsed), out, "print is a fixpoint");
}

#[test]
fn translated_example_runs_and_matches_baseline() {
    let session = hsm_core::Pipeline::new(EXAMPLE_4_1).cores(3);
    let base = session.run_baseline().expect("baseline");
    let rcce = session.run().expect("rcce run");
    // tf on core k adds k (its id) plus *ptr (== 1) into sum[k]:
    // the printed lines are "Sum Array: 1", "Sum Array: 3", "Sum Array: 5"
    // in the baseline (sum[k] = k + 1... with += tLocal then += *ptr).
    assert!(hsm_core::experiment::outputs_equivalent(&base, &rcce));
    assert_eq!(base.exit_code, rcce.exit_code);
}
