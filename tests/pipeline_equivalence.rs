//! Integration test: semantic equivalence across all six benchmarks — the
//! pthread baseline, the off-chip RCCE conversion and the HSM (MPB)
//! conversion must produce the same program output and the same result as
//! the Rust reference model. (Reduced problem sizes keep debug-mode
//! runtime reasonable.)

use hsm_core::experiment::{outputs_equivalent, run, Mode};
use hsm_workloads::{reference_exit, Bench, Params};
use scc_sim::SccConfig;

fn tiny(bench: Bench, threads: usize) -> Params {
    let (size, reps) = match bench {
        Bench::CountPrimes => (800, 1),
        Bench::PiApprox => (8_000, 1),
        Bench::Sum35 => (12_000, 1),
        Bench::DotProduct => (512, 1),
        Bench::LuDecomp => (6, 8),
        Bench::Stream => (512, 1),
    };
    Params {
        threads,
        size,
        reps,
    }
}

fn check(bench: Bench, threads: usize) {
    let config = SccConfig::table_6_1();
    let p = tiny(bench, threads);
    let expected = reference_exit(bench, &p);

    let base = run(bench, &p, Mode::PthreadBaseline, &config)
        .unwrap_or_else(|e| panic!("{bench} baseline: {e}"));
    assert_eq!(base.exit_code, expected, "{bench} baseline exit");

    let off = run(bench, &p, Mode::RcceOffChip, &config)
        .unwrap_or_else(|e| panic!("{bench} off-chip: {e}"));
    assert_eq!(off.exit_code, expected, "{bench} off-chip exit");
    assert!(
        outputs_equivalent(&base, &off),
        "{bench} off-chip output diverged:\n{:?}\nvs\n{:?}",
        base.output_sorted(),
        off.output_sorted()
    );

    let hsm = run(bench, &p, Mode::RcceHsm, &config).unwrap_or_else(|e| panic!("{bench} hsm: {e}"));
    assert_eq!(hsm.exit_code, expected, "{bench} hsm exit");
    assert!(
        outputs_equivalent(&base, &hsm),
        "{bench} hsm output diverged"
    );
}

#[test]
fn count_primes_equivalence() {
    check(Bench::CountPrimes, 8);
}

#[test]
fn pi_equivalence() {
    check(Bench::PiApprox, 8);
}

#[test]
fn sum35_equivalence() {
    check(Bench::Sum35, 8);
}

#[test]
fn dot_product_equivalence() {
    check(Bench::DotProduct, 8);
}

#[test]
fn lu_equivalence() {
    check(Bench::LuDecomp, 8);
}

#[test]
fn stream_equivalence() {
    check(Bench::Stream, 8);
}

/// Equivalence must hold at awkward thread counts too (work does not
/// divide evenly; the last thread absorbs the remainder).
#[test]
fn uneven_partitions_are_correct() {
    for bench in [Bench::PiApprox, Bench::Sum35, Bench::CountPrimes] {
        check(bench, 7);
    }
}

/// Determinism: the same configuration simulated twice gives identical
/// cycle counts and output.
#[test]
fn simulation_is_deterministic() {
    let config = SccConfig::table_6_1();
    let p = tiny(Bench::Stream, 8);
    let a = run(Bench::Stream, &p, Mode::RcceHsm, &config).expect("first");
    let b = run(Bench::Stream, &p, Mode::RcceHsm, &config).expect("second");
    assert_eq!(a.timed_cycles, b.timed_cycles);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.output_text(), b.output_text());
}
