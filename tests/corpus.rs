//! Corpus test: every C program in `corpus/` must run identically as a
//! pthread baseline, an off-chip RCCE conversion and an HSM conversion —
//! output multisets (deduplicated, since RCCE replicates post-barrier
//! prints per core) and exit codes must agree across all three.

use hsm_core::experiment::outputs_equivalent;
use hsm_core::{Pipeline, Policy};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

fn check_program(name: &str, cores: usize) {
    let path = corpus_dir().join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));

    // One session per program: the three configurations share its parsed
    // unit and analysis through the session cache.
    let session = Pipeline::new(src).cores(cores);
    let base = session
        .run_baseline()
        .unwrap_or_else(|e| panic!("{name} baseline: {e}"));
    let off = session
        .clone()
        .policy(Policy::OffChipOnly)
        .run()
        .unwrap_or_else(|e| panic!("{name} off-chip: {e}"));
    let hsm = session.run().unwrap_or_else(|e| panic!("{name} hsm: {e}"));

    assert_eq!(
        base.exit_code, off.exit_code,
        "{name}: off-chip exit differs"
    );
    assert_eq!(base.exit_code, hsm.exit_code, "{name}: hsm exit differs");
    assert!(
        outputs_equivalent(&base, &off),
        "{name}: off-chip output diverged\nbase: {:?}\nrcce: {:?}",
        base.output_sorted(),
        off.output_sorted()
    );
    assert!(
        outputs_equivalent(&base, &hsm),
        "{name}: hsm output diverged\nbase: {:?}\nrcce: {:?}",
        base.output_sorted(),
        hsm.output_sorted()
    );
}

#[test]
fn example_4_1() {
    check_program("example_4_1.c", 3);
}

#[test]
fn mutex_histogram() {
    check_program("mutex_histogram.c", 4);
}

#[test]
fn matrix_vector() {
    check_program("matrix_vector.c", 4);
}

#[test]
fn switch_classifier() {
    check_program("switch_classifier.c", 2);
}

#[test]
fn escaping_local() {
    check_program("escaping_local.c", 4);
}

/// Every corpus file at least parses, analyzes and translates without
/// errors (guards against corpus rot when the subset evolves).
#[test]
fn whole_corpus_translates() {
    let dir = corpus_dir();
    let mut count = 0;
    for entry in std::fs::read_dir(&dir).expect("corpus dir") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("c") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("read");
        let out = hsm_translate::translate_source(&src)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(!out.contains("pthread"), "{}", path.display());
        count += 1;
    }
    assert!(
        count >= 5,
        "corpus should have at least 5 programs, found {count}"
    );
}
