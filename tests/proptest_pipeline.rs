//! Cross-crate property tests (testkit-driven):
//!
//! * randomly generated integer-expression programs compute the same value
//!   in the VM as a Rust reference evaluator (compiler/VM correctness);
//! * the partitioner never overflows its budget and never leaves a
//!   fitting variable off-chip when capacity remains (Algorithm 3's
//!   invariants);
//! * randomly generated pthread programs translate to parseable RCCE
//!   source with no pthread vestiges.
//!
//! Regressions found by the old proptest suite are pinned as named test
//! cases at the bottom instead of a `.proptest-regressions` seed file.

use hsm_partition::{partition, MemorySpec, Placement, Policy, SharedVar};
use testkit::{check, SplitMix64};

// ------------------------------------------------- expression semantics --

/// An expression tree we can render to C and evaluate in Rust with
/// identical semantics (division guarded against zero).
#[derive(Debug, Clone)]
enum E {
    Lit(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Rem(Box<E>, Box<E>),
    Neg(Box<E>),
    Ternary(Box<E>, Box<E>, Box<E>),
}

impl E {
    fn render(&self) -> String {
        match self {
            E::Lit(v) => format!("{v}"),
            E::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            E::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            E::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            E::Div(a, b) => format!(
                "({} / (({}) == 0 ? 1 : ({})))",
                a.render(),
                b.render(),
                b.render()
            ),
            E::Rem(a, b) => format!(
                "({} % (({}) == 0 ? 1 : ({})))",
                a.render(),
                b.render(),
                b.render()
            ),
            // The space prevents `-` + `-5` lexing as `--`.
            E::Neg(a) => format!("(- {})", a.render()),
            E::Ternary(c, t, f) => {
                format!("(({}) ? ({}) : ({}))", c.render(), t.render(), f.render())
            }
        }
    }

    fn eval(&self) -> i64 {
        match self {
            E::Lit(v) => i64::from(*v),
            E::Add(a, b) => a.eval().wrapping_add(b.eval()),
            E::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            E::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            E::Div(a, b) => {
                let d = b.eval();
                a.eval().wrapping_div(if d == 0 { 1 } else { d })
            }
            E::Rem(a, b) => {
                let d = b.eval();
                a.eval().wrapping_rem(if d == 0 { 1 } else { d })
            }
            E::Neg(a) => a.eval().wrapping_neg(),
            E::Ternary(c, t, f) => {
                if c.eval() != 0 {
                    t.eval()
                } else {
                    f.eval()
                }
            }
        }
    }
}

/// Random expression tree, depth-bounded like the old
/// `prop_recursive(4, ..)` strategy; biased towards leaves as depth grows.
fn gen_expr(rng: &mut SplitMix64, depth: usize) -> E {
    if depth == 0 || rng.gen_range_usize(0, 4) == 0 {
        return E::Lit(rng.gen_range_i32(-50, 50));
    }
    let d = depth - 1;
    match rng.gen_range_usize(0, 7) {
        0 => E::Add(Box::new(gen_expr(rng, d)), Box::new(gen_expr(rng, d))),
        1 => E::Sub(Box::new(gen_expr(rng, d)), Box::new(gen_expr(rng, d))),
        2 => E::Mul(Box::new(gen_expr(rng, d)), Box::new(gen_expr(rng, d))),
        3 => E::Div(Box::new(gen_expr(rng, d)), Box::new(gen_expr(rng, d))),
        4 => E::Rem(Box::new(gen_expr(rng, d)), Box::new(gen_expr(rng, d))),
        5 => E::Neg(Box::new(gen_expr(rng, d))),
        _ => E::Ternary(
            Box::new(gen_expr(rng, d)),
            Box::new(gen_expr(rng, d)),
            Box::new(gen_expr(rng, d)),
        ),
    }
}

/// Runs an integer expression through parse → compile → VM and checks the
/// printed result against the Rust reference evaluator.
fn assert_vm_matches(expr: &E) {
    let expected = expr.eval();
    // Exit codes are i64 in the VM; compute via a long to avoid C int
    // truncation differences.
    let src = format!(
        "int main() {{ long result = {}; printf(\"%ld\\n\", result); return 0; }}",
        expr.render()
    );
    let program = hsm_vm::compile(&hsm_cir::parse(&src).expect("parse")).expect("compile");
    let run = hsm_exec::run_pthread(&program, &scc_sim::SccConfig::table_6_1()).expect("run");
    let printed: i64 = run.output_text().trim().parse().expect("numeric output");
    assert_eq!(printed, expected, "source: {src}");
}

// -------------------------------------------------- float semantics --

/// Float expression trees with Rust-identical evaluation order.
#[derive(Debug, Clone)]
enum F {
    Lit(f64),
    Add(Box<F>, Box<F>),
    Sub(Box<F>, Box<F>),
    Mul(Box<F>, Box<F>),
    Div(Box<F>, Box<F>),
    FromInt(i32),
}

impl F {
    fn render(&self) -> String {
        match self {
            F::Lit(v) => format!("{v:?}"),
            F::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            F::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            F::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            // Guard against division by exact zero (IEEE inf is fine but
            // printf formatting of inf differs).
            F::Div(a, b) => format!("({} / ({} + 1.5))", a.render(), b.render()),
            F::FromInt(v) => format!("(1.0 * {v})"),
        }
    }

    fn eval(&self) -> f64 {
        match self {
            F::Lit(v) => *v,
            F::Add(a, b) => a.eval() + b.eval(),
            F::Sub(a, b) => a.eval() - b.eval(),
            F::Mul(a, b) => a.eval() * b.eval(),
            F::Div(a, b) => a.eval() / (b.eval() + 1.5),
            F::FromInt(v) => 1.0 * f64::from(*v),
        }
    }
}

fn gen_fexpr(rng: &mut SplitMix64, depth: usize) -> F {
    if depth == 0 || rng.gen_range_usize(0, 3) == 0 {
        return if rng.gen_bool() {
            // Quarter-steps render exactly and stay finite under the
            // bounded arithmetic below.
            F::Lit((rng.gen_range_f64(-8.0, 8.0) * 4.0).round() / 4.0)
        } else {
            F::FromInt(rng.gen_range_i32(-20, 20))
        };
    }
    let d = depth - 1;
    match rng.gen_range_usize(0, 4) {
        0 => F::Add(Box::new(gen_fexpr(rng, d)), Box::new(gen_fexpr(rng, d))),
        1 => F::Sub(Box::new(gen_fexpr(rng, d)), Box::new(gen_fexpr(rng, d))),
        2 => F::Mul(Box::new(gen_fexpr(rng, d)), Box::new(gen_fexpr(rng, d))),
        _ => F::Div(Box::new(gen_fexpr(rng, d)), Box::new(gen_fexpr(rng, d))),
    }
}

// ------------------------------------------------------- properties --

/// The VM evaluates arbitrary integer expressions exactly like Rust (the
/// benchmarks' correctness rests on this).
#[test]
fn vm_matches_reference_arithmetic() {
    check("vm_matches_reference_arithmetic", 128, |rng| {
        let expr = gen_expr(rng, 4);
        assert_vm_matches(&expr);
    });
}

/// Algorithm 3 never overspends the on-chip budget, and when it reports
/// free space no off-chip variable would have fit.
#[test]
fn partitioner_invariants() {
    check("partitioner_invariants", 256, |rng| {
        let n = rng.gen_range_usize(1, 24);
        let sizes: Vec<usize> = (0..n).map(|_| rng.gen_range_usize(1, 5_000)).collect();
        let cap = rng.gen_range_usize(0, 16_384);
        let vars: Vec<SharedVar> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| SharedVar::new(format!("v{i}"), s, 1))
            .collect();
        let spec = MemorySpec::with_on_chip(cap);
        for policy in [
            Policy::SizeAscending,
            Policy::SizeDescending,
            Policy::FrequencyDensity,
        ] {
            let plan = partition(&vars, &spec, policy);
            assert!(plan.on_chip_used <= cap, "{policy:?} overspent");
            let used: usize = plan
                .placements
                .iter()
                .filter(|p| p.placement == Placement::OnChip)
                .map(|p| p.var.mem_size)
                .sum();
            assert_eq!(used, plan.on_chip_used, "{policy:?} accounting");
            // No off-chip variable fits in the remaining space *if the
            // policy is greedy ascending* (the smallest spilled variable
            // must not fit).
            if policy == Policy::SizeAscending {
                let smallest_spilled = plan
                    .placements
                    .iter()
                    .filter(|p| p.placement == Placement::OffChip)
                    .map(|p| p.var.mem_size)
                    .min();
                if let Some(s) = smallest_spilled {
                    assert!(
                        s > plan.on_chip_free(),
                        "variable of {s} B left off-chip with {} B free",
                        plan.on_chip_free()
                    );
                }
            }
        }
    });
}

/// Translating a partition-shaped pthread program always yields parseable
/// RCCE C with no pthread identifiers, for arbitrary thread counts and
/// array lengths.
#[test]
fn translation_total_on_generated_programs() {
    check("translation_total_on_generated_programs", 48, |rng| {
        let threads = rng.gen_range_usize(1, 16);
        let len = rng.gen_range_usize(1, 64);
        let src = format!(
            r#"
#include <pthread.h>
int data[{len}];
void *tf(void *tid) {{
    int id = (int)tid;
    if (id < {len}) data[id] = id;
    return tid;
}}
int main() {{
    pthread_t t[{threads}];
    int i;
    for (i = 0; i < {threads}; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < {threads}; i++) pthread_join(t[i], NULL);
    return data[0];
}}
"#
        );
        let out = hsm_translate::translate_source(&src).expect("translate");
        assert!(!out.contains("pthread"), "{out}");
        hsm_cir::parse(&out).expect("reparse");
    });
}

/// The VM's double arithmetic is bitwise-identical to Rust's (both are
/// IEEE 754, same evaluation order) — the foundation of the benchmarks'
/// exit-code equivalence checks.
#[test]
fn vm_matches_reference_float_arithmetic() {
    check("vm_matches_reference_float_arithmetic", 128, |rng| {
        let expr = gen_fexpr(rng, 3);
        let expected = expr.eval();
        if !expected.is_finite() {
            return;
        }
        let src = format!(
            "int main() {{ double r = {}; printf(\"%.17e\\n\", r); return 0; }}",
            expr.render()
        );
        let program = hsm_vm::compile(&hsm_cir::parse(&src).expect("parse")).expect("compile");
        let run = hsm_exec::run_pthread(&program, &scc_sim::SccConfig::table_6_1()).expect("run");
        let printed: f64 = run.output_text().trim().parse().expect("float output");
        assert!(
            printed == expected || (printed - expected).abs() < 1e-12 * expected.abs().max(1.0),
            "vm {printed:?} vs rust {expected:?} for {src}"
        );
    });
}

/// End-to-end translation equivalence fuzzing: random worker bodies
/// (assembled from data-parallel statement templates over each thread's
/// own slice) must produce the same exit code as a pthread baseline and as
/// a translated RCCE program. This is the pipeline's strongest property:
/// parser, analysis, partitioner, translator, bytecode compiler and both
/// execution modes all agree.
#[test]
fn translated_programs_compute_identically() {
    let templates = [
        "data[j] = data[j] + id;",
        "data[j] = data[j] * 2;",
        "data[j] = data[j] + aux[j];",
        "aux[j] = data[j] - 1;",
        "if (data[j] % 2 == 0) data[j] = data[j] + 3;",
        "data[j] = data[j] + j % 5;",
    ];
    check("translated_programs_compute_identically", 32, |rng| {
        let ops: Vec<usize> = (0..rng.gen_range_usize(1, 8))
            .map(|_| rng.gen_range_usize(0, templates.len()))
            .collect();
        let threads = rng.gen_range_usize(2, 6);
        let body: String = ops
            .iter()
            .map(|&i| templates[i])
            .collect::<Vec<_>>()
            .join("\n        ");
        let n = threads * 8;
        let src = format!(
            r#"
#include <pthread.h>
int data[{n}];
int aux[{n}];
void *tf(void *tid) {{
    int id = (int)tid;
    int j;
    for (j = id * 8; j < id * 8 + 8; j++) {{
        {body}
    }}
    pthread_exit(NULL);
}}
int main() {{
    pthread_t t[{threads}];
    int i;
    for (i = 0; i < {n}; i++) {{
        data[i] = i % 7;
        aux[i] = (i + 2) % 3;
    }}
    for (i = 0; i < {threads}; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < {threads}; i++) pthread_join(t[i], NULL);
    int check = 0;
    for (i = 0; i < {n}; i++) check = check * 31 % 100003 + data[i] + aux[i];
    return check % 100000;
}}
"#
        );
        let session = hsm_core::Pipeline::new(src.as_str()).cores(threads);
        let base = session
            .run_baseline()
            .unwrap_or_else(|e| panic!("baseline: {e}\n{src}"));
        let off = session
            .clone()
            .policy(hsm_core::Policy::OffChipOnly)
            .run()
            .unwrap_or_else(|e| panic!("off-chip: {e}\n{src}"));
        let hsm = session.run().unwrap_or_else(|e| panic!("hsm: {e}\n{src}"));
        assert_eq!(
            base.exit_code, off.exit_code,
            "off-chip diverged for\n{src}"
        );
        assert_eq!(base.exit_code, hsm.exit_code, "hsm diverged for\n{src}");
    });
}

// ------------------------------------------------- pinned regressions --

/// Pinned from the retired `.proptest-regressions` file: proptest once
/// shrank a failing arithmetic case to `(0 - (- -1)) % 0` — a remainder
/// whose divisor is literal zero, exercising the `== 0 ? 1 : ...` guard in
/// both the rendered C and the reference evaluator.
#[test]
fn regression_rem_by_literal_zero() {
    let expr = E::Rem(
        Box::new(E::Sub(
            Box::new(E::Lit(0)),
            Box::new(E::Neg(Box::new(E::Lit(-1)))),
        )),
        Box::new(E::Lit(0)),
    );
    assert_vm_matches(&expr);
}
