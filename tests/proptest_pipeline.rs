//! Cross-crate property tests:
//!
//! * randomly generated integer-expression programs compute the same value
//!   in the VM as a Rust reference evaluator (compiler/VM correctness);
//! * the partitioner never overflows its budget and never leaves a
//!   fitting variable off-chip when capacity remains (Algorithm 3's
//!   invariants);
//! * randomly generated pthread programs translate to parseable RCCE
//!   source with no pthread vestiges.

use hsm_partition::{partition, MemorySpec, Placement, Policy, SharedVar};
use proptest::prelude::*;

// ------------------------------------------------- expression semantics --

/// An expression tree we can render to C and evaluate in Rust with
/// identical semantics (division guarded against zero).
#[derive(Debug, Clone)]
enum E {
    Lit(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Rem(Box<E>, Box<E>),
    Neg(Box<E>),
    Ternary(Box<E>, Box<E>, Box<E>),
}

impl E {
    fn render(&self) -> String {
        match self {
            E::Lit(v) => format!("{v}"),
            E::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            E::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            E::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            E::Div(a, b) => format!("({} / (({}) == 0 ? 1 : ({})))", a.render(), b.render(), b.render()),
            E::Rem(a, b) => format!("({} % (({}) == 0 ? 1 : ({})))", a.render(), b.render(), b.render()),
            // The space prevents `-` + `-5` lexing as `--`.
            E::Neg(a) => format!("(- {})", a.render()),
            E::Ternary(c, t, f) => format!("(({}) ? ({}) : ({}))", c.render(), t.render(), f.render()),
        }
    }

    fn eval(&self) -> i64 {
        match self {
            E::Lit(v) => i64::from(*v),
            E::Add(a, b) => a.eval().wrapping_add(b.eval()),
            E::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            E::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            E::Div(a, b) => {
                let d = b.eval();
                a.eval().wrapping_div(if d == 0 { 1 } else { d })
            }
            E::Rem(a, b) => {
                let d = b.eval();
                a.eval().wrapping_rem(if d == 0 { 1 } else { d })
            }
            E::Neg(a) => a.eval().wrapping_neg(),
            E::Ternary(c, t, f) => {
                if c.eval() != 0 {
                    t.eval()
                } else {
                    f.eval()
                }
            }
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = (-50i32..50).prop_map(E::Lit);
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Rem(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, f)| E::Ternary(Box::new(c), Box::new(t), Box::new(f))),
        ]
    })
}


// -------------------------------------------------- float semantics --

/// Float expression trees with Rust-identical evaluation order.
#[derive(Debug, Clone)]
enum F {
    Lit(f64),
    Add(Box<F>, Box<F>),
    Sub(Box<F>, Box<F>),
    Mul(Box<F>, Box<F>),
    Div(Box<F>, Box<F>),
    FromInt(i32),
}

impl F {
    fn render(&self) -> String {
        match self {
            F::Lit(v) => format!("{v:?}"),
            F::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            F::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            F::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            // Guard against division by exact zero (IEEE inf is fine but
            // printf formatting of inf differs).
            F::Div(a, b) => format!("({} / ({} + 1.5))", a.render(), b.render()),
            F::FromInt(v) => format!("(1.0 * {v})"),
        }
    }

    fn eval(&self) -> f64 {
        match self {
            F::Lit(v) => *v,
            F::Add(a, b) => a.eval() + b.eval(),
            F::Sub(a, b) => a.eval() - b.eval(),
            F::Mul(a, b) => a.eval() * b.eval(),
            F::Div(a, b) => a.eval() / (b.eval() + 1.5),
            F::FromInt(v) => 1.0 * f64::from(*v),
        }
    }
}

fn arb_fexpr() -> impl Strategy<Value = F> {
    let leaf = prop_oneof![
        (-8.0f64..8.0).prop_map(|v| F::Lit((v * 4.0).round() / 4.0)),
        (-20i32..20).prop_map(F::FromInt),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::Div(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The VM evaluates arbitrary integer expressions exactly like Rust
    /// (the benchmarks' correctness rests on this).
    #[test]
    fn vm_matches_reference_arithmetic(expr in arb_expr()) {
        let expected = expr.eval();
        // Exit codes are i64 in the VM; compute via a long to avoid C int
        // truncation differences.
        let src = format!(
            "int main() {{ long result = {}; printf(\"%ld\\n\", result); return 0; }}",
            expr.render()
        );
        let program = hsm_vm::compile(&hsm_cir::parse(&src).expect("parse"))
            .expect("compile");
        let run = hsm_exec::run_pthread(&program, &scc_sim::SccConfig::table_6_1())
            .expect("run");
        let printed: i64 = run.output_text().trim().parse().expect("numeric output");
        prop_assert_eq!(printed, expected, "source: {}", src);
    }

    /// Algorithm 3 never overspends the on-chip budget, and when it
    /// reports free space no off-chip variable would have fit.
    #[test]
    fn partitioner_invariants(
        sizes in proptest::collection::vec(1usize..5_000, 1..24),
        cap in 0usize..16_384,
    ) {
        let vars: Vec<SharedVar> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| SharedVar::new(format!("v{i}"), s, 1))
            .collect();
        let spec = MemorySpec::with_on_chip(cap);
        for policy in [Policy::SizeAscending, Policy::SizeDescending, Policy::FrequencyDensity] {
            let plan = partition(&vars, &spec, policy);
            prop_assert!(plan.on_chip_used <= cap, "{policy:?} overspent");
            let used: usize = plan
                .placements
                .iter()
                .filter(|p| p.placement == Placement::OnChip)
                .map(|p| p.var.mem_size)
                .sum();
            prop_assert_eq!(used, plan.on_chip_used, "{:?} accounting", policy);
            // No off-chip variable fits in the remaining space *if the
            // policy is greedy ascending* (the smallest spilled variable
            // must not fit).
            if policy == Policy::SizeAscending {
                let smallest_spilled = plan
                    .placements
                    .iter()
                    .filter(|p| p.placement == Placement::OffChip)
                    .map(|p| p.var.mem_size)
                    .min();
                if let Some(s) = smallest_spilled {
                    prop_assert!(
                        s > plan.on_chip_free(),
                        "variable of {s} B left off-chip with {} B free",
                        plan.on_chip_free()
                    );
                }
            }
        }
    }

    /// Translating a partition-shaped pthread program always yields
    /// parseable RCCE C with no pthread identifiers, for arbitrary thread
    /// counts and array lengths.
    #[test]
    fn translation_total_on_generated_programs(
        threads in 1usize..16,
        len in 1usize..64,
    ) {
        let src = format!(
            r#"
#include <pthread.h>
int data[{len}];
void *tf(void *tid) {{
    int id = (int)tid;
    if (id < {len}) data[id] = id;
    return tid;
}}
int main() {{
    pthread_t t[{threads}];
    int i;
    for (i = 0; i < {threads}; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < {threads}; i++) pthread_join(t[i], NULL);
    return data[0];
}}
"#
        );
        let out = hsm_translate::translate_source(&src).expect("translate");
        prop_assert!(!out.contains("pthread"), "{out}");
        hsm_cir::parse(&out).expect("reparse");
    }

    /// The VM's double arithmetic is bitwise-identical to Rust's (both
    /// are IEEE 754, same evaluation order) — the foundation of the
    /// benchmarks' exit-code equivalence checks.
    #[test]
    fn vm_matches_reference_float_arithmetic(expr in arb_fexpr()) {
        let expected = expr.eval();
        prop_assume!(expected.is_finite());
        let src = format!(
            "int main() {{ double r = {}; printf(\"%.17e\\n\", r); return 0; }}",
            expr.render()
        );
        let program = hsm_vm::compile(&hsm_cir::parse(&src).expect("parse"))
            .expect("compile");
        let run = hsm_exec::run_pthread(&program, &scc_sim::SccConfig::table_6_1())
            .expect("run");
        let printed: f64 = run.output_text().trim().parse().expect("float output");
        prop_assert!(
            printed == expected || (printed - expected).abs() < 1e-12 * expected.abs().max(1.0),
            "vm {printed:?} vs rust {expected:?} for {}",
            src
        );
    }

    /// End-to-end translation equivalence fuzzing: random worker bodies
    /// (assembled from data-parallel statement templates over each
    /// thread's own slice) must produce the same exit code as a pthread
    /// baseline and as a translated RCCE program. This is the pipeline's
    /// strongest property: parser, analysis, partitioner, translator,
    /// bytecode compiler and both execution modes all agree.
    #[test]
    fn translated_programs_compute_identically(
        ops in proptest::collection::vec(0usize..6, 1..8),
        threads in 2usize..6,
    ) {
        let templates = [
            "data[j] = data[j] + id;",
            "data[j] = data[j] * 2;",
            "data[j] = data[j] + aux[j];",
            "aux[j] = data[j] - 1;",
            "if (data[j] % 2 == 0) data[j] = data[j] + 3;",
            "data[j] = data[j] + j % 5;",
        ];
        let body: String = ops
            .iter()
            .map(|&i| templates[i])
            .collect::<Vec<_>>()
            .join("\n        ");
        let n = threads * 8;
        let src = format!(
            r#"
#include <pthread.h>
int data[{n}];
int aux[{n}];
void *tf(void *tid) {{
    int id = (int)tid;
    int j;
    for (j = id * 8; j < id * 8 + 8; j++) {{
        {body}
    }}
    pthread_exit(NULL);
}}
int main() {{
    pthread_t t[{threads}];
    int i;
    for (i = 0; i < {n}; i++) {{
        data[i] = i % 7;
        aux[i] = (i + 2) % 3;
    }}
    for (i = 0; i < {threads}; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < {threads}; i++) pthread_join(t[i], NULL);
    int check = 0;
    for (i = 0; i < {n}; i++) check = check * 31 % 100003 + data[i] + aux[i];
    return check % 100000;
}}
"#
        );
        let config = scc_sim::SccConfig::table_6_1();
        let base = hsm_core::run_baseline(&src, &config)
            .unwrap_or_else(|e| panic!("baseline: {e}\n{src}"));
        let off = hsm_core::run_translated(&src, threads, hsm_core::Policy::OffChipOnly, &config)
            .unwrap_or_else(|e| panic!("off-chip: {e}\n{src}"));
        let hsm = hsm_core::run_translated(&src, threads, hsm_core::Policy::SizeAscending, &config)
            .unwrap_or_else(|e| panic!("hsm: {e}\n{src}"));
        prop_assert_eq!(base.exit_code, off.exit_code, "off-chip diverged for\n{}", src);
        prop_assert_eq!(base.exit_code, hsm.exit_code, "hsm diverged for\n{}", src);
    }
}
