//! Integration test E5–E7: the evaluation figures' *shapes* hold at
//! reduced scale — who wins, in what order, and where the crossovers are.
//! (Absolute magnitudes are the `figures` binary's job at full scale.)

use hsm_core::experiment::{run, run_all_modes, Mode};
use hsm_workloads::{Bench, Params};
use scc_sim::SccConfig;

fn params(bench: Bench, threads: usize) -> Params {
    let (size, reps) = match bench {
        Bench::CountPrimes => (2_000, 1),
        Bench::PiApprox => (40_000, 1),
        Bench::Sum35 => (60_000, 1),
        Bench::DotProduct => (2_048, 1),
        Bench::LuDecomp => (8, 16),
        Bench::Stream => (2_048, 1),
    };
    Params {
        threads,
        size,
        reps,
    }
}

/// Figure 6.1's shape: converting to N cores speeds up every benchmark,
/// and compute-bound programs gain more than memory-bound ones.
#[test]
fn fig_6_1_shape() {
    let config = SccConfig::table_6_1();
    let n = 16;
    let pi = run_all_modes(Bench::PiApprox, &params(Bench::PiApprox, n), &config).expect("pi");
    let stream = run_all_modes(Bench::Stream, &params(Bench::Stream, n), &config).expect("st");
    assert!(pi.outputs_match && stream.outputs_match);
    // Compute-bound approaches linear speedup.
    assert!(
        pi.offchip_speedup() > 0.75 * n as f64,
        "pi speedup {:.1} should be near {n}x",
        pi.offchip_speedup()
    );
    // Memory-bound still wins, but far below linear.
    assert!(
        stream.offchip_speedup() > 1.0,
        "{:.2}",
        stream.offchip_speedup()
    );
    assert!(
        stream.offchip_speedup() < 0.75 * n as f64,
        "stream speedup {:.1} should stay well below linear",
        stream.offchip_speedup()
    );
    assert!(pi.offchip_speedup() > stream.offchip_speedup());
}

/// Figure 6.2's shape: MPB placement helps memory-heavy benchmarks a lot,
/// compute-bound benchmarks marginally.
#[test]
fn fig_6_2_shape() {
    let config = SccConfig::table_6_1();
    let n = 16;
    let stream = run_all_modes(Bench::Stream, &params(Bench::Stream, n), &config).expect("st");
    let pi = run_all_modes(Bench::PiApprox, &params(Bench::PiApprox, n), &config).expect("pi");
    assert!(
        stream.hsm_improvement() > 2.0,
        "stream should gain >2x from MPB, got {:.2}",
        stream.hsm_improvement()
    );
    assert!(
        pi.hsm_improvement() < 1.3,
        "pi barely touches shared data, got {:.2}",
        pi.hsm_improvement()
    );
    assert!(stream.hsm_improvement() > pi.hsm_improvement());
}

/// Figure 6.3's shape: Pi speedup grows monotonically (within tolerance)
/// with the core count and is near-linear.
#[test]
fn fig_6_3_shape() {
    let config = SccConfig::table_6_1();
    let counts = [1usize, 2, 4, 8];
    let mut last = 0.0f64;
    for &cores in &counts {
        let p = params(Bench::PiApprox, cores);
        let base = run(Bench::PiApprox, &p, Mode::PthreadBaseline, &config).expect("base");
        let hsm = run(Bench::PiApprox, &p, Mode::RcceHsm, &config).expect("hsm");
        let speedup = base.timed_cycles as f64 / hsm.timed_cycles as f64;
        assert!(
            speedup > last * 1.3,
            "speedup must keep growing: {speedup:.2} after {last:.2} at {cores} cores"
        );
        assert!(
            speedup > 0.7 * cores as f64,
            "near-linear expected: {speedup:.2} at {cores} cores"
        );
        last = speedup;
    }
}

/// The E8 ablation's shape: fewer memory controllers slow down the
/// off-chip Dot Product.
#[test]
fn mc_contention_shape() {
    let p = params(Bench::DotProduct, 16);
    let mut four = SccConfig::table_6_1();
    four.memory_controllers = 4;
    let mut one = SccConfig::table_6_1();
    one.memory_controllers = 1;
    let r4 = run(Bench::DotProduct, &p, Mode::RcceOffChip, &four).expect("4 MCs");
    let r1 = run(Bench::DotProduct, &p, Mode::RcceOffChip, &one).expect("1 MC");
    assert!(
        r1.timed_cycles > r4.timed_cycles,
        "1 MC {} must be slower than 4 MCs {}",
        r1.timed_cycles,
        r4.timed_cycles
    );
}

/// LU's default configuration spills the MPB (the paper's observation),
/// while Stream's fits.
#[test]
fn lu_spills_stream_fits() {
    let mpb = 48 * 8192;
    let lu = Bench::LuDecomp.default_params(32);
    assert!(hsm_workloads::shared_footprint(Bench::LuDecomp, &lu) > mpb);
    let stream = Bench::Stream.default_params(32);
    assert!(hsm_workloads::shared_footprint(Bench::Stream, &stream) <= mpb);
}

/// Count Primes' block partition is imbalanced (the mechanism behind its
/// halved Figure 6.1 speedup); Pi's even partition is balanced.
#[test]
fn count_primes_is_imbalanced_pi_is_not() {
    let config = SccConfig::table_6_1();
    let primes = run(
        Bench::CountPrimes,
        &params(Bench::CountPrimes, 16),
        Mode::RcceHsm,
        &config,
    )
    .expect("primes");
    let pi = run(
        Bench::PiApprox,
        &params(Bench::PiApprox, 16),
        Mode::RcceHsm,
        &config,
    )
    .expect("pi");
    assert!(
        primes.imbalance() > 1.2,
        "primes imbalance {:.2} should exceed 1.2",
        primes.imbalance()
    );
    assert!(
        pi.imbalance() < 1.1,
        "pi imbalance {:.2} should be near 1",
        pi.imbalance()
    );
}
