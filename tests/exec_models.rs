//! Differential harness over the execution-model axis.
//!
//! The refactored [`hsm_exec::ExecutionCore`] runs every program under a
//! pluggable [`hsm_core::ExecModel`]. This suite pins the contract between
//! the three models:
//!
//! - `Coherent` is the ground truth: deterministic, and byte-identical to
//!   the pre-refactor engines (the goldens and `corpus.rs` already pin
//!   that; here we pin determinism and model-level agreement).
//! - `SeqCstReference` must agree with `Coherent` on every observable
//!   value (output lines, exit code) while charging flat latencies.
//! - `NonCoherentWriteBack` models the SCC's real non-coherent caches: the
//!   clean corpus stays correct (the translator privatizes or
//!   message-passes all sharing), while the adversarial corpus — programs
//!   whose threads share memory without synchronization — visibly breaks.

use hsm_core::experiment::{outputs_equivalent, sweep, Mode, SweepMatrix, SweepTask};
use hsm_core::{ExecModel, Pipeline, Scenario};
use std::path::PathBuf;
use std::sync::Arc;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

fn read(rel: &str) -> String {
    let path = corpus_dir().join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The clean corpus with the core counts `corpus.rs` uses.
const CLEAN: [(&str, usize); 5] = [
    ("example_4_1.c", 3),
    ("matrix_vector.c", 4),
    ("mutex_histogram.c", 4),
    ("switch_classifier.c", 2),
    ("escaping_local.c", 4),
];

/// Two coherent replays of the whole corpus are indistinguishable, and a
/// `SeqCstReference` replay agrees on every value (it only re-prices
/// memory latency, so cycle counts may differ but nothing else may).
#[test]
fn coherent_is_deterministic_and_seq_cst_agrees() {
    for (name, cores) in CLEAN {
        let session = Pipeline::new(read(name)).cores(cores);
        let a = session
            .clone()
            .run_baseline()
            .unwrap_or_else(|e| panic!("{name} coherent: {e}"));
        let b = session
            .clone()
            .run_baseline()
            .unwrap_or_else(|e| panic!("{name} coherent replay: {e}"));
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{name}: replay diverged"
        );

        let seq = session
            .clone()
            .scenario(Scenario::default().exec_model(ExecModel::SeqCstReference))
            .run_baseline()
            .unwrap_or_else(|e| panic!("{name} seq_cst_ref: {e}"));
        assert_eq!(a.exit_code, seq.exit_code, "{name}: seq_cst_ref exit");
        assert_eq!(
            a.output_sorted(),
            seq.output_sorted(),
            "{name}: seq_cst_ref output"
        );
    }
}

/// Translated (RCCE) programs only share memory through explicit puts,
/// gets and flag writes, all of which the runtime flushes; losing cache
/// coherence therefore changes nothing observable for the clean corpus.
#[test]
fn translated_corpus_survives_non_coherent_caches() {
    for (name, cores) in CLEAN {
        let session = Pipeline::new(read(name)).cores(cores);
        let coherent = session
            .clone()
            .run()
            .unwrap_or_else(|e| panic!("{name} hsm coherent: {e}"));
        let wb = session
            .scenario(Scenario::default().exec_model(ExecModel::NonCoherentWriteBack))
            .run()
            .unwrap_or_else(|e| panic!("{name} hsm non-coherent: {e}"));
        assert_eq!(coherent.exit_code, wb.exit_code, "{name}: exit differs");
        assert!(
            outputs_equivalent(&coherent, &wb),
            "{name}: non-coherent HSM output diverged\ncoherent: {:?}\nwb:       {:?}",
            coherent.output_sorted(),
            wb.output_sorted()
        );
    }
}

/// The adversarial corpus is the punchline of the model axis: the same
/// pthread binaries that are correct under `Coherent` produce visibly
/// wrong answers once each unit's writes stay in a private write-back
/// cache. The exact wrong answers are deterministic, so we pin them.
#[test]
fn adversarial_corpus_breaks_without_coherence() {
    for (name, cores, good_exit, good_line, bad_exit, bad_line) in [
        (
            "adversarial/escaping_arg.c",
            4,
            42,
            "local 42",
            1,
            "local 1",
        ),
        (
            "adversarial/unlocked_counter.c",
            4,
            200,
            "counter 200",
            0,
            "counter 0",
        ),
    ] {
        let session = Pipeline::new(read(name)).cores(cores);
        let coherent = session
            .clone()
            .run_baseline()
            .unwrap_or_else(|e| panic!("{name} coherent: {e}"));
        let wb = session
            .scenario(Scenario::default().exec_model(ExecModel::NonCoherentWriteBack))
            .run_baseline()
            .unwrap_or_else(|e| panic!("{name} non-coherent: {e}"));
        assert_eq!(coherent.exit_code, good_exit, "{name}: coherent exit");
        assert!(
            coherent.output_sorted().iter().any(|l| l == good_line),
            "{name}: coherent output missing {good_line:?}: {:?}",
            coherent.output_sorted()
        );
        assert_eq!(wb.exit_code, bad_exit, "{name}: non-coherent exit");
        assert!(
            wb.output_sorted().iter().any(|l| l == bad_line),
            "{name}: non-coherent output missing {bad_line:?}: {:?}",
            wb.output_sorted()
        );
        assert_ne!(
            (coherent.exit_code, coherent.output_sorted()),
            (wb.exit_code, wb.output_sorted()),
            "{name}: losing coherence should be observable"
        );
    }
}

/// A two-model sweep of one benchmark through `experiment::sweep` shares
/// every compiled artifact: the model is execution-time-only state and
/// deliberately absent from the artifact-cache keys.
#[test]
fn multi_model_sweep_shares_artifacts() {
    let src: Arc<str> = read("example_4_1.c").into();
    let matrix = SweepMatrix::new(scc_sim::SccConfig::table_6_1())
        .workers(2)
        .point(
            "example_4_1/coherent",
            Arc::clone(&src),
            SweepTask::Run(Scenario::new(Mode::RcceHsm).exec_model(ExecModel::Coherent)),
            3,
        )
        .point(
            "example_4_1/non_coherent_wb",
            src,
            SweepTask::Run(
                Scenario::new(Mode::RcceHsm).exec_model(ExecModel::NonCoherentWriteBack),
            ),
            3,
        );
    let report = sweep(&matrix);
    for outcome in &report.outcomes {
        assert!(
            outcome.result.is_ok(),
            "{}: {:?}",
            outcome.name,
            outcome.result.as_ref().err()
        );
    }
    let c = report.cache;
    assert!(
        c.total_hits() > 0,
        "multi-model sweep should reuse artifacts: {c:?}"
    );
    assert_eq!(c.translate.misses, 1, "one translation for both models");
    assert_eq!(c.compile.misses, 1, "one compile for both models: {c:?}");
    assert_eq!(c.compile.hits, 1, "second model reuses the binary: {c:?}");
}
