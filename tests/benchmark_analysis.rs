//! Integration test: the analysis stages identify exactly the expected
//! shared superset for each of the six evaluation benchmarks — "a
//! conservative yet tight superset of shared data" (the paper's first
//! contribution), checked against what each benchmark actually shares.

use hsm_analysis::ProgramAnalysis;
use hsm_workloads::{source, Bench, Params};

fn shared_set(bench: Bench) -> Vec<String> {
    let p = Params {
        threads: 8,
        size: 64,
        reps: 4,
    };
    let src = source(bench, &p);
    let tu = hsm_cir::parse(&src).expect("benchmark parses");
    let analysis = ProgramAnalysis::analyze(&tu);
    analysis
        .shared_variables()
        .iter()
        .map(|v| v.key.name.clone())
        .collect()
}

#[test]
fn count_primes_shares_only_the_counts() {
    assert_eq!(shared_set(Bench::CountPrimes), vec!["counts"]);
}

#[test]
fn pi_shares_only_the_partials() {
    assert_eq!(shared_set(Bench::PiApprox), vec!["partial"]);
}

#[test]
fn sum35_shares_only_the_partials() {
    assert_eq!(shared_set(Bench::Sum35), vec!["partial"]);
}

#[test]
fn dot_shares_vectors_and_partials() {
    assert_eq!(shared_set(Bench::DotProduct), vec!["a", "b", "partial"]);
}

#[test]
fn lu_shares_matrices_and_checksums() {
    assert_eq!(shared_set(Bench::LuDecomp), vec!["mats", "checks"]);
}

#[test]
fn stream_shares_the_three_arrays() {
    assert_eq!(shared_set(Bench::Stream), vec!["a", "b", "c"]);
}

/// The superset is *tight*: no benchmark drags locals or bookkeeping
/// variables (loop counters, thread handles) into shared memory.
#[test]
fn no_bookkeeping_variables_leak_into_shared_memory() {
    for bench in Bench::all() {
        let shared = shared_set(bench);
        for forbidden in ["t", "i", "j", "threads", "t0", "t1", "id", "lo", "hi"] {
            assert!(
                !shared.iter().any(|s| s == forbidden),
                "{bench}: `{forbidden}` wrongly classified shared: {shared:?}"
            );
        }
    }
}

/// Every shared variable is a global in these benchmarks (no escaping
/// locals like Example 4.1's `tmp`), and all are thread-accessed.
#[test]
fn shared_variables_are_thread_accessed_globals() {
    for bench in Bench::all() {
        let p = Params {
            threads: 4,
            size: 32,
            reps: 4,
        };
        let src = source(bench, &p);
        let tu = hsm_cir::parse(&src).expect("parses");
        let analysis = ProgramAnalysis::analyze(&tu);
        for v in analysis.shared_variables() {
            assert!(v.is_global, "{bench}: {} is not global", v.key.name);
            assert!(
                v.used_in.contains(&"tf".to_string()) || v.defined_in.contains(&"tf".to_string()),
                "{bench}: shared {} never touched by the worker",
                v.key.name
            );
        }
    }
}
