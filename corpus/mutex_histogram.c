/* Threads classify numbers into a shared histogram under a mutex. */
#include <stdio.h>
#include <pthread.h>

pthread_mutex_t lock;
int histogram[4];

void *tf(void *tid) {
    int id = (int)tid;
    int i;
    for (i = id * 25; i < id * 25 + 25; i++) {
        int bucket = (i * 7) % 4;
        pthread_mutex_lock(&lock);
        histogram[bucket] = histogram[bucket] + 1;
        pthread_mutex_unlock(&lock);
    }
    pthread_exit(NULL);
}

int main() {
    pthread_t t[4];
    int i;
    pthread_mutex_init(&lock, NULL);
    for (i = 0; i < 4; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 4; i++) pthread_join(t[i], NULL);
    for (i = 0; i < 4; i++) printf("bucket %d: %d\n", i, histogram[i]);
    pthread_mutex_destroy(&lock);
    return histogram[0] + histogram[1] + histogram[2] + histogram[3];
}
