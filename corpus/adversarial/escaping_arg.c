/* ADVERSARIAL: a pointer to main's stack local escapes into a thread.
 *
 * Stage 3's points-to promotion only follows stores through pointers that
 * are themselves shared, so the address of `local` smuggled through
 * pthread_create's argument keeps its *private* classification — yet the
 * child thread dereferences it. The sharing-soundness oracle must flag
 * this as an unsoundness violation (a non-owner unit touching
 * private-classified data). The accesses themselves are ordered by the
 * create/join edges, so no data race is reported: the program is
 * race-free but still untranslatable.
 */
#include <stdio.h>
#include <pthread.h>

void *tf(void *arg) {
    int *p = (int *)arg;
    *p = *p + 41;
    return arg;
}

int main() {
    pthread_t t;
    int local = 1;
    pthread_create(&t, NULL, tf, (void *)&local);
    pthread_join(t, NULL);
    printf("local %d\n", local);
    return local;
}
