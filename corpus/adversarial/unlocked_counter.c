/* ADVERSARIAL: two threads increment a shared counter with no lock.
 *
 * Stage 2 correctly classifies `counter` as shared (so there is no
 * classification unsoundness), but the increments are read-modify-write
 * with no mutex and no ordering between the threads: a textbook data
 * race. The sharing-soundness oracle must flag it as such. main's final
 * read is ordered by the joins and is not part of the race.
 */
#include <stdio.h>
#include <pthread.h>

int counter;

void *tf(void *tid) {
    int i;
    for (i = 0; i < 100; i++) counter = counter + 1;
    return tid;
}

int main() {
    pthread_t t[2];
    int i;
    for (i = 0; i < 2; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 2; i++) pthread_join(t[i], NULL);
    printf("counter %d\n", counter);
    return counter;
}
