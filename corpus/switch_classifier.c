/* Per-thread switch-based classification into per-thread counters. */
#include <stdio.h>
#include <pthread.h>

int partial[2 * 3];

void *tf(void *tid) {
    int id = (int)tid;
    int i;
    for (i = id * 40; i < id * 40 + 40; i++) {
        switch (i % 6) {
            case 0:
            case 3:
                partial[id * 3 + 0]++;
                break;
            case 1:
                partial[id * 3 + 1]++;
                break;
            default:
                partial[id * 3 + 2]++;
        }
    }
    pthread_exit(NULL);
}

int main() {
    pthread_t t[2];
    int i;
    for (i = 0; i < 2; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 2; i++) pthread_join(t[i], NULL);
    int classes[3];
    for (i = 0; i < 3; i++) classes[i] = partial[i] + partial[3 + i];
    printf("classes %d %d %d\n", classes[0], classes[1], classes[2]);
    return classes[0] * 100 + classes[1] * 10 + classes[2];
}
