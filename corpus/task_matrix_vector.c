/* Row-parallel matrix-vector product, task-dataflow style: each task
 * declares the matrix rows and the vector as inputs and its result
 * slice as output, so the runtime can move exactly that data onto a
 * free core. The four tasks are independent and run in parallel. */
#include <stdio.h>

double matrix[16 * 16];
double vector[16];
double result[16];

void worker(int id) {
    int rows = 16 / 4;
    int r;
    int c;
    for (r = id * rows; r < (id + 1) * rows; r++) {
        double acc = 0.0;
        for (c = 0; c < 16; c++) {
            acc = acc + matrix[r * 16 + c] * vector[c];
        }
        result[r] = acc;
    }
}

int main() {
    int i;
    int rows = 16 / 4;
    for (i = 0; i < 16 * 16; i++) matrix[i] = (i % 5) * 0.5;
    for (i = 0; i < 16; i++) vector[i] = (i % 3) + 1.0;
    double t0 = wtime();
    for (i = 0; i < 4; i++) {
        task_spawn(worker, i,
                   &matrix[i * rows * 16], rows * 16 * 8,
                   &vector[0], 16 * 8,
                   &result[i * rows], rows * 8);
    }
    task_wait_all();
    double t1 = wtime();
    double check = 0.0;
    for (i = 0; i < 16; i++) check += result[i];
    printf("mv checksum %.2f\n", check);
    return (int)check;
}
