/* Dot product (Fig. 6.1): each thread multiplies and accumulates its
 * slice of a.b into a private partial, main reduces the partials. The
 * 32-way decomposition folds onto fewer cores, so one source sweeps the
 * whole 2-32 core axis — the held-out validation program for the
 * cycle predictor. */
#include <stdio.h>
#include <pthread.h>

double a[32 * 24];
double b[32 * 24];
double partial[32];

void *tf(void *tid) {
    int id = (int)tid;
    int n = 24;
    int i;
    double acc = 0.0;
    for (i = id * n; i < (id + 1) * n; i++) {
        acc = acc + a[i] * b[i];
    }
    partial[id] = acc;
    pthread_exit(NULL);
}

int main() {
    pthread_t t[32];
    int i;
    for (i = 0; i < 32 * 24; i++) {
        a[i] = (i % 4) * 0.5;
        b[i] = (i % 3) + 1.0;
    }
    double t0 = wtime();
    for (i = 0; i < 32; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 32; i++) pthread_join(t[i], NULL);
    double t1 = wtime();
    double check = 0.0;
    for (i = 0; i < 32; i++) check += partial[i];
    printf("dot %.2f\n", check);
    return (int)(check / 16.0);
}
