/* The mutex histogram as a task reduction: four counting tasks each
 * fill a private partial row (their declared output), and a combine
 * task whose input region covers every row folds them into the final
 * histogram. The mutex disappears — the dependence graph provides the
 * ordering the lock provided in the barrier-style version. */
#include <stdio.h>

int partial[4 * 4];
int histogram[4];

void count(int id) {
    int i;
    for (i = id * 25; i < id * 25 + 25; i++) {
        int bucket = (i * 7) % 4;
        partial[id * 4 + bucket] = partial[id * 4 + bucket] + 1;
    }
}

void combine(int unused) {
    int t;
    int b;
    for (t = 0; t < 4; t++) {
        for (b = 0; b < 4; b++) {
            histogram[b] = histogram[b] + partial[t * 4 + b];
        }
    }
}

int main() {
    int i;
    for (i = 0; i < 4; i++) {
        task_spawn(count, i, 0, 0, 0, 0, &partial[i * 4], 4 * 4);
    }
    task_spawn(combine, 0, &partial[0], 16 * 4, 0, 0, &histogram[0], 4 * 4);
    task_wait_all();
    for (i = 0; i < 4; i++) printf("bucket %d: %d\n", i, histogram[i]);
    return histogram[0] + histogram[1] + histogram[2] + histogram[3];
}
