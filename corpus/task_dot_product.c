/* Dot product, task-dataflow style: each task declares its slice of
 * both input vectors and its partial-sum cell, so the runtime moves
 * exactly that data onto a free core. The 32 tasks are independent; the
 * task form of the predictor's held-out validation pair. */
#include <stdio.h>

double a[32 * 24];
double b[32 * 24];
double partial[32];

void worker(int id) {
    int n = 24;
    int i;
    double acc = 0.0;
    for (i = id * n; i < (id + 1) * n; i++) {
        acc = acc + a[i] * b[i];
    }
    partial[id] = acc;
}

int main() {
    int i;
    int n = 24;
    for (i = 0; i < 32 * 24; i++) {
        a[i] = (i % 4) * 0.5;
        b[i] = (i % 3) + 1.0;
    }
    double t0 = wtime();
    for (i = 0; i < 32; i++) {
        task_spawn(worker, i,
                   &a[i * n], n * 8,
                   &b[i * n], n * 8,
                   &partial[i], 8);
    }
    task_wait_all();
    double t1 = wtime();
    double check = 0.0;
    for (i = 0; i < 32; i++) check += partial[i];
    printf("dot %.2f\n", check);
    return (int)(check / 16.0);
}
