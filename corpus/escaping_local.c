/* A main-local escapes through a shared pointer (the `tmp` pattern of
   Table 4.2: points-to must classify it shared). */
#include <stdio.h>
#include <pthread.h>

double *shared_value;
double outputs[4];

void *tf(void *tid) {
    int id = (int)tid;
    outputs[id] = *shared_value * (id + 1);
    pthread_exit(NULL);
}

int main() {
    double seed = 2.5;
    shared_value = &seed;
    pthread_t t[4];
    int i;
    for (i = 0; i < 4; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 4; i++) {
        pthread_join(t[i], NULL);
        printf("out %d %.1f\n", i, outputs[i]);
    }
    return (int)(outputs[3] * 10.0);
}
