/* Row-parallel matrix-vector product. */
#include <stdio.h>
#include <pthread.h>

double matrix[16 * 16];
double vector[16];
double result[16];

void *tf(void *tid) {
    int id = (int)tid;
    int rows = 16 / 4;
    int r;
    int c;
    for (r = id * rows; r < (id + 1) * rows; r++) {
        double acc = 0.0;
        for (c = 0; c < 16; c++) {
            acc = acc + matrix[r * 16 + c] * vector[c];
        }
        result[r] = acc;
    }
    pthread_exit(NULL);
}

int main() {
    pthread_t t[4];
    int i;
    for (i = 0; i < 16 * 16; i++) matrix[i] = (i % 5) * 0.5;
    for (i = 0; i < 16; i++) vector[i] = (i % 3) + 1.0;
    double t0 = wtime();
    for (i = 0; i < 4; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 4; i++) pthread_join(t[i], NULL);
    double t1 = wtime();
    double check = 0.0;
    for (i = 0; i < 16; i++) check += result[i];
    printf("mv checksum %.2f\n", check);
    return (int)check;
}
