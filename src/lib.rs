//! # hsm-repro — reproduction of "Enabling Multi-threaded Applications on
//! Hybrid Shared Memory Manycore Architectures" (Rawat, DATE 2015)
//!
//! This umbrella crate re-exports the whole pipeline. Start with
//! [`pipeline`] ([`hsm_core`]) for the end-to-end flow, or the individual
//! layers:
//!
//! | crate | role |
//! |---|---|
//! | [`cir`] | C-subset frontend (the CETUS substitute) |
//! | [`analysis`] | Stages 1–3: scope, inter-thread, points-to |
//! | [`partition`] | Stage 4: on-/off-chip shared-data placement |
//! | [`translate`] | Stage 5: pthread → RCCE source-to-source |
//! | [`sccsim`] | the Intel SCC hardware model |
//! | [`rcce`] | the RCCE communication runtime |
//! | [`vm`] | C bytecode compiler + suspendable VM |
//! | [`exec`] | discrete-event execution (pthread & RCCE modes) |
//! | [`workloads`] | the six evaluation benchmarks |
//!
//! See `examples/quickstart.rs` and the `figures` binary in `crates/bench`.

#![warn(missing_docs)]

pub use hsm_analysis as analysis;
pub use hsm_cir as cir;
pub use hsm_core as pipeline;
pub use hsm_exec as exec;
pub use hsm_partition as partition;
pub use hsm_translate as translate;
pub use hsm_vm as vm;
pub use hsm_workloads as workloads;
pub use rcce_rt as rcce;
pub use scc_sim as sccsim;
