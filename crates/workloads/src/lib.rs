//! # hsm-workloads — the paper's benchmark suite as pthread C sources
//!
//! §5.2: "a set of common, albeit comparatively simple, parallel programs
//! have been written in Pthreads and converted to RCCE using the analytic
//! parser and translator utility". Three categories:
//!
//! * **linear algebra** — Dot Product, LU Decomposition;
//! * **approximation / number theory** — Pi Approximation, Count Primes,
//!   3-5-Sum;
//! * **memory operations** — Stream (add/copy/scale/triad, Algorithms
//!   13–16).
//!
//! Each generator emits a self-contained pthread program following the
//! paper's structure: globals for shared data, a worker that partitions by
//! thread id, `wtime()` timestamps just before launching threads and just
//! after the last join (§5.2's measurement protocol), and per-thread result
//! lines printed inside the join loop (as in Example Code 4.1) so the
//! translated program produces the same output multiset.
//!
//! LU Decomposition is realized as a *batch* of independent dense LU
//! factorizations whose combined footprint deliberately exceeds the MPB —
//! reproducing the paper's observation that "the matrix within that
//! program does not fit into the on-chip shared memory".
//!
//! [`reference_exit`] computes each benchmark's expected exit code with
//! the exact same operation order in Rust, so tests can check that both
//! execution modes compute correct results.

#![warn(missing_docs)]

use std::fmt;

/// The six benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bench {
    /// Count primes below a limit (Algorithm 11), block-partitioned — the
    /// inherent imbalance reproduces its sub-linear Figure 6.1 speedup.
    CountPrimes,
    /// Riemann-sum approximation of π (Algorithm 12).
    PiApprox,
    /// Sum of multiples of 3 and 5 below a limit.
    Sum35,
    /// Dot product of two large vectors.
    DotProduct,
    /// Batch LU decomposition (footprint exceeds the MPB).
    LuDecomp,
    /// The Stream memory benchmark: copy, scale, add, triad.
    Stream,
}

impl Bench {
    /// All benchmarks in the paper's Figure 6.1 order.
    pub fn all() -> [Bench; 6] {
        [
            Bench::PiApprox,
            Bench::Sum35,
            Bench::CountPrimes,
            Bench::Stream,
            Bench::DotProduct,
            Bench::LuDecomp,
        ]
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Bench::CountPrimes => "Count Primes",
            Bench::PiApprox => "Pi Approximation",
            Bench::Sum35 => "3-5-Sum",
            Bench::DotProduct => "Dot Product",
            Bench::LuDecomp => "LU Decomposition",
            Bench::Stream => "Stream",
        }
    }

    /// Default problem parameters for `threads` execution units, sized so
    /// the full evaluation grid simulates in seconds while preserving the
    /// paper's compute/memory balance per benchmark.
    pub fn default_params(self, threads: usize) -> Params {
        let (size, reps) = match self {
            Bench::CountPrimes => (6_000, 1),
            Bench::PiApprox => (400_000, 1),
            Bench::Sum35 => (1_000_000, 1),
            // Two 16K-double vectors (256 KB): thrash one core's L2 in
            // the baseline, fit the 384 KB MPB after conversion.
            Bench::DotProduct => (16_384, 3),
            // 64 matrices of 30x30 doubles = 460 KB: exceeds the MPB, as
            // the paper observes for LU.
            Bench::LuDecomp => (30, 64),
            // Three 12K-double arrays (288 KB): exceed the 256 KB L2, fit
            // the MPB.
            Bench::Stream => (12_288, 2),
        };
        Params {
            threads,
            size,
            reps,
        }
    }
}

impl fmt::Display for Bench {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Problem parameters for one benchmark instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Thread count (= core count after translation).
    pub threads: usize,
    /// Primary problem size (limit, steps, vector length, matrix order).
    pub size: usize,
    /// Repetitions (Stream kernels) or batch count (LU).
    pub reps: usize,
}

/// Generates the pthread C source for a benchmark instance.
pub fn source(bench: Bench, p: &Params) -> String {
    match bench {
        Bench::CountPrimes => count_primes_src(p),
        Bench::PiApprox => pi_src(p),
        Bench::Sum35 => sum35_src(p),
        Bench::DotProduct => dot_src(p),
        Bench::LuDecomp => lu_src(p),
        Bench::Stream => stream_src(p),
    }
}

// --------------------------------------------------------------- sources --

fn count_primes_src(p: &Params) -> String {
    let nt = p.threads;
    let limit = p.size;
    format!(
        r#"
#include <stdio.h>
#include <pthread.h>

int counts[{nt}];

void *tf(void *tid) {{
    int id = (int)tid;
    int chunk = ({limit} - 2) / {nt};
    int lo = 2 + id * chunk;
    int hi = lo + chunk;
    if (id == {nt} - 1) hi = {limit};
    int total = 0;
    int i;
    for (i = lo; i < hi; i++) {{
        int prime = 1;
        int j;
        for (j = 2; j < i; j++) {{
            if (i % j == 0) {{ prime = 0; break; }}
        }}
        total = total + prime;
    }}
    counts[id] = total;
    pthread_exit(NULL);
}}

int main() {{
    pthread_t threads[{nt}];
    int t;
    double t0 = wtime();
    for (t = 0; t < {nt}; t++) {{
        pthread_create(&threads[t], NULL, tf, (void *)t);
    }}
    for (t = 0; t < {nt}; t++) {{
        pthread_join(threads[t], NULL);
        printf("primes %d %d\n", t, counts[t]);
    }}
    double t1 = wtime();
    int total = 0;
    for (t = 0; t < {nt}; t++) total += counts[t];
    return total;
}}
"#
    )
}

fn pi_src(p: &Params) -> String {
    let nt = p.threads;
    let steps = p.size;
    format!(
        r#"
#include <stdio.h>
#include <pthread.h>

double partial[{nt}];

void *tf(void *tid) {{
    int id = (int)tid;
    int chunk = {steps} / {nt};
    int lo = id * chunk;
    int hi = lo + chunk;
    if (id == {nt} - 1) hi = {steps};
    double step = 1.0 / {steps};
    double sum = 0.0;
    int i;
    for (i = lo; i < hi; i++) {{
        double x = (i + 0.5) * step;
        sum = sum + 4.0 / (1.0 + x * x);
    }}
    partial[id] = sum;
    pthread_exit(NULL);
}}

int main() {{
    pthread_t threads[{nt}];
    int t;
    double t0 = wtime();
    for (t = 0; t < {nt}; t++) {{
        pthread_create(&threads[t], NULL, tf, (void *)t);
    }}
    for (t = 0; t < {nt}; t++) {{
        pthread_join(threads[t], NULL);
    }}
    double t1 = wtime();
    double pi = 0.0;
    for (t = 0; t < {nt}; t++) pi += partial[t];
    pi = pi / {steps};
    printf("pi %.6f\n", pi);
    return (int)(pi * 1000000.0);
}}
"#
    )
}

fn sum35_src(p: &Params) -> String {
    let nt = p.threads;
    let limit = p.size;
    format!(
        r#"
#include <stdio.h>
#include <pthread.h>

long partial[{nt}];

void *tf(void *tid) {{
    int id = (int)tid;
    long chunk = {limit} / {nt};
    long lo = id * chunk;
    long hi = lo + chunk;
    if (id == {nt} - 1) hi = {limit};
    long sum = 0;
    long i;
    for (i = lo; i < hi; i++) {{
        if (i % 3 == 0 || i % 5 == 0) sum = sum + i;
    }}
    partial[id] = sum;
    pthread_exit(NULL);
}}

int main() {{
    pthread_t threads[{nt}];
    int t;
    double t0 = wtime();
    for (t = 0; t < {nt}; t++) {{
        pthread_create(&threads[t], NULL, tf, (void *)t);
    }}
    for (t = 0; t < {nt}; t++) {{
        pthread_join(threads[t], NULL);
    }}
    double t1 = wtime();
    long total = 0;
    for (t = 0; t < {nt}; t++) total += partial[t];
    printf("sum35 %ld\n", total);
    return (int)(total % 1000000007);
}}
"#
    )
}

fn dot_src(p: &Params) -> String {
    let nt = p.threads;
    let n = p.size;
    let reps = p.reps;
    format!(
        r#"
#include <stdio.h>
#include <pthread.h>

double a[{n}];
double b[{n}];
double partial[{nt}];

void *tf(void *tid) {{
    int id = (int)tid;
    int chunk = {n} / {nt};
    int lo = id * chunk;
    int hi = lo + chunk;
    if (id == {nt} - 1) hi = {n};
    double sum = 0.0;
    int r;
    int i;
    for (r = 0; r < {reps}; r++) {{
        for (i = lo; i < hi; i++) {{
            sum = sum + a[i] * b[i];
        }}
    }}
    partial[id] = sum;
    pthread_exit(NULL);
}}

int main() {{
    pthread_t threads[{nt}];
    int t;
    int i;
    for (i = 0; i < {n}; i++) {{
        a[i] = (i % 10) * 0.5;
        b[i] = ((i + 3) % 7) * 0.25;
    }}
    double t0 = wtime();
    for (t = 0; t < {nt}; t++) {{
        pthread_create(&threads[t], NULL, tf, (void *)t);
    }}
    for (t = 0; t < {nt}; t++) {{
        pthread_join(threads[t], NULL);
    }}
    double t1 = wtime();
    double total = 0.0;
    for (t = 0; t < {nt}; t++) total += partial[t];
    printf("dot %.3f\n", total);
    return (int)(total / {reps});
}}
"#
    )
}

fn lu_src(p: &Params) -> String {
    let nt = p.threads;
    let n = p.size; // matrix order
    let batch = p.reps; // number of matrices
    let total = n * n * batch;
    format!(
        r#"
#include <stdio.h>
#include <pthread.h>

double mats[{total}];
double checks[{nt}];

void *tf(void *tid) {{
    int id = (int)tid;
    int per = {batch} / {nt};
    int lo = id * per;
    int hi = lo + per;
    if (id == {nt} - 1) hi = {batch};
    double check = 0.0;
    int m;
    for (m = lo; m < hi; m++) {{
        int base = m * {n} * {n};
        int k;
        for (k = 0; k < {n}; k++) {{
            int i;
            for (i = k + 1; i < {n}; i++) {{
                double factor = mats[base + i * {n} + k] / mats[base + k * {n} + k];
                mats[base + i * {n} + k] = factor;
                int j;
                for (j = k + 1; j < {n}; j++) {{
                    mats[base + i * {n} + j] = mats[base + i * {n} + j] - factor * mats[base + k * {n} + j];
                }}
            }}
        }}
        for (k = 0; k < {n}; k++) {{
            check = check + mats[base + k * {n} + k];
        }}
    }}
    checks[id] = check;
    pthread_exit(NULL);
}}

int main() {{
    pthread_t threads[{nt}];
    int t;
    int i;
    for (i = 0; i < {total}; i++) {{
        int row = (i / {n}) % {n};
        int col = i % {n};
        mats[i] = ((i % 13) + 1) * 0.125;
        if (row == col) mats[i] = mats[i] + {n};
    }}
    double t0 = wtime();
    for (t = 0; t < {nt}; t++) {{
        pthread_create(&threads[t], NULL, tf, (void *)t);
    }}
    for (t = 0; t < {nt}; t++) {{
        pthread_join(threads[t], NULL);
    }}
    double t1 = wtime();
    double total = 0.0;
    for (t = 0; t < {nt}; t++) total += checks[t];
    printf("lu %.3f\n", total);
    return (int)total;
}}
"#
    )
}

fn stream_src(p: &Params) -> String {
    let nt = p.threads;
    let n = p.size;
    let reps = p.reps;
    format!(
        r#"
#include <stdio.h>
#include <pthread.h>

double a[{n}];
double b[{n}];
double c[{n}];

void *tf(void *tid) {{
    int id = (int)tid;
    int chunk = {n} / {nt};
    int lo = id * chunk;
    int hi = lo + chunk;
    if (id == {nt} - 1) hi = {n};
    int r;
    int j;
    for (r = 0; r < {reps}; r++) {{
        for (j = lo; j < hi; j++) c[j] = a[j];
        for (j = lo; j < hi; j++) b[j] = 3.0 * c[j];
        for (j = lo; j < hi; j++) c[j] = a[j] + b[j];
        for (j = lo; j < hi; j++) a[j] = b[j] + 3.0 * c[j];
    }}
    pthread_exit(NULL);
}}

int main() {{
    pthread_t threads[{nt}];
    int t;
    int j;
    for (j = 0; j < {n}; j++) {{
        a[j] = 1.0;
        b[j] = 2.0;
        c[j] = 0.0;
    }}
    double t0 = wtime();
    for (t = 0; t < {nt}; t++) {{
        pthread_create(&threads[t], NULL, tf, (void *)t);
    }}
    for (t = 0; t < {nt}; t++) {{
        pthread_join(threads[t], NULL);
    }}
    double t1 = wtime();
    double check = 0.0;
    for (j = 0; j < {n}; j++) check += a[j];
    printf("stream %.1f\n", check);
    return (int)(check / {n});
}}
"#
    )
}

/// The four Stream kernels (Algorithms 13–16 of the paper's appendix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKernel {
    /// `c[j] = a[j]` (Algorithm 14).
    Copy,
    /// `b[j] = 3.0 * c[j]` (Algorithm 15).
    Scale,
    /// `c[j] = a[j] + b[j]` (Algorithm 13).
    Add,
    /// `a[j] = b[j] + 3.0 * c[j]` (Algorithm 16).
    Triad,
}

impl StreamKernel {
    /// All four kernels in STREAM's reporting order.
    pub fn all() -> [StreamKernel; 4] {
        [
            StreamKernel::Copy,
            StreamKernel::Scale,
            StreamKernel::Add,
            StreamKernel::Triad,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StreamKernel::Copy => "Copy",
            StreamKernel::Scale => "Scale",
            StreamKernel::Add => "Add",
            StreamKernel::Triad => "Triad",
        }
    }

    /// The kernel's loop body statement.
    fn body(self) -> &'static str {
        match self {
            StreamKernel::Copy => "c[j] = a[j];",
            StreamKernel::Scale => "b[j] = 3.0 * c[j];",
            StreamKernel::Add => "c[j] = a[j] + b[j];",
            StreamKernel::Triad => "a[j] = b[j] + 3.0 * c[j];",
        }
    }

    /// Bytes moved per element per iteration (STREAM's counting rule).
    pub fn bytes_per_elem(self) -> usize {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => 16,
            StreamKernel::Add | StreamKernel::Triad => 24,
        }
    }
}

/// Generates a pthread program that runs *one* Stream kernel, timed with
/// the §5.2 protocol — the per-kernel breakdown behind the Stream bar of
/// Figures 6.1/6.2.
pub fn stream_kernel_source(kernel: StreamKernel, p: &Params) -> String {
    let nt = p.threads;
    let n = p.size;
    let reps = p.reps;
    let body = kernel.body();
    format!(
        r#"
#include <stdio.h>
#include <pthread.h>

double a[{n}];
double b[{n}];
double c[{n}];

void *tf(void *tid) {{
    int id = (int)tid;
    int chunk = {n} / {nt};
    int lo = id * chunk;
    int hi = lo + chunk;
    if (id == {nt} - 1) hi = {n};
    int r;
    int j;
    for (r = 0; r < {reps}; r++) {{
        for (j = lo; j < hi; j++) {body}
    }}
    pthread_exit(NULL);
}}

int main() {{
    pthread_t threads[{nt}];
    int t;
    int j;
    for (j = 0; j < {n}; j++) {{
        a[j] = 1.0;
        b[j] = 2.0;
        c[j] = 0.5;
    }}
    double t0 = wtime();
    for (t = 0; t < {nt}; t++) {{
        pthread_create(&threads[t], NULL, tf, (void *)t);
    }}
    for (t = 0; t < {nt}; t++) {{
        pthread_join(threads[t], NULL);
    }}
    double t1 = wtime();
    double check = a[0] + b[0] + c[0];
    printf("kernel check %.3f\n", check);
    return (int)(check * 100.0);
}}
"#
    )
}

// -------------------------------------------------------- extensions --

/// Extension benchmark (not in the paper's six): 1-D Jacobi heat
/// diffusion with `pthread_barrier` synchronization *inside* the worker —
/// exercises the translator's barrier conversion and the simulator's
/// repeated chip-wide barriers, the pattern the paper's §7.3 "code
/// optimizations" future work would target.
pub fn jacobi_source(p: &Params) -> String {
    let nt = p.threads;
    let n = p.size;
    let iters = p.reps;
    format!(
        r#"
#include <stdio.h>
#include <pthread.h>

double ua[{n}];
double ub[{n}];
pthread_barrier_t step_barrier;

void *tf(void *tid) {{
    int id = (int)tid;
    int chunk = ({n} - 2) / {nt};
    int lo = 1 + id * chunk;
    int hi = lo + chunk;
    if (id == {nt} - 1) hi = {n} - 1;
    double *src = ua;
    double *dst = ub;
    int it;
    int j;
    for (it = 0; it < {iters}; it++) {{
        for (j = lo; j < hi; j++) {{
            dst[j] = 0.5 * src[j] + 0.25 * (src[j - 1] + src[j + 1]);
        }}
        pthread_barrier_wait(&step_barrier);
        double *tmp2 = src;
        src = dst;
        dst = tmp2;
    }}
    pthread_exit(NULL);
}}

int main() {{
    pthread_t threads[{nt}];
    int t;
    int j;
    pthread_barrier_init(&step_barrier, NULL, {nt});
    for (j = 0; j < {n}; j++) {{
        ua[j] = 0.0;
        ub[j] = 0.0;
    }}
    ua[0] = 100.0;
    ua[{n} - 1] = 100.0;
    ub[0] = 100.0;
    ub[{n} - 1] = 100.0;
    double t0 = wtime();
    for (t = 0; t < {nt}; t++) {{
        pthread_create(&threads[t], NULL, tf, (void *)t);
    }}
    for (t = 0; t < {nt}; t++) {{
        pthread_join(threads[t], NULL);
    }}
    double t1 = wtime();
    pthread_barrier_destroy(&step_barrier);
    double check = 0.0;
    if ({iters} % 2 == 0) {{
        for (j = 0; j < {n}; j++) check += ua[j];
    }} else {{
        for (j = 0; j < {n}; j++) check += ub[j];
    }}
    printf("jacobi %.3f\n", check);
    return (int)check;
}}
"#
    )
}

/// Rust reference for [`jacobi_source`], same operation order.
pub fn jacobi_reference_exit(p: &Params) -> i64 {
    let (n, iters) = (p.size, p.reps);
    let mut ua = vec![0.0f64; n];
    let mut ub = vec![0.0f64; n];
    ua[0] = 100.0;
    ua[n - 1] = 100.0;
    ub[0] = 100.0;
    ub[n - 1] = 100.0;
    for it in 0..iters {
        let (src, dst) = if it % 2 == 0 {
            (&mut ua, &mut ub)
        } else {
            (&mut ub, &mut ua)
        };
        for j in 1..n - 1 {
            dst[j] = 0.5 * src[j] + 0.25 * (src[j - 1] + src[j + 1]);
        }
    }
    let result = if iters % 2 == 0 { &ua } else { &ub };
    let check: f64 = result.iter().sum();
    check as i64
}

// -------------------------------------------------------------- reference --

/// Computes the benchmark's expected exit code with the exact operation
/// order of the generated C source (bitwise-identical floating point).
pub fn reference_exit(bench: Bench, p: &Params) -> i64 {
    match bench {
        Bench::CountPrimes => ref_count_primes(p),
        Bench::PiApprox => ref_pi(p),
        Bench::Sum35 => ref_sum35(p),
        Bench::DotProduct => ref_dot(p),
        Bench::LuDecomp => ref_lu(p),
        Bench::Stream => ref_stream(p),
    }
}

fn ref_count_primes(p: &Params) -> i64 {
    let (nt, limit) = (p.threads as i64, p.size as i64);
    let chunk = (limit - 2) / nt;
    let mut total = 0i64;
    for id in 0..nt {
        let lo = 2 + id * chunk;
        let hi = if id == nt - 1 { limit } else { lo + chunk };
        for i in lo..hi {
            let mut prime = 1;
            let mut j = 2i64;
            while j < i {
                if i % j == 0 {
                    prime = 0;
                    break;
                }
                j += 1;
            }
            total += prime;
        }
    }
    total
}

fn ref_pi(p: &Params) -> i64 {
    let (nt, steps) = (p.threads, p.size);
    let chunk = steps / nt;
    let step = 1.0 / steps as f64;
    let mut partial = vec![0.0f64; nt];
    for (id, slot) in partial.iter_mut().enumerate() {
        let lo = id * chunk;
        let hi = if id == nt - 1 { steps } else { lo + chunk };
        let mut sum = 0.0f64;
        for i in lo..hi {
            let x = (i as f64 + 0.5) * step;
            sum += 4.0 / (1.0 + x * x);
        }
        *slot = sum;
    }
    let mut pi = 0.0f64;
    for v in &partial {
        pi += v;
    }
    pi /= steps as f64;
    (pi * 1_000_000.0) as i64
}

fn ref_sum35(p: &Params) -> i64 {
    let (nt, limit) = (p.threads as i64, p.size as i64);
    let chunk = limit / nt;
    let mut total = 0i64;
    for id in 0..nt {
        let lo = id * chunk;
        let hi = if id == nt - 1 { limit } else { lo + chunk };
        for i in lo..hi {
            if i % 3 == 0 || i % 5 == 0 {
                total += i;
            }
        }
    }
    total % 1_000_000_007
}

fn ref_dot(p: &Params) -> i64 {
    let (nt, n, reps) = (p.threads, p.size, p.reps);
    let a: Vec<f64> = (0..n).map(|i| (i % 10) as f64 * 0.5).collect();
    let b: Vec<f64> = (0..n).map(|i| ((i + 3) % 7) as f64 * 0.25).collect();
    let chunk = n / nt;
    let mut total = 0.0f64;
    for id in 0..nt {
        let lo = id * chunk;
        let hi = if id == nt - 1 { n } else { lo + chunk };
        let mut sum = 0.0f64;
        for _ in 0..reps {
            for i in lo..hi {
                sum += a[i] * b[i];
            }
        }
        total += sum;
    }
    (total / reps as f64) as i64
}

fn ref_lu(p: &Params) -> i64 {
    let (nt, n, batch) = (p.threads, p.size, p.reps);
    let total_elems = n * n * batch;
    let mut mats: Vec<f64> = (0..total_elems)
        .map(|i| {
            let row = (i / n) % n;
            let col = i % n;
            let mut v = ((i % 13) + 1) as f64 * 0.125;
            if row == col {
                v += n as f64;
            }
            v
        })
        .collect();
    let per = batch / nt;
    let mut total = 0.0f64;
    for id in 0..nt {
        let lo = id * per;
        let hi = if id == nt - 1 { batch } else { lo + per };
        let mut check = 0.0f64;
        for m in lo..hi {
            let base = m * n * n;
            for k in 0..n {
                for i in k + 1..n {
                    let factor = mats[base + i * n + k] / mats[base + k * n + k];
                    mats[base + i * n + k] = factor;
                    for j in k + 1..n {
                        mats[base + i * n + j] -= factor * mats[base + k * n + j];
                    }
                }
            }
            for k in 0..n {
                check += mats[base + k * n + k];
            }
        }
        total += check;
    }
    total as i64
}

#[allow(clippy::manual_memcpy)] // mirrors the C kernel's loop exactly
fn ref_stream(p: &Params) -> i64 {
    let (nt, n, reps) = (p.threads, p.size, p.reps);
    let mut a = vec![1.0f64; n];
    let mut b = vec![2.0f64; n];
    let mut c = vec![0.0f64; n];
    // Kernels are element-wise within disjoint slices: thread order does
    // not matter, so compute globally per repetition the way every thread
    // does for its slice.
    let chunk = n / nt;
    for id in 0..nt {
        let lo = id * chunk;
        let hi = if id == nt - 1 { n } else { lo + chunk };
        for _ in 0..reps {
            for j in lo..hi {
                c[j] = a[j];
            }
            for j in lo..hi {
                b[j] = 3.0 * c[j];
            }
            for j in lo..hi {
                c[j] = a[j] + b[j];
            }
            for j in lo..hi {
                a[j] = b[j] + 3.0 * c[j];
            }
        }
    }
    let mut check = 0.0f64;
    for v in &a {
        check += v;
    }
    (check / n as f64) as i64
}

/// Total shared-data footprint in bytes of a benchmark instance (the
/// partitioner's view: globals identified as shared).
pub fn shared_footprint(bench: Bench, p: &Params) -> usize {
    match bench {
        Bench::CountPrimes => p.threads * 4,
        Bench::PiApprox => p.threads * 8,
        Bench::Sum35 => p.threads * 8,
        Bench::DotProduct => 2 * p.size * 8 + p.threads * 8,
        Bench::LuDecomp => p.size * p.size * p.reps * 8 + p.threads * 8,
        Bench::Stream => 3 * p.size * 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(bench: Bench) -> Params {
        let mut p = bench.default_params(4);
        p.size = match bench {
            Bench::CountPrimes => 500,
            Bench::PiApprox => 1000,
            Bench::Sum35 => 2000,
            Bench::DotProduct => 64,
            Bench::LuDecomp => 6,
            Bench::Stream => 64,
        };
        if bench == Bench::LuDecomp {
            p.reps = 8;
        }
        p
    }

    #[test]
    fn all_sources_parse() {
        for bench in Bench::all() {
            let p = small(bench);
            let src = source(bench, &p);
            hsm_cir::parse(&src).unwrap_or_else(|e| panic!("{bench}: {e}\n{src}"));
        }
    }

    #[test]
    fn sources_use_the_timing_protocol() {
        for bench in Bench::all() {
            let src = source(bench, &small(bench));
            assert!(src.contains("wtime()"), "{bench} lacks timestamps");
            assert!(src.contains("pthread_create"), "{bench}");
            assert!(src.contains("pthread_join"), "{bench}");
        }
    }

    #[test]
    fn reference_primes_matches_known_value() {
        // π(100) = 25 primes below 100.
        let p = Params {
            threads: 1,
            size: 100,
            reps: 1,
        };
        assert_eq!(ref_count_primes(&p), 25);
        // Partitioning must not change the count.
        let p4 = Params {
            threads: 4,
            size: 100,
            reps: 1,
        };
        assert_eq!(ref_count_primes(&p4), 25);
    }

    #[test]
    fn reference_pi_approaches_pi() {
        let p = Params {
            threads: 8,
            size: 100_000,
            reps: 1,
        };
        let v = ref_pi(&p);
        assert!((v - 3_141_592).abs() <= 2, "{v}");
    }

    #[test]
    fn reference_sum35_matches_euler() {
        // Project Euler #1: sum of multiples of 3 or 5 below 1000 = 233168.
        let p = Params {
            threads: 3,
            size: 1000,
            reps: 1,
        };
        assert_eq!(ref_sum35(&p), 233_168);
    }

    #[test]
    fn reference_dot_is_partition_invariant() {
        let p1 = Params {
            threads: 1,
            size: 64,
            reps: 2,
        };
        let p4 = Params {
            threads: 4,
            size: 64,
            reps: 2,
        };
        assert_eq!(ref_dot(&p1), ref_dot(&p4));
    }

    #[test]
    fn reference_lu_diagonal_is_stable() {
        let p = Params {
            threads: 2,
            size: 6,
            reps: 8,
        };
        let v = ref_lu(&p);
        // Diagonally dominant matrices: all pivots positive, so the
        // diagonal checksum is positive and partition-invariant.
        assert!(v > 0);
        let p1 = Params { threads: 1, ..p };
        assert_eq!(ref_lu(&p1), v);
    }

    #[test]
    fn reference_stream_checksum() {
        // One rep from a=1,b=2,c=0: c=a=1; b=3; c=a+b=4; a=b+3c=15.
        let p = Params {
            threads: 2,
            size: 64,
            reps: 1,
        };
        assert_eq!(ref_stream(&p), 15);
    }

    #[test]
    fn lu_default_exceeds_mpb_but_stream_fits() {
        let mpb = 48 * 8192;
        let lu = Bench::LuDecomp.default_params(32);
        assert!(
            shared_footprint(Bench::LuDecomp, &lu) > mpb,
            "LU must not fit the 384 KB MPB"
        );
        let st = Bench::Stream.default_params(32);
        assert!(
            shared_footprint(Bench::Stream, &st) <= mpb,
            "Stream must fit the 384 KB MPB"
        );
        let dot = Bench::DotProduct.default_params(32);
        assert!(shared_footprint(Bench::DotProduct, &dot) <= mpb);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Bench::PiApprox.name(), "Pi Approximation");
        assert_eq!(Bench::all().len(), 6);
        assert_eq!(Bench::Sum35.to_string(), "3-5-Sum");
    }

    #[test]
    fn stream_kernel_sources_parse_and_differ() {
        let p = Params {
            threads: 4,
            size: 64,
            reps: 1,
        };
        let mut bodies = std::collections::HashSet::new();
        for k in StreamKernel::all() {
            let src = stream_kernel_source(k, &p);
            hsm_cir::parse(&src).unwrap_or_else(|e| panic!("{}: {e}", k.name()));
            assert!(bodies.insert(src), "{} duplicated another kernel", k.name());
        }
    }

    #[test]
    fn stream_kernel_byte_counts_follow_stream_convention() {
        assert_eq!(StreamKernel::Copy.bytes_per_elem(), 16);
        assert_eq!(StreamKernel::Scale.bytes_per_elem(), 16);
        assert_eq!(StreamKernel::Add.bytes_per_elem(), 24);
        assert_eq!(StreamKernel::Triad.bytes_per_elem(), 24);
    }

    #[test]
    fn jacobi_source_parses_and_reference_converges() {
        let p = Params {
            threads: 4,
            size: 64,
            reps: 10,
        };
        hsm_cir::parse(&jacobi_source(&p)).expect("jacobi parses");
        // Heat flows inward from the 100-degree boundaries: the checksum
        // grows with iterations and stays below the all-hot bound.
        let short = jacobi_reference_exit(&Params { reps: 2, ..p });
        let long = jacobi_reference_exit(&Params { reps: 20, ..p });
        assert!(long > short, "{long} vs {short}");
        assert!(long < 64 * 100);
    }
}
