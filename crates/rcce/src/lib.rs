//! # rcce-rt — an RCCE-style communication runtime over the simulated SCC
//!
//! RCCE is "the C-based, low-level communication library purpose-built for
//! the SCC architecture" (§5 of the paper). This crate reproduces the
//! pieces the translated programs rely on, targeting `scc-sim` instead of
//! silicon:
//!
//! * unit-of-execution (UE) management — `RCCE_ue` / `RCCE_num_ues`;
//! * `RCCE_shmalloc` — off-chip shared memory allocation;
//! * `RCCE_malloc` — on-chip MPB allocation (linear addresses, ownership
//!   blocked across participants for locality);
//! * barriers with the O(n) flag-gather cost of the real library;
//! * one-sided `put`/`get` cost modelling (core ↔ MPB transfers);
//! * test-and-set locks (`RCCE_acquire_lock` / `RCCE_release_lock`);
//! * `RCCE_wtime` — simulated wall-clock time.
//!
//! ```
//! use rcce_rt::RcceRuntime;
//! use scc_sim::{MemorySystem, SccConfig};
//!
//! let mut chip = MemorySystem::new(SccConfig::table_6_1());
//! let mut rt = RcceRuntime::new(32, &chip.config);
//! let shared = rt.shmalloc(1024).expect("DRAM is big");
//! assert!(scc_sim::MemorySystem::region_of(shared) == scc_sim::Region::SharedDram);
//! let on_chip = rt.mpb_malloc(&mut chip, 1024).expect("fits in MPB");
//! assert!(scc_sim::MemorySystem::region_of(on_chip) == scc_sim::Region::Mpb);
//! ```

#![warn(missing_docs)]

use scc_sim::memory::{MPB_BASE, SHARED_DRAM_BASE};
use scc_sim::{MemorySystem, SccConfig};
use std::fmt;

/// An allocation failure from one of the RCCE allocators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocError {
    /// Requested size in bytes.
    pub requested: usize,
    /// Which allocator refused.
    pub kind: AllocKind,
}

/// Which memory an allocation targeted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocKind {
    /// Off-chip shared DRAM (`RCCE_shmalloc`).
    SharedDram,
    /// On-chip MPB (`RCCE_malloc`).
    Mpb,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let which = match self.kind {
            AllocKind::SharedDram => "shared DRAM",
            AllocKind::Mpb => "MPB",
        };
        write!(f, "{which} allocation of {} bytes failed", self.requested)
    }
}

impl std::error::Error for AllocError {}

/// Per-run RCCE state shared by all UEs (the library's global tables).
#[derive(Debug, Clone)]
pub struct RcceRuntime {
    num_ues: usize,
    core_freq_hz: f64,
    sh_brk: u64,
    sh_limit: u64,
    /// (address, bytes) of every shared allocation, for diagnostics.
    allocations: Vec<(u64, usize)>,
}

impl RcceRuntime {
    /// Initializes the runtime for `num_ues` units of execution
    /// (`RCCE_init`); UE *i* runs on core *i*.
    pub fn new(num_ues: usize, config: &SccConfig) -> Self {
        RcceRuntime {
            num_ues,
            core_freq_hz: f64::from(config.core_freq_mhz) * 1e6,
            sh_brk: SHARED_DRAM_BASE,
            sh_limit: MPB_BASE,
            allocations: Vec::new(),
        }
    }

    /// `RCCE_num_ues()`.
    pub fn num_ues(&self) -> usize {
        self.num_ues
    }

    /// `RCCE_ue()` for a given core (identity mapping: UE i ↔ core i).
    pub fn ue_of_core(&self, core: usize) -> usize {
        core
    }

    /// `RCCE_shmalloc(bytes)`: carves an uncacheable off-chip shared
    /// region. Returns the address.
    ///
    /// # Errors
    ///
    /// Fails when the shared window is exhausted.
    pub fn shmalloc(&mut self, bytes: usize) -> Result<u64, AllocError> {
        let aligned = ((bytes + 31) & !31) as u64;
        if self.sh_brk + aligned > self.sh_limit {
            return Err(AllocError {
                requested: bytes,
                kind: AllocKind::SharedDram,
            });
        }
        let addr = self.sh_brk;
        self.sh_brk += aligned;
        self.allocations.push((addr, bytes));
        Ok(addr)
    }

    /// `RCCE_malloc(bytes)`: allocates linearly-addressed MPB space whose
    /// *ownership* is blocked across the participating UEs (participant
    /// `i`'s chunk lives in its own slice). Returns the address.
    ///
    /// # Errors
    ///
    /// Fails when the chip's 384 KB MPB is exhausted.
    pub fn mpb_malloc(&mut self, chip: &mut MemorySystem, bytes: usize) -> Result<u64, AllocError> {
        // Capacity spans the whole 384 KB MPB; ownership blocks across
        // the participating UEs so each core's partition chunk is local.
        match chip.mpb.alloc_shared(self.num_ues, bytes) {
            Some(linear) => {
                let addr = MPB_BASE + linear as u64;
                self.allocations.push((addr, bytes));
                Ok(addr)
            }
            None => Err(AllocError {
                requested: bytes,
                kind: AllocKind::Mpb,
            }),
        }
    }

    /// All shared allocations so far (address, bytes).
    pub fn allocations(&self) -> &[(u64, usize)] {
        &self.allocations
    }

    /// `RCCE_wtime()` — seconds of simulated time at `cycles` core cycles.
    pub fn wtime(&self, cycles: u64) -> f64 {
        cycles as f64 / self.core_freq_hz
    }

    /// The cost in core cycles of one `RCCE_barrier(&RCCE_COMM_WORLD)`
    /// *after* the last participant arrives.
    ///
    /// The real implementation gathers one flag per UE through the MPB and
    /// broadcasts a release: O(n) MPB round trips at the master.
    pub fn barrier_cost(&self, chip: &MemorySystem) -> u64 {
        let per_flag = chip.config.mpb_access_cycles + chip.config.hop_cycles * 4;
        self.num_ues as u64 * per_flag
    }

    /// The cost in core cycles for UE `from` to move `bytes` to/from the
    /// MPB slice of `to` (the `RCCE_put`/`RCCE_get` primitives). Transfers
    /// move one 32-byte line per round trip, pipelined after the first.
    pub fn put_get_cost(&self, chip: &MemorySystem, from: usize, to: usize, bytes: usize) -> u64 {
        let lines = bytes.div_ceil(32).max(1) as u64;
        let trip = chip.mesh.mpb_round_trip(from, to) + chip.config.mpb_access_cycles;
        trip + (lines - 1) * 8 + lines
    }

    /// `RCCE_acquire_lock(id)`: blocks (in simulated time) until the
    /// test-and-set register `id` is won. Returns the acquisition time.
    pub fn acquire_lock(&self, chip: &mut MemorySystem, id: usize, core: usize, at: u64) -> u64 {
        let mesh = chip.mesh.clone();
        chip.tas.acquire(&mesh, id, core, at)
    }

    /// `RCCE_release_lock(id)` at time `at`. Returns the release time.
    pub fn release_lock(&self, chip: &mut MemorySystem, id: usize, core: usize, at: u64) -> u64 {
        let mesh = chip.mesh.clone();
        chip.tas.release(&mesh, id, core, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sim::Region;

    fn fixture(ues: usize) -> (RcceRuntime, MemorySystem) {
        let chip = MemorySystem::new(SccConfig::table_6_1());
        let rt = RcceRuntime::new(ues, &chip.config);
        (rt, chip)
    }

    #[test]
    fn shmalloc_returns_shared_region_addresses() {
        let (mut rt, _) = fixture(32);
        let a = rt.shmalloc(100).unwrap();
        let b = rt.shmalloc(100).unwrap();
        assert_eq!(MemorySystem::region_of(a), Region::SharedDram);
        assert_eq!(b - a, 128, "line-aligned bump");
        assert_eq!(rt.allocations().len(), 2);
    }

    #[test]
    fn shmalloc_exhaustion_errors() {
        let (mut rt, _) = fixture(32);
        let err = rt.shmalloc(2 * 1024 * 1024 * 1024).unwrap_err();
        assert_eq!(err.kind, AllocKind::SharedDram);
        assert!(err.to_string().contains("shared DRAM"));
    }

    #[test]
    fn mpb_malloc_returns_mpb_addresses() {
        let (mut rt, mut chip) = fixture(32);
        let a = rt.mpb_malloc(&mut chip, 4096).unwrap();
        assert_eq!(MemorySystem::region_of(a), Region::Mpb);
    }

    #[test]
    fn mpb_malloc_respects_capacity() {
        let (mut rt, mut chip) = fixture(32);
        // 32 UEs × 8 KB = 256 KB of stripeable space.
        assert!(rt.mpb_malloc(&mut chip, 200 * 1024).is_ok());
        let err = rt.mpb_malloc(&mut chip, 200 * 1024).unwrap_err();
        assert_eq!(err.kind, AllocKind::Mpb);
    }

    #[test]
    fn ue_is_identity() {
        let (rt, _) = fixture(8);
        assert_eq!(rt.ue_of_core(5), 5);
        assert_eq!(rt.num_ues(), 8);
    }

    #[test]
    fn wtime_converts_cycles_to_seconds() {
        let (rt, _) = fixture(1);
        // 800 MHz: 800M cycles = 1 s.
        assert!((rt.wtime(800_000_000) - 1.0).abs() < 1e-12);
        assert_eq!(rt.wtime(0), 0.0);
    }

    #[test]
    fn barrier_cost_scales_with_ues() {
        let (rt8, chip) = fixture(8);
        let (rt32, _) = fixture(32);
        assert!(rt32.barrier_cost(&chip) > rt8.barrier_cost(&chip));
    }

    #[test]
    fn put_get_cost_scales_with_bytes_and_distance() {
        let (rt, chip) = fixture(32);
        let small_near = rt.put_get_cost(&chip, 0, 1, 32);
        let big_near = rt.put_get_cost(&chip, 0, 1, 4096);
        let small_far = rt.put_get_cost(&chip, 0, 47, 32);
        assert!(big_near > small_near);
        assert!(small_far > small_near);
    }

    #[test]
    fn locks_serialize_in_time() {
        let (rt, mut chip) = fixture(4);
        let t0 = rt.acquire_lock(&mut chip, 0, 0, 0);
        let rel = rt.release_lock(&mut chip, 0, 0, t0 + 100);
        let t1 = rt.acquire_lock(&mut chip, 0, 1, 0);
        assert!(t1 >= rel);
    }
}
