//! A shrink-free property runner.
//!
//! Each case runs with a [`SplitMix64`] derived deterministically from a
//! base seed and the case index, so the whole suite is reproducible by
//! construction. On failure the runner reports the property name, the
//! case index and the exact case seed; the fix workflow is to pin that
//! seed in a **named regression test** (see the ported
//! `proptest_*`-suites for examples) — no shrinking needed, because the
//! generators here are written to produce small inputs by default.
//!
//! Environment knobs:
//!
//! * `TESTKIT_SEED` — overrides the base seed (default
//!   [`DEFAULT_BASE_SEED`]);
//! * `TESTKIT_CASES` — overrides every property's case count (useful for
//!   a deep overnight run: `TESTKIT_CASES=10000 cargo test`).

use crate::rng::SplitMix64;

/// The fixed base seed: hex of "HSMREPRO" truncated — arbitrary, but
/// stable so that CI failures reproduce locally with no extra flags.
pub const DEFAULT_BASE_SEED: u64 = 0x4853_4D52_4550_524F;

/// Resolves the requested case count against the `TESTKIT_CASES`
/// override.
pub fn default_cases(requested: u32) -> u32 {
    match std::env::var("TESTKIT_CASES") {
        Ok(v) => v.parse().unwrap_or(requested),
        Err(_) => requested,
    }
}

fn base_seed() -> u64 {
    match std::env::var("TESTKIT_SEED") {
        Ok(v) => v.parse().unwrap_or(DEFAULT_BASE_SEED),
        Err(_) => DEFAULT_BASE_SEED,
    }
}

/// Derives the per-case seed. Public so a failing case can be replayed
/// verbatim inside a named regression test.
pub fn case_seed(base: u64, name: &str, case: u32) -> u64 {
    // Fold the property name into the seed so distinct properties explore
    // distinct parts of the space even at the same base seed.
    let mut h = base;
    for b in name.bytes() {
        h = h.wrapping_mul(0x100_0000_01B3).wrapping_add(u64::from(b));
    }
    SplitMix64::new(h.wrapping_add(u64::from(case))).next_u64()
}

/// Runs `cases` instances of property `body`, each with a fresh
/// deterministic generator. Panics (with the case seed in the message) on
/// the first failing case.
pub fn check(name: &str, cases: u32, mut body: impl FnMut(&mut SplitMix64)) {
    let base = base_seed();
    let cases = default_cases(cases);
    for case in 0..cases {
        let seed = case_seed(base, name, case);
        run_one(name, case, seed, &mut body);
    }
}

/// Replays a single case of a property from its reported seed — the
/// regression-pinning entry point.
pub fn check_seeded(name: &str, seed: u64, mut body: impl FnMut(&mut SplitMix64)) {
    run_one(name, 0, seed, &mut body);
}

fn run_one(name: &str, case: u32, seed: u64, body: &mut impl FnMut(&mut SplitMix64)) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut rng = SplitMix64::new(seed);
        body(&mut rng);
    }));
    if let Err(payload) = result {
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string panic>");
        panic!(
            "property '{name}' failed at case {case} (seed {seed:#018x}): {msg}\n\
             replay with testkit::check_seeded(\"{name}\", {seed:#018x}, ...)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut n = 0;
        check("counts_cases", 17, |_| n += 1);
        assert_eq!(n, 17);
    }

    #[test]
    fn failing_property_reports_seed() {
        let caught = std::panic::catch_unwind(|| {
            check("always_fails", 3, |_| panic!("boom"));
        });
        let err = caught.expect_err("must fail");
        let msg = err.downcast_ref::<String>().expect("string panic").clone();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("seed 0x"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn case_seeds_are_deterministic_and_distinct() {
        let a = case_seed(DEFAULT_BASE_SEED, "p", 0);
        let b = case_seed(DEFAULT_BASE_SEED, "p", 0);
        let c = case_seed(DEFAULT_BASE_SEED, "p", 1);
        let d = case_seed(DEFAULT_BASE_SEED, "q", 0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn seeded_replay_sees_same_stream() {
        let mut first = None;
        check_seeded("replay", 0xDEAD_BEEF, |rng| {
            first = Some(rng.next_u64());
        });
        let mut second = None;
        check_seeded("replay", 0xDEAD_BEEF, |rng| {
            second = Some(rng.next_u64());
        });
        assert_eq!(first, second);
    }
}
