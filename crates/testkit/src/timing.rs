//! Median-of-N wall-clock timing — the Criterion replacement.
//!
//! Deliberately simple: N timed runs, report the median (robust against
//! one-off scheduler hiccups), min and max. The `cargo bench` harnesses
//! print these and fold them into the JSON run manifest; there is no
//! statistical machinery because the simulator itself is deterministic —
//! wall-clock noise is the only variance.

use std::time::Instant;

/// Result of one [`time_median`] measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingReport {
    /// Label of the measured operation.
    pub name: String,
    /// Number of timed runs.
    pub runs: usize,
    /// Median wall time in nanoseconds.
    pub median_nanos: u128,
    /// Fastest run in nanoseconds.
    pub min_nanos: u128,
    /// Slowest run in nanoseconds.
    pub max_nanos: u128,
}

impl TimingReport {
    /// Median in milliseconds, for human-readable tables.
    pub fn median_ms(&self) -> f64 {
        self.median_nanos as f64 / 1e6
    }
}

impl std::fmt::Display for TimingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<32}{:>12.3} ms  (min {:.3}, max {:.3}, n={})",
            self.name,
            self.median_ms(),
            self.min_nanos as f64 / 1e6,
            self.max_nanos as f64 / 1e6,
            self.runs
        )
    }
}

/// Times `body` over `runs` executions (plus one untimed warm-up) and
/// returns the median/min/max wall times.
///
/// # Panics
///
/// Panics if `runs` is zero.
pub fn time_median(name: &str, runs: usize, mut body: impl FnMut()) -> TimingReport {
    assert!(runs > 0, "at least one run required");
    body(); // warm-up: first-touch allocation, lazy statics, icache
    let mut samples: Vec<u128> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            body();
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    TimingReport {
        name: name.to_string(),
        runs,
        median_nanos: samples[samples.len() / 2],
        min_nanos: samples[0],
        max_nanos: samples[samples.len() - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_within_min_max() {
        let r = time_median("spin", 5, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(r.min_nanos <= r.median_nanos);
        assert!(r.median_nanos <= r.max_nanos);
        assert_eq!(r.runs, 5);
    }

    #[test]
    fn warmup_plus_runs_executions() {
        let mut n = 0;
        let _ = time_median("count", 3, || n += 1);
        assert_eq!(n, 4, "one warm-up + three timed");
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_panics() {
        let _ = time_median("bad", 0, || {});
    }

    #[test]
    fn display_renders_label() {
        let r = time_median("label_here", 1, || {});
        assert!(r.to_string().contains("label_here"));
    }
}
