//! # testkit — hermetic, dependency-free test support
//!
//! The repository must build and test with **zero** external crates (the
//! CI environment has no network), so this crate supplies the three
//! capabilities the workspace previously pulled from crates.io:
//!
//! * [`SplitMix64`] — a tiny, deterministic PRNG (the `rand` replacement);
//! * [`check`] / [`check_seeded`] — a shrink-free property runner (the
//!   `proptest` replacement): every case derives from a reported seed, so
//!   a failure is reproduced by pinning that seed in a named regression
//!   test rather than by shrinking;
//! * [`time_median`] — a median-of-N timing loop (the `criterion`
//!   replacement) whose results feed the JSON run manifest.
//!
//! ```
//! use testkit::{check, SplitMix64};
//!
//! check("addition_commutes", 64, |rng| {
//!     let a = rng.gen_range_i64(-1000, 1000);
//!     let b = rng.gen_range_i64(-1000, 1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

#![warn(missing_docs)]

pub mod prop;
pub mod rng;
pub mod timing;

pub use prop::{check, check_seeded, default_cases};
pub use rng::SplitMix64;
pub use timing::{time_median, TimingReport};
