//! SplitMix64: the 64-bit finalizer-based PRNG of Steele, Lea & Flood
//! ("Fast splittable pseudorandom number generators", OOPSLA 2014).
//!
//! Chosen because it is seedable from a single `u64`, passes BigCrush,
//! needs no state beyond one word, and — crucially for a test harness —
//! is trivially reproducible across platforms and Rust versions.

/// A deterministic 64-bit PRNG with a one-word state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit value (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Splits off an independent generator (for nested structures whose
    /// size must not perturb the parent stream).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// Uniform `usize` in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as usize
    }

    /// Uniform `u64` in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `i64` in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add((self.next_u64() % span) as i64)
    }

    /// Uniform `i32` in `[lo, hi)`.
    pub fn gen_range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.gen_range_i64(i64::from(lo), i64::from(hi)) as i32
    }

    /// A coin flip.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.gen_f64() * (hi - lo)
    }

    /// One uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from an empty slice");
        &items[self.gen_range_usize(0, items.len())]
    }

    /// A random string of `len` characters drawn from `alphabet`.
    pub fn gen_string(&mut self, alphabet: &[char], len: usize) -> String {
        (0..len).map(|_| *self.choose(alphabet)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_vector() {
        // Reference values for seed 0 from the canonical SplitMix64 C
        // implementation; pins the algorithm against regressions.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.gen_range_i64(-50, 50);
            assert!((-50..50).contains(&v));
            let u = r.gen_range_usize(3, 9);
            assert!((3..9).contains(&u));
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_hits_both_values() {
        let mut r = SplitMix64::new(99);
        let trues = (0..1000).filter(|_| r.gen_bool()).count();
        assert!((300..700).contains(&trues), "heavily biased: {trues}");
    }

    #[test]
    fn choose_covers_slice() {
        let mut r = SplitMix64::new(5);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*r.choose(&items) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
