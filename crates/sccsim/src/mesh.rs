//! The on-die 2D mesh: tile coordinates, deterministic X-Y routing, and
//! core/tile/memory-controller geometry (Figure 5.1 of the paper).

use crate::config::SccConfig;

/// A tile coordinate on the mesh (column, row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tile {
    /// Column (0 = west edge).
    pub x: usize,
    /// Row (0 = south edge).
    pub y: usize,
}

impl Tile {
    /// Manhattan distance to `other` (the hop count of X-Y routing).
    pub fn hops_to(self, other: Tile) -> usize {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

/// Geometry helper for a configured mesh.
#[derive(Debug, Clone)]
pub struct Mesh {
    cols: usize,
    rows: usize,
    cores_per_tile: usize,
    hop_cycles: u64,
    /// Memory controller tile positions.
    mc_tiles: Vec<Tile>,
}

impl Mesh {
    /// Builds the mesh for `config`. The four memory controllers sit at the
    /// corners of the grid, as on the SCC die (tiles (0,0), (5,0), (0,3),
    /// (5,3)).
    pub fn new(config: &SccConfig) -> Self {
        let cols = config.mesh_cols;
        let rows = config.mesh_rows;
        let mc_tiles = match config.memory_controllers {
            1 => vec![Tile { x: 0, y: 0 }],
            2 => vec![
                Tile { x: 0, y: 0 },
                Tile {
                    x: cols - 1,
                    y: rows - 1,
                },
            ],
            4 => vec![
                Tile { x: 0, y: 0 },
                Tile { x: cols - 1, y: 0 },
                Tile { x: 0, y: rows - 1 },
                Tile {
                    x: cols - 1,
                    y: rows - 1,
                },
            ],
            n => (0..n)
                .map(|i| Tile {
                    x: (i * cols / n).min(cols - 1),
                    y: if i % 2 == 0 { 0 } else { rows - 1 },
                })
                .collect(),
        };
        Mesh {
            cols,
            rows,
            cores_per_tile: config.cores_per_tile(),
            hop_cycles: config.hop_cycles,
            mc_tiles,
        }
    }

    /// The tile hosting `core`.
    ///
    /// Cores are numbered row-major, two per tile: cores 0 and 1 share tile
    /// (0,0), cores 2 and 3 tile (1,0), and so on.
    pub fn tile_of(&self, core: usize) -> Tile {
        let tile_index = core / self.cores_per_tile;
        Tile {
            x: tile_index % self.cols,
            y: tile_index / self.cols,
        }
    }

    /// The memory controller serving `core` (nearest MC, ties broken by
    /// index — this matches the SCC's quadrant assignment for the default
    /// 4-MC layout).
    pub fn mc_of(&self, core: usize) -> usize {
        let tile = self.tile_of(core);
        self.mc_tiles
            .iter()
            .enumerate()
            .min_by_key(|(i, mc)| (tile.hops_to(**mc), *i))
            .map(|(i, _)| i)
            .expect("at least one memory controller")
    }

    /// Number of memory controllers.
    pub fn mc_count(&self) -> usize {
        self.mc_tiles.len()
    }

    /// Grid dimensions in tiles (columns, rows).
    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// One-way mesh latency in core cycles from `core` to `to` (X-Y route).
    pub fn latency(&self, from: Tile, to: Tile) -> u64 {
        from.hops_to(to) as u64 * self.hop_cycles
    }

    /// Round-trip core→MC→core latency in core cycles.
    pub fn mc_round_trip(&self, core: usize, mc: usize) -> u64 {
        let t = self.tile_of(core);
        2 * self.latency(t, self.mc_tiles[mc])
    }

    /// Round-trip latency from `core` to the MPB owned by `owner`.
    pub fn mpb_round_trip(&self, core: usize, owner: usize) -> u64 {
        let a = self.tile_of(core);
        let b = self.tile_of(owner);
        2 * self.latency(a, b)
    }

    /// Cores per quadrant served by each MC (for diagnostics: the paper's
    /// "at least 8 cores in contention per memory controller").
    pub fn cores_per_mc(&self, total_cores: usize) -> Vec<usize> {
        let mut counts = vec![0usize; self.mc_tiles.len()];
        for c in 0..total_cores {
            counts[self.mc_of(c)] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(&SccConfig::table_6_1())
    }

    #[test]
    fn tiles_are_row_major_two_cores_each() {
        let m = mesh();
        assert_eq!(m.tile_of(0), Tile { x: 0, y: 0 });
        assert_eq!(m.tile_of(1), Tile { x: 0, y: 0 });
        assert_eq!(m.tile_of(2), Tile { x: 1, y: 0 });
        assert_eq!(m.tile_of(12), Tile { x: 0, y: 1 });
        assert_eq!(m.tile_of(47), Tile { x: 5, y: 3 });
    }

    #[test]
    fn xy_hops_are_manhattan() {
        let a = Tile { x: 0, y: 0 };
        let b = Tile { x: 5, y: 3 };
        assert_eq!(a.hops_to(b), 8);
        assert_eq!(b.hops_to(a), 8);
        assert_eq!(a.hops_to(a), 0);
    }

    #[test]
    fn four_mcs_at_corners() {
        let m = mesh();
        assert_eq!(m.mc_count(), 4);
        // Core 0 (tile 0,0) is served by MC 0 at (0,0).
        assert_eq!(m.mc_of(0), 0);
        // Core 47 (tile 5,3) by the MC at (5,3).
        let mc47 = m.mc_of(47);
        assert_eq!(m.mc_round_trip(47, mc47), 0);
    }

    #[test]
    fn each_mc_serves_a_quadrant_of_twelve() {
        let m = mesh();
        let counts = m.cores_per_mc(48);
        assert_eq!(counts, vec![12, 12, 12, 12]);
        // With cores 0–31 active, 32/4 = 8 cores contend per MC on
        // average (the paper's Dot Product / LU observation); the lower
        // quadrants are even busier.
        let counts32 = m.cores_per_mc(32);
        assert_eq!(counts32.iter().sum::<usize>(), 32);
        assert!(counts32.iter().any(|&c| c >= 8), "{counts32:?}");
    }

    #[test]
    fn latency_scales_with_hops() {
        let m = mesh();
        // Core 0 at (0,0); MC 3 at (5,3): 8 hops, 2 cycles each, round trip.
        assert_eq!(m.mc_round_trip(0, 3), 32);
        assert_eq!(m.mc_round_trip(0, 0), 0);
    }

    #[test]
    fn mpb_round_trip_symmetry() {
        let m = mesh();
        for (a, b) in [(0usize, 47usize), (3, 21), (10, 11)] {
            assert_eq!(m.mpb_round_trip(a, b), m.mpb_round_trip(b, a));
        }
        // Same tile = free mesh-wise.
        assert_eq!(m.mpb_round_trip(0, 1), 0);
    }

    #[test]
    fn alternative_mc_counts() {
        let mut cfg = SccConfig::table_6_1();
        cfg.memory_controllers = 1;
        let m1 = Mesh::new(&cfg);
        assert_eq!(m1.mc_count(), 1);
        assert!(m1.cores_per_mc(48)[0] == 48);
        cfg.memory_controllers = 2;
        let m2 = Mesh::new(&cfg);
        assert_eq!(m2.mc_count(), 2);
        assert_eq!(m2.cores_per_mc(48).iter().sum::<usize>(), 48);
    }
}
