//! The chip-level memory system: address map, routing, and latency.
//!
//! Address space layout (32-bit, per the SCC's LUT-based mapping):
//!
//! | Range                     | Region          | Behaviour               |
//! |---------------------------|-----------------|-------------------------|
//! | `0x0000_0000–0x7FFF_FFFF` | private         | cacheable (L1+L2)       |
//! | `0x8000_0000–0xBFFF_FFFF` | shared DRAM     | **uncacheable**, via MC |
//! | `0xC000_0000–0xC005_FFFF` | MPB             | on-die SRAM             |
//!
//! Private pages are cacheable because each core is the only writer;
//! shared pages bypass the caches entirely (the hardware is non-coherent),
//! so every shared access pays the mesh + memory-controller cost — this
//! asymmetry is the entire premise of the paper's Figure 6.2.

use crate::cache::{CacheHierarchy, ServiceLevel};
use crate::config::SccConfig;
use crate::dram::DramBank;
use crate::mesh::Mesh;
use crate::mpb::Mpb;
use crate::stats::StatsMatrix;
use crate::tas::TasBank;

/// Base of the shared off-chip DRAM window.
pub const SHARED_DRAM_BASE: u64 = 0x8000_0000;
/// Base of the MPB window.
pub const MPB_BASE: u64 = 0xC000_0000;

/// Which region an address falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Per-core private, cacheable memory.
    Private,
    /// Shared, uncacheable off-chip DRAM.
    SharedDram,
    /// Shared on-chip SRAM (Message Passing Buffer).
    Mpb,
}

/// Aggregated access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Private accesses served by L1.
    pub l1_hits: u64,
    /// Private accesses served by L2.
    pub l2_hits: u64,
    /// Private accesses that reached DRAM.
    pub private_dram: u64,
    /// Shared DRAM accesses.
    pub shared_dram: u64,
    /// MPB accesses.
    pub mpb: u64,
    /// Total cycles spent waiting in MC queues.
    pub mc_queue_cycles: u64,
}

/// The full simulated memory system of one SCC chip.
#[derive(Debug)]
pub struct MemorySystem {
    /// Chip configuration.
    pub config: SccConfig,
    /// Mesh geometry.
    pub mesh: Mesh,
    /// Memory controllers.
    pub dram: DramBank,
    /// Message Passing Buffer.
    pub mpb: Mpb,
    /// Test-and-set registers.
    pub tas: TasBank,
    /// Per-core private hierarchies, built on first access: a 48-core
    /// chip carries ~10 MB of line metadata, but most runs touch a
    /// handful of cores, and an untouched cache is indistinguishable
    /// from a freshly built one.
    caches: Vec<Option<CacheHierarchy>>,
    stats: StatsMatrix,
}

impl MemorySystem {
    /// Builds the memory system for `config`.
    pub fn new(config: SccConfig) -> Self {
        let mesh = Mesh::new(&config);
        let dram = DramBank::new(config.memory_controllers, config.dram_occupancy_cycles);
        let mpb = Mpb::new(&config);
        let tas = TasBank::new(config.cores);
        let caches = (0..config.cores).map(|_| None).collect();
        MemorySystem {
            mesh,
            dram,
            mpb,
            tas,
            caches,
            stats: StatsMatrix::new(config.cores),
            config,
        }
    }

    /// Classifies an address.
    #[inline]
    pub fn region_of(addr: u64) -> Region {
        if addr >= MPB_BASE {
            Region::Mpb
        } else if addr >= SHARED_DRAM_BASE {
            Region::SharedDram
        } else {
            Region::Private
        }
    }

    /// Performs one access by `core` at simulated time `now`, returning
    /// the access latency in core cycles.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, addr: u64, write: bool, now: u64) -> u64 {
        let region = Self::region_of(addr);
        let latency = match region {
            Region::Private => {
                // Fold the core id into the private address so each core's
                // private pages are distinct cache contents.
                let (level, cache_cycles) = self.cache_of(core).access(addr, write);
                match level {
                    ServiceLevel::L1 => {
                        self.stats.per_core[core].l1_hits += 1;
                        cache_cycles
                    }
                    ServiceLevel::L2 => {
                        self.stats.per_core[core].l2_hits += 1;
                        cache_cycles
                    }
                    ServiceLevel::Memory { writeback } => {
                        self.stats.per_core[core].private_dram += 1;
                        let mc = self.mesh.mc_of(core);
                        let trip = self.mesh.mc_round_trip(core, mc);
                        let resp = self.dram.request(mc, now + trip / 2);
                        self.stats.per_core[core].mc_queue_cycles += resp.queued_for;
                        let mut lat =
                            cache_cycles + trip + resp.queued_for + self.config.dram_service_cycles;
                        if writeback {
                            // Dirty victim streams out asynchronously; it
                            // occupies the controller but does not stall
                            // the core beyond issue cost.
                            let _ = self.dram.request(mc, now + lat);
                            lat += 2;
                        }
                        lat
                    }
                }
            }
            Region::SharedDram => {
                let mc = self.mesh.mc_of(core);
                let trip = self.mesh.mc_round_trip(core, mc);
                let occ = self.config.shared_dram_occupancy_cycles;
                let resp = self.dram.request_with_occupancy(mc, now + trip / 2, occ);
                self.stats.per_core[core].mc_queue_cycles += resp.queued_for;
                if write {
                    // Posted write: the store enters the write-combining
                    // buffer and the core moves on; the controller still
                    // spends its occupancy (bandwidth is consumed), and
                    // back-pressure surfaces as queue wait.
                    self.config.posted_write_cycles + resp.queued_for
                } else {
                    trip + resp.queued_for
                        + self.config.dram_service_cycles
                        + self.config.shared_dram_overhead_cycles
                }
            }
            Region::Mpb => {
                let linear = (addr - MPB_BASE) as usize;
                let owner = self.mpb.owner_of(linear);
                let full = self.mpb.access(&self.mesh, core, owner);
                if write {
                    // MPB stores also drain through the write-combining
                    // buffer; the core pays only the hand-off.
                    full.min(self.config.posted_write_cycles)
                } else {
                    full
                }
            }
        };
        self.stats.record(core, region, write, latency);
        latency
    }

    /// Performs one access on a hypothetical *flat* machine: private
    /// addresses bypass the caches and pay the full mesh + memory
    /// controller cost on every access, exactly like shared DRAM. Shared
    /// and MPB addresses behave as in [`MemorySystem::access`].
    ///
    /// This is the timing backend of the sequentially-consistent reference
    /// model used for differential testing: with no caches there is no
    /// stale copy to observe, at the price of uniform DRAM latency.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access_flat(&mut self, core: usize, addr: u64, write: bool, now: u64) -> u64 {
        let region = Self::region_of(addr);
        if region != Region::Private {
            return self.access(core, addr, write, now);
        }
        self.stats.per_core[core].private_dram += 1;
        let mc = self.mesh.mc_of(core);
        let trip = self.mesh.mc_round_trip(core, mc);
        let resp = self.dram.request(mc, now + trip / 2);
        self.stats.per_core[core].mc_queue_cycles += resp.queued_for;
        let latency = if write {
            self.config.posted_write_cycles + resp.queued_for
        } else {
            trip + resp.queued_for + self.config.dram_service_cycles
        };
        self.stats.record(core, region, write, latency);
        latency
    }

    /// The cache line size in bytes (the granularity of the line-level
    /// flush/invalidate hooks).
    pub fn line_bytes(&self) -> usize {
        self.config.line_bytes
    }

    /// `core`'s private hierarchy, built on first use.
    fn cache_of(&mut self, core: usize) -> &mut CacheHierarchy {
        if self.caches[core].is_none() {
            let built = CacheHierarchy::new(&self.config);
            self.caches[core] = Some(built);
        }
        self.caches[core].as_mut().expect("initialized above")
    }

    /// Writes back every dirty line in `core`'s private hierarchy,
    /// returning the line count (see [`CacheHierarchy::flush_dirty`]).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn flush_core(&mut self, core: usize) -> usize {
        // An unbuilt hierarchy holds no lines: nothing to write back.
        self.caches[core].as_mut().map_or(0, |c| c.flush_dirty())
    }

    /// Invalidates `core`'s private hierarchy (both levels), so subsequent
    /// accesses refill from memory.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn invalidate_core(&mut self, core: usize) {
        if let Some(c) = self.caches[core].as_mut() {
            c.invalidate();
        }
    }

    /// Accumulated chip-global statistics, aggregated over all cores.
    pub fn stats(&self) -> MemStats {
        let mut agg = MemStats::default();
        for c in &self.stats.per_core {
            agg.l1_hits += c.l1_hits;
            agg.l2_hits += c.l2_hits;
            agg.private_dram += c.private_dram;
            agg.shared_dram += c.region_accesses(Region::SharedDram);
            agg.mpb += c.region_accesses(Region::Mpb);
            agg.mc_queue_cycles += c.mc_queue_cycles;
        }
        agg
    }

    /// The per-core × per-region counter matrix.
    pub fn stats_matrix(&self) -> &StatsMatrix {
        &self.stats
    }

    /// High-water mark of MPB allocation, in bytes (see
    /// [`Mpb::high_water`](crate::mpb::Mpb::high_water)).
    pub fn mpb_high_water(&self) -> usize {
        self.mpb.high_water()
    }

    /// Resets statistics (not cache/DRAM/allocator state).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::new(SccConfig::table_6_1())
    }

    #[test]
    fn region_classification() {
        assert_eq!(MemorySystem::region_of(0x1000), Region::Private);
        assert_eq!(MemorySystem::region_of(0x8000_0000), Region::SharedDram);
        assert_eq!(MemorySystem::region_of(0xC000_0000), Region::Mpb);
    }

    #[test]
    fn private_reaccess_is_cached() {
        let mut m = sys();
        let cold = m.access(0, 0x1000, false, 0);
        let warm = m.access(0, 0x1000, false, 100);
        assert!(warm < cold, "warm {warm} cold {cold}");
        assert_eq!(m.stats().l1_hits, 1);
        assert_eq!(m.stats().private_dram, 1);
    }

    #[test]
    fn shared_dram_never_caches() {
        let mut m = sys();
        let a = m.access(0, SHARED_DRAM_BASE + 64, false, 0);
        let b = m.access(0, SHARED_DRAM_BASE + 64, false, 10_000);
        assert_eq!(a, b, "shared accesses pay full price every time");
        assert_eq!(m.stats().shared_dram, 2);
    }

    #[test]
    fn shared_dram_costs_more_than_warm_private() {
        let mut m = sys();
        m.access(0, 0x1000, false, 0);
        let warm = m.access(0, 0x1000, false, 100);
        let shared = m.access(0, SHARED_DRAM_BASE, false, 10_000);
        // An order of magnitude or more: this gap is the 32x of Fig 6.1.
        assert!(shared > warm * 10, "shared {shared} vs warm {warm}");
    }

    #[test]
    fn mpb_beats_shared_dram() {
        let mut m = sys();
        let dram = m.access(21, SHARED_DRAM_BASE, false, 0);
        let mpb = m.access(21, MPB_BASE + 21 * 8192, false, 10_000);
        assert!(mpb < dram, "mpb {mpb} vs dram {dram}");
        assert_eq!(m.stats().mpb, 1);
    }

    #[test]
    fn mc_contention_inflates_latency() {
        let mut m = sys();
        // Two cores on the same quadrant fire at the same instant.
        let first = m.access(0, SHARED_DRAM_BASE, false, 0);
        let second = m.access(1, SHARED_DRAM_BASE + 4096, false, 0);
        assert!(second > first, "second {second} first {first}");
        assert!(m.stats().mc_queue_cycles > 0);
    }

    #[test]
    fn cores_have_independent_caches() {
        let mut m = sys();
        m.access(0, 0x1000, false, 0);
        // Core 1 misses for the same private address (separate cache).
        let cold = m.access(1, 0x1000, false, 1000);
        assert!(cold > m.config.l1_hit_cycles + m.config.l2_hit_cycles);
        assert_eq!(m.stats().private_dram, 2);
    }

    #[test]
    fn different_quadrants_do_not_contend() {
        let mut m = sys();
        let a = m.access(0, SHARED_DRAM_BASE, false, 0); // MC 0
        let b = m.access(47, SHARED_DRAM_BASE + 64, false, 0); // MC 3
                                                               // Core 47 sits on its MC tile: zero mesh trip, so pure service.
        assert!(b <= a);
        assert_eq!(m.stats().mc_queue_cycles, 0);
    }

    #[test]
    fn flat_access_never_caches_private() {
        let mut m = sys();
        let a = m.access_flat(0, 0x1000, false, 0);
        let b = m.access_flat(0, 0x1000, false, 10_000);
        assert_eq!(a, b, "no cache: reaccess pays full price");
        assert_eq!(m.stats().l1_hits, 0);
        assert_eq!(m.stats().private_dram, 2);
        // Shared addresses route through the normal path.
        m.access_flat(0, SHARED_DRAM_BASE, false, 20_000);
        assert_eq!(m.stats().shared_dram, 1);
    }

    #[test]
    fn flush_and_invalidate_core_round_trip() {
        let mut m = sys();
        m.access(0, 0x1000, true, 0); // dirty line in core 0's hierarchy
        assert!(m.flush_core(0) >= 1);
        assert_eq!(m.flush_core(0), 0, "second flush finds nothing dirty");
        // After invalidation the same address misses again.
        let warm = m.access(0, 0x1000, false, 100);
        m.invalidate_core(0);
        let cold = m.access(0, 0x1000, false, 200);
        assert!(cold > warm, "cold {cold} vs warm {warm}");
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let mut m = sys();
        m.access(0, 0x0, false, 0);
        m.reset_stats();
        assert_eq!(m.stats(), MemStats::default());
        assert_eq!(m.stats_matrix().active_cores(), 0);
    }

    /// Per-core × per-region attribution for the crate doctest scenario:
    /// a private cold miss, a private warm hit, a shared-DRAM read and an
    /// MPB read, each landing in exactly one row/column of the matrix.
    #[test]
    fn matrix_attributes_doctest_scenario() {
        let mut m = sys();
        let cold = m.access(0, 0x1000, false, 0); // private, cold
        let warm = m.access(0, 0x1000, false, 100); // L1 hit
        let shared = m.access(0, SHARED_DRAM_BASE, false, 200); // uncacheable
        let mpb = m.access(5, MPB_BASE + 5 * 8192, true, 300); // posted MPB store

        let c0 = &m.stats_matrix().per_core[0];
        assert_eq!(c0.reads[Region::Private.index()], 2);
        assert_eq!(c0.l1_hits, 1, "warm access hits L1");
        assert_eq!(c0.private_dram, 1, "cold access reaches DRAM");
        assert_eq!(c0.reads[Region::SharedDram.index()], 1);
        assert_eq!(c0.writes[Region::SharedDram.index()], 0);
        assert_eq!(
            c0.region_accesses(Region::Mpb),
            0,
            "core 0 never touched the MPB"
        );
        assert_eq!(
            c0.region_cycles[Region::Private.index()],
            cold + warm,
            "private cycle total is the sum of both accesses"
        );
        assert_eq!(c0.region_cycles[Region::SharedDram.index()], shared);

        let c5 = &m.stats_matrix().per_core[5];
        assert_eq!(c5.writes[Region::Mpb.index()], 1);
        assert_eq!(c5.region_cycles[Region::Mpb.index()], mpb);
        assert_eq!(c5.total_accesses(), 1);

        // Other cores stay untouched.
        assert_eq!(m.stats_matrix().active_cores(), 2);
        // The chip-global aggregate agrees with the matrix.
        let agg = m.stats();
        assert_eq!(agg.l1_hits, 1);
        assert_eq!(agg.private_dram, 1);
        assert_eq!(agg.shared_dram, 1);
        assert_eq!(agg.mpb, 1);
    }

    #[test]
    fn latency_histograms_follow_region_costs() {
        let mut m = sys();
        m.access(0, 0x1000, false, 0);
        m.access(0, 0x1000, false, 100);
        let c0 = &m.stats_matrix().per_core[0];
        let h = &c0.latency[Region::Private.index()];
        assert_eq!(h.count, 2);
        // The cold miss and the warm hit land in different buckets.
        assert!(h.max > m.config.l1_hit_cycles);
        assert_eq!(h.total_cycles, c0.region_cycles[Region::Private.index()]);
    }

    #[test]
    fn mpb_high_water_tracks_peak_allocation() {
        let mut m = sys();
        assert_eq!(m.mpb_high_water(), 0);
        m.mpb.alloc(0, 100).expect("alloc");
        m.mpb.alloc_shared(4, 1000).expect("alloc_shared");
        assert_eq!(m.mpb_high_water(), 128 + 1024, "line-aligned peak");
        m.mpb.reset();
        assert_eq!(m.mpb.allocated(), 0);
        assert_eq!(m.mpb_high_water(), 128 + 1024, "high water survives reset");
    }
}
