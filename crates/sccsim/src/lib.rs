//! # scc-sim — a cycle-approximate model of the Intel Single-chip Cloud
//! Computer
//!
//! The hardware substrate for the HSM reproduction: the paper evaluates on
//! real SCC silicon, which no longer exists outside museums, so this crate
//! models the architectural features its results depend on:
//!
//! * a 6×4 tile mesh with X-Y routing, two P54C cores per tile
//!   ([`mesh`], Figure 5.1);
//! * private, non-coherent L1/L2 caches — only private pages are
//!   cacheable ([`cache`]);
//! * four DDR3 memory controllers at the die corners with FIFO queuing
//!   contention ([`dram`]);
//! * the 384 KB Message Passing Buffer, 8 KB per core ([`mpb`]);
//! * one test-and-set register per core ([`tas`]);
//! * DVFS operating points bounding the paper's 25 W–125 W envelope
//!   ([`power`]).
//!
//! [`MemorySystem`] ties these together behind a single
//! `access(core, addr, write, now) -> latency` interface that the
//! `hsm-exec` discrete-event engine drives. Every access is attributed
//! to a per-core × per-region counter matrix ([`stats`]) with latency
//! histograms — the substrate of the run manifests the `figures` binary
//! emits.
//!
//! ```
//! use scc_sim::{MemorySystem, Region, SccConfig, memory::SHARED_DRAM_BASE};
//!
//! let mut chip = MemorySystem::new(SccConfig::table_6_1());
//! let cold = chip.access(0, 0x1000, false, 0);          // private, cold
//! let warm = chip.access(0, 0x1000, false, 100);        // L1 hit
//! let shared = chip.access(0, SHARED_DRAM_BASE, false, 200); // uncacheable
//! assert!(warm < cold);
//! assert!(warm < shared);
//! let matrix = chip.stats_matrix();
//! assert_eq!(matrix.per_core[0].region_accesses(Region::Private), 2);
//! assert_eq!(matrix.per_core[0].region_accesses(Region::SharedDram), 1);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod dram;
pub mod memory;
pub mod mesh;
pub mod mpb;
pub mod power;
pub mod stats;
pub mod tas;

pub use config::SccConfig;
pub use memory::{MemStats, MemorySystem, Region};
pub use mesh::{Mesh, Tile};
pub use power::{OperatingPoint, PowerModel};
pub use stats::{line_index, CoreStats, LatencyHistogram, StatsMatrix, REGION_COUNT};
