//! Per-core test-and-set registers.
//!
//! Each SCC core exposes exactly one atomic test-and-set register in its
//! configuration space; RCCE builds its locks on them. Acquiring a lock is
//! a mesh round trip to the hosting core's register; under contention the
//! requester spins, retrying each round trip.

use crate::mesh::Mesh;

/// The bank of 48 test-and-set registers.
#[derive(Debug, Clone)]
pub struct TasBank {
    /// Logical time until which each register is held (`None` = free).
    held_until: Vec<Option<u64>>,
    /// Spin-retry interval in core cycles.
    retry_cycles: u64,
    /// Acquisitions per register.
    acquisitions: Vec<u64>,
    /// Total spin cycles per register.
    contended_cycles: Vec<u64>,
}

impl TasBank {
    /// Creates one register per core.
    pub fn new(cores: usize) -> Self {
        TasBank {
            held_until: vec![None; cores],
            retry_cycles: 20,
            acquisitions: vec![0; cores],
            contended_cycles: vec![0; cores],
        }
    }

    /// Attempts to acquire register `reg` for `core` starting at `at`.
    /// Returns the time the lock is held from (the caller owns it until it
    /// calls [`TasBank::release`] with a later timestamp).
    ///
    /// The model: one mesh round trip reads-and-sets the register; if the
    /// register is currently held (its `held_until` is in the future), the
    /// requester spins in `retry_cycles` steps until the release time.
    pub fn acquire(&mut self, mesh: &Mesh, reg: usize, core: usize, at: u64) -> u64 {
        let trip = mesh.mpb_round_trip(core, reg).max(2);
        let mut t = at + trip;
        if let Some(until) = self.held_until[reg] {
            if until > t {
                let spin = until - t;
                // Round the spin up to whole retry intervals.
                let rounds = spin.div_ceil(self.retry_cycles);
                let waited = rounds * self.retry_cycles;
                self.contended_cycles[reg] += waited;
                t += waited;
            }
        }
        self.acquisitions[reg] += 1;
        self.held_until[reg] = Some(u64::MAX); // held until release
        t
    }

    /// Releases register `reg` at time `at`.
    pub fn release(&mut self, mesh: &Mesh, reg: usize, core: usize, at: u64) -> u64 {
        let trip = mesh.mpb_round_trip(core, reg).max(2);
        let done = at + trip;
        self.held_until[reg] = Some(done);
        done
    }

    /// Marks the register free immediately (test helper / reset).
    pub fn reset(&mut self) {
        self.held_until.iter_mut().for_each(|h| *h = None);
    }

    /// Acquisitions per register.
    pub fn acquisitions(&self) -> &[u64] {
        &self.acquisitions
    }

    /// Total contended spin cycles per register.
    pub fn contended_cycles(&self) -> &[u64] {
        &self.contended_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SccConfig;

    fn fixture() -> (TasBank, Mesh) {
        let cfg = SccConfig::table_6_1();
        (TasBank::new(cfg.cores), Mesh::new(&cfg))
    }

    #[test]
    fn uncontended_acquire_is_one_round_trip() {
        let (mut tas, mesh) = fixture();
        let t = tas.acquire(&mesh, 0, 0, 100);
        // Same-tile round trip clamps to the 2-cycle minimum.
        assert_eq!(t, 102);
        assert_eq!(tas.acquisitions()[0], 1);
        assert_eq!(tas.contended_cycles()[0], 0);
    }

    #[test]
    fn second_acquirer_waits_for_release() {
        let (mut tas, mesh) = fixture();
        let t0 = tas.acquire(&mesh, 5, 0, 0);
        let released = tas.release(&mesh, 5, 0, t0 + 500);
        let t1 = tas.acquire(&mesh, 5, 1, 0);
        assert!(
            t1 >= released,
            "waiter must observe release: {t1} vs {released}"
        );
        assert!(tas.contended_cycles()[5] > 0);
    }

    #[test]
    fn far_register_costs_more() {
        let (mut tas, mesh) = fixture();
        let near = tas.acquire(&mesh, 0, 0, 0);
        tas.reset();
        let far = tas.acquire(&mesh, 47, 0, 0);
        assert!(far > near);
    }

    #[test]
    fn release_then_acquire_is_uncontended() {
        let (mut tas, mesh) = fixture();
        let t = tas.acquire(&mesh, 3, 2, 0);
        tas.release(&mesh, 3, 2, t + 10);
        let t2 = tas.acquire(&mesh, 3, 4, t + 10_000);
        // Arrived long after release: no spin.
        assert_eq!(tas.contended_cycles()[3], 0);
        assert!(t2 > t);
    }
}
