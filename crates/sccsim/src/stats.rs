//! Per-core × per-region access statistics.
//!
//! The paper's whole evaluation is a story about *where accesses land* —
//! L1/L2, private DRAM, shared DRAM or the MPB — and what each landing
//! costs. The chip-global [`MemStats`](crate::MemStats) aggregate answers
//! "how many", but per-core attribution is what a partitioning or
//! placement change must cite to prove a win: it shows which cores pay
//! the shared-memory tax and how the latency distribution shifts when
//! data moves on-chip. [`StatsMatrix`] is that substrate: one
//! [`CoreStats`] row per core, each holding per-[`Region`] read/write
//! counts, cycle totals and a log2-bucketed [`LatencyHistogram`].

use crate::memory::Region;

/// Number of distinct address-space regions.
pub const REGION_COUNT: usize = 3;

/// Number of log2 latency buckets (bucket 15 collects everything at or
/// above 2^14 cycles).
pub const HISTOGRAM_BUCKETS: usize = 16;

impl Region {
    /// All regions, in canonical (index) order.
    pub const ALL: [Region; REGION_COUNT] = [Region::Private, Region::SharedDram, Region::Mpb];

    /// Dense index of this region (row order of the counter matrices).
    pub fn index(self) -> usize {
        match self {
            Region::Private => 0,
            Region::SharedDram => 1,
            Region::Mpb => 2,
        }
    }

    /// Stable machine-readable name (used as JSON manifest keys).
    pub fn name(self) -> &'static str {
        match self {
            Region::Private => "private",
            Region::SharedDram => "shared_dram",
            Region::Mpb => "mpb",
        }
    }

    /// Whether accesses to this region go through the (non-coherent)
    /// private cache hierarchy. Only cacheable regions can serve stale
    /// lines; shared DRAM and the MPB bypass the caches entirely.
    pub fn is_cacheable(self) -> bool {
        matches!(self, Region::Private)
    }
}

/// The cache-line index of `addr` for `line_bytes`-byte lines. Tools that
/// keep per-line metadata (the sharing-soundness oracle's last-writer
/// table) use this so their notion of a line matches the simulator's.
pub fn line_index(addr: u64, line_bytes: usize) -> u64 {
    addr / (line_bytes.max(1) as u64)
}

/// A log2-bucketed latency histogram.
///
/// Bucket 0 counts zero-cycle accesses; bucket *b* (b ≥ 1) counts
/// latencies in `[2^(b-1), 2^b)`; the last bucket is open-ended. Exact
/// counts, totals and the maximum are kept alongside, so mean latency is
/// exact even though the distribution is bucketed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Per-bucket access counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total accesses recorded.
    pub count: u64,
    /// Sum of all recorded latencies (cycles).
    pub total_cycles: u64,
    /// Largest recorded latency (cycles).
    pub max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            total_cycles: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// Bucket index for a latency value.
    pub fn bucket_of(latency: u64) -> usize {
        ((64 - latency.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one access of `latency` cycles.
    pub fn record(&mut self, latency: u64) {
        self.buckets[Self::bucket_of(latency)] += 1;
        self.count += 1;
        self.total_cycles += latency;
        self.max = self.max.max(latency);
    }

    /// Exact mean latency in cycles (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.count as f64
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_cycles += other.total_cycles;
        self.max = self.max.max(other.max);
    }
}

/// One core's row of the counter matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreStats {
    /// Private accesses served by L1.
    pub l1_hits: u64,
    /// Private accesses served by L2.
    pub l2_hits: u64,
    /// Private accesses that reached DRAM.
    pub private_dram: u64,
    /// Cycles this core spent waiting in MC queues.
    pub mc_queue_cycles: u64,
    /// Reads per region (indexed by [`Region::index`]).
    pub reads: [u64; REGION_COUNT],
    /// Writes per region.
    pub writes: [u64; REGION_COUNT],
    /// Total access latency per region, in cycles.
    pub region_cycles: [u64; REGION_COUNT],
    /// Latency distribution per region.
    pub latency: [LatencyHistogram; REGION_COUNT],
}

impl CoreStats {
    /// Total accesses (reads + writes) this core issued to `region`.
    pub fn region_accesses(&self, region: Region) -> u64 {
        let i = region.index();
        self.reads[i] + self.writes[i]
    }

    /// Total accesses this core issued anywhere.
    pub fn total_accesses(&self) -> u64 {
        Region::ALL.iter().map(|r| self.region_accesses(*r)).sum()
    }
}

/// The full per-core × per-region counter matrix of one simulated chip.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsMatrix {
    /// One row per core (row index = core id).
    pub per_core: Vec<CoreStats>,
}

impl StatsMatrix {
    /// An empty matrix for `cores` cores.
    pub fn new(cores: usize) -> Self {
        StatsMatrix {
            per_core: vec![CoreStats::default(); cores],
        }
    }

    /// Records one access. The region-independent attribution
    /// (`l1_hits`/`l2_hits`/`private_dram`/`mc_queue_cycles`) is added
    /// separately by the memory system as it learns where the access was
    /// served.
    pub fn record(&mut self, core: usize, region: Region, write: bool, latency: u64) {
        let cs = &mut self.per_core[core];
        let i = region.index();
        if write {
            cs.writes[i] += 1;
        } else {
            cs.reads[i] += 1;
        }
        cs.region_cycles[i] += latency;
        cs.latency[i].record(latency);
    }

    /// Total accesses to `region` across all cores.
    pub fn region_total(&self, region: Region) -> u64 {
        self.per_core
            .iter()
            .map(|c| c.region_accesses(region))
            .sum()
    }

    /// Cores that issued at least one access.
    pub fn active_cores(&self) -> usize {
        self.per_core
            .iter()
            .filter(|c| c.total_accesses() > 0)
            .count()
    }

    /// Chip-wide latency histogram for one region.
    pub fn region_histogram(&self, region: Region) -> LatencyHistogram {
        let mut h = LatencyHistogram::default();
        for c in &self.per_core {
            h.merge(&c.latency[region.index()]);
        }
        h
    }

    /// Zeroes every counter, keeping the core count.
    pub fn reset(&mut self) {
        let cores = self.per_core.len();
        self.per_core = vec![CoreStats::default(); cores];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_indices_are_dense_and_named() {
        for (i, r) in Region::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        assert_eq!(Region::Private.name(), "private");
        assert_eq!(Region::SharedDram.name(), "shared_dram");
        assert_eq!(Region::Mpb.name(), "mpb");
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(1023), 10);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_tracks_mean_and_max() {
        let mut h = LatencyHistogram::default();
        h.record(2);
        h.record(4);
        h.record(6);
        assert_eq!(h.count, 3);
        assert_eq!(h.total_cycles, 12);
        assert_eq!(h.max, 6);
        assert!((h.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_adds_everything() {
        let mut a = LatencyHistogram::default();
        a.record(1);
        let mut b = LatencyHistogram::default();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.max, 100);
        assert_eq!(a.total_cycles, 101);
    }

    #[test]
    fn matrix_attributes_to_core_and_region() {
        let mut m = StatsMatrix::new(4);
        m.record(2, Region::SharedDram, false, 50);
        m.record(2, Region::SharedDram, true, 10);
        m.record(3, Region::Mpb, false, 20);
        assert_eq!(m.per_core[2].reads[Region::SharedDram.index()], 1);
        assert_eq!(m.per_core[2].writes[Region::SharedDram.index()], 1);
        assert_eq!(m.per_core[2].region_cycles[Region::SharedDram.index()], 60);
        assert_eq!(m.per_core[3].region_accesses(Region::Mpb), 1);
        assert_eq!(m.region_total(Region::SharedDram), 2);
        assert_eq!(m.active_cores(), 2);
        assert_eq!(m.region_histogram(Region::SharedDram).count, 2);
    }

    #[test]
    fn matrix_reset_keeps_shape() {
        let mut m = StatsMatrix::new(8);
        m.record(0, Region::Private, false, 1);
        m.reset();
        assert_eq!(m.per_core.len(), 8);
        assert_eq!(m.region_total(Region::Private), 0);
    }
}
