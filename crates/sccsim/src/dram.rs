//! Off-chip DRAM behind FIFO memory controllers.
//!
//! Each controller is a single-server FIFO queue: a request arriving while
//! the controller is busy waits until it drains. This is the mechanism
//! behind the paper's observation that Dot Product and LU Decomposition —
//! with "at least 8 cores in contention per memory controller" — gain the
//! least from conversion.

/// The bank of memory controllers.
#[derive(Debug, Clone)]
pub struct DramBank {
    /// Time each controller becomes free again.
    busy_until: Vec<u64>,
    default_occupancy: u64,
    /// Total requests per controller.
    requests: Vec<u64>,
    /// Total queue-wait cycles per controller.
    wait_cycles: Vec<u64>,
}

/// Result of one DRAM request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramResponse {
    /// Time the request completes (data available at the controller).
    pub done_at: u64,
    /// Cycles spent waiting behind earlier requests.
    pub queued_for: u64,
}

impl DramBank {
    /// Creates `controllers` FIFO servers with the given default
    /// per-request occupancy.
    pub fn new(controllers: usize, default_occupancy: u64) -> Self {
        DramBank {
            busy_until: vec![0; controllers],
            default_occupancy,
            requests: vec![0; controllers],
            wait_cycles: vec![0; controllers],
        }
    }

    /// Issues a request to controller `mc` arriving at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `mc` is out of range.
    pub fn request(&mut self, mc: usize, at: u64) -> DramResponse {
        let occ = self.default_occupancy;
        self.request_with_occupancy(mc, at, occ)
    }

    /// Issues a request with an explicit controller occupancy (uncached
    /// word accesses burn a whole burst; cacheline fills stream).
    ///
    /// # Panics
    ///
    /// Panics if `mc` is out of range.
    pub fn request_with_occupancy(&mut self, mc: usize, at: u64, occupancy: u64) -> DramResponse {
        let start = at.max(self.busy_until[mc]);
        let queued_for = start - at;
        let done_at = start + occupancy;
        self.busy_until[mc] = done_at;
        self.requests[mc] += 1;
        self.wait_cycles[mc] += queued_for;
        DramResponse {
            done_at,
            queued_for,
        }
    }

    /// Number of controllers.
    pub fn controllers(&self) -> usize {
        self.busy_until.len()
    }

    /// Requests served per controller.
    pub fn requests_per_mc(&self) -> &[u64] {
        &self.requests
    }

    /// Total queueing delay accumulated per controller.
    pub fn wait_per_mc(&self) -> &[u64] {
        &self.wait_cycles
    }

    /// Average queue wait in cycles across all requests (0 if idle).
    pub fn mean_wait(&self) -> f64 {
        let reqs: u64 = self.requests.iter().sum();
        if reqs == 0 {
            return 0.0;
        }
        let waits: u64 = self.wait_cycles.iter().sum();
        waits as f64 / reqs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_request_is_unqueued() {
        let mut d = DramBank::new(4, 30);
        let r = d.request(0, 100);
        assert_eq!(r.queued_for, 0);
        assert_eq!(r.done_at, 130);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut d = DramBank::new(1, 30);
        let r1 = d.request(0, 0);
        let r2 = d.request(0, 0);
        let r3 = d.request(0, 0);
        assert_eq!(r1.done_at, 30);
        assert_eq!(r2.queued_for, 30);
        assert_eq!(r2.done_at, 60);
        assert_eq!(r3.queued_for, 60);
        assert_eq!(d.mean_wait(), 30.0);
    }

    #[test]
    fn spaced_requests_do_not_queue() {
        let mut d = DramBank::new(1, 30);
        d.request(0, 0);
        let r = d.request(0, 50);
        assert_eq!(r.queued_for, 0);
        assert_eq!(r.done_at, 80);
    }

    #[test]
    fn controllers_are_independent() {
        let mut d = DramBank::new(2, 30);
        d.request(0, 0);
        let r = d.request(1, 0);
        assert_eq!(r.queued_for, 0, "other controller is free");
    }

    #[test]
    fn contention_grows_with_cores_per_mc() {
        // 8 cores hammering one MC vs 2 cores: mean wait must be higher.
        let mut busy = DramBank::new(1, 30);
        for i in 0..8 {
            busy.request(0, i);
        }
        let mut light = DramBank::new(1, 30);
        for i in 0..2 {
            light.request(0, i);
        }
        assert!(busy.mean_wait() > light.mean_wait());
    }

    #[test]
    fn stats_accumulate() {
        let mut d = DramBank::new(2, 10);
        d.request(0, 0);
        d.request(0, 0);
        d.request(1, 0);
        assert_eq!(d.requests_per_mc(), &[2, 1]);
        assert_eq!(d.wait_per_mc(), &[10, 0]);
    }
}
