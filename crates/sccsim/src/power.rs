//! Frequency/voltage domains and a first-order power model.
//!
//! The SCC exposes per-domain DVFS: voltage domains of 8 cores and
//! frequency domains of one tile (2 cores). The paper's operating points
//! bound the model: 0.7 V / 125 MHz ≈ 25 W and 1.14 V / 1 GHz ≈ 125 W at
//! 50 °C. Power scales as `P = P_static + c · V² · f`.

/// An SCC operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Supply voltage in volts.
    pub volts: f64,
    /// Core frequency in MHz.
    pub freq_mhz: u32,
}

impl OperatingPoint {
    /// The paper's low point: 0.7 V, 125 MHz (≈25 W full chip).
    pub const LOW: OperatingPoint = OperatingPoint {
        volts: 0.7,
        freq_mhz: 125,
    };
    /// The paper's high point: 1.14 V, 1000 MHz (≈125 W full chip).
    pub const HIGH: OperatingPoint = OperatingPoint {
        volts: 1.14,
        freq_mhz: 1000,
    };
    /// The Table 6.1 experiment point: 800 MHz (interpolated voltage).
    pub fn experiment() -> OperatingPoint {
        OperatingPoint {
            volts: 1.05,
            freq_mhz: 800,
        }
    }
}

/// Per-tile frequency domains with a full-chip power estimate.
#[derive(Debug, Clone)]
pub struct PowerModel {
    tiles: usize,
    points: Vec<OperatingPoint>,
    /// Static (leakage) power of the whole chip in watts.
    static_watts: f64,
    /// Dynamic coefficient calibrated from the two paper endpoints.
    dyn_coeff: f64,
}

impl PowerModel {
    /// Builds the model for `tiles` frequency domains, calibrated so the
    /// paper's LOW and HIGH chip-wide points are reproduced.
    pub fn new(tiles: usize) -> Self {
        // Solve P = s + c·V²·f for the two endpoints.
        let (p_low, p_high) = (25.0, 125.0);
        let x_low = OperatingPoint::LOW.volts.powi(2) * f64::from(OperatingPoint::LOW.freq_mhz);
        let x_high = OperatingPoint::HIGH.volts.powi(2) * f64::from(OperatingPoint::HIGH.freq_mhz);
        let c = (p_high - p_low) / (x_high - x_low);
        let s = p_low - c * x_low;
        PowerModel {
            tiles,
            points: vec![OperatingPoint::experiment(); tiles],
            static_watts: s,
            dyn_coeff: c,
        }
    }

    /// Sets the operating point of one tile domain.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn set_tile(&mut self, tile: usize, point: OperatingPoint) {
        self.points[tile] = point;
    }

    /// Sets all domains at once (the "whole chip" knob).
    pub fn set_all(&mut self, point: OperatingPoint) {
        self.points.iter_mut().for_each(|p| *p = point);
    }

    /// Chip power in watts at the current operating points.
    pub fn chip_watts(&self) -> f64 {
        let per_tile_dyn: f64 = self
            .points
            .iter()
            .map(|p| self.dyn_coeff * p.volts.powi(2) * f64::from(p.freq_mhz))
            .sum::<f64>()
            / self.tiles as f64
            * 1.0;
        // dyn_coeff is calibrated chip-wide, so average the per-tile
        // contributions back to a chip figure.
        self.static_watts + per_tile_dyn
    }

    /// Energy in joules for a run of `cycles` core cycles at `freq_mhz`.
    pub fn energy_joules(&self, cycles: u64, freq_mhz: u32) -> f64 {
        let seconds = cycles as f64 / (f64::from(freq_mhz) * 1e6);
        self.chip_watts() * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_reproduce_paper_figures() {
        let mut m = PowerModel::new(24);
        m.set_all(OperatingPoint::LOW);
        assert!((m.chip_watts() - 25.0).abs() < 1.0, "{}", m.chip_watts());
        m.set_all(OperatingPoint::HIGH);
        assert!((m.chip_watts() - 125.0).abs() < 1.0, "{}", m.chip_watts());
    }

    #[test]
    fn experiment_point_is_between_endpoints() {
        let m = PowerModel::new(24);
        let w = m.chip_watts();
        assert!(w > 25.0 && w < 125.0, "{w}");
    }

    #[test]
    fn mixed_domains_average() {
        let mut m = PowerModel::new(24);
        m.set_all(OperatingPoint::LOW);
        for t in 0..12 {
            m.set_tile(t, OperatingPoint::HIGH);
        }
        let w = m.chip_watts();
        assert!(w > 25.0 && w < 125.0, "{w}");
    }

    #[test]
    fn energy_scales_with_cycles() {
        let m = PowerModel::new(24);
        let e1 = m.energy_joules(800_000_000, 800); // 1 s
        let e2 = m.energy_joules(1_600_000_000, 800); // 2 s
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
        assert!(e1 > 0.0);
    }
}
