//! The Message Passing Buffer: 8 KB of on-die SRAM per core, globally
//! addressable, non-coherent.

use crate::config::SccConfig;
use crate::mesh::Mesh;

/// The chip-wide MPB: address mapping, latency, and an allocator that
/// mirrors `RCCE_malloc`'s round-robin-over-cores behaviour.
#[derive(Debug, Clone)]
pub struct Mpb {
    bytes_per_core: usize,
    cores: usize,
    access_cycles: u64,
    /// Allocation watermark per core (per-slice allocator).
    brk: Vec<usize>,
    /// Watermark of the linear shared allocator (grows from the start of
    /// the flat MPB address space).
    linear_brk: usize,
    /// Shared allocations: (start, size, participants). Ownership inside
    /// an allocation is blocked — participant `i` owns the `i`-th chunk —
    /// matching how HSM programs partition arrays across cores.
    shared_allocs: Vec<(usize, usize, usize)>,
    /// Total accesses per owner core.
    accesses: Vec<u64>,
    /// Bytes currently allocated (both allocators combined).
    allocated: usize,
    /// Largest `allocated` ever observed — the occupancy high-water mark
    /// reported in the run manifest.
    high_water: usize,
}

/// A chip-wide MPB address: (owner core, offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpbAddr {
    /// The core whose MPB slice holds the data.
    pub owner: usize,
    /// Byte offset within that slice.
    pub offset: usize,
}

impl Mpb {
    /// Builds the MPB from the chip configuration.
    pub fn new(config: &SccConfig) -> Self {
        Mpb {
            bytes_per_core: config.mpb_bytes_per_core,
            cores: config.cores,
            access_cycles: config.mpb_access_cycles,
            brk: vec![0; config.cores],
            linear_brk: 0,
            shared_allocs: Vec::new(),
            accesses: vec![0; config.cores],
            allocated: 0,
            high_water: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.bytes_per_core * self.cores
    }

    /// Decomposes a linear MPB offset into (owner, offset).
    pub fn addr_of(&self, linear: usize) -> MpbAddr {
        MpbAddr {
            owner: (linear / self.bytes_per_core).min(self.cores - 1),
            offset: linear % self.bytes_per_core,
        }
    }

    /// Allocates `bytes` from `core`'s MPB slice, returning the linear
    /// offset, or `None` when the slice is exhausted.
    pub fn alloc(&mut self, core: usize, bytes: usize) -> Option<usize> {
        let aligned = (bytes + 31) & !31; // cache-line aligned
        if self.brk[core] + aligned > self.bytes_per_core {
            return None;
        }
        let offset = self.brk[core];
        self.brk[core] += aligned;
        self.allocated += aligned;
        self.high_water = self.high_water.max(self.allocated);
        Some(core * self.bytes_per_core + offset)
    }

    /// Allocates `bytes` of *linearly addressed* shared MPB space, capped
    /// at the combined capacity contributed by `participants` cores
    /// (`participants × 8 KB`). The range naturally spans consecutive
    /// cores' physical slices, so big arrays are striped across owners for
    /// latency purposes while staying contiguous in the address space the
    /// program indexes.
    pub fn alloc_shared(&mut self, participants: usize, bytes: usize) -> Option<usize> {
        let aligned = (bytes + 31) & !31;
        // The whole chip's MPB is addressable regardless of how many
        // cores participate; `participants` only sets the ownership
        // blocking of the allocation.
        let capacity = self.cores * self.bytes_per_core;
        if self.linear_brk + aligned > capacity {
            return None;
        }
        let offset = self.linear_brk;
        self.linear_brk += aligned;
        self.allocated += aligned;
        self.high_water = self.high_water.max(self.allocated);
        self.shared_allocs
            .push((offset, aligned, participants.min(self.cores).max(1)));
        Some(offset)
    }

    /// The core whose slice effectively serves a linear offset: inside a
    /// shared allocation, ownership is blocked across its participants
    /// (core *i* owns the *i*-th contiguous chunk — the layout a
    /// locality-aware RCCE program uses); elsewhere it is the physical
    /// 8 KB slice.
    pub fn owner_of(&self, linear: usize) -> usize {
        for (start, size, participants) in &self.shared_allocs {
            if linear >= *start && linear < start + size {
                let within = linear - start;
                return (within * participants / size).min(participants - 1);
            }
        }
        self.addr_of(linear).owner
    }

    /// Frees everything (RCCE programs allocate once per run). The
    /// high-water mark deliberately survives: it reports peak occupancy
    /// over the whole simulation.
    pub fn reset(&mut self) {
        self.brk.iter_mut().for_each(|b| *b = 0);
        self.linear_brk = 0;
        self.allocated = 0;
        self.shared_allocs.clear();
    }

    /// Bytes currently allocated across both allocators.
    pub fn allocated(&self) -> usize {
        self.allocated
    }

    /// Peak bytes ever allocated — the MPB occupancy high-water mark.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Latency in core cycles for `core` to access data owned by `owner`.
    pub fn access(&mut self, mesh: &Mesh, core: usize, owner: usize) -> u64 {
        self.accesses[owner] += 1;
        self.access_cycles + mesh.mpb_round_trip(core, owner)
    }

    /// Accesses per owner slice.
    pub fn accesses_per_owner(&self) -> &[u64] {
        &self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Mpb, Mesh) {
        let cfg = SccConfig::table_6_1();
        (Mpb::new(&cfg), Mesh::new(&cfg))
    }

    #[test]
    fn capacity_is_384_kib() {
        let (mpb, _) = fixture();
        assert_eq!(mpb.capacity(), 384 * 1024);
    }

    #[test]
    fn alloc_is_line_aligned_and_bounded() {
        let (mut mpb, _) = fixture();
        let a = mpb.alloc(0, 100).unwrap();
        let b = mpb.alloc(0, 1).unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 128, "100 rounds to 128");
        // Exhaust the 8 KB slice.
        assert!(mpb.alloc(0, 8 * 1024).is_none());
        // Another core's slice is unaffected.
        assert!(mpb.alloc(1, 8 * 1024).is_some());
    }

    #[test]
    fn shared_alloc_is_linear_and_non_overlapping() {
        let (mut mpb, _) = fixture();
        let a = mpb.alloc_shared(32, 64 * 1024).unwrap();
        let b = mpb.alloc_shared(32, 100).unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 64 * 1024, "ranges must not overlap");
        // 512 KB exceeds the chip's 384 KB.
        let mut fresh = Mpb::new(&SccConfig::table_6_1());
        assert!(fresh.alloc_shared(32, 512 * 1024).is_none());
    }

    #[test]
    fn shared_alloc_capacity_is_whole_chip() {
        let (mut mpb, _) = fixture();
        // Even 2 participants may use the full 384 KB.
        assert!(mpb.alloc_shared(2, 300 * 1024).is_some());
        assert!(mpb.alloc_shared(2, 100 * 1024).is_none());
    }

    #[test]
    fn blocked_ownership_is_local_to_participants() {
        let (mut mpb, _) = fixture();
        // 32 participants share a 32 KB allocation: 1 KB chunks.
        let start = mpb.alloc_shared(32, 32 * 1024).unwrap();
        assert_eq!(mpb.owner_of(start), 0);
        assert_eq!(mpb.owner_of(start + 5 * 1024), 5);
        assert_eq!(mpb.owner_of(start + 31 * 1024 + 512), 31);
        // Outside any allocation: physical slice ownership.
        assert_eq!(mpb.owner_of(33 * 1024 + 100), 33 * 1024 / 8192);
    }

    #[test]
    fn local_access_is_cheapest() {
        let (mut mpb, mesh) = fixture();
        let local = mpb.access(&mesh, 0, 0);
        let remote = mpb.access(&mesh, 0, 47);
        assert!(local < remote, "local {local} vs remote {remote}");
        assert_eq!(local, SccConfig::table_6_1().mpb_access_cycles);
    }

    #[test]
    fn mpb_is_faster_than_uncontended_dram_for_far_cores() {
        // Core 21 (middle of the die): MPB access to a neighbour must beat
        // shared-DRAM (mesh + service + overhead).
        let cfg = SccConfig::table_6_1();
        let (mut mpb, mesh) = fixture();
        let mpb_lat = mpb.access(&mesh, 21, 20);
        let mc = mesh.mc_of(21);
        let dram_lat =
            mesh.mc_round_trip(21, mc) + cfg.dram_service_cycles + cfg.shared_dram_overhead_cycles;
        assert!(
            mpb_lat < dram_lat,
            "mpb {mpb_lat} should beat dram {dram_lat}"
        );
    }

    #[test]
    fn addr_decomposition() {
        let (mpb, _) = fixture();
        let a = mpb.addr_of(0);
        assert_eq!((a.owner, a.offset), (0, 0));
        let b = mpb.addr_of(8 * 1024 + 100);
        assert_eq!((b.owner, b.offset), (1, 100));
    }

    #[test]
    fn reset_reclaims_space() {
        let (mut mpb, _) = fixture();
        mpb.alloc(0, 8 * 1024).unwrap();
        assert!(mpb.alloc(0, 32).is_none());
        mpb.reset();
        assert!(mpb.alloc(0, 32).is_some());
    }
}
