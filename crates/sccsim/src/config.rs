//! Simulator configuration (Table 6.1 of the paper).

use std::fmt;

/// Clock and latency configuration of the simulated SCC.
///
/// Defaults follow the paper's experimental setup (Table 6.1): 800 MHz
/// cores, 1600 MHz mesh, 1066 MHz DDR3. All latencies are expressed in
/// **core cycles**.
#[derive(Debug, Clone, PartialEq)]
pub struct SccConfig {
    /// Number of cores on the chip.
    pub cores: usize,
    /// Mesh grid width in tiles (6 on the SCC).
    pub mesh_cols: usize,
    /// Mesh grid height in tiles (4 on the SCC).
    pub mesh_rows: usize,
    /// Core clock in MHz.
    pub core_freq_mhz: u32,
    /// Mesh clock in MHz.
    pub mesh_freq_mhz: u32,
    /// Off-chip DDR3 clock in MHz.
    pub dram_freq_mhz: u32,
    /// L1 data cache size in bytes (16 KB on the P54C-based SCC core).
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 cache size in bytes (256 KB per core).
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// L1 hit latency (core cycles).
    pub l1_hit_cycles: u64,
    /// L2 hit latency (core cycles).
    pub l2_hit_cycles: u64,
    /// DRAM access latency at the memory controller (core cycles) — what
    /// one isolated request waits.
    pub dram_service_cycles: u64,
    /// Controller occupancy per request (core cycles) — the bandwidth
    /// limit under contention. DDR3-1066 streams a 32-byte line in a few
    /// core cycles at the 800 MHz core clock, so this is much smaller
    /// than the latency.
    pub dram_occupancy_cycles: u64,
    /// Controller occupancy of one *uncached shared* access (core
    /// cycles): a word-sized access still occupies a full DRAM burst, so
    /// shared traffic consumes far more controller time per useful byte
    /// than cacheline fills — the paper's "8 cores in contention per
    /// memory controller" effect.
    pub shared_dram_occupancy_cycles: u64,
    /// Core stall for a *posted* shared-DRAM write: stores drain through
    /// the mesh interface's write-combining buffer, so the core only pays
    /// the buffer hand-off, not the DRAM round trip. Loads pay in full.
    pub posted_write_cycles: u64,
    /// Extra fixed latency of an uncacheable shared-DRAM access beyond the
    /// mesh trip and MC service (page-table walk and bypass overheads).
    pub shared_dram_overhead_cycles: u64,
    /// Latency of one router hop, one direction (core cycles; the SCC
    /// router takes 4 mesh cycles = 2 core cycles at the 2:1 clock ratio).
    pub hop_cycles: u64,
    /// Fixed MPB access cost excluding mesh hops (core cycles).
    pub mpb_access_cycles: u64,
    /// Per-core MPB capacity in bytes.
    pub mpb_bytes_per_core: usize,
    /// Number of memory controllers (4 on the SCC).
    pub memory_controllers: usize,
    /// OS scheduling quantum for the single-core pthread baseline, in core
    /// cycles (100 µs at 800 MHz = 80 000).
    pub sched_quantum_cycles: u64,
    /// Context switch cost for the pthread baseline, in core cycles.
    pub context_switch_cycles: u64,
}

impl SccConfig {
    /// The paper's Table 6.1 configuration.
    pub fn table_6_1() -> Self {
        SccConfig {
            cores: 48,
            mesh_cols: 6,
            mesh_rows: 4,
            core_freq_mhz: 800,
            mesh_freq_mhz: 1600,
            dram_freq_mhz: 1066,
            l1_bytes: 16 * 1024,
            l1_ways: 4,
            l2_bytes: 256 * 1024,
            l2_ways: 4,
            line_bytes: 32,
            l1_hit_cycles: 1,
            l2_hit_cycles: 18,
            dram_service_cycles: 100,
            dram_occupancy_cycles: 6,
            shared_dram_occupancy_cycles: 10,
            posted_write_cycles: 10,
            shared_dram_overhead_cycles: 8,
            hop_cycles: 2,
            mpb_access_cycles: 8,
            mpb_bytes_per_core: 8 * 1024,
            memory_controllers: 4,
            sched_quantum_cycles: 80_000,
            context_switch_cycles: 2_000,
        }
    }

    /// Rescales the configuration to a different core clock (the SCC's
    /// DVFS knob). Memory-side latencies are physical times: expressed in
    /// core cycles they scale with the core clock, while cache hits (which
    /// run at core speed) do not. This reproduces the "memory wall"
    /// effect: at a slower core clock, memory looks relatively faster.
    pub fn with_core_freq(&self, mhz: u32) -> SccConfig {
        let ratio = f64::from(mhz) / f64::from(self.core_freq_mhz);
        let scale = |v: u64| ((v as f64 * ratio).round() as u64).max(1);
        SccConfig {
            core_freq_mhz: mhz,
            hop_cycles: scale(self.hop_cycles),
            mpb_access_cycles: scale(self.mpb_access_cycles),
            dram_service_cycles: scale(self.dram_service_cycles),
            dram_occupancy_cycles: scale(self.dram_occupancy_cycles),
            shared_dram_occupancy_cycles: scale(self.shared_dram_occupancy_cycles),
            posted_write_cycles: scale(self.posted_write_cycles),
            shared_dram_overhead_cycles: scale(self.shared_dram_overhead_cycles),
            sched_quantum_cycles: scale(self.sched_quantum_cycles),
            context_switch_cycles: self.context_switch_cycles,
            ..self.clone()
        }
    }

    /// Cores per tile (2 on the SCC).
    pub fn cores_per_tile(&self) -> usize {
        self.cores / (self.mesh_cols * self.mesh_rows)
    }

    /// Total MPB capacity in bytes.
    pub fn mpb_total_bytes(&self) -> usize {
        self.cores * self.mpb_bytes_per_core
    }

    /// Renders the Table 6.1 comparison block (RCCE vs Pthreads columns are
    /// identical by design: same silicon, different software stack).
    pub fn render_table_6_1(&self, rcce_units: usize, pthread_units: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<24}{:>14}{:>14}\n", "", "RCCE", "Pthreads"));
        out.push_str(&"-".repeat(52));
        out.push('\n');
        out.push_str(&format!(
            "{:<24}{:>10} MHz{:>10} MHz\n",
            "Core Frequency", self.core_freq_mhz, self.core_freq_mhz
        ));
        out.push_str(&format!(
            "{:<24}{:>10} MHz{:>10} MHz\n",
            "Communication Network", self.mesh_freq_mhz, self.mesh_freq_mhz
        ));
        out.push_str(&format!(
            "{:<24}{:>10} MHz{:>10} MHz\n",
            "Off-chip Memory", self.dram_freq_mhz, self.dram_freq_mhz
        ));
        out.push_str(&format!(
            "{:<24}{:>9} cores{:>8} threads\n",
            "Execution Units", rcce_units, pthread_units
        ));
        out
    }
}

impl Default for SccConfig {
    fn default() -> Self {
        SccConfig::table_6_1()
    }
}

impl fmt::Display for SccConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SCC {} cores @ {} MHz, mesh {}x{} @ {} MHz, DDR3 {} MHz, {} MCs",
            self.cores,
            self.core_freq_mhz,
            self.mesh_cols,
            self.mesh_rows,
            self.mesh_freq_mhz,
            self.dram_freq_mhz,
            self.memory_controllers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_6_1_values() {
        let c = SccConfig::table_6_1();
        assert_eq!(c.core_freq_mhz, 800);
        assert_eq!(c.mesh_freq_mhz, 1600);
        assert_eq!(c.dram_freq_mhz, 1066);
        assert_eq!(c.cores, 48);
        assert_eq!(c.cores_per_tile(), 2);
        assert_eq!(c.mpb_total_bytes(), 384 * 1024);
    }

    #[test]
    fn render_matches_paper_rows() {
        let c = SccConfig::table_6_1();
        let t = c.render_table_6_1(32, 32);
        assert!(t.contains("Core Frequency"));
        assert!(t.contains("800 MHz"));
        assert!(t.contains("1600 MHz"));
        assert!(t.contains("1066 MHz"));
        assert!(t.contains("32 cores"));
        assert!(t.contains("32 threads"));
    }

    #[test]
    fn dvfs_rescales_memory_latencies() {
        let base = SccConfig::table_6_1();
        let slow = base.with_core_freq(400);
        assert_eq!(slow.core_freq_mhz, 400);
        // Half the clock: memory waits half as many core cycles.
        assert_eq!(slow.dram_service_cycles, 50);
        assert_eq!(slow.hop_cycles, 1);
        // Cache hit latencies stay in core cycles.
        assert_eq!(slow.l1_hit_cycles, base.l1_hit_cycles);
        assert_eq!(slow.l2_hit_cycles, base.l2_hit_cycles);
        // Round trip: rescaling back is identity-ish.
        let back = slow.with_core_freq(800);
        assert_eq!(back.dram_service_cycles, 100);
    }

    #[test]
    fn display_is_informative() {
        let s = SccConfig::default().to_string();
        assert!(s.contains("48 cores"));
        assert!(s.contains("6x4"));
    }
}
