//! Set-associative write-back caches with LRU replacement.
//!
//! On the SCC only *private* memory is cacheable; shared pages bypass the
//! caches entirely because the hardware provides no coherence. Each core
//! therefore owns an independent L1+L2 [`CacheHierarchy`] that never
//! snoops anyone else.

/// Outcome of a single cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Hit in this cache.
    Hit,
    /// Miss; a (possibly dirty) victim line was evicted.
    Miss {
        /// Whether the evicted line was dirty (needs a write-back).
        dirty_victim: bool,
    },
}

/// One set-associative write-back cache.
///
/// Lines live in a single flat `sets × ways` allocation (set-major): a
/// 48-core chip instantiates 96 caches per run, so per-set boxing would
/// put ~100k allocations on the constructor path and dominate short
/// simulations.
#[derive(Debug, Clone)]
pub struct Cache {
    lines: Vec<Line>,
    ways: usize,
    line_shift: u32,
    set_mask: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
    tick: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

impl Cache {
    /// Creates a cache of `bytes` total capacity, `ways` associativity and
    /// `line_bytes` line size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two set count or capacity
    /// is not divisible by `ways * line_bytes`.
    pub fn new(bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(ways >= 1 && line_bytes.is_power_of_two());
        let lines = bytes / line_bytes;
        assert!(lines.is_multiple_of(ways), "capacity must divide into ways");
        let sets = lines / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            lines: vec![Line::default(); sets * ways],
            ways,
            line_shift: line_bytes.trailing_zeros(),
            set_mask: (sets - 1) as u64,
            hits: 0,
            misses: 0,
            writebacks: 0,
            tick: 0,
        }
    }

    /// Looks up `addr`; on a miss the line is filled. `write` marks the
    /// line dirty on hit or fill (write-allocate).
    #[inline]
    pub fn access(&mut self, addr: u64, write: bool) -> CacheOutcome {
        self.tick += 1;
        let line_addr = addr >> self.line_shift;
        let set_idx = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_mask.count_ones();
        let set = &mut self.lines[set_idx * self.ways..set_idx * self.ways + self.ways];

        for line in set.iter_mut() {
            if line.valid && line.tag == tag {
                line.lru = self.tick;
                line.dirty |= write;
                self.hits += 1;
                return CacheOutcome::Hit;
            }
        }
        self.misses += 1;
        // Victim: invalid line if any, else LRU.
        let victim = (0..self.ways).find(|&w| !set[w].valid).unwrap_or_else(|| {
            (0..self.ways)
                .min_by_key(|&w| set[w].lru)
                .expect("ways >= 1")
        });
        let dirty_victim = set[victim].valid && set[victim].dirty;
        if dirty_victim {
            self.writebacks += 1;
        }
        set[victim] = Line {
            tag,
            valid: true,
            dirty: write,
            lru: self.tick,
        };
        CacheOutcome::Miss { dirty_victim }
    }

    /// Invalidates the whole cache (used by RCCE's MPB flush semantics).
    pub fn invalidate_all(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
            line.dirty = false;
        }
    }

    /// Writes back every dirty line (clearing its dirty bit but keeping it
    /// valid), returning how many lines streamed out. Each write-back is
    /// counted in [`Cache::stats`].
    pub fn flush_dirty(&mut self) -> usize {
        let mut flushed = 0;
        for line in &mut self.lines {
            if line.valid && line.dirty {
                line.dirty = false;
                flushed += 1;
            }
        }
        self.writebacks += flushed as u64;
        flushed
    }

    /// (hits, misses, writebacks) so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.writebacks)
    }
}

/// A private two-level hierarchy (L1D + unified L2).
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    /// Level-1 data cache.
    pub l1: Cache,
    /// Unified level-2 cache.
    pub l2: Cache,
    l1_hit_cycles: u64,
    l2_hit_cycles: u64,
}

/// Where a private access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceLevel {
    /// Served by L1.
    L1,
    /// Served by L2.
    L2,
    /// Missed both levels; memory must be accessed. The flag reports
    /// whether a dirty victim must also be written back.
    Memory {
        /// A dirty line was evicted on the way.
        writeback: bool,
    },
}

impl CacheHierarchy {
    /// Builds the hierarchy from the chip configuration.
    pub fn new(config: &crate::config::SccConfig) -> Self {
        CacheHierarchy {
            l1: Cache::new(config.l1_bytes, config.l1_ways, config.line_bytes),
            l2: Cache::new(config.l2_bytes, config.l2_ways, config.line_bytes),
            l1_hit_cycles: config.l1_hit_cycles,
            l2_hit_cycles: config.l2_hit_cycles,
        }
    }

    /// Writes back every dirty line in both levels, returning the total
    /// line count (the software-managed coherence "flush" primitive).
    pub fn flush_dirty(&mut self) -> usize {
        self.l1.flush_dirty() + self.l2.flush_dirty()
    }

    /// Invalidates both levels (flush-and-invalidate completes a
    /// software-managed coherence handoff).
    pub fn invalidate(&mut self) {
        self.l1.invalidate_all();
        self.l2.invalidate_all();
    }

    /// Performs a private-memory access, returning the level that served
    /// it and the cycles spent in the cache hierarchy (excluding DRAM).
    pub fn access(&mut self, addr: u64, write: bool) -> (ServiceLevel, u64) {
        match self.l1.access(addr, write) {
            CacheOutcome::Hit => (ServiceLevel::L1, self.l1_hit_cycles),
            CacheOutcome::Miss {
                dirty_victim: l1_dirty,
            } => match self.l2.access(addr, write) {
                CacheOutcome::Hit => (ServiceLevel::L2, self.l1_hit_cycles + self.l2_hit_cycles),
                CacheOutcome::Miss {
                    dirty_victim: l2_dirty,
                } => (
                    ServiceLevel::Memory {
                        writeback: l1_dirty || l2_dirty,
                    },
                    self.l1_hit_cycles + self.l2_hit_cycles,
                ),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SccConfig;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(1024, 2, 32);
        assert!(matches!(c.access(0x100, false), CacheOutcome::Miss { .. }));
        assert_eq!(c.access(0x100, false), CacheOutcome::Hit);
        assert_eq!(c.access(0x11F, false), CacheOutcome::Hit, "same line");
        assert!(matches!(c.access(0x120, false), CacheOutcome::Miss { .. }));
        let (h, m, _) = c.stats();
        assert_eq!((h, m), (2, 2));
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2-way, 32 B lines, 64 B total => 1 set of 2 ways.
        let mut c = Cache::new(64, 2, 32);
        c.access(0x000, false); // A
        c.access(0x100, false); // B
        c.access(0x000, false); // A again (B becomes LRU)
        c.access(0x200, false); // C evicts B
        assert_eq!(c.access(0x000, false), CacheOutcome::Hit, "A stays");
        assert!(
            matches!(c.access(0x100, false), CacheOutcome::Miss { .. }),
            "B gone"
        );
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = Cache::new(64, 1, 32); // direct-mapped, 2 sets
        c.access(0x000, true); // dirty line in set 0
                               // Same set (bit 5 is the set index; 0x40 maps to set 0 again).
        let out = c.access(0x40, false);
        assert_eq!(out, CacheOutcome::Miss { dirty_victim: true });
        let (_, _, wb) = c.stats();
        assert_eq!(wb, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = Cache::new(64, 1, 32);
        c.access(0x000, false);
        assert_eq!(
            c.access(0x40, false),
            CacheOutcome::Miss {
                dirty_victim: false
            }
        );
    }

    #[test]
    fn flush_dirty_writes_back_but_keeps_lines() {
        let mut c = Cache::new(1024, 2, 32);
        c.access(0x100, true);
        c.access(0x200, false);
        assert_eq!(c.flush_dirty(), 1, "one dirty line");
        // The line stays valid: the next access hits without a write-back.
        assert_eq!(c.access(0x100, false), CacheOutcome::Hit);
        let (_, _, wb) = c.stats();
        assert_eq!(wb, 1, "the flush itself was the only write-back");
        assert_eq!(c.flush_dirty(), 0, "already clean");
    }

    #[test]
    fn invalidate_all_flushes() {
        let mut c = Cache::new(1024, 2, 32);
        c.access(0x100, true);
        c.invalidate_all();
        assert!(matches!(
            c.access(0x100, false),
            CacheOutcome::Miss {
                dirty_victim: false
            }
        ));
    }

    #[test]
    fn hierarchy_l1_then_l2_then_memory() {
        let cfg = SccConfig::table_6_1();
        let mut h = CacheHierarchy::new(&cfg);
        let (lvl, cycles) = h.access(0x1000, false);
        assert!(matches!(lvl, ServiceLevel::Memory { writeback: false }));
        assert_eq!(cycles, cfg.l1_hit_cycles + cfg.l2_hit_cycles);
        let (lvl, cycles) = h.access(0x1000, false);
        assert_eq!(lvl, ServiceLevel::L1);
        assert_eq!(cycles, cfg.l1_hit_cycles);
    }

    #[test]
    fn hierarchy_l2_hit_after_l1_eviction() {
        let cfg = SccConfig::table_6_1();
        let mut h = CacheHierarchy::new(&cfg);
        // Fill far more than L1 (16 KB) but less than L2 (256 KB).
        for i in 0..2048u64 {
            h.access(i * 32, false);
        }
        // The first line is long gone from L1 but still in L2.
        let (lvl, _) = h.access(0, false);
        assert_eq!(lvl, ServiceLevel::L2);
    }

    #[test]
    fn working_set_hit_rates_are_sane() {
        let cfg = SccConfig::table_6_1();
        let mut h = CacheHierarchy::new(&cfg);
        // An 8 KB working set fits in L1: after warmup, all hits.
        for round in 0..4 {
            for i in 0..256u64 {
                h.access(i * 32, false);
            }
            if round == 0 {
                continue;
            }
        }
        let (hits, misses, _) = h.l1.stats();
        assert!(hits >= 3 * 256, "hits={hits} misses={misses}");
        assert_eq!(misses, 256);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(96, 1, 32);
    }
}
