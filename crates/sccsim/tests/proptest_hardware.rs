//! Property tests of the hardware model:
//!
//! * the set-associative LRU cache matches a naive reference
//!   implementation on arbitrary access traces;
//! * mesh routing is symmetric, triangle-bounded and matches Manhattan
//!   distance;
//! * the memory-controller FIFO conserves work and never reorders
//!   completions before arrivals;
//! * memory-system latencies are reproducible for identical traces.

use proptest::prelude::*;
use scc_sim::cache::{Cache, CacheOutcome};
use scc_sim::dram::DramBank;
use scc_sim::memory::SHARED_DRAM_BASE;
use scc_sim::{MemorySystem, Mesh, SccConfig};
use std::collections::VecDeque;

/// A trivially-correct fully-explicit LRU cache for cross-checking.
struct RefCache {
    sets: Vec<VecDeque<(u64, bool)>>, // (tag, dirty), front = MRU
    ways: usize,
    line_shift: u32,
    set_count: u64,
}

impl RefCache {
    fn new(bytes: usize, ways: usize, line_bytes: usize) -> Self {
        let sets = bytes / line_bytes / ways;
        RefCache {
            sets: vec![VecDeque::new(); sets],
            ways,
            line_shift: line_bytes.trailing_zeros(),
            set_count: sets as u64,
        }
    }

    fn access(&mut self, addr: u64, write: bool) -> CacheOutcome {
        let line = addr >> self.line_shift;
        let set = (line % self.set_count) as usize;
        let tag = line / self.set_count;
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|(t, _)| *t == tag) {
            let (t, d) = s.remove(pos).expect("present");
            s.push_front((t, d || write));
            return CacheOutcome::Hit;
        }
        let dirty_victim = if s.len() == self.ways {
            s.pop_back().map(|(_, d)| d).unwrap_or(false)
        } else {
            false
        };
        s.push_front((tag, write));
        CacheOutcome::Miss { dirty_victim }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The production cache and the reference agree on every access of an
    /// arbitrary trace (hit/miss AND dirty-victim classification).
    #[test]
    fn cache_matches_reference_lru(
        trace in proptest::collection::vec((0u64..4096, proptest::bool::ANY), 1..400),
    ) {
        // Small cache to force plenty of evictions: 512 B, 2-way, 32 B lines.
        let mut real = Cache::new(512, 2, 32);
        let mut reference = RefCache::new(512, 2, 32);
        for (i, (addr, write)) in trace.iter().enumerate() {
            let got = real.access(*addr, *write);
            let want = reference.access(*addr, *write);
            prop_assert_eq!(got, want, "access #{} addr {:#x} write {}", i, addr, write);
        }
    }

    /// Cache accounting: hits + misses equals the trace length.
    #[test]
    fn cache_accounting_is_complete(
        trace in proptest::collection::vec(0u64..8192, 1..300),
    ) {
        let mut c = Cache::new(1024, 4, 32);
        for addr in &trace {
            c.access(*addr, false);
        }
        let (hits, misses, writebacks) = c.stats();
        prop_assert_eq!(hits + misses, trace.len() as u64);
        prop_assert_eq!(writebacks, 0, "read-only trace never writes back");
    }

    /// Mesh distances: symmetric, zero iff same tile, and within the die
    /// diameter.
    #[test]
    fn mesh_metric_properties(a in 0usize..48, b in 0usize..48) {
        let mesh = Mesh::new(&SccConfig::table_6_1());
        let d_ab = mesh.mpb_round_trip(a, b);
        let d_ba = mesh.mpb_round_trip(b, a);
        prop_assert_eq!(d_ab, d_ba, "symmetry");
        let same_tile = mesh.tile_of(a) == mesh.tile_of(b);
        prop_assert_eq!(d_ab == 0, same_tile);
        // Diameter: (5 + 3) hops * 2 cycles * round trip.
        prop_assert!(d_ab <= 8 * 2 * 2);
    }

    /// The MC FIFO conserves work: total busy time equals requests x
    /// occupancy, and completions are monotone for monotone arrivals.
    #[test]
    fn mc_fifo_conserves_work(
        gaps in proptest::collection::vec(0u64..40, 1..60),
        occupancy in 1u64..30,
    ) {
        let mut bank = DramBank::new(1, occupancy);
        let mut t = 0u64;
        let mut last_done = 0u64;
        let mut idle = 0u64;
        let mut prev_done = 0u64;
        for gap in &gaps {
            t += gap;
            let r = bank.request(0, t);
            prop_assert!(r.done_at >= t + occupancy);
            prop_assert!(r.done_at >= prev_done + occupancy, "FIFO order");
            idle += (t.max(prev_done)) - prev_done.min(t.max(prev_done));
            prev_done = r.done_at;
            last_done = r.done_at;
        }
        // Conservation: the server was busy exactly reqs * occupancy.
        let reqs = gaps.len() as u64;
        prop_assert!(last_done >= reqs * occupancy);
        let _ = idle;
    }

    /// Identical access traces produce identical latencies (the
    /// determinism the whole experiment harness rests on).
    #[test]
    fn memory_system_is_reproducible(
        trace in proptest::collection::vec(
            (0usize..8, 0u64..2048, proptest::bool::ANY, 1u64..50),
            1..120,
        ),
    ) {
        let run = || {
            let mut m = MemorySystem::new(SccConfig::table_6_1());
            let mut now = 0u64;
            let mut lats = Vec::new();
            for (core, off, write, dt) in &trace {
                now += dt;
                // Alternate private and shared regions from the offset.
                let addr = if off % 2 == 0 {
                    0x1000 + off * 64
                } else {
                    SHARED_DRAM_BASE + off * 64
                };
                lats.push(m.access(*core, addr, *write, now));
            }
            lats
        };
        prop_assert_eq!(run(), run());
    }

    /// Shared-DRAM reads are never cheaper than the raw service time, and
    /// warm private reads are never costlier than cold ones at the same
    /// address.
    #[test]
    fn latency_bounds(core in 0usize..48, off in 0u64..4096) {
        let cfg = SccConfig::table_6_1();
        let mut m = MemorySystem::new(cfg.clone());
        let shared = m.access(core, SHARED_DRAM_BASE + off * 8, false, 0);
        prop_assert!(shared >= cfg.dram_service_cycles);
        let cold = m.access(core, 0x2000 + off * 8, false, 1_000_000);
        let warm = m.access(core, 0x2000 + off * 8, false, 2_000_000);
        prop_assert!(warm <= cold, "warm {warm} vs cold {cold}");
    }
}
