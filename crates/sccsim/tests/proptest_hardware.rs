//! Property tests of the hardware model (ported from `proptest` to the
//! in-tree `testkit` runner — hermetic, no external crates):
//!
//! * the set-associative LRU cache matches a naive reference
//!   implementation on arbitrary access traces;
//! * mesh routing is symmetric, triangle-bounded and matches Manhattan
//!   distance;
//! * the memory-controller FIFO conserves work and never reorders
//!   completions before arrivals;
//! * memory-system latencies are reproducible for identical traces;
//! * the per-core × per-region counter matrix is conserved (every access
//!   lands in exactly one cell) on arbitrary traces.

use scc_sim::cache::{Cache, CacheOutcome};
use scc_sim::dram::DramBank;
use scc_sim::memory::SHARED_DRAM_BASE;
use scc_sim::{MemorySystem, Mesh, Region, SccConfig};
use std::collections::VecDeque;
use testkit::{check, SplitMix64};

/// A trivially-correct fully-explicit LRU cache for cross-checking.
struct RefCache {
    sets: Vec<VecDeque<(u64, bool)>>, // (tag, dirty), front = MRU
    ways: usize,
    line_shift: u32,
    set_count: u64,
}

impl RefCache {
    fn new(bytes: usize, ways: usize, line_bytes: usize) -> Self {
        let sets = bytes / line_bytes / ways;
        RefCache {
            sets: vec![VecDeque::new(); sets],
            ways,
            line_shift: line_bytes.trailing_zeros(),
            set_count: sets as u64,
        }
    }

    fn access(&mut self, addr: u64, write: bool) -> CacheOutcome {
        let line = addr >> self.line_shift;
        let set = (line % self.set_count) as usize;
        let tag = line / self.set_count;
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|(t, _)| *t == tag) {
            let (t, d) = s.remove(pos).expect("present");
            s.push_front((t, d || write));
            return CacheOutcome::Hit;
        }
        let dirty_victim = if s.len() == self.ways {
            s.pop_back().map(|(_, d)| d).unwrap_or(false)
        } else {
            false
        };
        s.push_front((tag, write));
        CacheOutcome::Miss { dirty_victim }
    }
}

/// The production cache and the reference agree on every access of an
/// arbitrary trace (hit/miss AND dirty-victim classification).
#[test]
fn cache_matches_reference_lru() {
    check("cache_matches_reference_lru", 256, |rng| {
        // Small cache to force plenty of evictions: 512 B, 2-way, 32 B lines.
        let mut real = Cache::new(512, 2, 32);
        let mut reference = RefCache::new(512, 2, 32);
        let len = rng.gen_range_usize(1, 400);
        for i in 0..len {
            let addr = rng.gen_range_u64(0, 4096);
            let write = rng.gen_bool();
            let got = real.access(addr, write);
            let want = reference.access(addr, write);
            assert_eq!(got, want, "access #{i} addr {addr:#x} write {write}");
        }
    });
}

/// Cache accounting: hits + misses equals the trace length.
#[test]
fn cache_accounting_is_complete() {
    check("cache_accounting_is_complete", 256, |rng| {
        let mut c = Cache::new(1024, 4, 32);
        let len = rng.gen_range_usize(1, 300);
        for _ in 0..len {
            c.access(rng.gen_range_u64(0, 8192), false);
        }
        let (hits, misses, writebacks) = c.stats();
        assert_eq!(hits + misses, len as u64);
        assert_eq!(writebacks, 0, "read-only trace never writes back");
    });
}

/// Mesh distances: symmetric, zero iff same tile, and within the die
/// diameter.
#[test]
fn mesh_metric_properties() {
    check("mesh_metric_properties", 256, |rng| {
        let a = rng.gen_range_usize(0, 48);
        let b = rng.gen_range_usize(0, 48);
        let mesh = Mesh::new(&SccConfig::table_6_1());
        let d_ab = mesh.mpb_round_trip(a, b);
        let d_ba = mesh.mpb_round_trip(b, a);
        assert_eq!(d_ab, d_ba, "symmetry");
        let same_tile = mesh.tile_of(a) == mesh.tile_of(b);
        assert_eq!(d_ab == 0, same_tile);
        // Diameter: (5 + 3) hops * 2 cycles * round trip.
        assert!(d_ab <= 8 * 2 * 2);
    });
}

/// The MC FIFO conserves work: total busy time equals requests x
/// occupancy, and completions are monotone for monotone arrivals.
#[test]
fn mc_fifo_conserves_work() {
    check("mc_fifo_conserves_work", 256, |rng| {
        let occupancy = rng.gen_range_u64(1, 30);
        let reqs = rng.gen_range_usize(1, 60);
        let mut bank = DramBank::new(1, occupancy);
        let mut t = 0u64;
        let mut last_done = 0u64;
        let mut prev_done = 0u64;
        for _ in 0..reqs {
            t += rng.gen_range_u64(0, 40);
            let r = bank.request(0, t);
            assert!(r.done_at >= t + occupancy);
            assert!(r.done_at >= prev_done + occupancy, "FIFO order");
            prev_done = r.done_at;
            last_done = r.done_at;
        }
        // Conservation: the server was busy exactly reqs * occupancy.
        assert!(last_done >= reqs as u64 * occupancy);
    });
}

fn random_trace(rng: &mut SplitMix64) -> Vec<(usize, u64, bool, u64)> {
    let len = rng.gen_range_usize(1, 120);
    (0..len)
        .map(|_| {
            (
                rng.gen_range_usize(0, 8),
                rng.gen_range_u64(0, 2048),
                rng.gen_bool(),
                rng.gen_range_u64(1, 50),
            )
        })
        .collect()
}

fn trace_addr(off: u64) -> u64 {
    // Alternate private and shared regions from the offset.
    if off.is_multiple_of(2) {
        0x1000 + off * 64
    } else {
        SHARED_DRAM_BASE + off * 64
    }
}

/// Identical access traces produce identical latencies (the determinism
/// the whole experiment harness rests on).
#[test]
fn memory_system_is_reproducible() {
    check("memory_system_is_reproducible", 128, |rng| {
        let trace = random_trace(rng);
        let run = || {
            let mut m = MemorySystem::new(SccConfig::table_6_1());
            let mut now = 0u64;
            let mut lats = Vec::new();
            for (core, off, write, dt) in &trace {
                now += dt;
                lats.push(m.access(*core, trace_addr(*off), *write, now));
            }
            lats
        };
        assert_eq!(run(), run());
    });
}

/// Counter conservation: on an arbitrary trace, every access lands in
/// exactly one (core, region) cell, the matrix totals match the
/// chip-global aggregate, and histogram cycle totals match the summed
/// latencies.
#[test]
fn counter_matrix_is_conserved() {
    check("counter_matrix_is_conserved", 128, |rng| {
        let trace = random_trace(rng);
        let mut m = MemorySystem::new(SccConfig::table_6_1());
        let mut now = 0u64;
        let mut latency_sum = 0u64;
        for (core, off, write, dt) in &trace {
            now += dt;
            latency_sum += m.access(*core, trace_addr(*off), *write, now);
        }
        let matrix = m.stats_matrix();
        let total: u64 = Region::ALL.iter().map(|r| matrix.region_total(*r)).sum();
        assert_eq!(total, trace.len() as u64, "every access lands exactly once");
        let agg = m.stats();
        assert_eq!(
            agg.l1_hits + agg.l2_hits + agg.private_dram,
            matrix.region_total(Region::Private),
            "service-level split covers exactly the private accesses"
        );
        assert_eq!(agg.shared_dram, matrix.region_total(Region::SharedDram));
        assert_eq!(agg.mpb, matrix.region_total(Region::Mpb));
        let cycle_total: u64 = matrix
            .per_core
            .iter()
            .flat_map(|c| c.region_cycles.iter())
            .sum();
        assert_eq!(cycle_total, latency_sum, "histogrammed cycles are exact");
        let hist_total: u64 = Region::ALL
            .iter()
            .map(|r| matrix.region_histogram(*r).total_cycles)
            .sum();
        assert_eq!(hist_total, latency_sum);
    });
}

/// Shared-DRAM reads are never cheaper than the raw service time, and
/// warm private reads are never costlier than cold ones at the same
/// address.
#[test]
fn latency_bounds() {
    check("latency_bounds", 256, |rng| {
        let core = rng.gen_range_usize(0, 48);
        let off = rng.gen_range_u64(0, 4096);
        let cfg = SccConfig::table_6_1();
        let mut m = MemorySystem::new(cfg.clone());
        let shared = m.access(core, SHARED_DRAM_BASE + off * 8, false, 0);
        assert!(shared >= cfg.dram_service_cycles);
        let cold = m.access(core, 0x2000 + off * 8, false, 1_000_000);
        let warm = m.access(core, 0x2000 + off * 8, false, 2_000_000);
        assert!(warm <= cold, "warm {warm} vs cold {cold}");
    });
}
