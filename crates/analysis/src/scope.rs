//! Stage 1 — Variable Scope Analysis.
//!
//! Extracts the per-variable record of Table 4.1 (name, type, size,
//! read/write counts, use-in/def-in sets) and assigns the initial sharing
//! status: globals start `Shared`, everything else starts `Unknown`
//! (the paper's `null`).

use crate::access::{AccessCounts, AccessMap, CountMode, VarKey};
use crate::sharing::{SharingMap, SharingStatus};
use hsm_cir::symbols::{Scope, SymbolKind, SymbolTable};
use hsm_cir::types::CType;
use hsm_cir::TranslationUnit;

/// Everything Stage 1 knows about one variable (one row of Table 4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct VariableInfo {
    /// Resolution key (name + owning function).
    pub key: VarKey,
    /// Declared type.
    pub ty: CType,
    /// Element count (the table's "Size": 3 for `int sum[3]`, 1 for scalars).
    pub size: usize,
    /// Total footprint in bytes (`mem_size` for Algorithm 3).
    pub mem_size: usize,
    /// Syntactic read/write counts.
    pub counts: AccessCounts,
    /// Functions reading the variable ("Use In"; empty = the table's `null`).
    pub used_in: Vec<String>,
    /// Functions writing the variable ("Def In").
    pub defined_in: Vec<String>,
    /// Whether the variable is global.
    pub is_global: bool,
    /// Whether its address is taken anywhere.
    pub address_taken: bool,
}

/// The output of Stage 1.
#[derive(Debug, Clone, Default)]
pub struct ScopeAnalysis {
    /// Per-variable records in declaration order.
    pub variables: Vec<VariableInfo>,
    /// Loop-weighted access counts (for Stage 4's frequency estimates).
    pub weighted: Vec<(VarKey, AccessCounts)>,
}

impl ScopeAnalysis {
    /// Runs Stage 1 over `tu`, recording initial statuses into `sharing`.
    pub fn run(tu: &TranslationUnit, symbols: &SymbolTable, sharing: &mut SharingMap) -> Self {
        let occurrence = AccessMap::compute(tu, symbols, CountMode::Occurrence);
        let weighted_map = AccessMap::compute(tu, symbols, CountMode::LoopWeighted);

        let mut variables = Vec::new();
        let mut weighted = Vec::new();
        for sym in symbols.iter() {
            if sym.kind != SymbolKind::Variable {
                continue;
            }
            // Skip pthread bookkeeping types? No — Stage 1 records them;
            // later stages and the translator decide their fate.
            let key = match &sym.scope {
                Scope::Global => VarKey::global(sym.name.clone()),
                Scope::Local(f) | Scope::Param(f) => VarKey::local(f.clone(), sym.name.clone()),
            };
            let counts = occurrence.counts(&key);
            let info = VariableInfo {
                ty: sym.ty.clone(),
                size: sym.ty.count(),
                mem_size: sym.ty.mem_size(),
                counts,
                used_in: occurrence.used_in(&key).to_vec(),
                defined_in: occurrence.defined_in(&key).to_vec(),
                is_global: sym.scope == Scope::Global,
                address_taken: occurrence.is_address_taken(&key),
                key: key.clone(),
            };
            // Initial status: globals shared, others null.
            let status = if info.is_global {
                SharingStatus::Shared
            } else {
                SharingStatus::Unknown
            };
            sharing.record(&info.key.name, status);
            weighted.push((key, weighted_map.counts(&info.key)));
            variables.push(info);
        }
        ScopeAnalysis {
            variables,
            weighted,
        }
    }

    /// Looks up a variable record by key.
    pub fn variable(&self, key: &VarKey) -> Option<&VariableInfo> {
        self.variables.iter().find(|v| &v.key == key)
    }

    /// Looks up a variable record by bare name (first match in
    /// declaration order — globals come before locals of later functions).
    pub fn variable_named(&self, name: &str) -> Option<&VariableInfo> {
        self.variables.iter().find(|v| v.key.name == name)
    }

    /// Loop-weighted counts for a variable.
    pub fn weighted_counts(&self, key: &VarKey) -> AccessCounts {
        self.weighted
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, c)| *c)
            .unwrap_or_default()
    }

    /// All global variable records.
    pub fn globals(&self) -> impl Iterator<Item = &VariableInfo> {
        self.variables.iter().filter(|v| v.is_global)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsm_cir::parser::parse;

    const EXAMPLE_4_1: &str = r#"
int global;
int *ptr;
int sum[3] = {0};

void *tf(void * tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for(local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *) local);
    }
    for(local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
"#;

    fn run(src: &str) -> (ScopeAnalysis, SharingMap) {
        let tu = parse(src).unwrap();
        let symbols = SymbolTable::build(&tu);
        let mut sharing = SharingMap::new();
        let analysis = ScopeAnalysis::run(&tu, &symbols, &mut sharing);
        (analysis, sharing)
    }

    #[test]
    fn table_4_1_sizes_and_types() {
        let (a, _) = run(EXAMPLE_4_1);
        let sum = a.variable(&VarKey::global("sum")).unwrap();
        assert_eq!(sum.size, 3);
        assert_eq!(sum.mem_size, 12);
        let threads = a.variable(&VarKey::local("main", "threads")).unwrap();
        assert_eq!(threads.size, 3);
        let global = a.variable(&VarKey::global("global")).unwrap();
        assert_eq!(global.size, 1);
        assert_eq!(global.counts, AccessCounts::default());
    }

    #[test]
    fn initial_statuses_follow_stage_1_rules() {
        let (_, sharing) = run(EXAMPLE_4_1);
        assert_eq!(sharing.status("global"), SharingStatus::Shared);
        assert_eq!(sharing.status("ptr"), SharingStatus::Shared);
        assert_eq!(sharing.status("sum"), SharingStatus::Shared);
        assert_eq!(sharing.status("tLocal"), SharingStatus::Unknown);
        assert_eq!(sharing.status("tid"), SharingStatus::Unknown);
        assert_eq!(sharing.status("local"), SharingStatus::Unknown);
        assert_eq!(sharing.status("tmp"), SharingStatus::Unknown);
        assert_eq!(sharing.status("threads"), SharingStatus::Unknown);
        assert_eq!(sharing.status("rc"), SharingStatus::Unknown);
    }

    #[test]
    fn use_def_sets_recorded() {
        let (a, _) = run(EXAMPLE_4_1);
        let sum = a.variable(&VarKey::global("sum")).unwrap();
        assert_eq!(sum.used_in, vec!["tf", "main"]);
        assert_eq!(sum.defined_in, vec!["tf"]);
        let global = a.variable(&VarKey::global("global")).unwrap();
        assert!(global.used_in.is_empty());
        assert!(global.defined_in.is_empty());
    }

    #[test]
    fn globals_iterator_only_globals() {
        let (a, _) = run(EXAMPLE_4_1);
        let names: Vec<_> = a.globals().map(|v| v.key.name.clone()).collect();
        assert_eq!(names, vec!["global", "ptr", "sum"]);
    }

    #[test]
    fn weighted_counts_available_for_partitioner() {
        let (a, _) = run(EXAMPLE_4_1);
        let rc = a.weighted_counts(&VarKey::local("main", "rc"));
        assert_eq!(rc.writes, 3);
    }

    #[test]
    fn address_taken_flag_present() {
        let (a, _) = run(EXAMPLE_4_1);
        assert!(
            a.variable(&VarKey::local("main", "tmp"))
                .unwrap()
                .address_taken
        );
        assert!(!a.variable(&VarKey::global("sum")).unwrap().address_taken);
    }
}
