//! Stage 3 — Alias and Pointer ("Points-to") Analysis (Algorithm 2).
//!
//! A dataflow points-to analysis over the CIR, replacing the CETUS built-in
//! the paper leverages: pointer relationships are collected from pointer
//! assignments (including through function calls and returns), iterated to a
//! fixed point, and classified as **definite** or **possible** (assignments
//! under conditional control flow, or pointers with several candidate
//! targets, are possible).
//!
//! Algorithm 2 then walks the relationship map: if a *shared* pointer
//! definitely points at an object, that object becomes shared too — this is
//! how `tmp` flips from private to shared in Table 4.2. A conservative mode
//! also propagates across possible edges (the paper's stated goal is a
//! conservative superset of shared data; marking a shared-reachable object
//! private would produce incorrect translated programs).

use crate::access::VarKey;
use crate::scope::ScopeAnalysis;
use crate::sharing::{SharingMap, SharingStatus};
use hsm_cir::ast::*;
use hsm_cir::symbols::{Scope, SymbolKind, SymbolTable};
use hsm_cir::TranslationUnit;
use std::collections::{BTreeMap, BTreeSet};

/// One edge in the relationship map: `pointer` may point at `target`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PointsToFact {
    /// The pointer variable.
    pub pointer: VarKey,
    /// The pointed-at variable.
    pub target: VarKey,
    /// Whether the relationship definitely holds on every execution.
    pub definite: bool,
}

/// How aggressively Algorithm 2 propagates sharing across the map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Propagation {
    /// Follow only definite edges (the literal Algorithm 2).
    DefiniteOnly,
    /// Follow definite and possible edges (conservative superset; default).
    #[default]
    Conservative,
}

/// The result of Stage 3.
#[derive(Debug, Clone, Default)]
pub struct PointsToAnalysis {
    facts: Vec<PointsToFact>,
}

impl PointsToAnalysis {
    /// Collects pointer relationships and iterates them to a fixed point.
    pub fn run(tu: &TranslationUnit, symbols: &SymbolTable) -> Self {
        let mut collector = Collector {
            symbols,
            current_fn: String::new(),
            cond_depth: 0,
            direct: BTreeSet::new(),
            copies: BTreeSet::new(),
        };
        for item in &tu.items {
            match item {
                Item::Decl(d) => {
                    collector.current_fn = String::new();
                    collector.collect_decl(d);
                }
                Item::Func(f) => {
                    collector.current_fn = f.name.clone();
                    for s in &f.body {
                        collector.collect_stmt(s);
                    }
                }
            }
        }
        collector.collect_calls(tu);

        // Fixed point: expand copy edges into direct facts.
        let mut direct: BTreeSet<(VarKey, VarKey, bool)> = collector.direct.clone();
        loop {
            let mut added = false;
            for (dst, src, copy_def) in &collector.copies {
                let new_facts: Vec<(VarKey, VarKey, bool)> = direct
                    .iter()
                    .filter(|(p, _, _)| p == src)
                    .map(|(_, t, d)| (dst.clone(), t.clone(), *d && *copy_def))
                    .collect();
                for f in new_facts {
                    // Insert, upgrading definiteness if already present.
                    if direct.contains(&(f.0.clone(), f.1.clone(), true)) {
                        continue;
                    }
                    if f.2 {
                        direct.remove(&(f.0.clone(), f.1.clone(), false));
                    }
                    if direct.insert(f) {
                        added = true;
                    }
                }
            }
            if !added {
                break;
            }
        }

        // A pointer with several distinct targets can only "possibly" point
        // at each of them.
        let mut per_ptr: BTreeMap<VarKey, Vec<(VarKey, bool)>> = BTreeMap::new();
        for (p, t, d) in direct {
            per_ptr.entry(p).or_default().push((t, d));
        }
        let mut facts = Vec::new();
        for (pointer, mut targets) in per_ptr {
            targets.sort();
            targets.dedup_by(|a, b| a.0 == b.0 && (b.1 || !a.1));
            let multi = targets
                .iter()
                .map(|(t, _)| t)
                .collect::<BTreeSet<_>>()
                .len()
                > 1;
            for (target, definite) in targets {
                facts.push(PointsToFact {
                    pointer: pointer.clone(),
                    target,
                    definite: definite && !multi,
                });
            }
        }
        PointsToAnalysis { facts }
    }

    /// All collected facts, sorted.
    pub fn facts(&self) -> &[PointsToFact] {
        &self.facts
    }

    /// Targets of `pointer` with their definiteness.
    pub fn targets(&self, pointer: &VarKey) -> Vec<(&VarKey, bool)> {
        self.facts
            .iter()
            .filter(|f| &f.pointer == pointer)
            .map(|f| (&f.target, f.definite))
            .collect()
    }

    /// Algorithm 2: update the sharing map — if a shared pointer points at
    /// an object, the object becomes shared. Iterates to a fixed point so
    /// pointer chains (`q = p; p = &x`) resolve. Afterwards, the paper's
    /// post-processing demotes globals that are entirely unused to private.
    pub fn apply_to_sharing(
        &self,
        scope: &ScopeAnalysis,
        sharing: &mut SharingMap,
        mode: Propagation,
    ) {
        // Fixed point over facts.
        loop {
            let mut changed = false;
            for fact in &self.facts {
                if !fact.definite && mode == Propagation::DefiniteOnly {
                    continue;
                }
                if sharing.status(&fact.pointer.name).is_shared()
                    && !sharing.status(&fact.target.name).is_shared()
                {
                    let got = sharing.record(&fact.target.name, SharingStatus::Shared);
                    changed |= got == SharingStatus::Shared;
                }
            }
            if !changed {
                break;
            }
        }
        // Post-processing: defined-but-entirely-unused globals become
        // private and may be removed from the source altogether.
        for var in scope.globals() {
            if var.counts.total() == 0 {
                sharing.record(&var.key.name, SharingStatus::Private);
            } else {
                // Re-record the surviving status so every variable has a
                // stage-3 entry in its history (Table 4.2's third column).
                sharing.record(&var.key.name, sharing.status(&var.key.name));
            }
        }
        for var in &scope.variables {
            if !var.is_global {
                sharing.record(&var.key.name, sharing.status(&var.key.name));
            }
        }
    }
}

struct Collector<'a> {
    symbols: &'a SymbolTable,
    current_fn: String,
    cond_depth: u32,
    /// (pointer, target, definite)
    direct: BTreeSet<(VarKey, VarKey, bool)>,
    /// (dst pointer, src pointer, definite)
    copies: BTreeSet<(VarKey, VarKey, bool)>,
}

impl Collector<'_> {
    fn resolve(&self, name: &str) -> Option<(VarKey, hsm_cir::types::CType)> {
        let sym = if self.current_fn.is_empty() {
            self.symbols.global(name)?
        } else {
            self.symbols.lookup(&self.current_fn, name)?
        };
        if sym.kind != SymbolKind::Variable {
            return None;
        }
        let key = match &sym.scope {
            Scope::Global => VarKey::global(name),
            Scope::Local(f) | Scope::Param(f) => VarKey::local(f.clone(), name),
        };
        Some((key, sym.ty.clone()))
    }

    fn is_pointer_var(&self, name: &str) -> bool {
        self.resolve(name)
            .map(|(_, ty)| ty.is_pointer() || ty.is_array())
            .unwrap_or(false)
    }

    fn definite(&self) -> bool {
        self.cond_depth == 0
    }

    fn collect_decl(&mut self, d: &Declaration) {
        for v in &d.vars {
            if let Some(init) = &v.init {
                if v.ty.is_pointer() {
                    if let Some((key, _)) = self.resolve(&v.name) {
                        self.record_pointer_rhs(&key, init);
                    }
                }
                self.collect_expr(init);
            }
        }
    }

    fn collect_stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Expr(Some(e)) => self.collect_expr(e),
            StmtKind::Decl(d) => self.collect_decl(d),
            StmtKind::Block(stmts) => {
                for st in stmts {
                    self.collect_stmt(st);
                }
            }
            StmtKind::If(c, then, els) => {
                self.collect_expr(c);
                self.cond_depth += 1;
                self.collect_stmt(then);
                if let Some(e) = els {
                    self.collect_stmt(e);
                }
                self.cond_depth -= 1;
            }
            StmtKind::While(c, body) => {
                self.collect_expr(c);
                self.cond_depth += 1;
                self.collect_stmt(body);
                self.cond_depth -= 1;
            }
            StmtKind::DoWhile(body, c) => {
                // A do-while body executes at least once: stays definite.
                self.collect_stmt(body);
                self.collect_expr(c);
            }
            StmtKind::For(init, cond, step, body) => {
                match init {
                    Some(ForInit::Decl(d)) => self.collect_decl(d),
                    Some(ForInit::Expr(e)) => self.collect_expr(e),
                    None => {}
                }
                if let Some(c) = cond {
                    self.collect_expr(c);
                }
                self.cond_depth += 1;
                if let Some(st) = step {
                    self.collect_expr(st);
                }
                self.collect_stmt(body);
                self.cond_depth -= 1;
            }
            StmtKind::Switch(scrutinee, body) => {
                self.collect_expr(scrutinee);
                self.cond_depth += 1;
                for st in body {
                    self.collect_stmt(st);
                }
                self.cond_depth -= 1;
            }
            StmtKind::Return(Some(e)) => {
                self.collect_expr(e);
                // Record the return-value pseudo-variable's targets for
                // interprocedural flow.
                if !self.current_fn.is_empty() {
                    let ret_key = VarKey::local(self.current_fn.clone(), "__return");
                    self.record_pointer_rhs(&ret_key, e);
                }
            }
            _ => {}
        }
    }

    fn collect_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Assign(AssignOp::Assign, lhs, rhs) => {
                if let Some(name) = lhs.as_ident() {
                    if self.is_pointer_var(name) {
                        if let Some((key, _)) = self.resolve(name) {
                            self.record_pointer_rhs(&key, rhs);
                        }
                    }
                }
                self.collect_expr(rhs);
            }
            ExprKind::Assign(_, lhs, rhs) => {
                self.collect_expr(lhs);
                self.collect_expr(rhs);
            }
            ExprKind::Unary(_, inner)
            | ExprKind::PostIncDec(inner, _)
            | ExprKind::Cast(_, inner)
            | ExprKind::SizeofExpr(inner) => self.collect_expr(inner),
            ExprKind::Binary(_, l, r) | ExprKind::Comma(l, r) => {
                self.collect_expr(l);
                self.collect_expr(r);
            }
            ExprKind::Ternary(c, t, f) => {
                self.collect_expr(c);
                self.cond_depth += 1;
                self.collect_expr(t);
                self.collect_expr(f);
                self.cond_depth -= 1;
            }
            ExprKind::Call(_, args) => {
                for a in args {
                    self.collect_expr(a);
                }
            }
            ExprKind::Index(b, i) => {
                self.collect_expr(b);
                self.collect_expr(i);
            }
            ExprKind::Member(b, _, _) => self.collect_expr(b),
            ExprKind::InitList(items) => {
                for it in items {
                    self.collect_expr(it);
                }
            }
            _ => {}
        }
    }

    /// Records what `rhs` makes `dst` point at.
    fn record_pointer_rhs(&mut self, dst: &VarKey, rhs: &Expr) {
        let def = self.definite();
        match &rhs.peel_casts().kind {
            ExprKind::Unary(UnaryOp::Addr, inner) => {
                if let Some(base) = inner.base_variable() {
                    if let Some((target, _)) = self.resolve(base) {
                        self.direct.insert((dst.clone(), target, def));
                    }
                }
            }
            ExprKind::Ident(name) => {
                if let Some((src, ty)) = self.resolve(name) {
                    if ty.is_array() {
                        // Array name decays: dst points at the array.
                        self.direct.insert((dst.clone(), src, def));
                    } else if ty.is_pointer() {
                        self.copies.insert((dst.clone(), src, def));
                    }
                }
            }
            ExprKind::Binary(BinaryOp::Add | BinaryOp::Sub, l, r) => {
                // Pointer arithmetic: propagate from the pointer operand.
                self.record_pointer_rhs(dst, l);
                self.record_pointer_rhs(dst, r);
            }
            ExprKind::Call(callee, _) => {
                if let Some(fname) = callee.as_ident() {
                    let ret_key = VarKey::local(fname.to_string(), "__return");
                    self.copies.insert((dst.clone(), ret_key, def));
                }
            }
            ExprKind::Ternary(_, t, f) => {
                self.cond_depth += 1;
                self.record_pointer_rhs(dst, t);
                self.record_pointer_rhs(dst, f);
                self.cond_depth -= 1;
            }
            ExprKind::Index(base, _) => {
                // `p = &a[i]` arrives as Addr(Index(..)); a bare `a[i]`
                // only matters when the element type is itself a pointer.
                if let Some(name) = base.base_variable() {
                    if let Some((src, ty)) = self.resolve(name) {
                        if matches!(ty.element(), Some(t) if t.is_pointer()) {
                            self.copies.insert((dst.clone(), src, false));
                        }
                    }
                }
            }
            _ => {}
        }
    }

    /// Interprocedural argument-to-parameter flow for every direct call.
    fn collect_calls(&mut self, tu: &TranslationUnit) {
        // Pre-compute parameter keys per function.
        let param_keys: BTreeMap<String, Vec<(VarKey, bool)>> = tu
            .functions()
            .map(|f| {
                (
                    f.name.clone(),
                    f.params
                        .iter()
                        .map(|p| {
                            (
                                VarKey::local(f.name.clone(), p.name.clone()),
                                p.ty.is_pointer(),
                            )
                        })
                        .collect(),
                )
            })
            .collect();

        for f in tu.functions() {
            self.current_fn = f.name.clone();
            let mut sites: Vec<(String, Vec<Expr>)> = Vec::new();
            for s in &f.body {
                hsm_cir::visit::walk_exprs_in_stmt(s, &mut |e| {
                    if let ExprKind::Call(callee, args) = &e.kind {
                        if let Some(name) = callee.as_ident() {
                            sites.push((name.to_string(), args.clone()));
                        }
                    }
                });
            }
            for (callee, args) in sites {
                if callee == "pthread_create" && args.len() >= 4 {
                    // Arg 4 flows into the entry function's first parameter.
                    if let Some(entry) = args[2].peel_casts().as_ident() {
                        if let Some(params) = param_keys.get(entry) {
                            if let Some((pkey, _)) = params.first() {
                                let pkey = pkey.clone();
                                self.record_pointer_rhs(&pkey, &args[3]);
                            }
                        }
                    }
                    continue;
                }
                if let Some(params) = param_keys.get(&callee) {
                    let pairs: Vec<(VarKey, Expr)> = params
                        .iter()
                        .zip(args.iter())
                        .filter(|((_, is_ptr), _)| *is_ptr)
                        .map(|((k, _), a)| (k.clone(), a.clone()))
                        .collect();
                    for (pkey, arg) in pairs {
                        self.record_pointer_rhs(&pkey, &arg);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interthread::InterThreadAnalysis;
    use crate::threads::ThreadModel;
    use hsm_cir::parser::parse;

    const EXAMPLE_4_1: &str = r#"
int global;
int *ptr;
int sum[3] = {0};

void *tf(void * tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for(local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *) local);
    }
    for(local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
"#;

    fn full_pipeline(src: &str) -> (ScopeAnalysis, SharingMap, PointsToAnalysis) {
        let tu = parse(src).unwrap();
        let symbols = SymbolTable::build(&tu);
        let mut sharing = SharingMap::new();
        let scope = ScopeAnalysis::run(&tu, &symbols, &mut sharing);
        let model = ThreadModel::discover(&tu, &Default::default());
        InterThreadAnalysis::run(&scope, &model, &mut sharing);
        let pts = PointsToAnalysis::run(&tu, &symbols);
        pts.apply_to_sharing(&scope, &mut sharing, Propagation::Conservative);
        (scope, sharing, pts)
    }

    #[test]
    fn table_4_2_after_stage_3() {
        let (_, sharing, _) = full_pipeline(EXAMPLE_4_1);
        assert_eq!(
            sharing.status("global"),
            SharingStatus::Private,
            "unused global demoted"
        );
        assert_eq!(sharing.status("ptr"), SharingStatus::Shared);
        assert_eq!(sharing.status("sum"), SharingStatus::Shared);
        assert_eq!(
            sharing.status("tmp"),
            SharingStatus::Shared,
            "pointed-at by shared ptr"
        );
        for private in ["tLocal", "tid", "local", "threads", "rc"] {
            assert_eq!(sharing.status(private), SharingStatus::Private, "{private}");
        }
    }

    #[test]
    fn ptr_definitely_points_at_tmp() {
        let (_, _, pts) = full_pipeline(EXAMPLE_4_1);
        let targets = pts.targets(&VarKey::global("ptr"));
        assert_eq!(targets.len(), 1);
        assert_eq!(targets[0].0, &VarKey::local("main", "tmp"));
        assert!(targets[0].1, "straight-line assignment is definite");
    }

    #[test]
    fn conditional_assignment_is_possible() {
        let src = r#"
int *p;
int a;
int b;
int main() {
    if (a) { p = &a; } else { p = &b; }
    return 0;
}
"#;
        let (_, _, pts) = full_pipeline(src);
        let targets = pts.targets(&VarKey::global("p"));
        assert_eq!(targets.len(), 2);
        assert!(
            targets.iter().all(|(_, d)| !d),
            "if-else targets are possible"
        );
    }

    #[test]
    fn conservative_mode_shares_possible_targets() {
        // a and b are locals of main (private after stage 2); the shared
        // global pointer may point at either, so both must become shared.
        let src = r#"
int *p;
int cond;
void *tf(void *x) { *p = 1; return x; }
int main() {
    int a = 0;
    int b = 0;
    pthread_t t;
    if (cond) { p = &a; } else { p = &b; }
    pthread_create(&t, NULL, tf, NULL);
    return 0;
}
"#;
        let (_, sharing, _) = full_pipeline(src);
        assert_eq!(sharing.status("a"), SharingStatus::Shared);
        assert_eq!(sharing.status("b"), SharingStatus::Shared);
    }

    #[test]
    fn definite_only_mode_skips_possible_edges() {
        let src = r#"
int *p;
int cond;
int main() {
    int a = 0;
    int b = 0;
    if (cond) { p = &a; } else { p = &b; }
    return 0;
}
"#;
        let tu = parse(src).unwrap();
        let symbols = SymbolTable::build(&tu);
        let mut sharing = SharingMap::new();
        let scope = ScopeAnalysis::run(&tu, &symbols, &mut sharing);
        let model = ThreadModel::discover(&tu, &Default::default());
        InterThreadAnalysis::run(&scope, &model, &mut sharing);
        let pts = PointsToAnalysis::run(&tu, &symbols);
        pts.apply_to_sharing(&scope, &mut sharing, Propagation::DefiniteOnly);
        // The if-else edges are only "possible": the literal Algorithm 2
        // must not promote the locals.
        assert_eq!(sharing.status("a"), SharingStatus::Private);
        assert_eq!(sharing.status("b"), SharingStatus::Private);
    }

    #[test]
    fn pointer_copies_chain() {
        let src = r#"
int *p;
int *q;
int x;
int main() {
    p = &x;
    q = p;
    return *q;
}
"#;
        let (_, sharing, pts) = full_pipeline(src);
        let targets = pts.targets(&VarKey::global("q"));
        assert_eq!(targets.len(), 1);
        assert_eq!(targets[0].0, &VarKey::global("x"));
        assert!(targets[0].1);
        assert_eq!(sharing.status("x"), SharingStatus::Shared);
    }

    #[test]
    fn array_decay_points_at_array() {
        let src = r#"
double data[8];
double *p;
int main() {
    p = data;
    return 0;
}
"#;
        let (_, _, pts) = full_pipeline(src);
        let targets = pts.targets(&VarKey::global("p"));
        assert_eq!(targets[0].0, &VarKey::global("data"));
    }

    #[test]
    fn address_of_element_points_at_array() {
        let src = r#"
double data[8];
double *p;
int main() {
    p = &data[3];
    return 0;
}
"#;
        let (_, _, pts) = full_pipeline(src);
        let targets = pts.targets(&VarKey::global("p"));
        assert_eq!(targets[0].0, &VarKey::global("data"));
    }

    #[test]
    fn return_value_flows_to_caller() {
        let src = r#"
int x;
int *get() { return &x; }
int main() {
    int *p;
    p = get();
    return *p;
}
"#;
        let (_, _, pts) = full_pipeline(src);
        let targets = pts.targets(&VarKey::local("main", "p"));
        assert_eq!(targets.len(), 1);
        assert_eq!(targets[0].0, &VarKey::global("x"));
    }

    #[test]
    fn argument_flows_to_parameter() {
        let src = r#"
int x;
void use(int *p) { *p = 1; }
int main() {
    use(&x);
    return 0;
}
"#;
        let (_, _, pts) = full_pipeline(src);
        let targets = pts.targets(&VarKey::local("use", "p"));
        assert_eq!(targets.len(), 1);
        assert_eq!(targets[0].0, &VarKey::global("x"));
    }

    #[test]
    fn multiple_targets_demote_definiteness() {
        let src = r#"
int *p;
int a;
int b;
int main() {
    p = &a;
    p = &b;
    return 0;
}
"#;
        let (_, _, pts) = full_pipeline(src);
        let targets = pts.targets(&VarKey::global("p"));
        assert_eq!(targets.len(), 2);
        assert!(targets.iter().all(|(_, d)| !d));
    }
}
