//! Read/write access counting (the Rd/Wr/Use-In/Def-In columns of
//! Table 4.1).
//!
//! Two counting modes are provided:
//!
//! * [`CountMode::Occurrence`] — each syntactic access site counts once.
//!   This is what Stage 1's per-variable table reports.
//! * [`CountMode::LoopWeighted`] — accesses inside loops are multiplied by
//!   the loop's trip count when it constant-folds (unknown loops use a
//!   fixed weight). Stage 4's partitioner uses this as its access-frequency
//!   estimate, which is how the paper "approximates data read and write
//!   counts from all the threads".
//!
//! Note on fidelity: the thesis' Table 4.1 mixes the two conventions (e.g.
//! `rc` is reported with loop-weighted writes while `local` is reported
//! with occurrence counts and no declaration-initializer write). We
//! implement both modes with consistent rules and record the deviation in
//! EXPERIMENTS.md.

use hsm_cir::ast::*;
use hsm_cir::parser::const_fold;
use hsm_cir::symbols::{Scope, SymbolTable};
use std::collections::HashMap;

/// How to weigh accesses inside loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CountMode {
    /// Count each syntactic access once.
    #[default]
    Occurrence,
    /// Multiply by constant-folded trip counts (default weight for
    /// unbounded loops: 10).
    LoopWeighted,
}

/// Read/write totals for one variable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCounts {
    /// Number of (possibly loop-weighted) reads.
    pub reads: u64,
    /// Number of (possibly loop-weighted) writes.
    pub writes: u64,
}

impl AccessCounts {
    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Uniquely identifies a variable: its name plus the function owning it
/// (`None` for globals), resolving C shadowing.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarKey {
    /// Variable name.
    pub name: String,
    /// Owning function for locals/params, `None` for globals.
    pub owner: Option<String>,
}

impl VarKey {
    /// A global variable key.
    pub fn global(name: impl Into<String>) -> Self {
        VarKey {
            name: name.into(),
            owner: None,
        }
    }

    /// A local/param variable key.
    pub fn local(owner: impl Into<String>, name: impl Into<String>) -> Self {
        VarKey {
            name: name.into(),
            owner: Some(owner.into()),
        }
    }
}

/// The result of the access-counting pass.
#[derive(Debug, Clone, Default)]
pub struct AccessMap {
    counts: HashMap<VarKey, AccessCounts>,
    /// Functions in which each variable is read ("Use In").
    used_in: HashMap<VarKey, Vec<String>>,
    /// Functions in which each variable is written ("Def In").
    defined_in: HashMap<VarKey, Vec<String>>,
    /// Variables whose address is taken somewhere (`&x`).
    address_taken: Vec<VarKey>,
}

impl AccessMap {
    /// Runs the counting pass over `tu`.
    pub fn compute(tu: &TranslationUnit, symbols: &SymbolTable, mode: CountMode) -> Self {
        let mut pass = Counter {
            map: AccessMap::default(),
            symbols,
            mode,
            current_fn: String::new(),
            weight: 1,
        };
        for item in &tu.items {
            match item {
                Item::Decl(_) => {
                    // Global initializers are static initialization, not
                    // runtime stores: Table 4.1 reports `sum[3] = {0}` with
                    // Wr = 2 (only the `+=` stores in `tf`).
                }
                Item::Func(f) => {
                    pass.current_fn = f.name.clone();
                    for s in &f.body {
                        pass.count_stmt(s);
                    }
                }
            }
        }
        pass.map
    }

    /// Counts for `key` (zero if never accessed).
    pub fn counts(&self, key: &VarKey) -> AccessCounts {
        self.counts.get(key).copied().unwrap_or_default()
    }

    /// Functions in which the variable is read, in first-seen order.
    pub fn used_in(&self, key: &VarKey) -> &[String] {
        self.used_in.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Functions in which the variable is written, in first-seen order.
    pub fn defined_in(&self, key: &VarKey) -> &[String] {
        self.defined_in.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether the variable's address is taken anywhere.
    pub fn is_address_taken(&self, key: &VarKey) -> bool {
        self.address_taken.contains(key)
    }

    /// All tracked variable keys.
    pub fn keys(&self) -> impl Iterator<Item = &VarKey> {
        self.counts.keys()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ctx {
    Read,
    Write,
    ReadWrite,
}

struct Counter<'a> {
    map: AccessMap,
    symbols: &'a SymbolTable,
    mode: CountMode,
    current_fn: String,
    weight: u64,
}

/// Loop weight applied to loops whose trip count does not constant-fold.
const UNKNOWN_LOOP_WEIGHT: u64 = 10;

impl Counter<'_> {
    fn resolve(&self, name: &str) -> Option<VarKey> {
        let sym = if self.current_fn.is_empty() {
            self.symbols.global(name)?
        } else {
            self.symbols.lookup(&self.current_fn, name)?
        };
        if sym.kind != hsm_cir::symbols::SymbolKind::Variable {
            return None;
        }
        Some(match &sym.scope {
            Scope::Global => VarKey::global(name),
            Scope::Local(f) | Scope::Param(f) => VarKey::local(f.clone(), name),
        })
    }

    fn bump(&mut self, name: &str, ctx: Ctx) {
        let Some(key) = self.resolve(name) else {
            return;
        };
        let c = self.map.counts.entry(key.clone()).or_default();
        let w = self.weight;
        match ctx {
            Ctx::Read => c.reads += w,
            Ctx::Write => c.writes += w,
            Ctx::ReadWrite => {
                c.reads += w;
                c.writes += w;
            }
        }
        if !self.current_fn.is_empty() {
            if matches!(ctx, Ctx::Read | Ctx::ReadWrite) {
                let v = self.map.used_in.entry(key.clone()).or_default();
                if !v.contains(&self.current_fn) {
                    v.push(self.current_fn.clone());
                }
            }
            if matches!(ctx, Ctx::Write | Ctx::ReadWrite) {
                let v = self.map.defined_in.entry(key).or_default();
                if !v.contains(&self.current_fn) {
                    v.push(self.current_fn.clone());
                }
            }
        }
    }

    fn count_decl(&mut self, d: &Declaration) {
        for v in &d.vars {
            if let Some(init) = &v.init {
                self.count_expr(init, Ctx::Read);
                self.bump(&v.name, Ctx::Write);
            }
        }
    }

    fn count_stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Expr(Some(e)) => self.count_expr(e, Ctx::Read),
            StmtKind::Expr(None) | StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Decl(d) => self.count_decl(d),
            StmtKind::Block(stmts) => {
                for st in stmts {
                    self.count_stmt(st);
                }
            }
            StmtKind::If(c, then, els) => {
                self.count_expr(c, Ctx::Read);
                self.count_stmt(then);
                if let Some(e) = els {
                    self.count_stmt(e);
                }
            }
            StmtKind::While(c, body) | StmtKind::DoWhile(body, c) => {
                let w = self.loop_weight(None);
                self.with_weight(w, |this| {
                    this.count_expr(c, Ctx::Read);
                    this.count_stmt(body);
                });
            }
            StmtKind::For(init, cond, step, body) => {
                match init {
                    Some(ForInit::Decl(d)) => self.count_decl(d),
                    Some(ForInit::Expr(e)) => self.count_expr(e, Ctx::Read),
                    None => {}
                }
                let trips = trip_count(init.as_ref(), cond.as_ref(), step.as_ref());
                let w = self.loop_weight(trips);
                self.with_weight(w, |this| {
                    if let Some(c) = cond {
                        this.count_expr(c, Ctx::Read);
                    }
                    if let Some(st) = step {
                        this.count_expr(st, Ctx::Read);
                    }
                    this.count_stmt(body);
                });
            }
            StmtKind::Switch(scrutinee, body) => {
                self.count_expr(scrutinee, Ctx::Read);
                for st in body {
                    self.count_stmt(st);
                }
            }
            StmtKind::Case(_) | StmtKind::Default => {}
            StmtKind::Return(Some(e)) => self.count_expr(e, Ctx::Read),
            StmtKind::Return(None) => {}
        }
    }

    fn loop_weight(&self, trips: Option<u64>) -> u64 {
        match self.mode {
            CountMode::Occurrence => 1,
            CountMode::LoopWeighted => trips.unwrap_or(UNKNOWN_LOOP_WEIGHT),
        }
    }

    fn with_weight(&mut self, factor: u64, f: impl FnOnce(&mut Self)) {
        let saved = self.weight;
        self.weight = saved.saturating_mul(factor);
        f(self);
        self.weight = saved;
    }

    fn count_expr(&mut self, e: &Expr, ctx: Ctx) {
        match &e.kind {
            ExprKind::Ident(name) => self.bump(name, ctx),
            ExprKind::IntLit(_)
            | ExprKind::FloatLit(_)
            | ExprKind::CharLit(_)
            | ExprKind::StrLit(_)
            | ExprKind::SizeofType(_) => {}
            ExprKind::Assign(op, lhs, rhs) => {
                let lhs_ctx = if op.binary_op().is_some() {
                    Ctx::ReadWrite
                } else {
                    Ctx::Write
                };
                self.count_expr(lhs, lhs_ctx);
                self.count_expr(rhs, Ctx::Read);
            }
            ExprKind::Unary(UnaryOp::PreInc | UnaryOp::PreDec, inner) => {
                self.count_expr(inner, Ctx::ReadWrite)
            }
            ExprKind::PostIncDec(inner, _) => self.count_expr(inner, Ctx::ReadWrite),
            ExprKind::Unary(UnaryOp::Addr, inner) => {
                // Taking an address reads the variable's location; the
                // paper's table counts `&tmp` as a read of `tmp`.
                if let Some(base) = inner.base_variable() {
                    if let Some(key) = self.resolve(base) {
                        if !self.map.address_taken.contains(&key) {
                            self.map.address_taken.push(key);
                        }
                    }
                    self.bump(base, Ctx::Read);
                }
                // Index expressions inside still read their indices.
                if let ExprKind::Index(_, idx) = &inner.kind {
                    self.count_expr(idx, Ctx::Read);
                }
            }
            ExprKind::Unary(UnaryOp::Deref, inner) => {
                // `*p` in any context reads the pointer itself; the access
                // through it is attributed to the pointer variable.
                self.count_expr(inner, ctx)
            }
            ExprKind::Unary(_, inner) => self.count_expr(inner, Ctx::Read),
            ExprKind::Binary(_, l, r) => {
                self.count_expr(l, Ctx::Read);
                self.count_expr(r, Ctx::Read);
            }
            ExprKind::Ternary(c, t, f) => {
                self.count_expr(c, Ctx::Read);
                self.count_expr(t, ctx);
                self.count_expr(f, ctx);
            }
            ExprKind::Call(_, args) => {
                for a in args {
                    self.count_expr(a, Ctx::Read);
                }
            }
            ExprKind::Index(base, idx) => {
                self.count_expr(idx, Ctx::Read);
                // The element access is attributed to the base variable.
                self.count_expr(base, ctx);
            }
            ExprKind::Member(base, _, _) => self.count_expr(base, ctx),
            ExprKind::Cast(_, inner) | ExprKind::SizeofExpr(inner) => {
                // sizeof does not evaluate, but the paper's occurrence
                // counting is syntactic; treat as read for uniformity.
                self.count_expr(inner, ctx)
            }
            ExprKind::Comma(l, r) => {
                self.count_expr(l, Ctx::Read);
                self.count_expr(r, ctx);
            }
            ExprKind::InitList(items) => {
                for it in items {
                    self.count_expr(it, Ctx::Read);
                }
            }
        }
    }
}

/// Constant-folds the trip count of a canonical counted `for` loop
/// (`for (i = a; i < b; i++)` and friends).
pub fn trip_count(init: Option<&ForInit>, cond: Option<&Expr>, step: Option<&Expr>) -> Option<u64> {
    let (ivar, start) = match init? {
        ForInit::Expr(e) => match &e.kind {
            ExprKind::Assign(AssignOp::Assign, lhs, rhs) => {
                (lhs.as_ident()?.to_string(), const_fold(rhs)? as i64)
            }
            _ => return None,
        },
        ForInit::Decl(d) => {
            let v = d.vars.first()?;
            (v.name.clone(), const_fold(v.init.as_ref()?)? as i64)
        }
    };
    let (bound, inclusive) = match &cond?.kind {
        ExprKind::Binary(op, lhs, rhs) if lhs.as_ident() == Some(&ivar) => {
            let b = const_fold(rhs)? as i64;
            match op {
                BinaryOp::Lt => (b, false),
                BinaryOp::Le => (b, true),
                _ => return None,
            }
        }
        _ => return None,
    };
    let stride = match &step?.kind {
        ExprKind::PostIncDec(lhs, true) if lhs.as_ident() == Some(&ivar) => 1i64,
        ExprKind::Unary(UnaryOp::PreInc, lhs) if lhs.as_ident() == Some(&ivar) => 1,
        ExprKind::Assign(AssignOp::AddAssign, lhs, rhs) if lhs.as_ident() == Some(&ivar) => {
            const_fold(rhs)? as i64
        }
        _ => return None,
    };
    if stride <= 0 {
        return None;
    }
    let span = bound - start + i64::from(inclusive);
    if span <= 0 {
        return Some(0);
    }
    Some(((span + stride - 1) / stride) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsm_cir::parser::parse;

    fn analyze(src: &str, mode: CountMode) -> (AccessMap, SymbolTable) {
        let tu = parse(src).expect("parse");
        let symbols = SymbolTable::build(&tu);
        let map = AccessMap::compute(&tu, &symbols, mode);
        (map, symbols)
    }

    const EXAMPLE_4_1: &str = r#"
int global;
int *ptr;
int sum[3] = {0};

void *tf(void * tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for(local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *) local);
    }
    for(local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
"#;

    #[test]
    fn example_4_1_occurrence_counts() {
        let (map, _) = analyze(EXAMPLE_4_1, CountMode::Occurrence);
        // global: never accessed.
        assert_eq!(
            map.counts(&VarKey::global("global")),
            AccessCounts::default()
        );
        // ptr: written once (main), read once (*ptr in tf).
        let ptr = map.counts(&VarKey::global("ptr"));
        assert_eq!((ptr.reads, ptr.writes), (1, 1));
        // sum: += twice (rd+wr each) and one read in printf.
        let sum = map.counts(&VarKey::global("sum"));
        assert_eq!((sum.reads, sum.writes), (3, 2));
        // tLocal: 1 decl write; reads: two indices + one operand = 3.
        let tl = map.counts(&VarKey::local("tf", "tLocal"));
        assert_eq!((tl.reads, tl.writes), (3, 1));
        // tid: read once in the cast.
        let tid = map.counts(&VarKey::local("tf", "tid"));
        assert_eq!((tid.reads, tid.writes), (1, 0));
        // threads: &threads[local] (read) + threads[local] in join (read).
        let th = map.counts(&VarKey::local("main", "threads"));
        assert_eq!((th.reads, th.writes), (2, 0));
        // rc: written once syntactically, never read.
        let rc = map.counts(&VarKey::local("main", "rc"));
        assert_eq!((rc.reads, rc.writes), (0, 1));
        // local: 8 reads (2x: cond, step, index, launch-arg), 5 writes
        // (decl init + 2x loop init/step).
        let local = map.counts(&VarKey::local("main", "local"));
        assert_eq!((local.reads, local.writes), (8, 5));
    }

    #[test]
    fn example_4_1_loop_weighted_counts() {
        let (map, _) = analyze(EXAMPLE_4_1, CountMode::LoopWeighted);
        // rc is written once per iteration of a 3-trip loop: matches the
        // thesis table's Wr = 3.
        let rc = map.counts(&VarKey::local("main", "rc"));
        assert_eq!(rc.writes, 3);
        // sum: 2 rw per tf call (not weighted: tf body has no loop) plus
        // 3 printf reads.
        let sum = map.counts(&VarKey::global("sum"));
        assert_eq!(sum.reads, 2 + 3);
    }

    #[test]
    fn use_def_sets_match_table_4_1() {
        let (map, _) = analyze(EXAMPLE_4_1, CountMode::Occurrence);
        assert_eq!(map.used_in(&VarKey::global("ptr")), ["tf"]);
        assert_eq!(map.defined_in(&VarKey::global("ptr")), ["main"]);
        assert_eq!(map.used_in(&VarKey::global("sum")), ["tf", "main"]);
        assert_eq!(map.defined_in(&VarKey::global("sum")), ["tf"]);
        assert!(map.used_in(&VarKey::global("global")).is_empty());
        assert!(map.defined_in(&VarKey::global("global")).is_empty());
        assert_eq!(map.defined_in(&VarKey::local("main", "rc")), ["main"]);
    }

    #[test]
    fn address_taken_is_tracked() {
        let (map, _) = analyze(EXAMPLE_4_1, CountMode::Occurrence);
        assert!(map.is_address_taken(&VarKey::local("main", "tmp")));
        assert!(map.is_address_taken(&VarKey::local("main", "threads")));
        assert!(!map.is_address_taken(&VarKey::global("sum")));
    }

    #[test]
    fn trip_count_canonical_forms() {
        let src = "int main() { int i; int a[100]; for (i = 0; i < 10; i++) a[i] = i; for (i = 2; i <= 10; i += 2) a[i] = i; return 0; }";
        let tu = parse(src).unwrap();
        let main = tu.function("main").unwrap();
        let StmtKind::For(init, cond, step, _) = &main.body[2].kind else {
            panic!()
        };
        assert_eq!(
            trip_count(init.as_ref(), cond.as_ref(), step.as_ref()),
            Some(10)
        );
        let StmtKind::For(init, cond, step, _) = &main.body[3].kind else {
            panic!()
        };
        assert_eq!(
            trip_count(init.as_ref(), cond.as_ref(), step.as_ref()),
            Some(5)
        );
    }

    #[test]
    fn unknown_loops_get_default_weight() {
        let src = "int g; int main() { int n; while (n > 0) { g = g + 1; n--; } return 0; }";
        let (map, _) = analyze(src, CountMode::LoopWeighted);
        let g = map.counts(&VarKey::global("g"));
        assert_eq!(g.writes, UNKNOWN_LOOP_WEIGHT);
        assert_eq!(g.reads, UNKNOWN_LOOP_WEIGHT);
    }

    #[test]
    fn nested_loops_multiply() {
        let src = "int g; int main() { int i; int j; for (i = 0; i < 4; i++) { for (j = 0; j < 5; j++) { g = 1; } } return 0; }";
        let (map, _) = analyze(src, CountMode::LoopWeighted);
        assert_eq!(map.counts(&VarKey::global("g")).writes, 20);
    }

    #[test]
    fn shadowing_local_is_counted_separately() {
        let src = "int x; int main() { int x; x = 1; return 0; } int f() { x = 2; return 0; }";
        let (map, _) = analyze(src, CountMode::Occurrence);
        assert_eq!(map.counts(&VarKey::local("main", "x")).writes, 1);
        assert_eq!(map.counts(&VarKey::global("x")).writes, 1);
    }

    #[test]
    fn compound_assign_counts_read_and_write() {
        let src = "int a; int main() { a += 2; return 0; }";
        let (map, _) = analyze(src, CountMode::Occurrence);
        let a = map.counts(&VarKey::global("a"));
        assert_eq!((a.reads, a.writes), (1, 1));
    }

    #[test]
    fn zero_trip_loop_counts_zero_in_weighted_mode() {
        let src = "int g; int main() { int i; for (i = 5; i < 5; i++) { g = 1; } return 0; }";
        let (map, _) = analyze(src, CountMode::LoopWeighted);
        assert_eq!(map.counts(&VarKey::global("g")).writes, 0);
    }
}
