//! Sharing status tracking (the right-hand columns of Table 4.2).
//!
//! Each variable carries a three-valued status: `null` (unknown), `false`
//! (private) or `true` (shared). The paper's update discipline (§4.1):
//! *"the sharing status may be refined from true to false or false to true
//! once, but it will not revert. Changes from null are always accepted."*

use std::collections::HashMap;
use std::fmt;

/// Three-valued sharing status of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SharingStatus {
    /// Not yet determined (the paper's `null`).
    #[default]
    Unknown,
    /// Determined private (`false`).
    Private,
    /// Determined shared (`true`).
    Shared,
}

impl SharingStatus {
    /// Whether the status is decided (not `Unknown`).
    pub fn is_decided(self) -> bool {
        self != SharingStatus::Unknown
    }

    /// Whether the variable is currently considered shared.
    pub fn is_shared(self) -> bool {
        self == SharingStatus::Shared
    }
}

impl fmt::Display for SharingStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SharingStatus::Unknown => write!(f, "null"),
            SharingStatus::Private => write!(f, "false"),
            SharingStatus::Shared => write!(f, "true"),
        }
    }
}

/// A variable's status trajectory across the analysis stages.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatusHistory {
    /// Status after each recorded stage, in order (stage 1, 2, 3, …).
    pub stages: Vec<SharingStatus>,
}

impl StatusHistory {
    /// The latest status (`Unknown` if no stage recorded yet).
    pub fn current(&self) -> SharingStatus {
        self.stages.last().copied().unwrap_or_default()
    }

    /// The status after the 1-based `stage` (saturating to the latest).
    pub fn after_stage(&self, stage: usize) -> SharingStatus {
        if self.stages.is_empty() {
            return SharingStatus::Unknown;
        }
        let idx = stage.min(self.stages.len()).saturating_sub(1);
        self.stages[idx]
    }
}

/// The sharing-status map updated by stages 1–3 (Table 4.2).
///
/// Enforces the paper's monotonic update discipline: once a status has
/// flipped between `Private` and `Shared` it is pinned; changes from
/// `Unknown` are always accepted.
#[derive(Debug, Clone, Default)]
pub struct SharingMap {
    entries: HashMap<String, StatusHistory>,
    flipped: HashMap<String, bool>,
    order: Vec<String>,
}

impl SharingMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the end-of-stage status for `var`, subject to the update
    /// discipline. Returns the status actually recorded.
    ///
    /// ```
    /// use hsm_analysis::sharing::{SharingMap, SharingStatus};
    /// let mut m = SharingMap::new();
    /// m.record("x", SharingStatus::Unknown);   // stage 1: undecided
    /// m.record("x", SharingStatus::Private);   // stage 2: from null — ok
    /// m.record("x", SharingStatus::Shared);    // stage 3: first flip — ok
    /// assert_eq!(m.status("x"), SharingStatus::Shared);
    /// // A second flip is rejected; the status stays pinned.
    /// m.record("x", SharingStatus::Private);
    /// assert_eq!(m.status("x"), SharingStatus::Shared);
    /// ```
    pub fn record(&mut self, var: &str, status: SharingStatus) -> SharingStatus {
        if !self.entries.contains_key(var) {
            self.order.push(var.to_string());
        }
        let hist = self.entries.entry(var.to_string()).or_default();
        let prev = hist.current();
        let flipped = self.flipped.entry(var.to_string()).or_insert(false);
        let accepted = match (prev, status) {
            // From null, always accepted.
            (SharingStatus::Unknown, s) => s,
            // No change.
            (p, s) if p == s => s,
            // First decided-to-decided flip allowed; later ones rejected.
            (_, s) if !*flipped => {
                *flipped = true;
                s
            }
            (p, _) => p,
        };
        hist.stages.push(accepted);
        accepted
    }

    /// The current status of `var` (`Unknown` if never recorded).
    pub fn status(&self, var: &str) -> SharingStatus {
        self.entries
            .get(var)
            .map(|h| h.current())
            .unwrap_or_default()
    }

    /// The full trajectory of `var`, if recorded.
    pub fn history(&self, var: &str) -> Option<&StatusHistory> {
        self.entries.get(var)
    }

    /// Variable names currently marked shared, in first-seen order.
    pub fn shared_variables(&self) -> Vec<&str> {
        self.order
            .iter()
            .filter(|v| self.status(v).is_shared())
            .map(|s| s.as_str())
            .collect()
    }

    /// All recorded variable names in first-seen order.
    pub fn variables(&self) -> impl Iterator<Item = &str> {
        self.order.iter().map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_to_anything_is_accepted() {
        let mut m = SharingMap::new();
        assert_eq!(m.record("a", SharingStatus::Shared), SharingStatus::Shared);
        let mut m2 = SharingMap::new();
        assert_eq!(
            m2.record("a", SharingStatus::Private),
            SharingStatus::Private
        );
    }

    #[test]
    fn one_flip_allowed_then_pinned() {
        let mut m = SharingMap::new();
        m.record("g", SharingStatus::Shared); // stage 1 (global)
        m.record("g", SharingStatus::Shared); // stage 2 keeps
        assert_eq!(
            m.record("g", SharingStatus::Private),
            SharingStatus::Private
        ); // stage 3 flip
        assert_eq!(m.record("g", SharingStatus::Shared), SharingStatus::Private);
        // pinned
    }

    #[test]
    fn same_value_does_not_consume_flip() {
        let mut m = SharingMap::new();
        m.record("x", SharingStatus::Private);
        m.record("x", SharingStatus::Private);
        m.record("x", SharingStatus::Private);
        // Flip still available.
        assert_eq!(m.record("x", SharingStatus::Shared), SharingStatus::Shared);
    }

    #[test]
    fn table_4_2_trajectories() {
        // Reproduce the exact trajectories of Table 4.2.
        let expect = [
            (
                "global",
                [
                    SharingStatus::Shared,
                    SharingStatus::Shared,
                    SharingStatus::Private,
                ],
            ),
            (
                "ptr",
                [
                    SharingStatus::Shared,
                    SharingStatus::Shared,
                    SharingStatus::Shared,
                ],
            ),
            (
                "sum",
                [
                    SharingStatus::Shared,
                    SharingStatus::Shared,
                    SharingStatus::Shared,
                ],
            ),
            (
                "tLocal",
                [
                    SharingStatus::Unknown,
                    SharingStatus::Private,
                    SharingStatus::Private,
                ],
            ),
            (
                "tmp",
                [
                    SharingStatus::Unknown,
                    SharingStatus::Private,
                    SharingStatus::Shared,
                ],
            ),
        ];
        for (name, stages) in expect {
            let mut m = SharingMap::new();
            for s in stages {
                m.record(name, s);
            }
            assert_eq!(m.history(name).unwrap().stages, stages.to_vec(), "{name}");
        }
    }

    #[test]
    fn after_stage_saturates() {
        let mut m = SharingMap::new();
        m.record("x", SharingStatus::Shared);
        let h = m.history("x").unwrap();
        assert_eq!(h.after_stage(1), SharingStatus::Shared);
        assert_eq!(h.after_stage(3), SharingStatus::Shared);
    }

    #[test]
    fn shared_variables_preserves_order() {
        let mut m = SharingMap::new();
        m.record("b", SharingStatus::Shared);
        m.record("a", SharingStatus::Shared);
        m.record("c", SharingStatus::Private);
        assert_eq!(m.shared_variables(), vec!["b", "a"]);
    }

    #[test]
    fn display_matches_paper_vocabulary() {
        assert_eq!(SharingStatus::Unknown.to_string(), "null");
        assert_eq!(SharingStatus::Private.to_string(), "false");
        assert_eq!(SharingStatus::Shared.to_string(), "true");
    }
}
