//! # hsm-analysis — Stages 1–3 of the HSM translation framework
//!
//! Implements the analysis half of the paper *Enabling Multi-threaded
//! Applications on Hybrid Shared Memory Manycore Architectures*:
//!
//! * **Stage 1** ([`scope`]) — variable scope analysis: per-variable name,
//!   type, size, read/write counts and use/def function sets (Table 4.1).
//! * **Stage 2** ([`interthread`]) — inter-thread analysis (Algorithm 1):
//!   which variables are seen by no/one/multiple threads; locals become
//!   private, globals referenced from threads stay shared.
//! * **Stage 3** ([`points_to`]) — interprocedural points-to analysis
//!   (Algorithm 2): objects definitely pointed at by shared pointers become
//!   shared (`tmp` in Table 4.2); unused globals are demoted to private.
//!
//! [`ProgramAnalysis::analyze`] runs all three and snapshots the sharing
//! status after each stage, reproducing Table 4.2 exactly.
//!
//! ```
//! # fn main() -> Result<(), hsm_cir::error::ParseError> {
//! use hsm_analysis::{ProgramAnalysis, sharing::SharingStatus};
//! let tu = hsm_cir::parse(r#"
//!     int *ptr;
//!     void *tf(void *tid) { *ptr = 1; return tid; }
//!     int main() {
//!         int tmp = 1;
//!         pthread_t t;
//!         ptr = &tmp;
//!         pthread_create(&t, NULL, tf, NULL);
//!         return 0;
//!     }
//! "#)?;
//! let analysis = ProgramAnalysis::analyze(&tu);
//! // `tmp` is local to main but escapes through the shared pointer.
//! assert_eq!(analysis.final_status("tmp"), SharingStatus::Shared);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod access;
pub mod cfg;
pub mod interthread;
pub mod manifest;
pub mod points_to;
pub mod report;
pub mod scope;
pub mod sharing;
pub mod threads;

use hsm_cir::symbols::SymbolTable;
use hsm_cir::TranslationUnit;
use sharing::{SharingMap, SharingStatus};
use std::collections::BTreeMap;

pub use access::{AccessCounts, AccessMap, CountMode, VarKey};
pub use interthread::{InterThreadAnalysis, ThreadPresence};
pub use manifest::{ClassificationManifest, RegionVerdict, VarVerdict};
pub use points_to::{PointsToAnalysis, PointsToFact, Propagation};
pub use scope::{ScopeAnalysis, VariableInfo};
pub use threads::{ThreadLaunch, ThreadModel};

/// The combined result of running stages 1–3 on a translation unit.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    /// Symbol table of the analyzed unit.
    pub symbols: SymbolTable,
    /// Stage 1 output.
    pub scope: ScopeAnalysis,
    /// Discovered thread structure.
    pub threads: ThreadModel,
    /// Stage 2 output.
    pub interthread: InterThreadAnalysis,
    /// Stage 3 output.
    pub points_to: PointsToAnalysis,
    /// Final sharing map (after stage 3).
    pub sharing: SharingMap,
    /// Status snapshots keyed by variable name, one per stage.
    snapshots: [BTreeMap<String, SharingStatus>; 3],
}

impl ProgramAnalysis {
    /// Runs all three analysis stages with conservative pointer
    /// propagation (the default).
    pub fn analyze(tu: &TranslationUnit) -> Self {
        Self::analyze_with(tu, Propagation::Conservative)
    }

    /// Runs all three analysis stages with the given propagation mode.
    pub fn analyze_with(tu: &TranslationUnit, mode: Propagation) -> Self {
        let symbols = SymbolTable::build(tu);
        let mut sharing = SharingMap::new();

        let scope = ScopeAnalysis::run(tu, &symbols, &mut sharing);
        let snap1 = snapshot(&scope, &sharing);

        let threads = ThreadModel::discover(tu, &Default::default());
        let interthread = InterThreadAnalysis::run(&scope, &threads, &mut sharing);
        let snap2 = snapshot(&scope, &sharing);

        let points_to = PointsToAnalysis::run(tu, &symbols);
        points_to.apply_to_sharing(&scope, &mut sharing, mode);
        let snap3 = snapshot(&scope, &sharing);

        ProgramAnalysis {
            symbols,
            scope,
            threads,
            interthread,
            points_to,
            sharing,
            snapshots: [snap1, snap2, snap3],
        }
    }

    /// The sharing status of `name` after the 1-based `stage` (1–3).
    ///
    /// # Panics
    ///
    /// Panics if `stage` is not in `1..=3`.
    pub fn status_after_stage(&self, name: &str, stage: usize) -> SharingStatus {
        assert!((1..=3).contains(&stage), "stage must be 1..=3");
        self.snapshots[stage - 1]
            .get(name)
            .copied()
            .unwrap_or_default()
    }

    /// The final (post-stage-3) sharing status of `name`.
    pub fn final_status(&self, name: &str) -> SharingStatus {
        self.sharing.status(name)
    }

    /// Variables that must be mapped to shared memory, in declaration
    /// order, with their Stage 1 records. This is the set handed to the
    /// Stage 4 partitioner.
    pub fn shared_variables(&self) -> Vec<&VariableInfo> {
        self.scope
            .variables
            .iter()
            .filter(|v| self.final_status(&v.key.name).is_shared())
            .collect()
    }

    /// Renders Table 4.1 for this program.
    pub fn render_table_4_1(&self) -> String {
        report::table_4_1(self)
    }

    /// Renders Table 4.2 for this program.
    pub fn render_table_4_2(&self) -> String {
        report::table_4_2(self)
    }
}

fn snapshot(scope: &ScopeAnalysis, sharing: &SharingMap) -> BTreeMap<String, SharingStatus> {
    scope
        .variables
        .iter()
        .map(|v| (v.key.name.clone(), sharing.status(&v.key.name)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsm_cir::parser::parse;

    const EXAMPLE_4_1: &str = r#"
int global;
int *ptr;
int sum[3] = {0};

void *tf(void * tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for(local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *) local);
    }
    for(local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
"#;

    /// The full Table 4.2 from the thesis, reproduced cell by cell.
    #[test]
    fn table_4_2_exact() {
        use SharingStatus::*;
        let tu = parse(EXAMPLE_4_1).unwrap();
        let a = ProgramAnalysis::analyze(&tu);
        let expected = [
            ("global", Shared, Shared, Private),
            ("ptr", Shared, Shared, Shared),
            ("sum", Shared, Shared, Shared),
            ("tLocal", Unknown, Private, Private),
            ("tid", Unknown, Private, Private),
            ("local", Unknown, Private, Private),
            ("tmp", Unknown, Private, Shared),
            ("threads", Unknown, Private, Private),
            ("rc", Unknown, Private, Private),
        ];
        for (name, s1, s2, s3) in expected {
            assert_eq!(a.status_after_stage(name, 1), s1, "{name} stage 1");
            assert_eq!(a.status_after_stage(name, 2), s2, "{name} stage 2");
            assert_eq!(a.status_after_stage(name, 3), s3, "{name} stage 3");
        }
    }

    #[test]
    fn shared_set_feeds_partitioner() {
        let tu = parse(EXAMPLE_4_1).unwrap();
        let a = ProgramAnalysis::analyze(&tu);
        let names: Vec<_> = a
            .shared_variables()
            .iter()
            .map(|v| v.key.name.clone())
            .collect();
        assert_eq!(names, vec!["ptr", "sum", "tmp"]);
    }

    #[test]
    fn status_of_unknown_variable_is_unknown() {
        let tu = parse("int main() { return 0; }").unwrap();
        let a = ProgramAnalysis::analyze(&tu);
        assert_eq!(a.final_status("nope"), SharingStatus::Unknown);
    }

    #[test]
    #[should_panic(expected = "stage must be 1..=3")]
    fn stage_out_of_range_panics() {
        let tu = parse("int main() { return 0; }").unwrap();
        let a = ProgramAnalysis::analyze(&tu);
        let _ = a.status_after_stage("x", 4);
    }

    #[test]
    fn program_without_threads_has_no_shared_locals() {
        let tu = parse("int g; int main() { int l = g; return l; }").unwrap();
        let a = ProgramAnalysis::analyze(&tu);
        assert_eq!(a.final_status("l"), SharingStatus::Private);
    }
}
