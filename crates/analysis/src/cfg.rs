//! Intra-procedural control-flow graphs.
//!
//! Built per function from the structured AST. The points-to stage uses the
//! branch structure implicitly; the CFG exists for pass authors that need
//! explicit join points (and mirrors the "Cetus-generated control-flow
//! graphs" the paper mentions traversing).

use hsm_cir::ast::*;
use std::collections::BTreeSet;
use std::fmt;

/// Index of a basic block within a [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub usize);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A basic block: a straight-line run of statement node ids.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BasicBlock {
    /// Statement/expression node ids executed in this block, in order.
    pub stmts: Vec<NodeId>,
    /// Successor blocks.
    pub succs: Vec<BlockId>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
}

/// A per-function control-flow graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Cfg {
    /// Function name.
    pub function: String,
    /// Blocks; block 0 is the entry, the last block is the exit.
    pub blocks: Vec<BasicBlock>,
}

impl Cfg {
    /// Builds the CFG of a function definition.
    pub fn build(f: &FunctionDef) -> Self {
        let mut b = Builder {
            blocks: vec![BasicBlock::default()],
            current: BlockId(0),
            breaks: Vec::new(),
            continues: Vec::new(),
            exits: Vec::new(),
        };
        for s in &f.body {
            b.stmt(s);
        }
        // Single exit block.
        let exit = b.new_block();
        let cur = b.current;
        b.edge(cur, exit);
        for ret_block in std::mem::take(&mut b.exits) {
            b.edge(ret_block, exit);
        }
        Cfg {
            function: f.name.clone(),
            blocks: b.blocks,
        }
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// The exit block id.
    pub fn exit(&self) -> BlockId {
        BlockId(self.blocks.len() - 1)
    }

    /// Blocks reachable from the entry.
    pub fn reachable(&self) -> BTreeSet<BlockId> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![self.entry()];
        while let Some(b) = stack.pop() {
            if !seen.insert(b) {
                continue;
            }
            for s in &self.blocks[b.0].succs {
                stack.push(*s);
            }
        }
        seen
    }

    /// Number of edges in the graph.
    pub fn edge_count(&self) -> usize {
        self.blocks.iter().map(|b| b.succs.len()).sum()
    }

    /// Renders a `dot`-like textual summary (for debugging).
    pub fn to_text(&self) -> String {
        let mut out = format!("cfg {} ({} blocks)\n", self.function, self.blocks.len());
        for (i, b) in self.blocks.iter().enumerate() {
            let succs: Vec<String> = b.succs.iter().map(|s| s.to_string()).collect();
            out.push_str(&format!(
                "  bb{i}: {} stmts -> [{}]\n",
                b.stmts.len(),
                succs.join(", ")
            ));
        }
        out
    }
}

struct Builder {
    blocks: Vec<BasicBlock>,
    current: BlockId,
    breaks: Vec<Vec<BlockId>>,
    continues: Vec<Vec<BlockId>>,
    exits: Vec<BlockId>,
}

impl Builder {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(BasicBlock::default());
        BlockId(self.blocks.len() - 1)
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        if !self.blocks[from.0].succs.contains(&to) {
            self.blocks[from.0].succs.push(to);
            self.blocks[to.0].preds.push(from);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Expr(_) | StmtKind::Decl(_) => {
                let cur = self.current;
                self.blocks[cur.0].stmts.push(s.id);
            }
            StmtKind::Block(stmts) => {
                for st in stmts {
                    self.stmt(st);
                }
            }
            StmtKind::If(_, then, els) => {
                let cond = self.current;
                self.blocks[cond.0].stmts.push(s.id);
                let then_block = self.new_block();
                self.edge(cond, then_block);
                self.current = then_block;
                self.stmt(then);
                let after_then = self.current;
                let join = self.new_block();
                self.edge(after_then, join);
                if let Some(e) = els {
                    let else_block = self.new_block();
                    self.edge(cond, else_block);
                    self.current = else_block;
                    self.stmt(e);
                    let after_else = self.current;
                    self.edge(after_else, join);
                } else {
                    self.edge(cond, join);
                }
                self.current = join;
            }
            StmtKind::While(_, body) => {
                let head = self.new_block();
                let cur = self.current;
                self.edge(cur, head);
                self.blocks[head.0].stmts.push(s.id);
                let body_block = self.new_block();
                let after = self.new_block();
                self.edge(head, body_block);
                self.edge(head, after);
                self.breaks.push(Vec::new());
                self.continues.push(Vec::new());
                self.current = body_block;
                self.stmt(body);
                let tail = self.current;
                self.edge(tail, head);
                for b in self.breaks.pop().unwrap() {
                    self.edge(b, after);
                }
                for c in self.continues.pop().unwrap() {
                    self.edge(c, head);
                }
                self.current = after;
            }
            StmtKind::DoWhile(body, _) => {
                let body_block = self.new_block();
                let cur = self.current;
                self.edge(cur, body_block);
                let after = self.new_block();
                self.breaks.push(Vec::new());
                self.continues.push(Vec::new());
                self.current = body_block;
                self.stmt(body);
                let tail = self.current;
                self.blocks[tail.0].stmts.push(s.id);
                self.edge(tail, body_block);
                self.edge(tail, after);
                for b in self.breaks.pop().unwrap() {
                    self.edge(b, after);
                }
                for c in self.continues.pop().unwrap() {
                    self.edge(c, tail);
                }
                self.current = after;
            }
            StmtKind::For(_, _, _, body) => {
                let head = self.new_block();
                let cur = self.current;
                self.edge(cur, head);
                self.blocks[head.0].stmts.push(s.id);
                let body_block = self.new_block();
                let after = self.new_block();
                self.edge(head, body_block);
                self.edge(head, after);
                self.breaks.push(Vec::new());
                self.continues.push(Vec::new());
                self.current = body_block;
                self.stmt(body);
                let tail = self.current;
                self.edge(tail, head);
                for b in self.breaks.pop().unwrap() {
                    self.edge(b, after);
                }
                for c in self.continues.pop().unwrap() {
                    self.edge(c, head);
                }
                self.current = after;
            }
            StmtKind::Switch(_, body) => {
                // Conservative shape: the scrutinee block branches into
                // the (fallthrough-sequential) body and past it; breaks
                // leave to the after block.
                let cond = self.current;
                self.blocks[cond.0].stmts.push(s.id);
                let body_block = self.new_block();
                let after = self.new_block();
                self.edge(cond, body_block);
                self.edge(cond, after);
                self.breaks.push(Vec::new());
                self.current = body_block;
                for st in body {
                    self.stmt(st);
                }
                let tail = self.current;
                self.edge(tail, after);
                for b in self.breaks.pop().expect("switch frame") {
                    self.edge(b, after);
                }
                self.current = after;
            }
            StmtKind::Case(_) | StmtKind::Default => {
                let cur = self.current;
                self.blocks[cur.0].stmts.push(s.id);
            }
            StmtKind::Return(_) => {
                let cur = self.current;
                self.blocks[cur.0].stmts.push(s.id);
                self.exits.push(cur);
                // Statements after a return are unreachable; start a fresh
                // block with no predecessor.
                self.current = self.new_block();
            }
            StmtKind::Break => {
                let cur = self.current;
                if let Some(level) = self.breaks.last_mut() {
                    level.push(cur);
                }
                self.current = self.new_block();
            }
            StmtKind::Continue => {
                let cur = self.current;
                if let Some(level) = self.continues.last_mut() {
                    level.push(cur);
                }
                self.current = self.new_block();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsm_cir::parser::parse;

    fn cfg_of(src: &str, name: &str) -> Cfg {
        let tu = parse(src).unwrap();
        Cfg::build(tu.function(name).unwrap())
    }

    #[test]
    fn straight_line_has_entry_and_exit() {
        let cfg = cfg_of("int f() { int a = 1; a = 2; return a; }", "f");
        assert!(cfg.blocks.len() >= 2);
        assert!(cfg.reachable().contains(&cfg.exit()));
    }

    #[test]
    fn if_else_creates_diamond() {
        let cfg = cfg_of(
            "int f(int x) { if (x) { x = 1; } else { x = 2; } return x; }",
            "f",
        );
        // entry(cond), then, join, else + exit-side blocks.
        let r = cfg.reachable();
        assert!(r.len() >= 4, "expected a diamond: {}", cfg.to_text());
        // The join block has two predecessors.
        let join_preds = cfg.blocks.iter().filter(|b| b.preds.len() >= 2).count();
        assert!(join_preds >= 1);
    }

    #[test]
    fn while_loop_has_back_edge() {
        let cfg = cfg_of("int f(int x) { while (x) { x--; } return x; }", "f");
        // A back edge exists: some block's successor has a smaller id.
        let back_edges = cfg
            .blocks
            .iter()
            .enumerate()
            .flat_map(|(i, b)| b.succs.iter().map(move |s| (i, s.0)))
            .filter(|(i, s)| s <= i)
            .count();
        assert!(back_edges >= 1, "{}", cfg.to_text());
    }

    #[test]
    fn break_exits_loop() {
        let cfg = cfg_of(
            "int f(int x) { while (1) { if (x) break; x++; } return x; }",
            "f",
        );
        assert!(cfg.reachable().contains(&cfg.exit()), "{}", cfg.to_text());
    }

    #[test]
    fn return_ends_block_and_reaches_exit() {
        let cfg = cfg_of("int f(int x) { if (x) return 1; return 0; }", "f");
        let exit = cfg.exit();
        assert!(cfg.blocks[exit.0].preds.len() >= 2, "{}", cfg.to_text());
    }

    #[test]
    fn code_after_return_is_unreachable() {
        let cfg = cfg_of("int f() { return 1; }", "f");
        // Reachable set excludes the dead block created after return
        // (unless it merged with exit).
        assert!(cfg.reachable().contains(&cfg.exit()));
    }

    #[test]
    fn do_while_executes_body_first() {
        let cfg = cfg_of("int f(int x) { do { x--; } while (x); return x; }", "f");
        // Entry must flow into the body unconditionally.
        let entry_succs = &cfg.blocks[cfg.entry().0].succs;
        assert_eq!(entry_succs.len(), 1, "{}", cfg.to_text());
    }

    #[test]
    fn edge_count_is_consistent_with_preds() {
        let cfg = cfg_of(
            "int f(int x) { for (int i = 0; i < x; i++) { if (i == 2) continue; x += i; } return x; }",
            "f",
        );
        let pred_total: usize = cfg.blocks.iter().map(|b| b.preds.len()).sum();
        assert_eq!(cfg.edge_count(), pred_total);
    }
}
