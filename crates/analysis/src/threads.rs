//! Discovery of the program's thread structure.
//!
//! Finds every `pthread_create` call, extracts the executed function (third
//! argument) and its argument (fourth argument), and records whether the
//! launch site sits inside a loop — the facts Algorithm 1 and the Stage 5
//! thread-to-process conversion (Algorithm 4) both need.

use hsm_cir::ast::{Expr, ExprKind};
use hsm_cir::visit::find_calls;
use hsm_cir::TranslationUnit;
use std::collections::BTreeSet;

/// One `pthread_create(...)` launch site.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadLaunch {
    /// Name of the thread-entry function (3rd argument).
    pub entry: String,
    /// The 4th argument passed to the entry function, printed as source.
    pub arg_src: String,
    /// Whether the 4th argument is (a cast of) the loop induction /
    /// thread-id variable, i.e. a per-thread identifier.
    pub arg_is_thread_id: bool,
    /// The name of the variable passed as the thread id, when
    /// `arg_is_thread_id` is true.
    pub thread_id_var: Option<String>,
    /// Function containing the call.
    pub in_function: String,
    /// Whether the call is lexically inside a loop.
    pub in_loop: bool,
}

/// The thread structure of a pthread program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThreadModel {
    /// All launch sites in source order.
    pub launches: Vec<ThreadLaunch>,
}

impl ThreadModel {
    /// Scans `tu` for `pthread_create` calls.
    ///
    /// The set of candidate thread-id variables `thread_id_vars` corresponds
    /// to the user-supplied set `T` of Algorithm 4; pass the loop induction
    /// variables of thread-launch loops (or leave empty to auto-detect:
    /// any bare local variable passed through a cast counts).
    pub fn discover(tu: &TranslationUnit, thread_id_vars: &BTreeSet<String>) -> Self {
        let mut launches = Vec::new();
        for site in find_calls(tu, "pthread_create") {
            let ExprKind::Call(_, args) = &site.expr.kind else {
                continue;
            };
            if args.len() < 4 {
                continue;
            }
            let Some(entry) = extract_entry_name(&args[2]) else {
                continue;
            };
            let arg = &args[3];
            let core = arg.peel_casts();
            let (arg_is_thread_id, thread_id_var) = match core.as_ident() {
                Some(name) => {
                    let is_tid = thread_id_vars.is_empty() || thread_id_vars.contains(name);
                    (is_tid && site.in_loop, is_tid.then(|| name.to_string()))
                }
                None => (false, None),
            };
            launches.push(ThreadLaunch {
                entry,
                arg_src: hsm_cir::printer::print_expr(arg),
                arg_is_thread_id,
                thread_id_var,
                in_function: site.in_function.clone(),
                in_loop: site.in_loop,
            });
        }
        ThreadModel { launches }
    }

    /// Names of all thread-entry functions, deduplicated, in launch order.
    pub fn entry_functions(&self) -> Vec<&str> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for l in &self.launches {
            if seen.insert(l.entry.as_str()) {
                out.push(l.entry.as_str());
            }
        }
        out
    }

    /// How many times `entry` appears across launch sites.
    pub fn launch_count(&self, entry: &str) -> usize {
        self.launches.iter().filter(|l| l.entry == entry).count()
    }

    /// Whether `entry` is launched from inside a loop anywhere.
    pub fn launched_in_loop(&self, entry: &str) -> bool {
        self.launches.iter().any(|l| l.entry == entry && l.in_loop)
    }

    /// Algorithm 1's classification: is `entry` executed by multiple
    /// threads? True when launched in a loop or at more than one site.
    pub fn runs_in_multiple_threads(&self, entry: &str) -> bool {
        self.launched_in_loop(entry) || self.launch_count(entry) > 1
    }
}

/// Extracts the function name from the third `pthread_create` argument,
/// peeling casts and an optional leading `&`.
fn extract_entry_name(arg: &Expr) -> Option<String> {
    let core = arg.peel_casts();
    match &core.kind {
        ExprKind::Ident(name) => Some(name.clone()),
        ExprKind::Unary(hsm_cir::ast::UnaryOp::Addr, inner) => {
            inner.peel_casts().as_ident().map(str::to_string)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsm_cir::parser::parse;

    const LOOPED: &str = r#"
void *tf(void *tid) { return tid; }
int main() {
    pthread_t threads[3];
    int local;
    for (local = 0; local < 3; local++) {
        pthread_create(&threads[local], NULL, tf, (void *) local);
    }
    return 0;
}
"#;

    #[test]
    fn discovers_looped_launch() {
        let tu = parse(LOOPED).unwrap();
        let model = ThreadModel::discover(&tu, &BTreeSet::new());
        assert_eq!(model.launches.len(), 1);
        let l = &model.launches[0];
        assert_eq!(l.entry, "tf");
        assert!(l.in_loop);
        assert!(l.arg_is_thread_id);
        assert_eq!(l.thread_id_var.as_deref(), Some("local"));
        assert!(model.runs_in_multiple_threads("tf"));
    }

    #[test]
    fn single_launch_outside_loop() {
        let src = r#"
void *worker(void *arg) { return arg; }
int main() {
    pthread_t t;
    pthread_create(&t, NULL, worker, NULL);
    return 0;
}
"#;
        let tu = parse(src).unwrap();
        let model = ThreadModel::discover(&tu, &BTreeSet::new());
        assert_eq!(model.launches.len(), 1);
        assert!(!model.launches[0].in_loop);
        assert!(!model.runs_in_multiple_threads("worker"));
    }

    #[test]
    fn two_sites_same_entry_is_multiple_threads() {
        let src = r#"
void *w(void *a) { return a; }
int main() {
    pthread_t t1, t2;
    pthread_create(&t1, NULL, w, NULL);
    pthread_create(&t2, NULL, w, NULL);
    return 0;
}
"#;
        let tu = parse(src).unwrap();
        let model = ThreadModel::discover(&tu, &BTreeSet::new());
        assert_eq!(model.launch_count("w"), 2);
        assert!(model.runs_in_multiple_threads("w"));
        assert_eq!(model.entry_functions(), vec!["w"]);
    }

    #[test]
    fn entry_through_address_of() {
        let src = r#"
void *w(void *a) { return a; }
int main() {
    pthread_t t;
    pthread_create(&t, NULL, &w, NULL);
    return 0;
}
"#;
        let tu = parse(src).unwrap();
        let model = ThreadModel::discover(&tu, &BTreeSet::new());
        assert_eq!(model.launches[0].entry, "w");
    }

    #[test]
    fn explicit_thread_id_set_restricts_detection() {
        let tu = parse(LOOPED).unwrap();
        let mut tids = BTreeSet::new();
        tids.insert("other".to_string());
        let model = ThreadModel::discover(&tu, &tids);
        assert!(!model.launches[0].arg_is_thread_id);
    }

    #[test]
    fn distinct_entries_listed_in_order() {
        let src = r#"
void *a(void *x) { return x; }
void *b(void *x) { return x; }
int main() {
    pthread_t t1, t2;
    pthread_create(&t1, NULL, b, NULL);
    pthread_create(&t2, NULL, a, NULL);
    return 0;
}
"#;
        let tu = parse(src).unwrap();
        let model = ThreadModel::discover(&tu, &BTreeSet::new());
        assert_eq!(model.entry_functions(), vec!["b", "a"]);
    }
}
