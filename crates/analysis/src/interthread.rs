//! Stage 2 — Inter-thread Analysis (Algorithm 1).
//!
//! Determines, for each variable, whether it is seen by no thread, a single
//! thread, or multiple threads, and refines sharing statuses: variables
//! confined to one function's scope become `Private`; globals referenced
//! from thread functions remain `Shared`.

use crate::access::VarKey;
use crate::scope::ScopeAnalysis;
use crate::sharing::{SharingMap, SharingStatus};
use crate::threads::ThreadModel;
use std::collections::BTreeMap;
use std::fmt;

/// Algorithm 1's three-way classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadPresence {
    /// The variable is not referenced inside any thread-entry function.
    NotInThread,
    /// Referenced only inside a thread-entry launched exactly once.
    InSingleThread,
    /// Referenced inside thread entries launched in a loop, at multiple
    /// sites, or inside more than one distinct entry.
    InMultipleThreads,
}

impl fmt::Display for ThreadPresence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadPresence::NotInThread => write!(f, "Not in Thread"),
            ThreadPresence::InSingleThread => write!(f, "In Single Thread"),
            ThreadPresence::InMultipleThreads => write!(f, "In Multiple Threads"),
        }
    }
}

/// The output of Stage 2.
#[derive(Debug, Clone, Default)]
pub struct InterThreadAnalysis {
    /// Per-variable thread presence.
    pub presence: BTreeMap<VarKey, ThreadPresence>,
}

impl InterThreadAnalysis {
    /// Implements Algorithm 1 for a single variable.
    ///
    /// `procs_containing_v` is the set of functions in which `v` appears
    /// (built from the Use-In/Def-In sets for globals, or the owning
    /// function for locals); `model` supplies the set `F` of functions
    /// called by `pthread_create` and their launch multiplicity.
    pub fn variable_in_thread(
        procs_containing_v: &[String],
        model: &ThreadModel,
    ) -> ThreadPresence {
        let entries: Vec<&String> = procs_containing_v
            .iter()
            .filter(|p| model.entry_functions().contains(&p.as_str()))
            .collect();
        if entries.is_empty() {
            return ThreadPresence::NotInThread;
        }
        if entries.len() > 1 {
            return ThreadPresence::InMultipleThreads;
        }
        let proc = entries[0];
        if model.launched_in_loop(proc) || model.launch_count(proc) > 1 {
            ThreadPresence::InMultipleThreads
        } else {
            ThreadPresence::InSingleThread
        }
    }

    /// Runs Stage 2 and records refined statuses into `sharing`.
    ///
    /// Refinement rules (matching the Table 4.2 "After Stage 2" column):
    ///
    /// * Locals and parameters are function-scoped — `Private` — even when
    ///   that function is a thread entry (each thread gets its own copy).
    /// * Globals referenced from at least one thread entry stay `Shared`.
    /// * Globals referenced only outside threads stay `Shared`
    ///   conservatively (main's writes must still be visible to later
    ///   threads); unused globals are left for Stage 3 post-processing.
    pub fn run(scope: &ScopeAnalysis, model: &ThreadModel, sharing: &mut SharingMap) -> Self {
        let mut presence = BTreeMap::new();
        for var in &scope.variables {
            let procs: Vec<String> = match &var.key.owner {
                Some(owner) => vec![owner.clone()],
                None => {
                    let mut ps = var.used_in.clone();
                    for d in &var.defined_in {
                        if !ps.contains(d) {
                            ps.push(d.clone());
                        }
                    }
                    ps
                }
            };
            let p = Self::variable_in_thread(&procs, model);
            presence.insert(var.key.clone(), p);

            let status = if var.is_global {
                SharingStatus::Shared
            } else {
                SharingStatus::Private
            };
            sharing.record(&var.key.name, status);
        }
        InterThreadAnalysis { presence }
    }

    /// The presence classification for `key`.
    pub fn presence_of(&self, key: &VarKey) -> ThreadPresence {
        self.presence
            .get(key)
            .copied()
            .unwrap_or(ThreadPresence::NotInThread)
    }

    /// Variables in the multiple-thread execution set.
    pub fn multi_thread_set(&self) -> Vec<&VarKey> {
        self.presence
            .iter()
            .filter(|(_, p)| **p == ThreadPresence::InMultipleThreads)
            .map(|(k, _)| k)
            .collect()
    }

    /// Variables in the single-thread execution set.
    pub fn single_thread_set(&self) -> Vec<&VarKey> {
        self.presence
            .iter()
            .filter(|(_, p)| **p == ThreadPresence::InSingleThread)
            .map(|(k, _)| k)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsm_cir::parser::parse;
    use hsm_cir::symbols::SymbolTable;
    use std::collections::BTreeSet;

    const EXAMPLE_4_1: &str = r#"
int global;
int *ptr;
int sum[3] = {0};

void *tf(void * tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for(local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *) local);
    }
    for(local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
"#;

    fn setup(src: &str) -> (ScopeAnalysis, ThreadModel, SharingMap, InterThreadAnalysis) {
        let tu = parse(src).unwrap();
        let symbols = SymbolTable::build(&tu);
        let mut sharing = SharingMap::new();
        let scope = ScopeAnalysis::run(&tu, &symbols, &mut sharing);
        let model = ThreadModel::discover(&tu, &BTreeSet::new());
        let inter = InterThreadAnalysis::run(&scope, &model, &mut sharing);
        (scope, model, sharing, inter)
    }

    #[test]
    fn table_4_2_stage_2_column() {
        let (_, _, sharing, _) = setup(EXAMPLE_4_1);
        assert_eq!(sharing.status("global"), SharingStatus::Shared);
        assert_eq!(sharing.status("ptr"), SharingStatus::Shared);
        assert_eq!(sharing.status("sum"), SharingStatus::Shared);
        for private in ["tLocal", "tid", "local", "tmp", "threads", "rc"] {
            assert_eq!(
                sharing.status(private),
                SharingStatus::Private,
                "{private} should be private after stage 2"
            );
        }
    }

    #[test]
    fn sum_is_in_multiple_threads() {
        let (_, _, _, inter) = setup(EXAMPLE_4_1);
        assert_eq!(
            inter.presence_of(&VarKey::global("sum")),
            ThreadPresence::InMultipleThreads
        );
        assert_eq!(
            inter.presence_of(&VarKey::global("ptr")),
            ThreadPresence::InMultipleThreads
        );
    }

    #[test]
    fn main_locals_not_in_thread() {
        let (_, _, _, inter) = setup(EXAMPLE_4_1);
        for v in ["local", "tmp", "threads", "rc"] {
            assert_eq!(
                inter.presence_of(&VarKey::local("main", v)),
                ThreadPresence::NotInThread,
                "{v}"
            );
        }
    }

    #[test]
    fn thread_locals_are_in_multiple_threads() {
        let (_, _, _, inter) = setup(EXAMPLE_4_1);
        // tLocal lives inside tf, which launches in a loop.
        assert_eq!(
            inter.presence_of(&VarKey::local("tf", "tLocal")),
            ThreadPresence::InMultipleThreads
        );
    }

    #[test]
    fn unused_global_not_in_thread_but_still_shared_after_stage_2() {
        let (_, _, sharing, inter) = setup(EXAMPLE_4_1);
        assert_eq!(
            inter.presence_of(&VarKey::global("global")),
            ThreadPresence::NotInThread
        );
        assert_eq!(sharing.status("global"), SharingStatus::Shared);
    }

    #[test]
    fn single_launch_yields_single_thread() {
        let src = r#"
int g;
void *w(void *a) { g = 1; return a; }
int main() {
    pthread_t t;
    pthread_create(&t, NULL, w, NULL);
    return 0;
}
"#;
        let (_, _, _, inter) = setup(src);
        assert_eq!(
            inter.presence_of(&VarKey::global("g")),
            ThreadPresence::InSingleThread
        );
    }

    #[test]
    fn variable_in_two_entries_is_multiple() {
        let src = r#"
int g;
void *a(void *x) { g = 1; return x; }
void *b(void *x) { g = 2; return x; }
int main() {
    pthread_t t1, t2;
    pthread_create(&t1, NULL, a, NULL);
    pthread_create(&t2, NULL, b, NULL);
    return 0;
}
"#;
        let (_, _, _, inter) = setup(src);
        assert_eq!(
            inter.presence_of(&VarKey::global("g")),
            ThreadPresence::InMultipleThreads
        );
    }

    #[test]
    fn sets_partition_correctly() {
        let (_, _, _, inter) = setup(EXAMPLE_4_1);
        let multi = inter.multi_thread_set();
        assert!(multi.contains(&&VarKey::global("sum")));
        assert!(inter.single_thread_set().is_empty());
    }
}
