//! Text-table rendering of the analysis results (Tables 4.1 and 4.2).

use crate::ProgramAnalysis;
use std::fmt::Write;

/// Renders Table 4.1: one row per variable with name, type, size,
/// read/write counts and use/def sets.
pub fn table_4_1(analysis: &ProgramAnalysis) -> String {
    let mut rows = vec![[
        "Name".to_string(),
        "Type".to_string(),
        "Size".to_string(),
        "Rd".to_string(),
        "Wr".to_string(),
        "Use In".to_string(),
        "Def In".to_string(),
    ]];
    for v in &analysis.scope.variables {
        let fmt_set = |s: &[String]| {
            if s.is_empty() {
                "null".to_string()
            } else {
                s.join(", ")
            }
        };
        rows.push([
            v.key.name.clone(),
            v.ty.decay_for_display(),
            v.size.to_string(),
            v.counts.reads.to_string(),
            v.counts.writes.to_string(),
            fmt_set(&v.used_in),
            fmt_set(&v.defined_in),
        ]);
    }
    render(&rows)
}

/// Renders Table 4.2: sharing status after each of the three stages.
pub fn table_4_2(analysis: &ProgramAnalysis) -> String {
    let mut rows = vec![[
        "Variable".to_string(),
        "Stage 1".to_string(),
        "Stage 2".to_string(),
        "Stage 3".to_string(),
    ]];
    for v in &analysis.scope.variables {
        let name = &v.key.name;
        rows.push([
            name.clone(),
            analysis.status_after_stage(name, 1).to_string(),
            analysis.status_after_stage(name, 2).to_string(),
            analysis.status_after_stage(name, 3).to_string(),
        ]);
    }
    render(&rows)
}

/// Aligns rows into a monospace table.
fn render<const N: usize>(rows: &[[String; N]]) -> String {
    let mut widths = [0usize; N];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:<w$}", cell, w = widths[i] + 2);
        }
        out.push('\n');
        if r == 0 {
            let total: usize = widths.iter().map(|w| w + 2).sum();
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Extension: display types the way Table 4.1 does (arrays decay to
/// pointers, pthread types shown verbatim).
trait DecayDisplay {
    fn decay_for_display(&self) -> String;
}

impl DecayDisplay for hsm_cir::types::CType {
    fn decay_for_display(&self) -> String {
        match self {
            hsm_cir::types::CType::Array(inner, _) => format!("{inner}*"),
            other => other.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::ProgramAnalysis;
    use hsm_cir::parser::parse;

    const EXAMPLE_4_1: &str = r#"
int global;
int *ptr;
int sum[3] = {0};

void *tf(void * tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for(local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *) local);
    }
    for(local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
"#;

    #[test]
    fn table_4_1_contains_all_variables() {
        let tu = parse(EXAMPLE_4_1).unwrap();
        let a = ProgramAnalysis::analyze(&tu);
        let t = super::table_4_1(&a);
        for name in [
            "global", "ptr", "sum", "tLocal", "tid", "local", "tmp", "threads", "rc",
        ] {
            assert!(t.contains(name), "missing {name} in:\n{t}");
        }
        // Arrays display decayed, as in the paper.
        assert!(
            t.lines()
                .any(|l| l.starts_with("sum") && l.contains("int*")),
            "{t}"
        );
    }

    #[test]
    fn table_4_2_statuses_render() {
        let tu = parse(EXAMPLE_4_1).unwrap();
        let a = ProgramAnalysis::analyze(&tu);
        let t = super::table_4_2(&a);
        // tmp's row must show the null -> false -> true trajectory.
        let tmp_row = t.lines().find(|l| l.starts_with("tmp")).unwrap();
        assert!(tmp_row.contains("null"), "{tmp_row}");
        assert!(tmp_row.contains("false"), "{tmp_row}");
        assert!(tmp_row.contains("true"), "{tmp_row}");
    }
}
