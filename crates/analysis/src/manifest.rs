//! The machine-readable classification manifest.
//!
//! [`ClassificationManifest`] is the contract between the static half of
//! the pipeline (Stages 1–3, plus the Stage 4 region assignment) and the
//! dynamic sharing-soundness oracle in `hsm-exec`: one row per analyzed
//! variable carrying its per-stage sharing history (Table 4.2), its final
//! verdict, and the memory region the partitioner mapped it to. The
//! oracle replays a program and checks every memory access against these
//! rows; a violation means Stages 1–3 were *unsound* for that program,
//! not merely imprecise.
//!
//! The manifest is deliberately self-contained (names and plain enums, no
//! AST references) so it can cross crate boundaries and be serialized
//! into the run manifest by `hsm-bench`.

use crate::sharing::SharingStatus;
use crate::ProgramAnalysis;

/// The memory region a variable's storage lands in after Stage 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RegionVerdict {
    /// Per-core private memory (the default for every non-shared
    /// variable; cacheable, never coherent).
    #[default]
    Private,
    /// Shared off-chip DRAM (uncacheable).
    SharedOffChip,
    /// Shared on-chip memory (MPB SRAM).
    SharedOnChip,
    /// Split: leading bytes on-chip, remainder off-chip.
    SharedSplit,
}

impl RegionVerdict {
    /// Stable lower-snake-case label used in JSON renderings.
    pub fn label(self) -> &'static str {
        match self {
            RegionVerdict::Private => "private",
            RegionVerdict::SharedOffChip => "shared_off_chip",
            RegionVerdict::SharedOnChip => "shared_on_chip",
            RegionVerdict::SharedSplit => "shared_split",
        }
    }
}

/// One variable's classification row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarVerdict {
    /// Source name.
    pub name: String,
    /// Enclosing function for locals and parameters; `None` for globals.
    pub owner: Option<String>,
    /// Whether the variable has global storage.
    pub is_global: bool,
    /// Storage footprint in bytes (Stage 1's `mem_size`).
    pub mem_size: usize,
    /// Sharing status after each of Stages 1–3 (Table 4.2's columns).
    pub stages: [SharingStatus; 3],
    /// The final verdict the translator acts on.
    pub verdict: SharingStatus,
    /// The Stage 4 region assignment.
    pub region: RegionVerdict,
}

/// The full classification of one program: every Stage 1 variable with
/// its verdict and region, in declaration order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassificationManifest {
    /// Classification rows in Stage 1 declaration order.
    pub entries: Vec<VarVerdict>,
}

impl ClassificationManifest {
    /// A manifest with no rows. An oracle driven by an empty manifest
    /// performs pure happens-before race detection (no ownership or
    /// staleness claims to check).
    pub fn empty() -> Self {
        ClassificationManifest::default()
    }

    /// Builds the manifest from a completed Stage 1–3 analysis. Region
    /// assignments default to [`RegionVerdict::Private`] for non-shared
    /// variables and [`RegionVerdict::SharedOffChip`] for shared ones
    /// (the paper's unpartitioned baseline); apply a `PartitionPlan` via
    /// `hsm_partition::annotate_manifest` to refine them.
    pub fn from_analysis(analysis: &ProgramAnalysis) -> Self {
        let entries = analysis
            .scope
            .variables
            .iter()
            .map(|v| {
                let verdict = analysis.final_status(&v.key.name);
                VarVerdict {
                    name: v.key.name.clone(),
                    owner: v.key.owner.clone(),
                    is_global: v.is_global,
                    mem_size: v.mem_size,
                    stages: [
                        analysis.status_after_stage(&v.key.name, 1),
                        analysis.status_after_stage(&v.key.name, 2),
                        analysis.status_after_stage(&v.key.name, 3),
                    ],
                    verdict,
                    region: if verdict.is_shared() {
                        RegionVerdict::SharedOffChip
                    } else {
                        RegionVerdict::Private
                    },
                }
            })
            .collect();
        ClassificationManifest { entries }
    }

    /// Overwrites the region of every row named `name` (sharing verdicts
    /// are name-keyed throughout Stages 2–4, so a name maps to one
    /// region even when it occurs in several scopes).
    pub fn set_region(&mut self, name: &str, region: RegionVerdict) {
        for e in &mut self.entries {
            if e.name == name {
                e.region = region;
            }
        }
    }

    /// The row for `name`, preferring an exact `owner` match and falling
    /// back to the global row of the same name.
    pub fn entry(&self, name: &str, owner: Option<&str>) -> Option<&VarVerdict> {
        self.entries
            .iter()
            .find(|e| e.name == name && e.owner.as_deref() == owner)
            .or_else(|| self.entries.iter().find(|e| e.name == name && e.is_global))
    }

    /// The final verdict for `name` (resolution as in [`Self::entry`]).
    pub fn verdict_of(&self, name: &str, owner: Option<&str>) -> Option<SharingStatus> {
        self.entry(name, owner).map(|e| e.verdict)
    }

    /// Row counts by final verdict: `(shared, private, unknown)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for e in &self.entries {
            match e.verdict {
                SharingStatus::Shared => c.0 += 1,
                SharingStatus::Private => c.1 += 1,
                SharingStatus::Unknown => c.2 += 1,
            }
        }
        c
    }

    /// Renders the manifest as a deterministic single-line JSON array,
    /// one object per row, in declaration order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"owner\":{},\"global\":{},\"bytes\":{},\
                 \"stages\":[{}],\"verdict\":\"{}\",\"region\":\"{}\"}}",
                escape(&e.name),
                match &e.owner {
                    Some(o) => format!("\"{}\"", escape(o)),
                    None => "null".to_string(),
                },
                e.is_global,
                e.mem_size,
                e.stages
                    .iter()
                    .map(|s| format!("\"{}\"", status_label(*s)))
                    .collect::<Vec<_>>()
                    .join(","),
                status_label(e.verdict),
                e.region.label(),
            ));
        }
        out.push(']');
        out
    }
}

/// Stable label for a sharing status (the paper prints these as
/// `true`/`false`/`null`; the manifest uses self-describing words).
pub fn status_label(s: SharingStatus) -> &'static str {
    match s {
        SharingStatus::Shared => "shared",
        SharingStatus::Private => "private",
        SharingStatus::Unknown => "unknown",
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsm_cir::parser::parse;

    const SRC: &str = r#"
int global;
int *ptr;
int sum[3] = {0};

void *tf(void * tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for(local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *) local);
    }
    for(local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
"#;

    fn manifest() -> ClassificationManifest {
        let tu = parse(SRC).unwrap();
        ClassificationManifest::from_analysis(&ProgramAnalysis::analyze(&tu))
    }

    #[test]
    fn verdicts_match_table_4_2() {
        let m = manifest();
        assert_eq!(
            m.verdict_of("tmp", Some("main")),
            Some(SharingStatus::Shared)
        );
        assert_eq!(m.verdict_of("sum", None), Some(SharingStatus::Shared));
        assert_eq!(
            m.verdict_of("global", None),
            Some(SharingStatus::Private),
            "unused global demoted at stage 3"
        );
        assert_eq!(
            m.verdict_of("local", Some("main")),
            Some(SharingStatus::Private)
        );
        assert_eq!(m.verdict_of("missing", None), None);
    }

    #[test]
    fn stage_history_is_preserved() {
        let m = manifest();
        let tmp = m.entry("tmp", Some("main")).unwrap();
        assert_eq!(
            tmp.stages,
            [
                SharingStatus::Unknown,
                SharingStatus::Private,
                SharingStatus::Shared
            ],
            "tmp flips at stage 3 (Table 4.2)"
        );
    }

    #[test]
    fn owner_resolution_prefers_exact_match() {
        let m = manifest();
        let local = m.entry("local", Some("main")).unwrap();
        assert_eq!(local.owner.as_deref(), Some("main"));
        // Unknown owner falls back to the global row.
        let sum = m.entry("sum", Some("tf")).unwrap();
        assert!(sum.is_global);
    }

    #[test]
    fn default_regions_follow_verdicts() {
        let mut m = manifest();
        assert_eq!(
            m.entry("sum", None).unwrap().region,
            RegionVerdict::SharedOffChip
        );
        assert_eq!(
            m.entry("local", Some("main")).unwrap().region,
            RegionVerdict::Private
        );
        m.set_region("sum", RegionVerdict::SharedOnChip);
        assert_eq!(
            m.entry("sum", None).unwrap().region,
            RegionVerdict::SharedOnChip
        );
    }

    #[test]
    fn json_rendering_is_deterministic_and_labeled() {
        let m = manifest();
        let j = m.to_json();
        assert_eq!(j, manifest().to_json());
        assert!(j.starts_with('['), "{j}");
        assert!(j.contains(
            "\"name\":\"tmp\",\"owner\":\"main\",\"global\":false,\"bytes\":4,\
             \"stages\":[\"unknown\",\"private\",\"shared\"],\"verdict\":\"shared\""
        ));
    }

    #[test]
    fn counts_sum_to_entry_count() {
        let m = manifest();
        let (s, p, u) = m.counts();
        assert_eq!(s + p + u, m.entries.len());
        assert!(s >= 3, "ptr, sum, tmp");
        assert_eq!(u, 0, "every variable is decided after stage 3");
    }

    #[test]
    fn empty_manifest_has_no_claims() {
        let m = ClassificationManifest::empty();
        assert!(m.entries.is_empty());
        assert_eq!(m.to_json(), "[]");
        assert_eq!(m.verdict_of("anything", None), None);
    }
}
