//! Integration tests for the `hsm2rcce` command-line tool.

use std::process::Command;

const EXAMPLE: &str = r#"
#include <pthread.h>
int data[4];
void *tf(void *tid) { data[(int)tid] = 1; return tid; }
int main() {
    pthread_t t[4];
    int i;
    for (i = 0; i < 4; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 4; i++) pthread_join(t[i], NULL);
    return 0;
}
"#;

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, contents).expect("write temp file");
    path
}

fn hsm2rcce(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_hsm2rcce"))
        .args(args)
        .output()
        .expect("spawn hsm2rcce")
}

#[test]
fn translates_to_stdout() {
    let input = write_temp("cli_basic.c", EXAMPLE);
    let out = hsm2rcce(&[input.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("RCCE_APP"), "{stdout}");
    assert!(!stdout.contains("pthread"), "{stdout}");
}

#[test]
fn writes_output_file() {
    let input = write_temp("cli_outfile.c", EXAMPLE);
    let output = std::env::temp_dir().join("cli_outfile_rcce.c");
    let out = hsm2rcce(&[input.to_str().unwrap(), "-o", output.to_str().unwrap()]);
    assert!(out.status.success());
    let written = std::fs::read_to_string(&output).expect("output exists");
    assert!(written.contains("RCCE_barrier"), "{written}");
}

#[test]
fn prints_tables() {
    let input = write_temp("cli_tables.c", EXAMPLE);
    let out = hsm2rcce(&[input.to_str().unwrap(), "--tables"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table 4.1"), "{stdout}");
    assert!(stdout.contains("Stage 3"), "{stdout}");
    assert!(stdout.contains("data"), "{stdout}");
}

#[test]
fn prints_partition_plan() {
    let input = write_temp("cli_plan.c", EXAMPLE);
    let out = hsm2rcce(&[input.to_str().unwrap(), "--plan", "--cores", "8"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("partition plan"), "{stdout}");
    assert!(stdout.contains("data"), "{stdout}");
    assert!(stdout.contains("on-chip"), "{stdout}");
}

#[test]
fn off_chip_flag_forces_shmalloc() {
    let input = write_temp("cli_offchip.c", EXAMPLE);
    let out = hsm2rcce(&[input.to_str().unwrap(), "--off-chip-only"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("RCCE_shmalloc"), "{stdout}");
    assert!(!stdout.contains("RCCE_malloc("), "{stdout}");
}

#[test]
fn missing_file_fails_with_message() {
    let out = hsm2rcce(&["/nonexistent/file.c"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn parse_error_reports_location() {
    let input = write_temp("cli_broken.c", "int main( {");
    let out = hsm2rcce(&[input.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("parse error"), "{stderr}");
}
