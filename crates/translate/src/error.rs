//! Error type for the translation pipeline.

use std::error::Error;
use std::fmt;

/// An error produced while translating a pthread program to RCCE.
#[derive(Debug, Clone, PartialEq)]
pub struct TranslateError {
    kind: Kind,
    message: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// The input program uses a construct outside the supported subset.
    Unsupported,
    /// The pipeline itself misbehaved (IR corruption).
    Internal,
    /// The input failed to parse.
    Parse,
}

impl TranslateError {
    /// An unsupported-construct error.
    pub fn unsupported(message: impl Into<String>) -> Self {
        TranslateError {
            kind: Kind::Unsupported,
            message: message.into(),
        }
    }

    /// An internal pipeline error.
    pub fn internal(message: impl Into<String>) -> Self {
        TranslateError {
            kind: Kind::Internal,
            message: message.into(),
        }
    }

    /// Whether this error indicates a bug in the translator rather than in
    /// the input program.
    pub fn is_internal(&self) -> bool {
        self.kind == Kind::Internal
    }
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefix = match self.kind {
            Kind::Unsupported => "unsupported construct",
            Kind::Internal => "internal translator error",
            Kind::Parse => "parse error",
        };
        write!(f, "{prefix}: {}", self.message)
    }
}

impl Error for TranslateError {}

impl From<hsm_cir::ParseError> for TranslateError {
    fn from(e: hsm_cir::ParseError) -> Self {
        TranslateError {
            kind: Kind::Parse,
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes_by_kind() {
        assert!(TranslateError::unsupported("x")
            .to_string()
            .starts_with("unsupported construct"));
        assert!(TranslateError::internal("x").is_internal());
    }
}
