//! The Stage 5 transformation passes (Algorithms 4–10 of the paper).
//!
//! Pipeline order (see [`crate::standard_driver`]):
//!
//! 1. [`IncludesPass`] — `<pthread.h>` → `"RCCE.h"`.
//! 2. [`MutexPass`] — pthread mutexes → RCCE test-and-set locks.
//! 3. [`MainConvPass`] — `main` → `RCCE_APP`, insert `RCCE_init` /
//!    `RCCE_finalize` (Algorithms 9 and 10).
//! 4. [`SharedDataPass`] — shared globals become pointers allocated with
//!    `RCCE_shmalloc` (off-chip) or `RCCE_malloc` (on-chip MPB) per the
//!    Stage 4 plan.
//! 5. [`CoreIdPass`] — insert `int myID; myID = RCCE_ue();`.
//! 6. [`ThreadsToProcsPass`] — Algorithm 4: `pthread_create` launches become
//!    direct worker calls keyed by core id.
//! 7. [`JoinsPass`] — Algorithm 5: join loops become `RCCE_barrier`.
//! 8. [`SelfPass`] — Algorithm 6: `pthread_self()` → `RCCE_ue()` (plus
//!    `wtime()` → `RCCE_wtime()` for the benchmark timing protocol).
//! 9. [`RemoveTypesPass`] — Algorithm 7: drop pthread-typed declarations.
//! 10. [`RemoveApiPass`] — Algorithm 8: drop remaining `pthread_*` calls.
//! 11. [`UnusedLocalsPass`] — drop locals orphaned by the conversion.
//! 12. [`DropPrivateGlobalsPass`] — drop private, entirely-unused globals.

use crate::error::TranslateError;
use crate::pass::{PassContext, TransformPass};
use crate::rewrite::*;
use hsm_analysis::access::trip_count;
use hsm_cir::ast::*;
use hsm_cir::types::CType;
use hsm_partition::Placement;
use std::collections::BTreeMap;

/// Pthread functions whose *statement* is removed wholesale when it has no
/// other effect (Algorithm 8's hash table).
const PTHREAD_API: &[&str] = &[
    "pthread_create",
    "pthread_join",
    "pthread_exit",
    "pthread_mutex_init",
    "pthread_mutex_destroy",
    "pthread_attr_init",
    "pthread_attr_destroy",
    "pthread_detach",
    "pthread_cancel",
];

// ------------------------------------------------------------------ 1 ----

/// Rewrites the include list: pthread headers out, `RCCE.h` in.
pub struct IncludesPass;

impl TransformPass for IncludesPass {
    fn name(&self) -> &'static str {
        "includes"
    }

    fn run(&mut self, ctx: &mut PassContext<'_>) -> Result<(), TranslateError> {
        let mut saw_rcce = false;
        ctx.unit.preproc.retain(|line| {
            if line.contains("pthread.h") {
                false
            } else {
                saw_rcce |= line.contains("RCCE.h");
                true
            }
        });
        if !saw_rcce {
            ctx.unit.preproc.push("include \"RCCE.h\"".to_string());
        }
        Ok(())
    }
}

// ------------------------------------------------------------------ 2 ----

/// Converts pthread mutexes to RCCE test-and-set locks: each mutex variable
/// is assigned a lock id; `pthread_mutex_lock(&m)` becomes
/// `RCCE_acquire_lock(id)` and unlock becomes `RCCE_release_lock(id)`.
pub struct MutexPass;

impl TransformPass for MutexPass {
    fn name(&self) -> &'static str {
        "mutex"
    }

    fn run(&mut self, ctx: &mut PassContext<'_>) -> Result<(), TranslateError> {
        // Assign ids to every pthread_mutex_t variable, in symbol order.
        let mutex_names: Vec<String> = ctx
            .analysis
            .scope
            .variables
            .iter()
            .filter(|v| matches!(&v.ty, CType::Named(n) if n == "pthread_mutex_t"))
            .map(|v| v.key.name.clone())
            .collect();
        for (i, name) in mutex_names.iter().enumerate() {
            ctx.mutex_ids.insert(name.clone(), i);
        }
        if ctx.mutex_ids.is_empty() {
            return Ok(());
        }
        let ids = ctx.mutex_ids.clone();
        for f in ctx.unit.functions_mut() {
            for s in &mut f.body {
                convert_mutex_stmt(s, &ids);
            }
        }
        Ok(())
    }
}

/// Rewrites `pthread_mutex_lock(&m)` / `pthread_mutex_unlock(&m)` in place
/// into `RCCE_acquire_lock(id)` / `RCCE_release_lock(id)`.
fn convert_mutex_stmt(s: &mut Stmt, ids: &BTreeMap<String, usize>) {
    walk_mut_exprs_stmt(s, &mut |e| convert_mutex_expr(e, ids));
}

/// Converts `pthread_barrier_wait(&b)` into
/// `RCCE_barrier(&RCCE_COMM_WORLD)` — the only barrier the target
/// architecture offers spans all UEs. `pthread_barrier_init`/`destroy`
/// statements are removed later by [`RemoveApiPass`].
pub struct BarrierPass;

impl TransformPass for BarrierPass {
    fn name(&self) -> &'static str {
        "pthread-barriers"
    }

    fn run(&mut self, ctx: &mut PassContext<'_>) -> Result<(), TranslateError> {
        for f in ctx.unit.functions_mut() {
            for s in &mut f.body {
                walk_mut_exprs_stmt(s, &mut convert_barrier_expr);
            }
        }
        Ok(())
    }
}

fn convert_barrier_expr(e: &mut Expr) {
    if e.call_target() != Some("pthread_barrier_wait") {
        return;
    }
    let ExprKind::Call(callee, args) = &mut e.kind else {
        return;
    };
    let ExprKind::Ident(name) = &mut callee.kind else {
        return;
    };
    *name = "RCCE_barrier".to_string();
    let (id, span) = args
        .first()
        .map(|a| (a.id, a.span))
        .unwrap_or((NodeId(u32::MAX), hsm_cir::span::Span::default()));
    let comm = Expr {
        id,
        kind: ExprKind::Ident("RCCE_COMM_WORLD".to_string()),
        span,
    };
    *args = vec![Expr {
        id,
        kind: ExprKind::Unary(UnaryOp::Addr, Box::new(comm)),
        span,
    }];
}

fn convert_mutex_expr(e: &mut Expr, ids: &BTreeMap<String, usize>) {
    let Some(target) = e.call_target().map(str::to_string) else {
        return;
    };
    let which = match target.as_str() {
        "pthread_mutex_lock" => "RCCE_acquire_lock",
        "pthread_mutex_unlock" => "RCCE_release_lock",
        _ => return,
    };
    let ExprKind::Call(callee, args) = &mut e.kind else {
        return;
    };
    let Some(mutex) = args
        .first()
        .map(|a| a.peel_casts())
        .and_then(|a| match &a.kind {
            // `&m` — the common form.
            ExprKind::Unary(UnaryOp::Addr, inner) => inner.base_variable(),
            _ => a.base_variable(),
        })
        .map(str::to_string)
    else {
        return;
    };
    let Some(&id) = ids.get(&mutex) else {
        return;
    };
    if let ExprKind::Ident(name) = &mut callee.kind {
        *name = which.to_string();
    }
    let arg_id = args[0].id;
    let arg_span = args[0].span;
    *args = vec![Expr {
        id: arg_id,
        kind: ExprKind::IntLit(id as i64),
        span: arg_span,
    }];
}

/// Applies `f` to every expression in a statement tree, mutably.
fn walk_mut_exprs_stmt(s: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    match &mut s.kind {
        StmtKind::Expr(Some(e)) => walk_mut_expr(e, f),
        StmtKind::Decl(d) => {
            for v in &mut d.vars {
                if let Some(init) = &mut v.init {
                    walk_mut_expr(init, f);
                }
            }
        }
        StmtKind::Block(stmts) => {
            for st in stmts {
                walk_mut_exprs_stmt(st, f);
            }
        }
        StmtKind::If(c, then, els) => {
            walk_mut_expr(c, f);
            walk_mut_exprs_stmt(then, f);
            if let Some(e) = els {
                walk_mut_exprs_stmt(e, f);
            }
        }
        StmtKind::While(c, body) => {
            walk_mut_expr(c, f);
            walk_mut_exprs_stmt(body, f);
        }
        StmtKind::DoWhile(body, c) => {
            walk_mut_exprs_stmt(body, f);
            walk_mut_expr(c, f);
        }
        StmtKind::For(init, cond, step, body) => {
            match init {
                Some(ForInit::Decl(d)) => {
                    for v in &mut d.vars {
                        if let Some(i) = &mut v.init {
                            walk_mut_expr(i, f);
                        }
                    }
                }
                Some(ForInit::Expr(e)) => walk_mut_expr(e, f),
                None => {}
            }
            if let Some(c) = cond {
                walk_mut_expr(c, f);
            }
            if let Some(st) = step {
                walk_mut_expr(st, f);
            }
            walk_mut_exprs_stmt(body, f);
        }
        StmtKind::Switch(scrutinee, body) => {
            walk_mut_expr(scrutinee, f);
            for st in body {
                walk_mut_exprs_stmt(st, f);
            }
        }
        StmtKind::Return(Some(e)) => walk_mut_expr(e, f),
        _ => {}
    }
}

fn walk_mut_expr(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    f(e);
    match &mut e.kind {
        ExprKind::Unary(_, inner)
        | ExprKind::PostIncDec(inner, _)
        | ExprKind::Cast(_, inner)
        | ExprKind::SizeofExpr(inner) => walk_mut_expr(inner, f),
        ExprKind::Binary(_, l, r) | ExprKind::Assign(_, l, r) | ExprKind::Comma(l, r) => {
            walk_mut_expr(l, f);
            walk_mut_expr(r, f);
        }
        ExprKind::Ternary(c, t, f2) => {
            walk_mut_expr(c, f);
            walk_mut_expr(t, f);
            walk_mut_expr(f2, f);
        }
        ExprKind::Call(callee, args) => {
            walk_mut_expr(callee, f);
            for a in args {
                walk_mut_expr(a, f);
            }
        }
        ExprKind::Index(b, i) => {
            walk_mut_expr(b, f);
            walk_mut_expr(i, f);
        }
        ExprKind::Member(b, _, _) => walk_mut_expr(b, f),
        ExprKind::InitList(items) => {
            for it in items {
                walk_mut_expr(it, f);
            }
        }
        _ => {}
    }
}

// ------------------------------------------------------------------ 3 ----

/// Algorithm 9 + 10 + the `RCCE_APP` renaming: `main` becomes
/// `int RCCE_APP(int *argc, char *argv[])`, `RCCE_init(&argc, &argv)` is
/// inserted as the first statement and `RCCE_finalize()` just before the
/// final return.
pub struct MainConvPass;

impl TransformPass for MainConvPass {
    fn name(&self) -> &'static str {
        "main-conversion"
    }

    fn run(&mut self, ctx: &mut PassContext<'_>) -> Result<(), TranslateError> {
        let Some(_) = ctx.unit.function("main") else {
            return Err(TranslateError::unsupported("program has no main function"));
        };
        let mut b = Builder::new(&mut ctx.unit);
        let argc = b.ident("argc");
        let argc_addr = b.addr_of(argc);
        let argv = b.ident("argv");
        let argv_addr = b.addr_of(argv);
        let init = b.call("RCCE_init", vec![argc_addr, argv_addr]);
        let init_stmt = b.expr_stmt(init);
        let fin = b.call("RCCE_finalize", vec![]);
        let fin_stmt = b.expr_stmt(fin);

        let main = ctx.unit.function_mut("main").expect("checked above");
        main.name = "RCCE_APP".to_string();
        main.params = vec![
            Param {
                name: "argc".to_string(),
                ty: CType::Int.ptr_to(),
            },
            Param {
                name: "argv".to_string(),
                ty: CType::Char.ptr_to().ptr_to(),
            },
        ];
        main.body.insert(0, init_stmt);
        // Insert finalize before the trailing return (or at the end).
        let pos = main
            .body
            .iter()
            .rposition(|s| matches!(s.kind, StmtKind::Return(_)))
            .unwrap_or(main.body.len());
        main.body.insert(pos, fin_stmt);
        Ok(())
    }
}

// ------------------------------------------------------------------ 4 ----

/// Rewrites shared globals per the Stage 4 plan: array and scalar globals
/// become pointers allocated from shared memory in `RCCE_APP`
/// (Algorithm 3's "Create on-chip/off-chip malloc call … Insert C in main").
pub struct SharedDataPass;

impl SharedDataPass {
    fn alloc_fn(placement: Placement) -> &'static str {
        match placement {
            Placement::OnChip => "RCCE_malloc",
            // Split allocations stay off-chip in the emitted source; the
            // execution model accounts for the on-chip prefix.
            Placement::OffChip | Placement::Split { .. } => "RCCE_shmalloc",
        }
    }
}

impl TransformPass for SharedDataPass {
    fn name(&self) -> &'static str {
        "shared-data"
    }

    fn run(&mut self, ctx: &mut PassContext<'_>) -> Result<(), TranslateError> {
        // Work over globals in the plan, in plan order so the shmalloc
        // statements appear deterministically.
        let planned: Vec<(String, Placement)> = ctx
            .plan
            .placements
            .iter()
            .map(|p| (p.var.name.clone(), p.placement))
            .collect();

        let mut alloc_stmts: Vec<Stmt> = Vec::new();
        for (name, placement) in planned {
            // Only globals get declarations rewritten; shared locals (like
            // `tmp` in Example 4.1) keep their storage — their sharing is
            // realized through the pointer that exposes them.
            let Some(info) = ctx
                .analysis
                .scope
                .variable(&hsm_analysis::VarKey::global(name.clone()))
            else {
                continue;
            };
            let (elem_ty, count) = match &info.ty {
                CType::Array(inner, len) => ((**inner).clone(), len.unwrap_or(1)),
                CType::Pointer(inner) => ((**inner).clone(), 1),
                scalar => (scalar.clone(), 1),
            };
            let was_scalar = !info.ty.is_array() && !info.ty.is_pointer();

            // 1. Rewrite the declaration to `T *name;` (drop initializer —
            //    the previous "malloc call"/static init is removed, per
            //    Algorithm 3 lines 8–10).
            for item in &mut ctx.unit.items {
                if let Item::Decl(d) = item {
                    for v in &mut d.vars {
                        if v.name == name {
                            v.ty = elem_ty.clone().ptr_to();
                            v.init = None;
                        }
                    }
                }
            }

            // 2. Scalars: rewrite every use `name` → `(*name)`.
            if was_scalar {
                deref_rewrite(&mut ctx.unit, &name);
            }

            // 3. Build `name = (T *)ALLOC(sizeof(T) * count);`
            let mut b = Builder::new(&mut ctx.unit);
            let sizeof = b.sizeof(elem_ty.clone());
            let n = b.int(count as i64);
            let bytes = b.binary(BinaryOp::Mul, sizeof, n);
            let call = b.call(Self::alloc_fn(placement), vec![bytes]);
            let cast = b.cast(elem_ty.ptr_to(), call);
            let lhs = b.ident(&name);
            let assign = b.assign(lhs, cast);
            alloc_stmts.push(b.expr_stmt(assign));
        }

        // Insert the allocation statements right after RCCE_init.
        if let Some(main) = ctx.unit.function_mut("RCCE_APP") {
            let pos = main
                .body
                .iter()
                .position(|s| stmt_contains_call(s, "RCCE_init"))
                .map(|i| i + 1)
                .unwrap_or(0);
            for (i, s) in alloc_stmts.into_iter().enumerate() {
                main.body.insert(pos + i, s);
            }
        }
        Ok(())
    }
}

/// Rewrites every reference to scalar global `name` as `(*name)` in all
/// function bodies.
fn deref_rewrite(unit: &mut TranslationUnit, name: &str) {
    // Two phases to satisfy the borrow checker: collect ids, then rewrite.
    let fn_names: Vec<String> = unit.functions().map(|f| f.name.clone()).collect();
    for fname in fn_names {
        let mut body = std::mem::take(&mut unit.function_mut(&fname).unwrap().body);
        for s in &mut body {
            deref_rewrite_stmt(s, name);
        }
        unit.function_mut(&fname).unwrap().body = body;
    }
}

fn deref_rewrite_stmt(s: &mut Stmt, name: &str) {
    match &mut s.kind {
        StmtKind::Expr(Some(e)) => deref_rewrite_expr(e, name),
        StmtKind::Decl(d) => {
            for v in &mut d.vars {
                if let Some(init) = &mut v.init {
                    deref_rewrite_expr(init, name);
                }
            }
        }
        StmtKind::Block(stmts) => {
            for st in stmts {
                deref_rewrite_stmt(st, name);
            }
        }
        StmtKind::If(c, then, els) => {
            deref_rewrite_expr(c, name);
            deref_rewrite_stmt(then, name);
            if let Some(e) = els {
                deref_rewrite_stmt(e, name);
            }
        }
        StmtKind::While(c, body) => {
            deref_rewrite_expr(c, name);
            deref_rewrite_stmt(body, name);
        }
        StmtKind::DoWhile(body, c) => {
            deref_rewrite_stmt(body, name);
            deref_rewrite_expr(c, name);
        }
        StmtKind::For(init, cond, step, body) => {
            match init {
                Some(ForInit::Decl(d)) => {
                    for v in &mut d.vars {
                        if let Some(i) = &mut v.init {
                            deref_rewrite_expr(i, name);
                        }
                    }
                }
                Some(ForInit::Expr(e)) => deref_rewrite_expr(e, name),
                None => {}
            }
            if let Some(c) = cond {
                deref_rewrite_expr(c, name);
            }
            if let Some(st) = step {
                deref_rewrite_expr(st, name);
            }
            deref_rewrite_stmt(body, name);
        }
        StmtKind::Switch(scrutinee, body) => {
            deref_rewrite_expr(scrutinee, name);
            for st in body {
                deref_rewrite_stmt(st, name);
            }
        }
        StmtKind::Return(Some(e)) => deref_rewrite_expr(e, name),
        _ => {}
    }
}

fn deref_rewrite_expr(e: &mut Expr, name: &str) {
    // `&name` becomes just `name` (the pointer already holds the address);
    // a bare `name` becomes `(*name)`.
    if let ExprKind::Unary(UnaryOp::Addr, inner) = &e.kind {
        if inner.as_ident() == Some(name) {
            let id = e.id;
            let span = e.span;
            *e = Expr {
                id,
                kind: ExprKind::Ident(name.to_string()),
                span,
            };
            return;
        }
    }
    if e.as_ident() == Some(name) {
        let id = e.id;
        let span = e.span;
        let inner = Expr {
            id,
            kind: ExprKind::Ident(name.to_string()),
            span,
        };
        *e = Expr {
            id,
            kind: ExprKind::Unary(UnaryOp::Deref, Box::new(inner)),
            span,
        };
        return;
    }
    match &mut e.kind {
        ExprKind::Unary(_, inner)
        | ExprKind::PostIncDec(inner, _)
        | ExprKind::Cast(_, inner)
        | ExprKind::SizeofExpr(inner) => deref_rewrite_expr(inner, name),
        ExprKind::Binary(_, l, r) | ExprKind::Assign(_, l, r) | ExprKind::Comma(l, r) => {
            deref_rewrite_expr(l, name);
            deref_rewrite_expr(r, name);
        }
        ExprKind::Ternary(c, t, f) => {
            deref_rewrite_expr(c, name);
            deref_rewrite_expr(t, name);
            deref_rewrite_expr(f, name);
        }
        ExprKind::Call(callee, args) => {
            deref_rewrite_expr(callee, name);
            for a in args {
                deref_rewrite_expr(a, name);
            }
        }
        ExprKind::Index(b, i) => {
            deref_rewrite_expr(b, name);
            deref_rewrite_expr(i, name);
        }
        ExprKind::Member(b, _, _) => deref_rewrite_expr(b, name),
        ExprKind::InitList(items) => {
            for it in items {
                deref_rewrite_expr(it, name);
            }
        }
        _ => {}
    }
}

// ------------------------------------------------------------------ 5 ----

/// Inserts `int myID; myID = RCCE_ue();` after the allocation block.
pub struct CoreIdPass;

impl TransformPass for CoreIdPass {
    fn name(&self) -> &'static str {
        "core-id"
    }

    fn run(&mut self, ctx: &mut PassContext<'_>) -> Result<(), TranslateError> {
        let var = ctx.core_id_var.clone();
        let mut b = Builder::new(&mut ctx.unit);
        let decl = b.decl_stmt(&var, CType::Int);
        let lhs = b.ident(&var);
        let call = b.call("RCCE_ue", vec![]);
        let assign = b.assign(lhs, call);
        let assign_stmt = b.expr_stmt(assign);

        let Some(main) = ctx.unit.function_mut("RCCE_APP") else {
            return Err(TranslateError::internal("RCCE_APP missing (pass order)"));
        };
        // After the last allocation call, else after RCCE_init, else at top.
        let pos = main
            .body
            .iter()
            .rposition(|s| {
                stmt_contains_call(s, "RCCE_shmalloc") || stmt_contains_call(s, "RCCE_malloc")
            })
            .or_else(|| {
                main.body
                    .iter()
                    .position(|s| stmt_contains_call(s, "RCCE_init"))
            })
            .map(|i| i + 1)
            .unwrap_or(0);
        main.body.insert(pos, decl);
        main.body.insert(pos + 1, assign_stmt);
        Ok(())
    }
}

// ----------------------------------------------------------------- 5b ----

/// Guards pre-launch writes to shared memory with `if (myID == 0)`.
///
/// In the pthread original, `main` initializes shared data exactly once
/// before launching threads. After conversion every core re-executes that
/// prologue; plain stores are idempotent, but read-modify-write
/// initialization (`mats[i] = mats[i] + n;`) is not — concurrent cores
/// double-apply it. The fix mirrors what the original program guaranteed:
/// only one core performs stores *into shared memory* before the launch
/// point (writes to per-core variables, including the shared-pointer cells
/// themselves, still run everywhere), and the barrier inserted before the
/// worker call publishes the initialized data to all cores.
pub struct GuardSharedInitPass;

impl TransformPass for GuardSharedInitPass {
    fn name(&self) -> &'static str {
        "guard-shared-init"
    }

    fn run(&mut self, ctx: &mut PassContext<'_>) -> Result<(), TranslateError> {
        let core_var = ctx.core_id_var.clone();
        let shared: std::collections::BTreeSet<String> = ctx
            .plan
            .placements
            .iter()
            .map(|p| p.var.name.clone())
            .collect();
        let launch_fns: std::collections::BTreeSet<String> = ctx
            .analysis
            .threads
            .launches
            .iter()
            .map(|l| l.in_function.clone())
            .collect();
        let mut unit = std::mem::take(&mut ctx.unit);
        for fname in launch_fns {
            // `main` was already renamed by MainConvPass.
            let fname = if fname == "main" && unit.function(&fname).is_none() {
                "RCCE_APP".to_string()
            } else {
                fname
            };
            let Some(f) = unit.function_mut(&fname) else {
                continue;
            };
            let mut body = std::mem::take(&mut f.body);
            let launch_at = body
                .iter()
                .position(|s| stmt_contains_call(s, "pthread_create"))
                .unwrap_or(body.len());
            let mut new_body: Vec<Stmt> = Vec::with_capacity(body.len());
            for (i, stmt) in body.drain(..).enumerate() {
                if i < launch_at && stmt_writes_shared_memory(&stmt, &shared) {
                    let guarded = guard_with_core_zero(&mut unit, &core_var, stmt);
                    new_body.push(guarded);
                } else {
                    new_body.push(stmt);
                }
            }
            unit.function_mut(&fname).expect("function exists").body = new_body;
        }
        ctx.unit = unit;
        Ok(())
    }
}

/// Whether a statement stores through a shared pointer/array (an `Index`
/// or `Deref` destination whose base variable is in the shared set).
fn stmt_writes_shared_memory(s: &Stmt, shared: &std::collections::BTreeSet<String>) -> bool {
    let mut found = false;
    hsm_cir::visit::walk_exprs_in_stmt(s, &mut |e| {
        let dest = match &e.kind {
            ExprKind::Assign(_, lhs, _) => Some(lhs.as_ref()),
            ExprKind::PostIncDec(inner, _) => Some(inner.as_ref()),
            ExprKind::Unary(UnaryOp::PreInc | UnaryOp::PreDec, inner) => Some(inner.as_ref()),
            _ => None,
        };
        if let Some(dest) = dest {
            let indirect = matches!(
                dest.peel_casts().kind,
                ExprKind::Index(..) | ExprKind::Unary(UnaryOp::Deref, _)
            );
            if indirect {
                if let Some(base) = dest.base_variable() {
                    if shared.contains(base) {
                        found = true;
                    }
                }
            }
        }
    });
    found
}

/// Wraps `stmt` in `if (myID == 0) { stmt }`.
fn guard_with_core_zero(unit: &mut TranslationUnit, core_var: &str, stmt: Stmt) -> Stmt {
    let mut b = Builder::new(unit);
    let lhs = b.ident(core_var);
    let zero = b.int(0);
    let cond = b.binary(BinaryOp::Eq, lhs, zero);
    let block_id = unit.fresh_id();
    let if_id = unit.fresh_id();
    let span = stmt.span;
    Stmt {
        id: if_id,
        kind: StmtKind::If(
            cond,
            Box::new(Stmt {
                id: block_id,
                kind: StmtKind::Block(vec![stmt]),
                span,
            }),
            None,
        ),
        span,
    }
}

// ------------------------------------------------------------------ 6 ----

/// Algorithm 4 — Threads to Processes.
///
/// Every `pthread_create` launch becomes a direct call of the worker:
///
/// * launched in a loop with a thread-id argument → one unguarded call with
///   the argument rewritten to the core id (every core runs the worker);
/// * launched once outside a loop → a call guarded by `if (myID == k)`,
///   with `k` assigned in order of appearance (the paper's hash table of
///   thread-specific tasks).
///
/// Statements that shared the launch loop are hoisted out with the loop
/// induction variable rewritten to the core id.
pub struct ThreadsToProcsPass;

impl TransformPass for ThreadsToProcsPass {
    fn name(&self) -> &'static str {
        "threads-to-processes"
    }

    fn run(&mut self, ctx: &mut PassContext<'_>) -> Result<(), TranslateError> {
        let core_var = ctx.core_id_var.clone();
        let launches = ctx.analysis.threads.launches.clone();
        if launches.is_empty() {
            return Ok(());
        }
        let mut next_core = 0usize;
        let mut core_bound = std::collections::BTreeMap::new();
        for l in &launches {
            if !l.in_loop {
                core_bound.insert(l.entry.clone(), next_core);
                next_core += 1;
            }
        }
        ctx.core_bound_calls = core_bound.clone();

        let fn_names: Vec<String> = ctx.unit.functions().map(|f| f.name.clone()).collect();
        let mut unit = std::mem::take(&mut ctx.unit);
        for fname in fn_names {
            let mut body = std::mem::take(&mut unit.function_mut(&fname).unwrap().body);
            let mut new_body = Vec::with_capacity(body.len());
            for stmt in body.drain(..) {
                if !stmt_contains_call(&stmt, "pthread_create") {
                    new_body.push(stmt);
                    continue;
                }
                match stmt.kind {
                    // Launch loop: replace the whole loop.
                    StmtKind::For(init, cond, step, loop_body) => {
                        let ivar = for_induction_var(&init);
                        // §7.2 many-to-one mapping: when the loop launches
                        // more threads than the target has cores, each
                        // core runs the worker for every folded thread id
                        // congruent to its own.
                        let trips = trip_count(init.as_ref(), cond.as_ref(), step.as_ref());
                        let fold = match trips {
                            Some(t) if (t as usize) > ctx.options.cores => Some(t as usize),
                            _ => None,
                        };
                        if fold.is_some() {
                            ctx.fold_total = fold;
                        }
                        // The dual of folding: with more cores than
                        // threads, the surplus cores must not run the
                        // worker at all (they would compute out-of-range
                        // thread ids and trample shared data). Guard the
                        // worker region with `if (myID < total)`.
                        let guard = match trips {
                            Some(t) if (t as usize) < ctx.options.cores => Some(t as usize),
                            _ => None,
                        };
                        if guard.is_some() {
                            ctx.guard_total = guard;
                        }
                        let mut emitted_calls = Vec::new();
                        let mut hoisted = Vec::new();
                        let inner: Vec<Stmt> = match loop_body.kind {
                            StmtKind::Block(stmts) => stmts,
                            other => vec![Stmt {
                                id: loop_body.id,
                                kind: other,
                                span: loop_body.span,
                            }],
                        };
                        let fold_var = "foldID";
                        let call_id_var: &str = if fold.is_some() { fold_var } else { &core_var };
                        for mut inner_stmt in inner {
                            if stmt_contains_call(&inner_stmt, "pthread_create") {
                                if let Some(call) = extract_create_call(&inner_stmt) {
                                    emitted_calls.push(build_worker_call(
                                        &mut unit,
                                        &call,
                                        call_id_var,
                                        ivar.as_deref(),
                                    ));
                                }
                                // The pthread_create statement itself (and
                                // any `rc =` wrapper) is dropped.
                            } else {
                                if let Some(iv) = &ivar {
                                    subst_ident_stmt(&mut inner_stmt, iv, call_id_var);
                                }
                                hoisted.push(inner_stmt);
                            }
                        }
                        if let Some(total) = fold {
                            emitted_calls = vec![fold_loop(
                                &mut unit,
                                fold_var,
                                &core_var,
                                total,
                                ctx.options.cores,
                                emitted_calls,
                            )];
                            if !hoisted.is_empty() {
                                hoisted = vec![fold_loop(
                                    &mut unit,
                                    fold_var,
                                    &core_var,
                                    total,
                                    ctx.options.cores,
                                    hoisted,
                                )];
                            }
                        } else if let Some(total) = guard {
                            if !emitted_calls.is_empty() {
                                let mut b = Builder::new(&mut unit);
                                emitted_calls =
                                    vec![b.lt_guard(&core_var, total as i64, emitted_calls)];
                            }
                            if !hoisted.is_empty() {
                                let mut b = Builder::new(&mut unit);
                                hoisted = vec![b.lt_guard(&core_var, total as i64, hoisted)];
                            }
                        }
                        let _ = (cond, step);
                        // In the pthread original, main finished everything
                        // before this loop (data initialization included)
                        // before any thread ran. Each core re-executes that
                        // prologue and may write *shared* data, so a barrier
                        // must separate initialization from work. It goes
                        // before any immediately-preceding `wtime()`
                        // timestamps so the measured region still covers
                        // only the parallel section (§5.2's protocol).
                        if !emitted_calls.is_empty() {
                            let barrier = barrier_stmt(&mut unit);
                            let mut at = new_body.len();
                            while at > 0 && is_wtime_stmt(&new_body[at - 1]) {
                                at -= 1;
                            }
                            new_body.insert(at, barrier);
                        }
                        new_body.extend(emitted_calls);
                        new_body.extend(hoisted);
                    }
                    // Single launch statement outside a loop.
                    _ => {
                        if let Some(call) = extract_create_call(&stmt) {
                            new_body.push(barrier_stmt(&mut unit));
                            let worker_call = build_worker_call(&mut unit, &call, &core_var, None);
                            // Guard thread-specific single launches.
                            if let Some(&k) = core_bound.get(&call.entry) {
                                let StmtKind::Expr(Some(call_expr)) = worker_call.kind else {
                                    unreachable!("build_worker_call returns expr stmt");
                                };
                                let mut b = Builder::new(&mut unit);
                                let guarded = b.guarded_call(&core_var, k as i64, call_expr);
                                new_body.push(guarded);
                            } else {
                                new_body.push(worker_call);
                            }
                        }
                    }
                }
            }
            unit.function_mut(&fname).unwrap().body = new_body;
        }
        ctx.unit = unit;
        Ok(())
    }
}

/// A decomposed `pthread_create` call.
struct CreateCall {
    entry: String,
    arg: Expr,
}

fn for_induction_var(init: &Option<ForInit>) -> Option<String> {
    match init {
        Some(ForInit::Expr(e)) => match &e.kind {
            ExprKind::Assign(AssignOp::Assign, lhs, _) => lhs.as_ident().map(str::to_string),
            _ => None,
        },
        Some(ForInit::Decl(d)) => d.vars.first().map(|v| v.name.clone()),
        None => None,
    }
}

fn extract_create_call(stmt: &Stmt) -> Option<CreateCall> {
    let mut found = None;
    hsm_cir::visit::walk_exprs_in_stmt(stmt, &mut |e| {
        if found.is_some() {
            return;
        }
        if e.call_target() == Some("pthread_create") {
            if let ExprKind::Call(_, args) = &e.kind {
                if args.len() >= 4 {
                    if let Some(entry) = args[2].peel_casts().as_ident() {
                        found = Some(CreateCall {
                            entry: entry.to_string(),
                            arg: args[3].clone(),
                        });
                    }
                }
            }
        }
    });
    found
}

/// Builds `for (fold = myID; fold < total; fold += cores) { body }` —
/// the §7.2 many-to-one worker loop.
fn fold_loop(
    unit: &mut TranslationUnit,
    fold_var: &str,
    core_var: &str,
    total: usize,
    cores: usize,
    body: Vec<Stmt>,
) -> Stmt {
    let mut b = Builder::new(unit);
    let lhs = b.ident(fold_var);
    let rhs = b.ident(core_var);
    let init_expr = b.assign(lhs, rhs);
    let cond_l = b.ident(fold_var);
    let cond_r = b.int(total as i64);
    let cond = b.binary(BinaryOp::Lt, cond_l, cond_r);
    // step: fold = fold + cores
    let sl = b.ident(fold_var);
    let sr1 = b.ident(fold_var);
    let sr2 = b.int(cores as i64);
    let sum = b.binary(BinaryOp::Add, sr1, sr2);
    let step = b.assign(sl, sum);
    let body_id = unit.fresh_id();
    let for_id = unit.fresh_id();
    let block = Stmt {
        id: body_id,
        kind: StmtKind::Block(body),
        span: hsm_cir::span::Span::default(),
    };
    let decl = {
        let mut b = Builder::new(unit);
        b.decl_stmt(fold_var, CType::Int)
    };
    let for_stmt = Stmt {
        id: for_id,
        kind: StmtKind::For(
            Some(ForInit::Expr(init_expr)),
            Some(cond),
            Some(step),
            Box::new(block),
        ),
        span: hsm_cir::span::Span::default(),
    };
    let wrap_id = unit.fresh_id();
    Stmt {
        id: wrap_id,
        kind: StmtKind::Block(vec![decl, for_stmt]),
        span: hsm_cir::span::Span::default(),
    }
}

/// Builds `entry(arg')` where the thread-id variable (the loop induction
/// variable) inside `arg` is replaced by the core id variable.
fn build_worker_call(
    unit: &mut TranslationUnit,
    call: &CreateCall,
    core_var: &str,
    ivar: Option<&str>,
) -> Stmt {
    let mut arg = call.arg.clone();
    if let Some(iv) = ivar {
        subst_ident_expr(&mut arg, iv, core_var);
    }
    // Refresh ids on the cloned expression by leaving them as-is: node ids
    // need not be unique for printing, and analyses re-run after printing.
    let mut b = Builder::new(unit);
    let worker = b.call(&call.entry, vec![arg]);
    b.expr_stmt(worker)
}

// ------------------------------------------------------------------ 7 ----

/// Algorithm 5 — pthread_join removal.
///
/// A join inside a loop removes the loop and replaces the joins with one
/// `RCCE_barrier(&RCCE_COMM_WORLD)`; other statements in the loop are
/// hoisted with the induction variable rewritten to the core id (that is
/// how `printf(..., sum[local])` becomes `printf(..., sum[myID])` in
/// Example Code 4.2). A standalone join becomes a barrier.
pub struct JoinsPass;

impl TransformPass for JoinsPass {
    fn name(&self) -> &'static str {
        "joins-to-barriers"
    }

    fn run(&mut self, ctx: &mut PassContext<'_>) -> Result<(), TranslateError> {
        let core_var = ctx.core_id_var.clone();
        let fn_names: Vec<String> = ctx.unit.functions().map(|f| f.name.clone()).collect();
        let mut unit = std::mem::take(&mut ctx.unit);
        for fname in fn_names {
            let mut body = std::mem::take(&mut unit.function_mut(&fname).unwrap().body);
            let mut new_body = Vec::with_capacity(body.len());
            for stmt in body.drain(..) {
                if !stmt_contains_call(&stmt, "pthread_join") {
                    new_body.push(stmt);
                    continue;
                }
                match stmt.kind {
                    StmtKind::For(init, _, _, loop_body) => {
                        let ivar = for_induction_var(&init);
                        new_body.push(barrier_stmt(&mut unit));
                        let inner: Vec<Stmt> = match loop_body.kind {
                            StmtKind::Block(stmts) => stmts,
                            other => vec![Stmt {
                                id: loop_body.id,
                                kind: other,
                                span: loop_body.span,
                            }],
                        };
                        let fold = ctx.fold_total;
                        let id_var: &str = if fold.is_some() { "foldID" } else { &core_var };
                        let mut hoisted = Vec::new();
                        for mut inner_stmt in inner {
                            if stmt_contains_call(&inner_stmt, "pthread_join") {
                                continue;
                            }
                            if let Some(iv) = &ivar {
                                subst_ident_stmt(&mut inner_stmt, iv, id_var);
                            }
                            hoisted.push(inner_stmt);
                        }
                        if let (Some(total), false) = (fold, hoisted.is_empty()) {
                            new_body.push(fold_loop(
                                &mut unit,
                                "foldID",
                                &core_var,
                                total,
                                ctx.options.cores,
                                hoisted,
                            ));
                        } else if let (Some(total), false) = (ctx.guard_total, hoisted.is_empty()) {
                            // Idle cores beyond the thread count must also
                            // skip the per-thread epilogue (e.g. a printf
                            // indexed by myID would read out of bounds).
                            let mut b = Builder::new(&mut unit);
                            new_body.push(b.lt_guard(&core_var, total as i64, hoisted));
                        } else {
                            new_body.extend(hoisted);
                        }
                    }
                    _ => {
                        new_body.push(barrier_stmt(&mut unit));
                    }
                }
            }
            unit.function_mut(&fname).unwrap().body = new_body;
        }
        ctx.unit = unit;
        Ok(())
    }
}

/// Whether a statement only takes a timestamp (`double t0 = wtime();` or
/// `t0 = RCCE_wtime();`).
fn is_wtime_stmt(s: &Stmt) -> bool {
    let mut only_wtime = false;
    match &s.kind {
        StmtKind::Decl(d) => {
            only_wtime = d.vars.iter().all(|v| match &v.init {
                Some(e) => matches!(e.call_target(), Some("wtime") | Some("RCCE_wtime")),
                None => false,
            }) && !d.vars.is_empty();
        }
        StmtKind::Expr(Some(e)) => {
            if let ExprKind::Assign(AssignOp::Assign, _, rhs) = &e.kind {
                only_wtime = matches!(rhs.call_target(), Some("wtime") | Some("RCCE_wtime"));
            }
        }
        _ => {}
    }
    only_wtime
}

fn barrier_stmt(unit: &mut TranslationUnit) -> Stmt {
    let mut b = Builder::new(unit);
    let comm = b.ident("RCCE_COMM_WORLD");
    let addr = b.addr_of(comm);
    let call = b.call("RCCE_barrier", vec![addr]);
    b.expr_stmt(call)
}

// ------------------------------------------------------------------ 8 ----

/// Algorithm 6 — `pthread_self()` → `RCCE_ue()`; also maps the benchmark
/// timing call `wtime()` to `RCCE_wtime()`.
pub struct SelfPass;

impl TransformPass for SelfPass {
    fn name(&self) -> &'static str {
        "pthread-self"
    }

    fn run(&mut self, ctx: &mut PassContext<'_>) -> Result<(), TranslateError> {
        for f in ctx.unit.functions_mut() {
            for s in &mut f.body {
                rename_calls_stmt(s, &[("pthread_self", "RCCE_ue"), ("wtime", "RCCE_wtime")]);
            }
        }
        Ok(())
    }
}

fn rename_calls_stmt(s: &mut Stmt, map: &[(&str, &str)]) {
    match &mut s.kind {
        StmtKind::Expr(Some(e)) => rename_calls_expr(e, map),
        StmtKind::Decl(d) => {
            for v in &mut d.vars {
                if let Some(init) = &mut v.init {
                    rename_calls_expr(init, map);
                }
            }
        }
        StmtKind::Block(stmts) => {
            for st in stmts {
                rename_calls_stmt(st, map);
            }
        }
        StmtKind::If(c, then, els) => {
            rename_calls_expr(c, map);
            rename_calls_stmt(then, map);
            if let Some(e) = els {
                rename_calls_stmt(e, map);
            }
        }
        StmtKind::While(c, body) => {
            rename_calls_expr(c, map);
            rename_calls_stmt(body, map);
        }
        StmtKind::DoWhile(body, c) => {
            rename_calls_stmt(body, map);
            rename_calls_expr(c, map);
        }
        StmtKind::For(init, cond, step, body) => {
            match init {
                Some(ForInit::Decl(d)) => {
                    for v in &mut d.vars {
                        if let Some(i) = &mut v.init {
                            rename_calls_expr(i, map);
                        }
                    }
                }
                Some(ForInit::Expr(e)) => rename_calls_expr(e, map),
                None => {}
            }
            if let Some(c) = cond {
                rename_calls_expr(c, map);
            }
            if let Some(st) = step {
                rename_calls_expr(st, map);
            }
            rename_calls_stmt(body, map);
        }
        StmtKind::Switch(scrutinee, body) => {
            rename_calls_expr(scrutinee, map);
            for st in body {
                rename_calls_stmt(st, map);
            }
        }
        StmtKind::Return(Some(e)) => rename_calls_expr(e, map),
        _ => {}
    }
}

fn rename_calls_expr(e: &mut Expr, map: &[(&str, &str)]) {
    if let ExprKind::Call(callee, args) = &mut e.kind {
        if let ExprKind::Ident(name) = &mut callee.kind {
            for (from, to) in map {
                if name == from {
                    *name = to.to_string();
                }
            }
        }
        for a in args {
            rename_calls_expr(a, map);
        }
        return;
    }
    match &mut e.kind {
        ExprKind::Unary(_, inner)
        | ExprKind::PostIncDec(inner, _)
        | ExprKind::Cast(_, inner)
        | ExprKind::SizeofExpr(inner) => rename_calls_expr(inner, map),
        ExprKind::Binary(_, l, r) | ExprKind::Assign(_, l, r) | ExprKind::Comma(l, r) => {
            rename_calls_expr(l, map);
            rename_calls_expr(r, map);
        }
        ExprKind::Ternary(c, t, f) => {
            rename_calls_expr(c, map);
            rename_calls_expr(t, map);
            rename_calls_expr(f, map);
        }
        ExprKind::Index(b, i) => {
            rename_calls_expr(b, map);
            rename_calls_expr(i, map);
        }
        ExprKind::Member(b, _, _) => rename_calls_expr(b, map),
        ExprKind::InitList(items) => {
            for it in items {
                rename_calls_expr(it, map);
            }
        }
        _ => {}
    }
}

// ------------------------------------------------------------------ 9 ----

/// Algorithm 7 — removes declarations whose specifier is a pthread data
/// type (`pthread_t threads[3];`, `pthread_mutex_t m;`, …), globally and
/// locally.
pub struct RemoveTypesPass;

impl TransformPass for RemoveTypesPass {
    fn name(&self) -> &'static str {
        "remove-pthread-types"
    }

    fn run(&mut self, ctx: &mut PassContext<'_>) -> Result<(), TranslateError> {
        ctx.unit.items.retain(|item| match item {
            Item::Decl(d) => !d.vars.iter().all(|v| v.ty.is_pthread_type()),
            Item::Func(_) => true,
        });
        for f in ctx.unit.functions_mut() {
            let mut body = std::mem::take(&mut f.body);
            map_stmts(&mut body, &mut |s| {
                if let StmtKind::Decl(d) = &s.kind {
                    if d.vars.iter().all(|v| v.ty.is_pthread_type()) {
                        return vec![];
                    }
                }
                vec![s]
            });
            f.body = body;
        }
        Ok(())
    }
}

// ----------------------------------------------------------------- 10 ----

/// Algorithm 8 — removes every remaining statement that calls a
/// `pthread_*` API function (the hash-table O(1) lookup of the paper).
pub struct RemoveApiPass;

impl TransformPass for RemoveApiPass {
    fn name(&self) -> &'static str {
        "remove-pthread-api"
    }

    fn run(&mut self, ctx: &mut PassContext<'_>) -> Result<(), TranslateError> {
        let api: std::collections::HashSet<&str> = PTHREAD_API.iter().copied().collect();
        for f in ctx.unit.functions_mut() {
            let mut body = std::mem::take(&mut f.body);
            map_stmts(&mut body, &mut |s| {
                let contains_api = {
                    let mut found = false;
                    hsm_cir::visit::walk_exprs_in_stmt(&s, &mut |e| {
                        if let Some(t) = e.call_target() {
                            if api.contains(t) || t.starts_with("pthread_") {
                                found = true;
                            }
                        }
                    });
                    found
                };
                if contains_api {
                    vec![]
                } else {
                    vec![s]
                }
            });
            f.body = body;
        }
        Ok(())
    }
}

// ----------------------------------------------------------------- 11 ----

/// Removes local declarations orphaned by the conversion: zero remaining
/// references and a side-effect-free initializer.
pub struct UnusedLocalsPass;

impl TransformPass for UnusedLocalsPass {
    fn name(&self) -> &'static str {
        "remove-unused-locals"
    }

    fn run(&mut self, ctx: &mut PassContext<'_>) -> Result<(), TranslateError> {
        for f in ctx.unit.functions_mut() {
            loop {
                let mut removed = false;
                let snapshot = f.body.clone();
                let mut body = std::mem::take(&mut f.body);
                map_stmts(&mut body, &mut |s| {
                    if let StmtKind::Decl(d) = &s.kind {
                        let all_dead = d.vars.iter().all(|v| {
                            let pure_init = match &v.init {
                                None => true,
                                Some(e) => matches!(
                                    e.kind,
                                    ExprKind::IntLit(_)
                                        | ExprKind::FloatLit(_)
                                        | ExprKind::CharLit(_)
                                        | ExprKind::StrLit(_)
                                ),
                            };
                            pure_init && count_refs(&snapshot, &v.name) == 0
                        });
                        if all_dead && !d.vars.is_empty() {
                            removed = true;
                            return vec![];
                        }
                    }
                    vec![s]
                });
                f.body = body;
                if !removed {
                    break;
                }
            }
        }
        Ok(())
    }
}

// ----------------------------------------------------------------- 12 ----

/// Drops private, entirely-unused globals (the post-Stage-3 cleanup that
/// removes `global` from Example Code 4.2).
pub struct DropPrivateGlobalsPass;

impl TransformPass for DropPrivateGlobalsPass {
    fn name(&self) -> &'static str {
        "drop-private-globals"
    }

    fn run(&mut self, ctx: &mut PassContext<'_>) -> Result<(), TranslateError> {
        let analysis = ctx.analysis;
        ctx.unit.items.retain(|item| match item {
            Item::Decl(d) => !d.vars.iter().all(|v| {
                let key = hsm_analysis::VarKey::global(v.name.clone());
                matches!(analysis.scope.variable(&key), Some(info)
                    if info.counts.total() == 0
                        && !analysis.final_status(&v.name).is_shared()
                        && !matches!(v.ty, CType::Function { .. }))
            }),
            Item::Func(_) => true,
        });
        Ok(())
    }
}
