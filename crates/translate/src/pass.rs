//! The pass framework: the Rust analogue of CETUS's `AnalysisPass` /
//! `TransformPass` / `Driver` classes (§5.3 of the paper).
//!
//! Each framework component is a [`TransformPass`]; the [`Driver`] brings
//! the passes together and executes them in series, performing a
//! consistency check after every pass (the printed IR must re-parse — the
//! same self-consistency guarantee the paper attributes to the CETUS base
//! classes).

use crate::error::TranslateError;
use hsm_analysis::ProgramAnalysis;
use hsm_cir::{parse, print_unit, TranslationUnit};
use hsm_partition::PartitionPlan;
use std::collections::BTreeMap;

/// Shared state threaded through the pass pipeline.
#[derive(Debug)]
pub struct PassContext<'a> {
    /// The unit being rewritten (mutated in place by passes).
    pub unit: TranslationUnit,
    /// Stages 1–3 results for the *original* program.
    pub analysis: &'a ProgramAnalysis,
    /// Stage 4 placement decisions.
    pub plan: &'a PartitionPlan,
    /// Options controlling the translation.
    pub options: crate::TranslateOptions,
    /// The paper's "hash table" of thread-specific functions: worker name →
    /// assigned core id, for launches that must be isolated to one core.
    pub core_bound_calls: BTreeMap<String, usize>,
    /// Mutex variable name → assigned RCCE test-and-set lock id.
    pub mutex_ids: BTreeMap<String, usize>,
    /// Name of the inserted core-id variable (`myID` in Example Code 4.2).
    pub core_id_var: String,
    /// When the source launches more threads than the target has cores,
    /// the total thread count being folded onto the cores (§7.2's
    /// many-to-one mapping); `None` for the 1:1 case.
    pub fold_total: Option<usize>,
    /// When the source launches *fewer* threads than the target has cores,
    /// the thread count guarding the worker region (`if (myID < total)`),
    /// so idle cores skip worker calls and hoisted per-thread statements;
    /// `None` when every core has work.
    pub guard_total: Option<usize>,
}

impl<'a> PassContext<'a> {
    /// Creates the context for one translation run.
    pub fn new(
        unit: TranslationUnit,
        analysis: &'a ProgramAnalysis,
        plan: &'a PartitionPlan,
        options: crate::TranslateOptions,
    ) -> Self {
        PassContext {
            unit,
            analysis,
            plan,
            options,
            core_bound_calls: BTreeMap::new(),
            mutex_ids: BTreeMap::new(),
            core_id_var: "myID".to_string(),
            fold_total: None,
            guard_total: None,
        }
    }
}

/// A single transformation over the IR.
pub trait TransformPass {
    /// Human-readable pass name (for errors and tracing).
    fn name(&self) -> &'static str;

    /// Applies the transformation.
    ///
    /// # Errors
    ///
    /// Returns a [`TranslateError`] when the input program uses constructs
    /// the pass cannot translate.
    fn run(&mut self, ctx: &mut PassContext<'_>) -> Result<(), TranslateError>;
}

/// Executes passes in series with a consistency check between passes.
#[derive(Default)]
pub struct Driver {
    passes: Vec<Box<dyn TransformPass>>,
    /// Pass names executed so far (for tracing/tests).
    pub trace: Vec<&'static str>,
}

impl Driver {
    /// Creates an empty driver.
    pub fn new() -> Self {
        Driver::default()
    }

    /// Appends a pass to the pipeline.
    #[allow(clippy::should_implement_trait)] // builder-style, not ops::Add
    pub fn add(mut self, pass: impl TransformPass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// The names of the configured passes, in execution order (what
    /// [`Driver::run`] will record as the trace). The persistent artifact
    /// store uses this to rebuild a [`crate::Translation`]'s pass trace
    /// from its on-disk entry without re-running the passes.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass in order. After each pass the unit is printed and
    /// re-parsed; failure to re-parse means the pass corrupted the IR and
    /// aborts the pipeline with an internal error naming the pass.
    ///
    /// # Errors
    ///
    /// Propagates pass errors and reports IR corruption.
    pub fn run(&mut self, ctx: &mut PassContext<'_>) -> Result<(), TranslateError> {
        for pass in &mut self.passes {
            pass.run(ctx)?;
            self.trace.push(pass.name());
            let printed = print_unit(&ctx.unit);
            if let Err(e) = parse(&printed) {
                return Err(TranslateError::internal(format!(
                    "pass `{}` produced an inconsistent IR: {e}",
                    pass.name()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsm_partition::{MemorySpec, Policy};

    struct Renamer;
    impl TransformPass for Renamer {
        fn name(&self) -> &'static str {
            "renamer"
        }
        fn run(&mut self, ctx: &mut PassContext<'_>) -> Result<(), TranslateError> {
            if let Some(f) = ctx.unit.function_mut("main") {
                f.name = "entry".to_string();
            }
            Ok(())
        }
    }

    struct Corruptor;
    impl TransformPass for Corruptor {
        fn name(&self) -> &'static str {
            "corruptor"
        }
        fn run(&mut self, ctx: &mut PassContext<'_>) -> Result<(), TranslateError> {
            if let Some(f) = ctx.unit.function_mut("entry") {
                // An identifier with a space cannot re-lex: corruption.
                f.name = "bad name".to_string();
            }
            Ok(())
        }
    }

    fn ctx_fixture(src: &str) -> (ProgramAnalysis, PartitionPlan, TranslationUnit) {
        let tu = parse(src).unwrap();
        let analysis = ProgramAnalysis::analyze(&tu);
        let vars = hsm_partition::shared_vars_from_analysis(&analysis);
        let plan = hsm_partition::partition(&vars, &MemorySpec::scc(32), Policy::SizeAscending);
        (analysis, plan, tu)
    }

    #[test]
    fn driver_runs_passes_in_order() {
        let (analysis, plan, tu) = ctx_fixture("int main() { return 0; }");
        let mut ctx = PassContext::new(tu, &analysis, &plan, Default::default());
        let mut driver = Driver::new().add(Renamer);
        driver.run(&mut ctx).expect("pipeline");
        assert_eq!(driver.trace, vec!["renamer"]);
        assert!(ctx.unit.function("entry").is_some());
    }

    #[test]
    fn driver_detects_ir_corruption() {
        let (analysis, plan, tu) = ctx_fixture("int main() { return 0; }");
        let mut ctx = PassContext::new(tu, &analysis, &plan, Default::default());
        let mut driver = Driver::new().add(Renamer).add(Corruptor);
        let err = driver.run(&mut ctx).unwrap_err();
        assert!(err.to_string().contains("corruptor"), "{err}");
        assert!(err.to_string().contains("inconsistent IR"), "{err}");
    }
}
