//! # hsm-translate — Stage 5: the pthread→RCCE source-to-source translator
//!
//! Converts a well-defined Pthread program into a multi-process RCCE
//! program executable on the (simulated) Intel SCC, implementing
//! Algorithms 4–10 of the paper on top of a CETUS-style pass framework
//! ([`pass::Driver`] with a post-pass IR consistency check).
//!
//! The translation reproduces Example Code 4.2 from Example Code 4.1:
//! threads become processes keyed by `RCCE_ue()`, shared globals become
//! `RCCE_shmalloc`/`RCCE_malloc` allocations, `pthread_join` loops become
//! `RCCE_barrier`, and all pthread vestiges are stripped.
//!
//! ```
//! # fn main() -> Result<(), hsm_translate::TranslateError> {
//! use hsm_translate::translate_source;
//!
//! let rcce = translate_source(r#"
//!     #include <pthread.h>
//!     int counter[4];
//!     void *tf(void *tid) { counter[(int)tid]++; return tid; }
//!     int main() {
//!         pthread_t t[4];
//!         int i;
//!         for (i = 0; i < 4; i++) pthread_create(&t[i], NULL, tf, (void *)i);
//!         for (i = 0; i < 4; i++) pthread_join(t[i], NULL);
//!         return 0;
//!     }
//! "#)?;
//! assert!(rcce.contains("RCCE_init"));
//! assert!(rcce.contains("RCCE_barrier"));
//! assert!(!rcce.contains("pthread_create"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod pass;
pub mod passes;
pub mod rewrite;

pub use error::TranslateError;
pub use pass::{Driver, PassContext, TransformPass};

use hsm_analysis::ProgramAnalysis;
use hsm_cir::{parse, print_unit, TranslationUnit};
use hsm_partition::{MemorySpec, PartitionPlan, Policy};

/// Options controlling a translation run.
#[derive(Debug, Clone, PartialEq)]
pub struct TranslateOptions {
    /// Number of participating cores (sizes the MPB the partitioner sees).
    pub cores: usize,
    /// Partitioning policy for shared data (Figure 6.1 uses
    /// [`Policy::OffChipOnly`], Figure 6.2 the default Algorithm 3).
    pub policy: Policy,
}

impl Default for TranslateOptions {
    fn default() -> Self {
        TranslateOptions {
            cores: 32,
            policy: Policy::SizeAscending,
        }
    }
}

/// The full result of a translation run.
#[derive(Debug, Clone)]
pub struct Translation {
    /// The rewritten unit.
    pub unit: TranslationUnit,
    /// The analysis of the original program.
    pub analysis: ProgramAnalysis,
    /// The Stage 4 plan that drove allocation placement.
    pub plan: PartitionPlan,
    /// Names of pass stages executed, in order.
    pub pass_trace: Vec<&'static str>,
}

impl Translation {
    /// The translated program as C source.
    pub fn to_source(&self) -> String {
        print_unit(&self.unit)
    }
}

/// Builds the standard Algorithm 4–10 pipeline.
pub fn standard_driver() -> Driver {
    Driver::new()
        .add(passes::IncludesPass)
        .add(passes::MutexPass)
        .add(passes::BarrierPass)
        .add(passes::MainConvPass)
        .add(passes::SharedDataPass)
        .add(passes::CoreIdPass)
        .add(passes::GuardSharedInitPass)
        .add(passes::ThreadsToProcsPass)
        .add(passes::JoinsPass)
        .add(passes::SelfPass)
        .add(passes::RemoveTypesPass)
        .add(passes::RemoveApiPass)
        .add(passes::UnusedLocalsPass)
        .add(passes::DropPrivateGlobalsPass)
}

/// Translates a parsed pthread program with explicit options.
///
/// # Errors
///
/// Returns a [`TranslateError`] for programs outside the supported subset
/// (e.g. no `main`) or if a pass corrupts the IR (internal error).
pub fn translate(
    tu: &TranslationUnit,
    options: TranslateOptions,
) -> Result<Translation, TranslateError> {
    let analysis = ProgramAnalysis::analyze(tu);
    let shared = hsm_partition::shared_vars_from_analysis(&analysis);
    // The full 48-slice MPB (384 KB) is addressable by any participating
    // core; the partitioner budgets against the whole chip.
    let spec = MemorySpec::scc(48);
    let plan = hsm_partition::partition(&shared, &spec, options.policy);
    translate_with_plan(tu, &analysis, &plan, options)
}

/// Translates using a caller-provided analysis and partition plan (used by
/// the experiment harness to force placements).
///
/// # Errors
///
/// Same as [`translate`].
pub fn translate_with_plan(
    tu: &TranslationUnit,
    analysis: &ProgramAnalysis,
    plan: &PartitionPlan,
    options: TranslateOptions,
) -> Result<Translation, TranslateError> {
    let mut ctx = PassContext::new(tu.clone(), analysis, plan, options);
    let mut driver = standard_driver();
    driver.run(&mut ctx)?;
    Ok(Translation {
        unit: ctx.unit,
        analysis: analysis.clone(),
        plan: plan.clone(),
        pass_trace: driver.trace.clone(),
    })
}

/// Parses and translates in one step, returning RCCE C source.
///
/// # Errors
///
/// Returns a [`TranslateError`] on parse failure or unsupported constructs.
pub fn translate_source(src: &str) -> Result<String, TranslateError> {
    let tu = parse(src)?;
    Ok(translate(&tu, TranslateOptions::default())?.to_source())
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE_4_1: &str = r#"
#include <stdio.h>
#include <pthread.h>

int global;
int *ptr;
int sum[3] = {0};

void *tf(void * tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for(local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *) local);
    }
    for(local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
"#;

    fn translate_example() -> String {
        translate_source(EXAMPLE_4_1).expect("translation")
    }

    /// The golden test: every structural property of Example Code 4.2.
    #[test]
    fn example_4_2_structure() {
        let out = translate_example();
        // Includes: RCCE.h replaces pthread.h, stdio survives.
        assert!(out.contains("#include <stdio.h>"), "{out}");
        assert!(out.contains("#include \"RCCE.h\""), "{out}");
        assert!(!out.contains("pthread.h"), "{out}");
        // Globals: sum becomes a pointer, global disappears.
        assert!(out.contains("int *sum;"), "{out}");
        assert!(out.contains("int *ptr;"), "{out}");
        assert!(!out.contains("int global"), "{out}");
        // Main conversion.
        assert!(out.contains("RCCE_APP"), "{out}");
        assert!(out.contains("RCCE_init(&argc, &argv);"), "{out}");
        assert!(out.contains("RCCE_finalize();"), "{out}");
        // Allocations for both shared globals.
        assert!(out.contains("sum = (int *)RCCE_"), "{out}");
        assert!(out.contains("ptr = (int *)RCCE_"), "{out}");
        assert!(out.contains("sizeof(int) * 3"), "{out}");
        // Core id.
        assert!(out.contains("int myID;"), "{out}");
        assert!(out.contains("myID = RCCE_ue();"), "{out}");
        // Thread launch became a direct call with the core id.
        assert!(out.contains("tf((void *)myID);"), "{out}");
        // Join loop became a barrier; printf hoisted with myID.
        assert!(out.contains("RCCE_barrier(&RCCE_COMM_WORLD);"), "{out}");
        assert!(out.contains("sum[myID]"), "{out}");
        // All pthread vestiges gone.
        assert!(!out.contains("pthread"), "{out}");
        // Orphaned locals gone.
        assert!(!out.contains("int local"), "{out}");
        assert!(!out.contains("int rc"), "{out}");
        assert!(!out.contains("threads"), "{out}");
        // tmp survives (its sharing is realized through ptr).
        assert!(out.contains("int tmp = 1;"), "{out}");
        assert!(
            out.contains("ptr = &tmp;") || out.contains("ptr = (&tmp);"),
            "{out}"
        );
        // Output is valid C in our subset.
        parse(&out).expect("translated source parses");
    }

    #[test]
    fn statement_order_matches_example_4_2() {
        let out = translate_example();
        let idx = |needle: &str| {
            out.find(needle)
                .unwrap_or_else(|| panic!("missing `{needle}` in:\n{out}"))
        };
        let init = idx("RCCE_init");
        let alloc = idx("RCCE_malloc");
        let myid = idx("int myID;");
        let ue = idx("myID = RCCE_ue();");
        let worker = idx("tf((void *)myID);");
        // One barrier separates initialization from the worker; a second
        // replaces the join loop.
        let pre_barrier = idx("RCCE_barrier");
        let post_barrier = out[worker..]
            .find("RCCE_barrier")
            .map(|i| worker + i)
            .expect("post-worker barrier");
        let printf = idx("printf");
        let fin = idx("RCCE_finalize");
        assert!(init < alloc, "{out}");
        assert!(alloc < myid, "{out}");
        assert!(myid < ue, "{out}");
        assert!(ue < pre_barrier, "{out}");
        assert!(pre_barrier < worker, "{out}");
        assert!(worker < post_barrier, "{out}");
        assert!(post_barrier < printf, "{out}");
        assert!(printf < fin, "{out}");
    }

    #[test]
    fn off_chip_only_policy_uses_shmalloc() {
        let tu = parse(EXAMPLE_4_1).unwrap();
        let t = translate(
            &tu,
            TranslateOptions {
                cores: 32,
                policy: Policy::OffChipOnly,
            },
        )
        .unwrap();
        let out = t.to_source();
        assert!(out.contains("RCCE_shmalloc"), "{out}");
        assert!(!out.contains("RCCE_malloc("), "{out}");
    }

    #[test]
    fn on_chip_policy_uses_mpb_malloc() {
        // Everything fits on-chip with the default policy (the example's
        // shared set is tiny), so RCCE_malloc must be used.
        let tu = parse(EXAMPLE_4_1).unwrap();
        let t = translate(&tu, TranslateOptions::default()).unwrap();
        let out = t.to_source();
        assert!(out.contains("RCCE_malloc("), "{out}");
        assert!(!out.contains("RCCE_shmalloc"), "{out}");
    }

    #[test]
    fn scalar_shared_global_is_dereferenced() {
        let src = r#"
#include <pthread.h>
int counter;
void *tf(void *tid) { counter = counter + 1; return tid; }
int main() {
    pthread_t t[2];
    int i;
    for (i = 0; i < 2; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 2; i++) pthread_join(t[i], NULL);
    return counter;
}
"#;
        let out = translate_source(src).expect("translate");
        assert!(out.contains("int *counter;"), "{out}");
        assert!(
            out.contains("(*counter) = (*counter) + 1") || out.contains("*counter = *counter + 1"),
            "{out}"
        );
        assert!(
            out.contains("return *counter;") || out.contains("return (*counter);"),
            "{out}"
        );
        parse(&out).expect("parses");
    }

    #[test]
    fn mutex_becomes_test_and_set_lock() {
        let src = r#"
#include <pthread.h>
pthread_mutex_t lock;
int total;
void *tf(void *tid) {
    pthread_mutex_lock(&lock);
    total = total + 1;
    pthread_mutex_unlock(&lock);
    return tid;
}
int main() {
    pthread_t t[2];
    int i;
    pthread_mutex_init(&lock, NULL);
    for (i = 0; i < 2; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 2; i++) pthread_join(t[i], NULL);
    pthread_mutex_destroy(&lock);
    return 0;
}
"#;
        let out = translate_source(src).expect("translate");
        assert!(out.contains("RCCE_acquire_lock(0);"), "{out}");
        assert!(out.contains("RCCE_release_lock(0);"), "{out}");
        assert!(!out.contains("pthread_mutex"), "{out}");
        parse(&out).expect("parses");
    }

    #[test]
    fn single_launch_is_core_guarded() {
        let src = r#"
#include <pthread.h>
int flag;
void *special(void *arg) { flag = 1; return arg; }
int main() {
    pthread_t t;
    pthread_create(&t, NULL, special, NULL);
    pthread_join(t, NULL);
    return 0;
}
"#;
        let out = translate_source(src).expect("translate");
        assert!(out.contains("if (myID == 0)"), "{out}");
        assert!(out.contains("special(NULL);"), "{out}");
        assert!(out.contains("RCCE_barrier"), "{out}");
        parse(&out).expect("parses");
    }

    #[test]
    fn two_distinct_single_launches_get_distinct_cores() {
        let src = r#"
#include <pthread.h>
int a;
int b;
void *wa(void *arg) { a = 1; return arg; }
void *wb(void *arg) { b = 1; return arg; }
int main() {
    pthread_t t1, t2;
    pthread_create(&t1, NULL, wa, NULL);
    pthread_create(&t2, NULL, wb, NULL);
    pthread_join(t1, NULL);
    pthread_join(t2, NULL);
    return 0;
}
"#;
        let out = translate_source(src).expect("translate");
        assert!(out.contains("if (myID == 0)"), "{out}");
        assert!(out.contains("if (myID == 1)"), "{out}");
        parse(&out).expect("parses");
    }

    #[test]
    fn pthread_self_becomes_rcce_ue() {
        let src = r#"
#include <pthread.h>
int ids[4];
void *tf(void *tid) { ids[(int)tid] = (int)pthread_self(); return tid; }
int main() {
    pthread_t t[4];
    int i;
    for (i = 0; i < 4; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 4; i++) pthread_join(t[i], NULL);
    return 0;
}
"#;
        let out = translate_source(src).expect("translate");
        assert!(out.contains("RCCE_ue()"), "{out}");
        assert!(!out.contains("pthread_self"), "{out}");
    }

    #[test]
    fn error_without_main() {
        let err = translate_source("int f() { return 0; }").unwrap_err();
        assert!(err.to_string().contains("no main function"), "{err}");
    }

    #[test]
    fn translated_source_is_stable_under_reparse() {
        let out = translate_example();
        let again = print_unit(&parse(&out).unwrap());
        assert_eq!(out, again);
    }

    #[test]
    fn wtime_is_mapped_to_rcce_wtime() {
        let src = r#"
#include <pthread.h>
double wtime();
int work[2];
void *tf(void *tid) { work[(int)tid] = 1; return tid; }
int main() {
    double t0 = wtime();
    pthread_t t[2];
    int i;
    for (i = 0; i < 2; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 2; i++) pthread_join(t[i], NULL);
    double t1 = wtime();
    return (int)(t1 - t0);
}
"#;
        let out = translate_source(src).expect("translate");
        assert!(out.contains("RCCE_wtime()"), "{out}");
        assert!(!out.contains("= wtime()"), "{out}");
    }

    #[test]
    fn folding_emits_many_to_one_loop() {
        // 8 launches translated for 4 cores: §7.2's many-to-one mapping.
        let src = r#"
#include <pthread.h>
int data[8];
void *tf(void *tid) { data[(int)tid] = (int)tid; return tid; }
int main() {
    pthread_t t[8];
    int i;
    for (i = 0; i < 8; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 8; i++) pthread_join(t[i], NULL);
    return data[7];
}
"#;
        let tu = parse(src).unwrap();
        let t = translate(
            &tu,
            TranslateOptions {
                cores: 4,
                policy: Policy::SizeAscending,
            },
        )
        .unwrap();
        let out = t.to_source();
        assert!(
            out.contains("for (foldID = myID; foldID < 8; foldID = foldID + 4)"),
            "{out}"
        );
        assert!(out.contains("tf((void *)foldID);"), "{out}");
    }

    #[test]
    fn no_folding_when_cores_cover_threads() {
        let src = r#"
#include <pthread.h>
int data[4];
void *tf(void *tid) { data[(int)tid] = 1; return tid; }
int main() {
    pthread_t t[4];
    int i;
    for (i = 0; i < 4; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 4; i++) pthread_join(t[i], NULL);
    return 0;
}
"#;
        let tu = parse(src).unwrap();
        let t = translate(
            &tu,
            TranslateOptions {
                cores: 8,
                policy: Policy::SizeAscending,
            },
        )
        .unwrap();
        let out = t.to_source();
        assert!(!out.contains("foldID"), "{out}");
        assert!(out.contains("tf((void *)myID);"), "{out}");
        // The four surplus cores must not run the worker: their myID would
        // index past `data` and trample whatever lands after it in shared
        // memory. The worker call is wrapped in an idle-core guard.
        assert!(out.contains("if (myID < 4)"), "{out}");
    }

    #[test]
    fn folded_join_loop_statements_cover_all_thread_ids() {
        // The printf inside the join loop must run once per *thread* id,
        // not once per core.
        let src = r#"
#include <pthread.h>
int data[8];
void *tf(void *tid) { data[(int)tid] = (int)tid; return tid; }
int main() {
    pthread_t t[8];
    int i;
    for (i = 0; i < 8; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 8; i++) {
        pthread_join(t[i], NULL);
        printf("v %d\n", data[i]);
    }
    return 0;
}
"#;
        let tu = parse(src).unwrap();
        let t = translate(
            &tu,
            TranslateOptions {
                cores: 4,
                policy: Policy::SizeAscending,
            },
        )
        .unwrap();
        let out = t.to_source();
        assert!(out.contains("printf(\"v %d\\n\", data[foldID]);"), "{out}");
    }
}
