//! `hsm2rcce` — the paper's translator as a command-line tool.
//!
//! Reads a pthread C program and writes the converted RCCE program, like
//! the CETUS-based utility the thesis describes.
//!
//! ```text
//! hsm2rcce input.c                      # translated source to stdout
//! hsm2rcce input.c -o output.c          # ... to a file
//! hsm2rcce input.c --cores 32           # partition for 32 cores
//! hsm2rcce input.c --off-chip-only      # force DRAM placement (Fig 6.1)
//! hsm2rcce input.c --tables             # print Tables 4.1/4.2 instead
//! hsm2rcce input.c --plan               # print the Stage 4 partition plan
//! ```

use hsm_partition::Policy;
use hsm_translate::{translate, TranslateOptions};
use std::process::ExitCode;

struct Args {
    input: Option<String>,
    output: Option<String>,
    cores: usize,
    policy: Policy,
    tables: bool,
    plan: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: None,
        output: None,
        cores: 32,
        policy: Policy::SizeAscending,
        tables: false,
        plan: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--output" => {
                args.output = Some(it.next().ok_or("missing value after -o")?);
            }
            "--cores" => {
                let v = it.next().ok_or("missing value after --cores")?;
                args.cores = v.parse().map_err(|_| format!("bad core count `{v}`"))?;
            }
            "--off-chip-only" => args.policy = Policy::OffChipOnly,
            "--frequency-policy" => args.policy = Policy::FrequencyDensity,
            "--tables" => args.tables = true,
            "--plan" => args.plan = true,
            "-h" | "--help" => {
                println!(
                    "usage: hsm2rcce <input.c> [-o output.c] [--cores N] \
                     [--off-chip-only] [--frequency-policy] [--tables] [--plan]"
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') && args.input.is_none() => {
                args.input = Some(other.to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("hsm2rcce: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(input) = &args.input else {
        eprintln!("hsm2rcce: no input file (try --help)");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hsm2rcce: cannot read `{input}`: {e}");
            return ExitCode::FAILURE;
        }
    };

    let tu = match hsm_cir::parse(&source) {
        Ok(tu) => tu,
        Err(e) => {
            eprintln!("hsm2rcce: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.tables {
        let analysis = hsm_analysis::ProgramAnalysis::analyze(&tu);
        println!("Table 4.1 — per-variable facts\n");
        println!("{}", analysis.render_table_4_1());
        println!("Table 4.2 — sharing status by stage\n");
        println!("{}", analysis.render_table_4_2());
        return ExitCode::SUCCESS;
    }

    let options = TranslateOptions {
        cores: args.cores,
        policy: args.policy,
    };
    let translation = match translate(&tu, options) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("hsm2rcce: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.plan {
        println!("{}", translation.plan.to_text());
        return ExitCode::SUCCESS;
    }

    let out = translation.to_source();
    match &args.output {
        Some(path) => {
            if let Err(e) = std::fs::write(path, out) {
                eprintln!("hsm2rcce: cannot write `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{out}"),
    }
    ExitCode::SUCCESS
}
