//! AST construction and rewriting utilities shared by the passes.

use hsm_cir::ast::*;
use hsm_cir::span::Span;
use hsm_cir::types::CType;

/// Builds fresh AST nodes against a unit's id counter.
pub struct Builder<'a> {
    unit: &'a mut TranslationUnit,
}

impl<'a> Builder<'a> {
    /// Creates a builder minting ids from `unit`.
    pub fn new(unit: &'a mut TranslationUnit) -> Self {
        Builder { unit }
    }

    fn id(&mut self) -> NodeId {
        self.unit.fresh_id()
    }

    /// `name`
    pub fn ident(&mut self, name: &str) -> Expr {
        Expr {
            id: self.id(),
            kind: ExprKind::Ident(name.to_string()),
            span: Span::default(),
        }
    }

    /// An integer literal.
    pub fn int(&mut self, v: i64) -> Expr {
        Expr {
            id: self.id(),
            kind: ExprKind::IntLit(v),
            span: Span::default(),
        }
    }

    /// `&inner`
    pub fn addr_of(&mut self, inner: Expr) -> Expr {
        Expr {
            id: self.id(),
            kind: ExprKind::Unary(UnaryOp::Addr, Box::new(inner)),
            span: Span::default(),
        }
    }

    /// `(ty)inner`
    pub fn cast(&mut self, ty: CType, inner: Expr) -> Expr {
        Expr {
            id: self.id(),
            kind: ExprKind::Cast(ty, Box::new(inner)),
            span: Span::default(),
        }
    }

    /// `sizeof(ty)`
    pub fn sizeof(&mut self, ty: CType) -> Expr {
        Expr {
            id: self.id(),
            kind: ExprKind::SizeofType(ty),
            span: Span::default(),
        }
    }

    /// `l op r`
    pub fn binary(&mut self, op: BinaryOp, l: Expr, r: Expr) -> Expr {
        Expr {
            id: self.id(),
            kind: ExprKind::Binary(op, Box::new(l), Box::new(r)),
            span: Span::default(),
        }
    }

    /// `callee(args...)`
    pub fn call(&mut self, callee: &str, args: Vec<Expr>) -> Expr {
        let callee = self.ident(callee);
        Expr {
            id: self.id(),
            kind: ExprKind::Call(Box::new(callee), args),
            span: Span::default(),
        }
    }

    /// `lhs = rhs`
    pub fn assign(&mut self, lhs: Expr, rhs: Expr) -> Expr {
        Expr {
            id: self.id(),
            kind: ExprKind::Assign(AssignOp::Assign, Box::new(lhs), Box::new(rhs)),
            span: Span::default(),
        }
    }

    /// `expr;`
    pub fn expr_stmt(&mut self, e: Expr) -> Stmt {
        Stmt {
            id: self.id(),
            kind: StmtKind::Expr(Some(e)),
            span: Span::default(),
        }
    }

    /// `ty name;` (no initializer)
    pub fn decl_stmt(&mut self, name: &str, ty: CType) -> Stmt {
        let vid = self.id();
        let did = self.id();
        let sid = self.id();
        Stmt {
            id: sid,
            kind: StmtKind::Decl(Declaration {
                id: did,
                storage: Storage::None,
                vars: vec![VarDecl {
                    id: vid,
                    name: name.to_string(),
                    ty,
                    init: None,
                    span: Span::default(),
                }],
                span: Span::default(),
            }),
            span: Span::default(),
        }
    }

    /// `if (var == k) { call; }`
    pub fn guarded_call(&mut self, var: &str, k: i64, call: Expr) -> Stmt {
        let lhs = self.ident(var);
        let rhs = self.int(k);
        let cond = self.binary(BinaryOp::Eq, lhs, rhs);
        let body = self.expr_stmt(call);
        let sid = self.id();
        Stmt {
            id: sid,
            kind: StmtKind::If(cond, Box::new(body), None),
            span: Span::default(),
        }
    }

    /// `if (var < upper) { body }` — the idle-core guard used when the
    /// target has more cores than the source has threads.
    pub fn lt_guard(&mut self, var: &str, upper: i64, body: Vec<Stmt>) -> Stmt {
        let lhs = self.ident(var);
        let rhs = self.int(upper);
        let cond = self.binary(BinaryOp::Lt, lhs, rhs);
        let bid = self.id();
        let block = Stmt {
            id: bid,
            kind: StmtKind::Block(body),
            span: Span::default(),
        };
        let sid = self.id();
        Stmt {
            id: sid,
            kind: StmtKind::If(cond, Box::new(block), None),
            span: Span::default(),
        }
    }
}

/// Replaces every occurrence of identifier `from` with identifier `to` in
/// an expression tree.
pub fn subst_ident_expr(e: &mut Expr, from: &str, to: &str) {
    match &mut e.kind {
        ExprKind::Ident(name) if name == from => *name = to.to_string(),
        ExprKind::Ident(_) => {}
        ExprKind::Unary(_, inner)
        | ExprKind::PostIncDec(inner, _)
        | ExprKind::Cast(_, inner)
        | ExprKind::SizeofExpr(inner) => subst_ident_expr(inner, from, to),
        ExprKind::Binary(_, l, r) | ExprKind::Assign(_, l, r) | ExprKind::Comma(l, r) => {
            subst_ident_expr(l, from, to);
            subst_ident_expr(r, from, to);
        }
        ExprKind::Ternary(c, t, f) => {
            subst_ident_expr(c, from, to);
            subst_ident_expr(t, from, to);
            subst_ident_expr(f, from, to);
        }
        ExprKind::Call(callee, args) => {
            subst_ident_expr(callee, from, to);
            for a in args {
                subst_ident_expr(a, from, to);
            }
        }
        ExprKind::Index(b, i) => {
            subst_ident_expr(b, from, to);
            subst_ident_expr(i, from, to);
        }
        ExprKind::Member(b, _, _) => subst_ident_expr(b, from, to),
        ExprKind::InitList(items) => {
            for it in items {
                subst_ident_expr(it, from, to);
            }
        }
        _ => {}
    }
}

/// Replaces identifier `from` with `to` in a statement tree.
pub fn subst_ident_stmt(s: &mut Stmt, from: &str, to: &str) {
    match &mut s.kind {
        StmtKind::Expr(Some(e)) => subst_ident_expr(e, from, to),
        StmtKind::Decl(d) => {
            for v in &mut d.vars {
                if let Some(init) = &mut v.init {
                    subst_ident_expr(init, from, to);
                }
            }
        }
        StmtKind::Block(stmts) => {
            for st in stmts {
                subst_ident_stmt(st, from, to);
            }
        }
        StmtKind::If(c, then, els) => {
            subst_ident_expr(c, from, to);
            subst_ident_stmt(then, from, to);
            if let Some(e) = els {
                subst_ident_stmt(e, from, to);
            }
        }
        StmtKind::While(c, body) => {
            subst_ident_expr(c, from, to);
            subst_ident_stmt(body, from, to);
        }
        StmtKind::DoWhile(body, c) => {
            subst_ident_stmt(body, from, to);
            subst_ident_expr(c, from, to);
        }
        StmtKind::For(init, cond, step, body) => {
            match init {
                Some(ForInit::Decl(d)) => {
                    for v in &mut d.vars {
                        if let Some(i) = &mut v.init {
                            subst_ident_expr(i, from, to);
                        }
                    }
                }
                Some(ForInit::Expr(e)) => subst_ident_expr(e, from, to),
                None => {}
            }
            if let Some(c) = cond {
                subst_ident_expr(c, from, to);
            }
            if let Some(st) = step {
                subst_ident_expr(st, from, to);
            }
            subst_ident_stmt(body, from, to);
        }
        StmtKind::Switch(scrutinee, body) => {
            subst_ident_expr(scrutinee, from, to);
            for st in body {
                subst_ident_stmt(st, from, to);
            }
        }
        StmtKind::Return(Some(e)) => subst_ident_expr(e, from, to),
        _ => {}
    }
}

/// Applies a bottom-up transformation to every statement list in a
/// function body, letting `f` replace each statement with zero or more
/// statements.
pub fn map_stmts(body: &mut Vec<Stmt>, f: &mut impl FnMut(Stmt) -> Vec<Stmt>) {
    let old = std::mem::take(body);
    for mut s in old {
        // Recurse into nested bodies first.
        match &mut s.kind {
            StmtKind::Block(stmts) => map_stmts(stmts, f),
            StmtKind::If(_, then, els) => {
                map_boxed(then, f);
                if let Some(e) = els {
                    map_boxed(e, f);
                }
            }
            StmtKind::While(_, b) | StmtKind::DoWhile(b, _) => map_boxed(b, f),
            StmtKind::For(_, _, _, b) => map_boxed(b, f),
            StmtKind::Switch(_, stmts) => map_stmts(stmts, f),
            _ => {}
        }
        body.extend(f(s));
    }
}

fn map_boxed(s: &mut Box<Stmt>, f: &mut impl FnMut(Stmt) -> Vec<Stmt>) {
    // Wrap a single nested statement into a block so replacements with
    // zero-or-many statements stay well-formed.
    let inner = std::mem::replace(
        s.as_mut(),
        Stmt {
            id: NodeId(u32::MAX),
            kind: StmtKind::Block(vec![]),
            span: Span::default(),
        },
    );
    let mut stmts = match inner.kind {
        StmtKind::Block(stmts) => stmts,
        _ => vec![inner],
    };
    map_stmts(&mut stmts, f);
    s.kind = StmtKind::Block(stmts);
}

/// Whether an expression (tree) contains a direct call to `target`.
pub fn contains_call(e: &Expr, target: &str) -> bool {
    let mut found = false;
    hsm_cir::visit::walk_expr(e, &mut |sub| {
        if sub.call_target() == Some(target) {
            found = true;
        }
    });
    found
}

/// Whether a statement (tree) contains a direct call to `target`.
pub fn stmt_contains_call(s: &Stmt, target: &str) -> bool {
    let mut found = false;
    hsm_cir::visit::walk_exprs_in_stmt(s, &mut |e| {
        if e.call_target() == Some(target) {
            found = true;
        }
    });
    found
}

/// Counts identifier references to `name` in a function body (declarations
/// do not count as references).
pub fn count_refs(body: &[Stmt], name: &str) -> usize {
    let mut count = 0;
    for s in body {
        hsm_cir::visit::walk_exprs_in_stmt(s, &mut |e| {
            if e.as_ident() == Some(name) {
                count += 1;
            }
        });
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsm_cir::parser::parse;
    use hsm_cir::printer::print_unit;

    #[test]
    fn builder_produces_printable_nodes() {
        let mut tu = parse("int main() { return 0; }").unwrap();
        let mut b = Builder::new(&mut tu);
        let call = b.call("RCCE_init", vec![]);
        let stmt = b.expr_stmt(call);
        tu.function_mut("main").unwrap().body.insert(0, stmt);
        let out = print_unit(&tu);
        assert!(out.contains("RCCE_init();"), "{out}");
        parse(&out).expect("still parses");
    }

    #[test]
    fn subst_renames_all_occurrences() {
        let mut tu =
            parse("int main() { int local = 0; local = local + 1; return local; }").unwrap();
        let main = tu.function_mut("main").unwrap();
        for s in &mut main.body {
            subst_ident_stmt(s, "local", "myID");
        }
        let out = print_unit(&tu);
        assert!(!out.contains("local = local"), "{out}");
        assert!(out.contains("myID = myID + 1;"), "{out}");
        // The declaration's *name* is untouched (only references change).
        assert!(out.contains("int local = 0;"), "{out}");
    }

    #[test]
    fn map_stmts_can_delete_and_expand() {
        let mut tu = parse("int main() { int a; a = 1; a = 2; return a; }").unwrap();
        let main = tu.function_mut("main").unwrap();
        let mut body = std::mem::take(&mut main.body);
        map_stmts(&mut body, &mut |s| {
            // Delete `a = 1;`, duplicate `a = 2;`.
            match &s.kind {
                StmtKind::Expr(Some(e)) => {
                    let printed = hsm_cir::printer::print_expr(e);
                    if printed == "a = 1" {
                        vec![]
                    } else if printed == "a = 2" {
                        vec![s.clone(), s]
                    } else {
                        vec![s]
                    }
                }
                _ => vec![s],
            }
        });
        tu.function_mut("main").unwrap().body = body;
        let out = print_unit(&tu);
        assert!(!out.contains("a = 1"), "{out}");
        assert_eq!(out.matches("a = 2;").count(), 2, "{out}");
    }

    #[test]
    fn map_stmts_recurses_into_loops() {
        let mut tu =
            parse("int main() { int i; for (i = 0; i < 3; i++) { i = 9; } return 0; }").unwrap();
        let main = tu.function_mut("main").unwrap();
        let mut body = std::mem::take(&mut main.body);
        let mut seen = 0;
        map_stmts(&mut body, &mut |s| {
            if matches!(&s.kind, StmtKind::Expr(Some(e)) if hsm_cir::printer::print_expr(e) == "i = 9")
            {
                seen += 1;
            }
            vec![s]
        });
        assert_eq!(seen, 1);
    }

    #[test]
    fn count_refs_ignores_declarations() {
        let tu = parse("int main() { int a = 1; int b; b = 2; return b; }").unwrap();
        let main = tu.function("main").unwrap();
        assert_eq!(count_refs(&main.body, "a"), 0);
        assert_eq!(count_refs(&main.body, "b"), 2);
    }

    #[test]
    fn guarded_call_renders_if() {
        let mut tu = parse("void w(int x) { } int main() { return 0; }").unwrap();
        let mut b = Builder::new(&mut tu);
        let arg = b.int(0);
        let call = b.call("w", vec![arg]);
        let stmt = b.guarded_call("myID", 2, call);
        tu.function_mut("main").unwrap().body.insert(0, stmt);
        let out = print_unit(&tu);
        assert!(out.contains("if (myID == 2)"), "{out}");
        assert!(out.contains("w(0);"), "{out}");
    }
}
