//! Host-side interpreter throughput: the `figures --host-timing` report.
//!
//! Where `BENCH_pipeline.json` pins *simulated* behaviour (cycle counts,
//! cache counters — deterministic, golden-diffed), `BENCH_interp.json`
//! records how fast the simulator itself executes on the host: VM
//! steps/sec per benchmark × execution mode × memory model. It is the
//! repo's perf trajectory for the interpreter hot path; `scripts/
//! check_bench.py` gates CI on it regressing more than 30 % against the
//! committed baseline.
//!
//! Every number except the `host_*` timings and `steps_per_sec` is
//! deterministic: the instruction and event counts come from the same
//! [`hsm_exec::RunResult`] the goldens pin, so a dispatch-layer change
//! that alters *what* executes (rather than how fast) shows up as a
//! counter diff, not just a timing blip.

use crate::json::Json;
use crate::manifest::{corpus_source, MANIFEST_PROGRAMS};
use hsm_core::{Pipeline, PipelineError};
use hsm_exec::ExecModel;
use scc_sim::SccConfig;
use std::fmt::Write as _;

/// Timed runs behind each point (plus `time_median`'s one warm-up).
pub const INTERP_TIMING_RUNS: usize = 5;

/// Version of the `BENCH_interp.json` layout.
pub const INTERP_SCHEMA_VERSION: u64 = 1;

/// One benchmark × mode × model throughput measurement.
#[derive(Debug, Clone)]
pub struct InterpPoint {
    /// Corpus program name.
    pub name: String,
    /// Execution mode: `pthread` (baseline program) or `rcce` (translated).
    pub mode: &'static str,
    /// Memory model label.
    pub exec_model: &'static str,
    /// Core/thread count.
    pub cores: usize,
    /// Bytecode instructions retired per run (deterministic).
    pub instructions: u64,
    /// Scheduler events per run (deterministic).
    pub events: u64,
    /// Timed runs.
    pub runs: usize,
    /// Median host wall time of one run, nanoseconds.
    pub median_nanos: u64,
    /// Fastest run, nanoseconds.
    pub min_nanos: u64,
    /// Throughput: instructions per host second (from the median).
    pub steps_per_sec: u64,
}

/// Measures every corpus program under both modes and all three memory
/// models, `runs` timed repetitions each (0 = [`INTERP_TIMING_RUNS`]).
///
/// # Errors
///
/// Propagates pipeline failures (parse/translate/compile/run).
pub fn interp_points(runs: usize) -> Result<Vec<InterpPoint>, PipelineError> {
    let runs = if runs == 0 { INTERP_TIMING_RUNS } else { runs };
    let config = SccConfig::table_6_1();
    let mut points = Vec::new();
    for (name, cores) in MANIFEST_PROGRAMS {
        // One session per program: both modes and all models share the
        // parsed unit and compiled binaries through the session cache.
        let session = Pipeline::new(corpus_source(name))
            .cores(cores)
            .config(config.clone());
        let baseline = session.baseline_program()?;
        let hsm = session.program()?;
        for model in ExecModel::ALL {
            for (mode, is_rcce) in [("pthread", false), ("rcce", true)] {
                let run_once = || -> Result<_, PipelineError> {
                    if is_rcce {
                        Ok(hsm_exec::run_rcce_model(&hsm, cores, &config, model)?)
                    } else {
                        Ok(hsm_exec::run_pthread_model(&baseline, &config, model)?)
                    }
                };
                let result = run_once()?;
                let label = format!("{name}/{mode}/{}", model.label());
                let timing = testkit::timing::time_median(&label, runs, || {
                    run_once().expect("timed run repeats a run that already succeeded");
                });
                let median_nanos = u64::try_from(timing.median_nanos).unwrap_or(u64::MAX);
                let steps_per_sec = if median_nanos == 0 {
                    0
                } else {
                    (result.instructions as f64 * 1e9 / median_nanos as f64) as u64
                };
                points.push(InterpPoint {
                    name: name.to_string(),
                    mode,
                    exec_model: model.label(),
                    cores,
                    instructions: result.instructions,
                    events: result.events,
                    runs,
                    median_nanos,
                    min_nanos: u64::try_from(timing.min_nanos).unwrap_or(u64::MAX),
                    steps_per_sec,
                });
            }
        }
    }
    Ok(points)
}

/// Renders the measured points as the `BENCH_interp.json` document.
pub fn interp_json(points: &[InterpPoint]) -> Json {
    Json::obj(vec![
        ("schema_version", Json::UInt(INTERP_SCHEMA_VERSION)),
        ("points", Json::Arr(points.iter().map(point_json).collect())),
    ])
}

fn point_json(p: &InterpPoint) -> Json {
    Json::obj(vec![
        ("name", Json::str(p.name.as_str())),
        ("mode", Json::str(p.mode)),
        ("exec_model", Json::str(p.exec_model)),
        ("cores", Json::UInt(p.cores as u64)),
        ("instructions", Json::UInt(p.instructions)),
        ("events", Json::UInt(p.events)),
        ("host_runs", Json::UInt(p.runs as u64)),
        ("host_median_nanos", Json::UInt(p.median_nanos)),
        ("host_min_nanos", Json::UInt(p.min_nanos)),
        ("steps_per_sec", Json::UInt(p.steps_per_sec)),
    ])
}

/// Human-readable throughput table for the terminal.
pub fn render_interp_table(points: &[InterpPoint]) -> String {
    let mut out = String::from("Interpreter throughput — VM steps per host second\n\n");
    let _ = writeln!(
        out,
        "{:<20}{:<10}{:<18}{:>14}{:>14}{:>14}",
        "Program", "Mode", "Model", "Instrs", "Median ms", "Steps/sec"
    );
    out.push_str(&"-".repeat(90));
    out.push('\n');
    for p in points {
        let _ = writeln!(
            out,
            "{:<20}{:<10}{:<18}{:>14}{:>14.3}{:>14}",
            p.name,
            p.mode,
            p.exec_model,
            p.instructions,
            p.median_nanos as f64 / 1e6,
            p.steps_per_sec
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One cheap point end to end: counters are populated, deterministic
    /// across the timed repetitions, and the JSON layout is stable.
    #[test]
    fn interp_points_measure_and_serialize() {
        let config = SccConfig::table_6_1();
        let session = Pipeline::new(corpus_source("example_4_1"))
            .cores(3)
            .config(config.clone());
        let program = session.baseline_program().expect("compile");
        let a = hsm_exec::run_pthread_model(&program, &config, ExecModel::Coherent).expect("run");
        let b = hsm_exec::run_pthread_model(&program, &config, ExecModel::Coherent).expect("run");
        assert!(a.instructions > 0, "instruction counter never advanced");
        assert!(a.events > 0, "event counter never advanced");
        assert!(
            a.instructions <= a.events * 4096,
            "more instructions than the safety valve allows per event"
        );
        assert_eq!(a.instructions, b.instructions, "counter is deterministic");
        assert_eq!(a.events, b.events, "event count is deterministic");

        let point = InterpPoint {
            name: "example_4_1".into(),
            mode: "pthread",
            exec_model: "coherent",
            cores: 3,
            instructions: a.instructions,
            events: a.events,
            runs: 1,
            median_nanos: 1_000_000,
            min_nanos: 900_000,
            steps_per_sec: a.instructions * 1000,
        };
        let doc = interp_json(std::slice::from_ref(&point));
        assert_eq!(doc.get("schema_version"), Some(&Json::UInt(1)));
        let Some(Json::Arr(points)) = doc.get("points") else {
            panic!("points array missing");
        };
        assert_eq!(points[0].get("name"), Some(&Json::str("example_4_1")));
        assert_eq!(
            points[0].get("instructions"),
            Some(&Json::UInt(a.instructions))
        );
        let table = render_interp_table(std::slice::from_ref(&point));
        assert!(table.contains("example_4_1"));
    }
}
