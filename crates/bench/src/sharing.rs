//! The `--check-sharing` corpus sweep.
//!
//! Runs every corpus program — including the adversarial ones in
//! `corpus/adversarial/` — under the sharing-soundness oracle and builds
//! the deterministic `sharing` manifest section. Each program carries an
//! *expectation*: the five disciplined programs must come back clean, and
//! each adversarial program must be flagged with exactly its designed
//! violation class. A program is `pass` only when the oracle's verdict
//! matches its expectation, so the sweep is simultaneously a positive test
//! of the corpus and a negative test of the oracle (a detector that stops
//! detecting fails the adversarial rows).
//!
//! Clean programs are additionally re-run translated under the RCCE-mode
//! oracle (`rcce_clean`), which performs pure happens-before race
//! detection over the shared regions: it validates the synchronization
//! the translator inserted rather than the classification.
//!
//! All checks execute as one parallel [`hsm_core::experiment::sweep`]
//! over a shared artifact cache, so each clean program is parsed and
//! analyzed once for its pthread-mode and RCCE-mode runs.

use crate::json::Json;
use crate::manifest::corpus_source;
use hsm_core::experiment::{sweep, SweepMatrix, SweepOutcome, SweepPayload, SweepTask};
use hsm_core::{Pipeline, PipelineError, SharingCheck};
use hsm_exec::{Violation, ViolationClass};
use scc_sim::SccConfig;
use std::sync::Arc;

/// Expected oracle outcome per corpus program: `None` means the program
/// must run clean; `Some(class)` means the oracle must flag exactly that
/// violation class. Core counts apply to the translated (RCCE) re-run of
/// clean programs.
pub const SHARING_EXPECTATIONS: [(&str, usize, Option<ViolationClass>); 7] = [
    ("example_4_1", 3, None),
    ("matrix_vector", 4, None),
    ("mutex_histogram", 4, None),
    ("switch_classifier", 2, None),
    ("escaping_local", 4, None),
    (
        "adversarial/escaping_arg",
        2,
        Some(ViolationClass::Unsoundness),
    ),
    (
        "adversarial/unlocked_counter",
        2,
        Some(ViolationClass::DataRace),
    ),
];

/// One violation as a manifest row. Cycle stamps and raw addresses are
/// deliberately excluded: they shift with unrelated codegen changes, while
/// (class, variable, units, direction) is the stable semantic content.
fn violation_json(v: &Violation) -> Json {
    Json::obj(vec![
        ("class", Json::str(v.class.label())),
        (
            "variable",
            v.variable.as_deref().map_or(Json::Null, Json::str),
        ),
        ("unit", Json::UInt(v.unit as u64)),
        (
            "other",
            v.other.map_or(Json::Null, |u| Json::UInt(u as u64)),
        ),
        ("write", Json::Bool(v.write)),
    ])
}

/// Builds one program's sharing entry from its oracle check (and, for
/// clean expectations, the RCCE-mode re-check).
fn entry_json(
    name: &str,
    cores: usize,
    expected: Option<ViolationClass>,
    check: &SharingCheck,
    rcce: Option<&SharingCheck>,
) -> Json {
    let classes = check.report.classes();
    let pass = match expected {
        None => classes.is_empty(),
        Some(class) => classes == [class],
    };
    let (shared, private, unknown) = check.manifest.counts();
    let mut pairs = vec![
        ("name", Json::str(name)),
        (
            "expected",
            expected.map_or(Json::str("clean"), |c| Json::str(c.label())),
        ),
        ("pass", Json::Bool(pass)),
        ("clean", Json::Bool(check.report.is_clean())),
        (
            "variables",
            Json::obj(vec![
                ("shared", Json::UInt(shared as u64)),
                ("private", Json::UInt(private as u64)),
                ("unknown", Json::UInt(unknown as u64)),
            ]),
        ),
        (
            "violations",
            Json::Arr(check.report.violations.iter().map(violation_json).collect()),
        ),
    ];
    if let Some(rcce) = rcce {
        pairs.push(("rcce_cores", Json::UInt(cores as u64)));
        pairs.push(("rcce_clean", Json::Bool(rcce.report.is_clean())));
    }
    Json::obj(pairs)
}

/// Unwraps a sharing payload out of a sweep outcome.
fn sharing_payload(outcome: SweepOutcome) -> Result<SharingCheck, PipelineError> {
    let payload = outcome.result?;
    match payload {
        SweepPayload::Sharing(check) => Ok(*check),
        SweepPayload::Run(..) | SweepPayload::Predicted(..) => {
            unreachable!("sharing points always run the oracle")
        }
    }
}

/// Checks one corpus program against its expectation and renders its
/// manifest entry.
///
/// # Errors
///
/// Propagates pipeline failures; panics only if the corpus file itself is
/// missing.
pub fn program_sharing_entry(
    name: &str,
    cores: usize,
    expected: Option<ViolationClass>,
    config: &SccConfig,
) -> Result<Json, PipelineError> {
    let session = Pipeline::new(corpus_source(name))
        .cores(cores)
        .config(config.clone());
    let check = session.check_sharing()?;
    let rcce = if expected.is_none() {
        // A clean pthread program must also stay race-free once
        // translated: the RCCE-mode oracle audits the inserted barriers
        // and locks. The session's cache hands it the already-parsed unit.
        Some(session.check_sharing_rcce()?)
    } else {
        None
    };
    Ok(entry_json(name, cores, expected, &check, rcce.as_ref()))
}

/// The full `sharing` manifest section: every corpus program checked
/// against its expectation, executed as one parallel sweep. Fully
/// deterministic (no host timings, no cycle stamps), so it is
/// golden-pinned as `goldens/sharing_golden.json`.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn sharing_manifest() -> Result<Json, PipelineError> {
    sharing_manifest_with(0)
}

/// [`sharing_manifest`] with an explicit sweep worker count
/// (0 = one per available host core).
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn sharing_manifest_with(workers: usize) -> Result<Json, PipelineError> {
    let config = SccConfig::table_6_1();
    let mut matrix = SweepMatrix::new(config).workers(workers);
    for &(name, cores, expected) in &SHARING_EXPECTATIONS {
        let src = corpus_source(name);
        matrix = matrix.point(
            format!("{name}/check"),
            Arc::clone(&src),
            SweepTask::CheckSharing,
            cores,
        );
        if expected.is_none() {
            matrix = matrix.point(
                format!("{name}/rcce"),
                src,
                SweepTask::CheckSharingRcce,
                cores,
            );
        }
    }
    let report = sweep(&matrix);
    let mut outcomes = report.outcomes.into_iter();
    let mut entries = Vec::with_capacity(SHARING_EXPECTATIONS.len());
    for &(name, cores, expected) in &SHARING_EXPECTATIONS {
        let check = sharing_payload(outcomes.next().expect("check point"))?;
        let rcce = if expected.is_none() {
            Some(sharing_payload(outcomes.next().expect("rcce point"))?)
        } else {
            None
        };
        entries.push(entry_json(name, cores, expected, &check, rcce.as_ref()));
    }
    Ok(Json::obj(vec![
        (
            "schema_version",
            Json::UInt(crate::manifest::MANIFEST_SCHEMA_VERSION),
        ),
        ("programs", Json::Arr(entries)),
    ]))
}

/// True when every program in the rendered sharing section passed its
/// expectation (the `--check-sharing` exit-code predicate).
pub fn all_pass(sharing: &Json) -> bool {
    match sharing.get("programs") {
        Some(Json::Arr(entries)) => entries
            .iter()
            .all(|e| e.get("pass") == Some(&Json::Bool(true))),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_sweep_meets_every_expectation() {
        let m = sharing_manifest().expect("sweep");
        assert!(all_pass(&m), "{}", m.render());
        let Some(Json::Arr(entries)) = m.get("programs") else {
            panic!("programs array missing");
        };
        assert_eq!(entries.len(), SHARING_EXPECTATIONS.len());
        // The adversarial rows are dirty, the rest clean — and every clean
        // program's translated run is race-free too.
        for entry in entries {
            let clean = entry.get("clean") == Some(&Json::Bool(true));
            let expected_clean = entry.get("expected") == Some(&Json::str("clean"));
            assert_eq!(clean, expected_clean, "{}", entry.render());
            if expected_clean {
                assert_eq!(
                    entry.get("rcce_clean"),
                    Some(&Json::Bool(true)),
                    "{}",
                    entry.render()
                );
            }
        }
    }

    #[test]
    fn sharing_manifest_is_worker_count_invariant() {
        let serial = sharing_manifest_with(1).expect("serial");
        let parallel = sharing_manifest_with(4).expect("parallel");
        assert_eq!(serial.render(), parallel.render());
    }

    #[test]
    fn adversarial_rows_name_the_culprit_variable() {
        let config = SccConfig::table_6_1();
        let entry = program_sharing_entry(
            "adversarial/escaping_arg",
            2,
            Some(ViolationClass::Unsoundness),
            &config,
        )
        .expect("entry");
        let Some(Json::Arr(violations)) = entry.get("violations") else {
            panic!("violations missing");
        };
        assert!(!violations.is_empty());
        assert_eq!(violations[0].get("variable"), Some(&Json::str("local")));
        assert_eq!(violations[0].get("class"), Some(&Json::str("unsoundness")));
    }

    #[test]
    fn all_pass_rejects_failures_and_junk() {
        let good = Json::obj(vec![(
            "programs",
            Json::Arr(vec![Json::obj(vec![("pass", Json::Bool(true))])]),
        )]);
        assert!(all_pass(&good));
        let bad = Json::obj(vec![(
            "programs",
            Json::Arr(vec![Json::obj(vec![("pass", Json::Bool(false))])]),
        )]);
        assert!(!all_pass(&bad));
        assert!(!all_pass(&Json::Null));
    }
}
