//! # hsm-bench — experiment harness shared by the benches and the
//! `figures` binary.
//!
//! Each function regenerates the data behind one table or figure of the
//! paper; the `figures` binary prints them (and with `--json` writes the
//! versioned run manifest from [`manifest`]), and `benches/` wraps the
//! same entry points in `testkit` timing loops.

#![warn(missing_docs)]

pub mod interp;
/// The order-preserving JSON value (now shared with the core crate's
/// spec/protocol layer; re-exported so `hsm_bench::json` keeps working).
pub use hsm_core::json;
pub mod manifest;
pub mod predict;
pub mod sharing;

use hsm_core::experiment::{self, BenchResult, Mode, SweepMatrix};
use hsm_core::{Pipeline, PipelineError, Policy};
use hsm_workloads::Bench;
use scc_sim::SccConfig;
use std::fmt::Write as _;

/// The evaluation's core/thread count (Table 6.1: 32).
pub const EVAL_UNITS: usize = 32;

/// Output directory for machine-readable artifacts (gitignored).
pub const BENCH_OUT_DIR: &str = "bench-out";

/// Writes a machine-readable artifact, creating its parent directory on
/// demand — `figures --json` must work in a fresh checkout where
/// `bench-out/` does not exist yet.
///
/// # Errors
///
/// Propagates directory-creation and write failures.
pub fn write_artifact(path: &str, content: &str) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, content)
}

/// The paper's running example (Example Code 4.1).
pub const EXAMPLE_4_1: &str = r#"
#include <stdio.h>
#include <pthread.h>

int global;
int *ptr;
int sum[3] = {0};

void *tf(void * tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for(local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *) local);
    }
    for(local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
"#;

/// Renders Table 4.1 and Table 4.2 for the paper's Example Code 4.1.
pub fn analysis_tables() -> (String, String) {
    let tu = hsm_cir::parse(EXAMPLE_4_1).expect("example 4.1 parses");
    let analysis = hsm_analysis::ProgramAnalysis::analyze(&tu);
    (analysis.render_table_4_1(), analysis.render_table_4_2())
}

/// Runs the full Figure 6.1 / 6.2 grid: every benchmark, all three modes,
/// as one parallel sweep over a shared artifact cache (each benchmark's
/// source is parsed and analyzed once for its three runs).
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run_evaluation(units: usize) -> Result<Vec<BenchResult>, PipelineError> {
    run_evaluation_with(units, 0)
}

/// [`run_evaluation`] with an explicit sweep worker count (0 = one per
/// available host core).
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run_evaluation_with(
    units: usize,
    workers: usize,
) -> Result<Vec<BenchResult>, PipelineError> {
    let config = SccConfig::table_6_1();
    let benches = Bench::all();
    let modes = [Mode::PthreadBaseline, Mode::RcceOffChip, Mode::RcceHsm];
    let matrix = SweepMatrix::benchmarks(&benches, &modes, units, config).workers(workers);
    let report = experiment::sweep(&matrix);
    let mut outcomes = report.outcomes.into_iter();
    benches
        .into_iter()
        .map(|bench| {
            let base = outcomes.next().expect("baseline point").into_run()?;
            let off = outcomes.next().expect("offchip point").into_run()?;
            let hsm = outcomes.next().expect("hsm point").into_run()?;
            let outputs_match = experiment::outputs_equivalent(&base, &off)
                && experiment::outputs_equivalent(&base, &hsm)
                && base.exit_code == off.exit_code
                && base.exit_code == hsm.exit_code;
            Ok(BenchResult {
                bench,
                pthread_cycles: base.timed_cycles,
                offchip_cycles: off.timed_cycles,
                hsm_cycles: hsm.timed_cycles,
                outputs_match,
            })
        })
        .collect()
}

/// Renders Figure 6.1: off-chip RCCE speedup over the pthread baseline.
pub fn render_fig_6_1(results: &[BenchResult]) -> String {
    let mut out = String::from(
        "Figure 6.1 — RCCE (off-chip shared memory, 32 cores) speedup over\n\
         the 32-thread pthread program on one core\n\n",
    );
    let _ = writeln!(out, "{:<18}{:>12}{:>10}", "Benchmark", "Speedup", "Match");
    out.push_str(&"-".repeat(40));
    out.push('\n');
    for r in results {
        let _ = writeln!(
            out,
            "{:<18}{:>10.1}x{:>10}",
            r.bench.name(),
            r.offchip_speedup(),
            if r.outputs_match { "ok" } else { "DIVERGED" }
        );
    }
    out
}

/// Renders Figure 6.2: run-time improvement of MPB placement over
/// off-chip-only.
pub fn render_fig_6_2(results: &[BenchResult]) -> String {
    let mut out = String::from(
        "Figure 6.2 — run time of off-chip-only vs MPB (Algorithm 3)\n\
         placement, 32 cores\n\n",
    );
    let _ = writeln!(
        out,
        "{:<18}{:>14}{:>14}{:>12}",
        "Benchmark", "Off-chip cyc", "MPB cyc", "Improve"
    );
    out.push_str(&"-".repeat(58));
    out.push('\n');
    let mut improvements = Vec::new();
    for r in results {
        let _ = writeln!(
            out,
            "{:<18}{:>14}{:>14}{:>10.1}x",
            r.bench.name(),
            r.offchip_cycles,
            r.hsm_cycles,
            r.hsm_improvement()
        );
        improvements.push(r.hsm_improvement());
    }
    let geo: f64 = improvements.iter().map(|v| v.ln()).sum::<f64>() / improvements.len() as f64;
    let _ = writeln!(out, "\ngeometric-mean improvement: {:.1}x", geo.exp());
    out
}

/// Runs and renders Figure 6.3: Pi Approximation speedup at several core
/// counts.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn fig_6_3(core_counts: &[usize]) -> Result<String, PipelineError> {
    let config = SccConfig::table_6_1();
    let rows = experiment::core_scaling(Bench::PiApprox, core_counts, &config)?;
    let mut out = String::from(
        "Figure 6.3 — Pi Approximation speedup over the single-core pthread\n\
         baseline at increasing core counts\n\n",
    );
    let _ = writeln!(out, "{:<10}{:>12}", "Cores", "Speedup");
    out.push_str(&"-".repeat(22));
    out.push('\n');
    for (cores, speedup) in rows {
        let _ = writeln!(out, "{:<10}{:>10.1}x", cores, speedup);
    }
    Ok(out)
}

/// Ablation E8: Dot Product off-chip run time as the number of memory
/// controllers varies (isolates MC queuing contention).
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn ablation_memory_controllers(units: usize) -> Result<String, PipelineError> {
    let mut out =
        String::from("Ablation — Dot Product (off-chip, 32 cores) vs memory controllers\n\n");
    let _ = writeln!(out, "{:<8}{:>14}{:>12}", "MCs", "Cycles", "Slowdown");
    out.push_str(&"-".repeat(34));
    out.push('\n');
    let mut base = None;
    for mcs in [4usize, 2, 1] {
        let mut config = SccConfig::table_6_1();
        config.memory_controllers = mcs;
        let params = Bench::DotProduct.default_params(units);
        let r = experiment::run(Bench::DotProduct, &params, Mode::RcceOffChip, &config)?;
        let b = *base.get_or_insert(r.timed_cycles);
        let _ = writeln!(
            out,
            "{:<8}{:>14}{:>10.2}x",
            mcs,
            r.timed_cycles,
            r.timed_cycles as f64 / b as f64
        );
    }
    Ok(out)
}

/// Ablation E9: partitioning policies on a constrained MPB (Stream at a
/// deliberately small on-chip budget) — quantifies Algorithm 3's
/// size-ascending greedy against frequency-density and size-descending.
pub fn ablation_partition_policies() -> String {
    use hsm_partition::{partition, MemorySpec, Policy, SharedVar};
    let vars = vec![
        SharedVar::array("a", 64 * 1024, 900_000, 8),
        SharedVar::array("b", 64 * 1024, 600_000, 8),
        SharedVar::array("c", 64 * 1024, 900_000, 8),
        SharedVar::new("nthreads", 4, 64),
        SharedVar::new("n", 4, 64),
        SharedVar::new("reps", 4, 32),
    ];
    let spec = MemorySpec::with_on_chip(128 * 1024);
    let mut out =
        String::from("Ablation — partition policy quality (Stream variables, 128 KB MPB)\n\n");
    let _ = writeln!(
        out,
        "{:<20}{:>14}{:>20}",
        "Policy", "On-chip B", "On-chip access %"
    );
    out.push_str(&"-".repeat(54));
    out.push('\n');
    for policy in [
        Policy::SizeAscending,
        Policy::FrequencyDensity,
        Policy::SizeDescending,
        Policy::OffChipOnly,
    ] {
        let plan = partition(&vars, &spec, policy);
        let _ = writeln!(
            out,
            "{:<20}{:>14}{:>19.1}%",
            format!("{policy:?}"),
            plan.on_chip_used,
            plan.on_chip_access_fraction() * 100.0
        );
    }
    out
}

/// Extension E10 (§7.2): running programs with more threads than the
/// conversion's core count by folding thread work onto fewer cores.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn thread_folding(thread_counts: &[usize]) -> Result<String, PipelineError> {
    let config = SccConfig::table_6_1();
    let mut out =
        String::from("§7.2 extension — Pi with more threads than cores (folded onto 48)\n\n");
    let _ = writeln!(out, "{:<10}{:>10}{:>12}", "Threads", "Cores", "Speedup");
    out.push_str(&"-".repeat(32));
    out.push('\n');
    for &threads in thread_counts {
        let cores = threads.min(config.cores);
        let mut params = Bench::PiApprox.default_params(threads);
        params.threads = threads;
        let src = hsm_workloads::source(Bench::PiApprox, &params);
        let session = Pipeline::new(src).cores(cores).config(config.clone());
        let base = session.run_baseline()?;
        // Translating a T-thread program for C < T cores triggers the
        // translator's many-to-one fold loop.
        let hsm = session.run()?;
        let _ = writeln!(
            out,
            "{:<10}{:>10}{:>10.1}x",
            threads,
            cores,
            base.timed_cycles as f64 / hsm.timed_cycles.max(1) as f64
        );
    }
    Ok(out)
}

/// Energy comparison: the NCC/manycore motivation of Chapter 1 — what the
/// conversion means in joules, using the chip power model calibrated to
/// the paper's 25 W / 125 W operating envelope.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn energy_comparison(units: usize) -> Result<String, PipelineError> {
    use scc_sim::PowerModel;
    let config = SccConfig::table_6_1();
    let tiles = config.mesh_cols * config.mesh_rows;
    let model = PowerModel::new(tiles);
    let mut out =
        String::from("Energy estimate at the Table 6.1 operating point (full chip powered)\n\n");
    let _ = writeln!(
        out,
        "{:<18}{:>16}{:>14}{:>12}",
        "Benchmark", "Baseline (mJ)", "HSM (mJ)", "Saved"
    );
    out.push_str(&"-".repeat(60));
    out.push('\n');
    for bench in [Bench::PiApprox, Bench::Stream, Bench::DotProduct] {
        let params = bench.default_params(units);
        let base = experiment::run(bench, &params, Mode::PthreadBaseline, &config)?;
        let hsm = experiment::run(bench, &params, Mode::RcceHsm, &config)?;
        let e_base = model.energy_joules(base.timed_cycles, config.core_freq_mhz) * 1e3;
        let e_hsm = model.energy_joules(hsm.timed_cycles, config.core_freq_mhz) * 1e3;
        let _ = writeln!(
            out,
            "{:<18}{:>16.2}{:>14.2}{:>11.1}x",
            bench.name(),
            e_base,
            e_hsm,
            e_base / e_hsm
        );
    }
    out.push_str(
        "\nThe chip burns the same power either way (all 48 cores stay lit);\n\
         finishing sooner is what saves energy — the free-lunch argument for\n\
         converting instead of timeslicing one core.\n",
    );
    Ok(out)
}

/// STREAM-style per-kernel bandwidth table in all three configurations
/// (the breakdown behind the Stream bar of Figures 6.1/6.2).
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn stream_kernel_table(units: usize) -> Result<String, PipelineError> {
    use hsm_workloads::{stream_kernel_source, Params, StreamKernel};
    let config = SccConfig::table_6_1();
    let params = Params {
        threads: units,
        size: 12_288,
        reps: 2,
    };
    let mut out = String::from("Stream kernels — effective bandwidth (MB/s, simulated)\n\n");
    let _ = writeln!(
        out,
        "{:<8}{:>16}{:>16}{:>16}",
        "Kernel", "Pthread 1-core", "RCCE off-chip", "RCCE MPB"
    );
    out.push_str(&"-".repeat(56));
    out.push('\n');
    let freq_hz = f64::from(config.core_freq_mhz) * 1e6;
    for kernel in StreamKernel::all() {
        let src = stream_kernel_source(kernel, &params);
        let bytes = (kernel.bytes_per_elem() * params.size * params.reps) as f64;
        let mbps = |cycles: u64| bytes / (cycles as f64 / freq_hz) / 1e6;
        // One session per kernel: the three configurations share its
        // parsed unit and analysis through the session cache.
        let session = Pipeline::new(src).cores(units).config(config.clone());
        let base = session.run_baseline()?;
        let off = session.clone().policy(Policy::OffChipOnly).run()?;
        let mpb = session.run()?;
        let _ = writeln!(
            out,
            "{:<8}{:>16.0}{:>16.0}{:>16.0}",
            kernel.name(),
            mbps(base.timed_cycles),
            mbps(off.timed_cycles),
            mbps(mpb.timed_cycles)
        );
    }
    Ok(out)
}

/// DVFS sweep: simulated wall-clock run time of a compute-bound and a
/// memory-bound benchmark at the SCC's frequency steps. Compute time
/// scales with 1/f; memory-bound time scales sub-linearly because the
/// DRAM is a fixed physical latency (the memory wall).
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn dvfs_sweep(units: usize) -> Result<String, PipelineError> {
    let mut out = String::from("DVFS sweep — simulated run time (ms) of the HSM configuration\n\n");
    let _ = writeln!(
        out,
        "{:<12}{:>16}{:>16}",
        "Core MHz", "Pi (compute)", "Stream (memory)"
    );
    out.push_str(&"-".repeat(44));
    out.push('\n');
    for mhz in [1000u32, 800, 533, 266] {
        let config = SccConfig::table_6_1().with_core_freq(mhz);
        let pi_p = Bench::PiApprox.default_params(units);
        let st_p = Bench::Stream.default_params(units);
        let pi = experiment::run(Bench::PiApprox, &pi_p, Mode::RcceHsm, &config)?;
        let st = experiment::run(Bench::Stream, &st_p, Mode::RcceHsm, &config)?;
        let ms = |cycles: u64| cycles as f64 / (f64::from(mhz) * 1e6) * 1e3;
        let _ = writeln!(
            out,
            "{:<12}{:>16.3}{:>16.3}",
            mhz,
            ms(pi.timed_cycles),
            ms(st.timed_cycles)
        );
    }
    Ok(out)
}

/// Extension: Jacobi heat diffusion — barrier-per-iteration stencil,
/// the synchronization-heavy pattern §7.3's future work targets.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn jacobi_extension(core_counts: &[usize]) -> Result<String, PipelineError> {
    use hsm_workloads::{jacobi_source, Params};
    let config = SccConfig::table_6_1();
    let mut out = String::from("Extension — Jacobi 1-D heat diffusion (in-worker barriers)\n\n");
    let _ = writeln!(out, "{:<10}{:>12}{:>14}", "Cores", "Speedup", "Imbalance");
    out.push_str(&"-".repeat(36));
    out.push('\n');
    for &cores in core_counts {
        let p = Params {
            threads: cores,
            size: 4_096 + 2,
            reps: 24,
        };
        let src = jacobi_source(&p);
        let session = Pipeline::new(src).cores(cores).config(config.clone());
        let base = session.run_baseline()?;
        let hsm = session.run()?;
        let _ = writeln!(
            out,
            "{:<10}{:>10.1}x{:>14.2}",
            cores,
            base.timed_cycles as f64 / hsm.timed_cycles.max(1) as f64,
            hsm.imbalance()
        );
    }
    out.push_str(
        "\nPer-iteration chip-wide barriers shave the scaling below the\n\
         compute-bound near-linear curve of Figure 6.3; the gap widens as\n\
         the per-core slice shrinks.\n",
    );
    Ok(out)
}

/// Renders Table 6.1.
pub fn render_table_6_1(units: usize) -> String {
    SccConfig::table_6_1().render_table_6_1(units, units)
}

/// Renders the translated RCCE source of Example Code 4.1 (Example 4.2).
/// Uses off-chip placement so the allocations read `RCCE_shmalloc`, as in
/// the thesis' listing.
pub fn render_example_4_2() -> String {
    let tu = hsm_cir::parse(EXAMPLE_4_1).expect("example parses");
    hsm_translate::translate(
        &tu,
        hsm_translate::TranslateOptions {
            cores: 32,
            policy: hsm_partition::Policy::OffChipOnly,
        },
    )
    .expect("example translates")
    .to_source()
}

#[cfg(test)]
mod tests {
    #[test]
    fn write_artifact_creates_missing_output_directories() {
        let root = std::env::temp_dir().join(format!("hsm-bench-out-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let path = root.join("nested/BENCH_test.json");
        let path = path.to_str().expect("utf-8 temp path");
        super::write_artifact(path, "{}\n").expect("writes through missing dirs");
        assert_eq!(std::fs::read_to_string(path).expect("readable"), "{}\n");
        // Overwrites in place on the second run.
        super::write_artifact(path, "{\"v\": 2}\n").expect("rewrites");
        assert_eq!(
            std::fs::read_to_string(path).expect("readable"),
            "{\"v\": 2}\n"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
