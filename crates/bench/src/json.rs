//! A minimal order-preserving JSON value and writer.
//!
//! The run manifest must be reproducible byte for byte (it is diffed
//! against checked-in goldens), so keys keep their insertion order and the
//! rendering is fully deterministic — no external serialization crate, no
//! hash-map ordering, no locale-dependent formatting.

use std::fmt::Write as _;

/// A JSON value with insertion-ordered object keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (counters, sizes, cycles).
    UInt(u64),
    /// A signed integer (exit codes).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an array of unsigned integers.
    pub fn uints(values: impl IntoIterator<Item = u64>) -> Json {
        Json::Arr(values.into_iter().map(Json::UInt).collect())
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars render inline; nested structures
                // get one element per line.
                let scalar = items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)));
                if scalar {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        pad(out, indent + 1);
                        item.write(out, indent + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    pad(out, indent);
                    out.push(']');
                }
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_plainly() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::UInt(42).render(), "42\n");
        assert_eq!(Json::Int(-7).render(), "-7\n");
        assert_eq!(Json::str("hi").render(), "\"hi\"\n");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"\n");
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"\n");
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let j = Json::obj(vec![("zebra", Json::UInt(1)), ("apple", Json::UInt(2))]);
        assert_eq!(j.render(), "{\n  \"zebra\": 1,\n  \"apple\": 2\n}\n");
    }

    #[test]
    fn scalar_arrays_inline_nested_break() {
        assert_eq!(Json::uints([1, 2, 3]).render(), "[1, 2, 3]\n");
        let nested = Json::Arr(vec![Json::obj(vec![("k", Json::UInt(1))])]);
        assert_eq!(nested.render(), "[\n  {\n    \"k\": 1\n  }\n]\n");
    }

    #[test]
    fn get_finds_keys() {
        let j = Json::obj(vec![("a", Json::UInt(1))]);
        assert_eq!(j.get("a"), Some(&Json::UInt(1)));
        assert_eq!(j.get("b"), None);
        assert_eq!(Json::Null.get("a"), None);
    }
}
