//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! figures                  # everything
//! figures table4.1         # per-variable analysis table
//! figures table4.2         # sharing status per stage
//! figures example4.2       # translated RCCE source
//! figures table6.1         # SCC configuration
//! figures fig6.1           # off-chip speedups
//! figures fig6.2           # off-chip vs MPB
//! figures fig6.3           # core scaling
//! figures ablation.mc      # memory-controller contention
//! figures ablation.policy  # partition policy quality
//! figures fig7.threads     # >cores thread folding
//! figures energy           # energy estimate (power model)
//! figures stream.kernels   # per-kernel Stream bandwidth
//! figures dvfs             # frequency sweep (memory wall)
//! figures ext.jacobi       # barrier-heavy stencil extension
//! figures --json           # write the bench-out/BENCH_pipeline.json run manifest
//! figures --json --opt-level O2   # … with entries executed at O2
//! figures --json --cache-dir DIR  # … over a persistent artifact store
//! figures --host-timing    # write bench-out/BENCH_interp.json (steps/sec)
//! figures --predict        # predicted vs simulated surfaces (BENCH_predict.json)
//! figures --check-sharing  # run the corpus under the soundness oracle
//! figures --client ADDR    # sweep the corpus on a running hsmd server
//! figures --client ADDR --shutdown  # … then stop the server
//! figures --rows FILE      # sweep in-process, one SweepRow JSON line per point
//! figures --client ADDR --rows FILE  # … same rows via the server (byte-diffable)
//! ```
//!
//! `--json` composes with the table selectors: `figures fig6.1 --json`
//! prints Figure 6.1 and writes the manifest. `--check-sharing` runs every
//! corpus program (including `corpus/adversarial/`) under the
//! sharing-soundness oracle, prints the verdict table, folds the `sharing`
//! section into the manifest when `--json` is also given, and exits
//! non-zero if any program misses its expectation. Both sweeps fan out
//! over `--workers N` threads (default: one per host core); any worker
//! count produces the same manifest modulo `host_*` timing fields.
//! `--exec-model NAME` (coherent, non_coherent_wb, seq_cst_ref) switches
//! the memory model the manifest entries execute under; the default is
//! the coherent ground truth the goldens pin. `--opt-level LEVEL` (O0,
//! O1, O2) switches the bytecode optimization level the entries execute
//! at (default O0); the manifest's `opt` section always reports the
//! per-program `O0`-vs-`O2` instruction and simulated-cycle deltas
//! regardless. These execution flags (plus `--cache-dir DIR`, which
//! backs the sweep's artifact cache with a persistent content-addressed
//! store so a second run recompiles nothing) all parse into one
//! [`hsm_core::spec::SweepSpec`] — the same value an `hsmd` sweep job
//! carries.
//!
//! `--client ADDR` runs the corpus sweep on a running `hsmd` server
//! instead of in-process: it ships the spec as a sweep job, prints one
//! row per point as the server streams them back, and with `--shutdown`
//! stops the server afterwards. `--modes A,B,..` picks the scenario modes
//! (baseline, offchip, hsm, task) and repeatable `--program NAME:CORES`
//! replaces the default corpus; both parse into the spec's `Scenario`
//! list. `--rows FILE` writes one compact `SweepRow` JSON line per point
//! — the rows are deterministic and identical whether the sweep runs
//! in-process or via `--client`, which CI diffs byte-for-byte.
//!
//! `--host-timing` measures interpreter throughput (VM steps per host
//! second) for every corpus program × mode × model, prints the table and
//! writes `bench-out/BENCH_interp.json`; `--timing-runs N` overrides the
//! repetition count. `scripts/check_bench.py` diffs that file against the
//! committed `BENCH_interp.json` baseline in CI.
//!
//! All machine-readable artifacts land under `bench-out/` (gitignored;
//! created on demand) so repeated runs never dirty the work tree.
//!
//! If manifest generation fails, the manifest file is still written, as an
//! error document naming the failing pipeline stage:
//! `{"schema_version": 3, "error": {"stage": "parse", "message": …}}`.

use hsm_bench::json::Json;
use std::env;
use std::process::ExitCode;

/// Output file of `--json`.
const MANIFEST_FILE: &str = "bench-out/BENCH_pipeline.json";

/// Output file of `--host-timing`.
const INTERP_FILE: &str = "bench-out/BENCH_interp.json";

/// Output file of `--predict`.
const PREDICT_FILE: &str = "bench-out/BENCH_predict.json";

/// The error document `--json` writes when the sweep fails: the failing
/// stage name (from `PipelineError::stage`) plus the rendered error chain.
fn error_manifest(e: &hsm_core::PipelineError) -> Json {
    Json::obj(vec![
        (
            "schema_version",
            Json::UInt(hsm_bench::manifest::MANIFEST_SCHEMA_VERSION),
        ),
        (
            "error",
            Json::obj(vec![
                ("stage", Json::str(e.stage())),
                ("message", Json::Str(e.to_string())),
            ]),
        ),
    ])
}

fn main() -> ExitCode {
    let mut args: Vec<String> = env::args().skip(1).collect();
    let emit_json = args.iter().any(|a| a == "--json");
    let check_sharing = args.iter().any(|a| a == "--check-sharing");
    let host_timing = args.iter().any(|a| a == "--host-timing");
    let predict = args.iter().any(|a| a == "--predict");
    let mut timing_runs = 0usize;
    if let Some(i) = args.iter().position(|a| a == "--timing-runs") {
        let value = args.get(i + 1).and_then(|v| v.parse().ok());
        let Some(value) = value else {
            eprintln!("figures: --timing-runs needs a number");
            return ExitCode::FAILURE;
        };
        timing_runs = value;
        args.drain(i..=i + 1);
    }
    // The execution axes (--workers, --exec-model, --opt-level,
    // --cache-dir) all live in one SweepSpec — the value the manifest
    // consumes and a `--client` sweep job ships.
    let mut spec = hsm_core::spec::SweepSpec::default();
    if let Err(e) = spec.take_cli_flags(&mut args) {
        eprintln!("figures: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = spec.open_cache() {
        eprintln!("figures: {e}");
        return ExitCode::FAILURE;
    }
    let mut client_addr = None;
    if let Some(i) = args.iter().position(|a| a == "--client") {
        let Some(value) = args.get(i + 1).cloned() else {
            eprintln!("figures: --client needs a server address");
            return ExitCode::FAILURE;
        };
        client_addr = Some(value);
        args.drain(i..=i + 1);
    }
    let mut rows_file = None;
    if let Some(i) = args.iter().position(|a| a == "--rows") {
        let Some(value) = args.get(i + 1).cloned() else {
            eprintln!("figures: --rows needs an output file");
            return ExitCode::FAILURE;
        };
        rows_file = Some(value);
        args.drain(i..=i + 1);
    }
    let client_shutdown = args.iter().any(|a| a == "--shutdown");
    args.retain(|a| {
        a != "--json"
            && a != "--check-sharing"
            && a != "--host-timing"
            && a != "--predict"
            && a != "--shutdown"
    });

    if let Some(addr) = client_addr {
        return match run_client(&addr, &spec, rows_file.as_deref(), client_shutdown) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("figures: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(path) = rows_file {
        return match run_rows_local(&spec, &path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("figures: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let workers = spec.workers;
    let all = args.is_empty() && !emit_json && !check_sharing && !host_timing && !predict;
    let want = |name: &str| all || args.iter().any(|a| a == name);
    let mut failed = false;

    let mut sharing_section = None;
    if check_sharing {
        match hsm_bench::sharing::sharing_manifest_with(workers) {
            Ok(sharing) => {
                print_sharing(&sharing);
                if !hsm_bench::sharing::all_pass(&sharing) {
                    eprintln!("sharing check FAILED: a program missed its expectation");
                    failed = true;
                }
                sharing_section = Some(sharing);
            }
            Err(e) => {
                eprintln!("sharing check failed to run: {e}");
                failed = true;
            }
        }
    }

    if emit_json {
        let opts = hsm_bench::manifest::ManifestOptions {
            spec: spec.clone(),
            ..Default::default()
        };
        let manifest = match hsm_bench::manifest::full_manifest(&opts) {
            Ok(mut m) => {
                if let (Some(sharing), Json::Obj(pairs)) = (sharing_section.take(), &mut m) {
                    pairs.push(("sharing".to_string(), sharing));
                }
                m
            }
            Err(e) => {
                eprintln!("manifest generation failed: {e}");
                failed = true;
                error_manifest(&e)
            }
        };
        if write_artifact(MANIFEST_FILE, &manifest.render()).is_err() {
            failed = true;
        }
    }

    if predict {
        match hsm_bench::predict::predict_report() {
            Ok(report) => {
                println!("{}", hsm_bench::predict::render_predict_table(&report));
                if write_artifact(PREDICT_FILE, &report.render()).is_err() {
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("predict validation failed: {e}");
                failed = true;
            }
        }
    }

    if host_timing {
        match hsm_bench::interp::interp_points(timing_runs) {
            Ok(points) => {
                println!("{}", hsm_bench::interp::render_interp_table(&points));
                let doc = hsm_bench::interp::interp_json(&points);
                if write_artifact(INTERP_FILE, &doc.render()).is_err() {
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("host-timing sweep failed: {e}");
                failed = true;
            }
        }
    }

    if want("table4.1") || want("table4.2") {
        let (t41, t42) = hsm_bench::analysis_tables();
        if want("table4.1") {
            println!("Table 4.1 — information extracted per variable (Example Code 4.1)\n");
            println!("{t41}");
        }
        if want("table4.2") {
            println!("Table 4.2 — variable sharing status after each stage\n");
            println!("{t42}");
        }
    }

    if want("example4.2") {
        println!("Example Code 4.2 — translated RCCE source\n");
        println!("{}", hsm_bench::render_example_4_2());
    }

    if want("table6.1") {
        println!("Table 6.1 — SCC configuration\n");
        println!("{}", hsm_bench::render_table_6_1(hsm_bench::EVAL_UNITS));
    }

    if want("fig6.1") || want("fig6.2") {
        match hsm_bench::run_evaluation(hsm_bench::EVAL_UNITS) {
            Ok(results) => {
                if want("fig6.1") {
                    println!("{}", hsm_bench::render_fig_6_1(&results));
                }
                if want("fig6.2") {
                    println!("{}", hsm_bench::render_fig_6_2(&results));
                }
            }
            Err(e) => {
                eprintln!("evaluation failed: {e}");
                failed = true;
            }
        }
    }

    if want("fig6.3") {
        match hsm_bench::fig_6_3(&[1, 2, 4, 8, 16, 32, 48]) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("figure 6.3 failed: {e}");
                failed = true;
            }
        }
    }

    if want("ablation.mc") {
        match hsm_bench::ablation_memory_controllers(hsm_bench::EVAL_UNITS) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("MC ablation failed: {e}");
                failed = true;
            }
        }
    }

    if want("ablation.policy") {
        println!("{}", hsm_bench::ablation_partition_policies());
    }

    if want("stream.kernels") {
        match hsm_bench::stream_kernel_table(hsm_bench::EVAL_UNITS) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("stream kernels failed: {e}");
                failed = true;
            }
        }
    }

    if want("ext.jacobi") {
        match hsm_bench::jacobi_extension(&[4, 8, 16, 32]) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("jacobi extension failed: {e}");
                failed = true;
            }
        }
    }

    if want("dvfs") {
        match hsm_bench::dvfs_sweep(hsm_bench::EVAL_UNITS) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("dvfs sweep failed: {e}");
                failed = true;
            }
        }
    }

    if want("energy") {
        match hsm_bench::energy_comparison(hsm_bench::EVAL_UNITS) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("energy comparison failed: {e}");
                failed = true;
            }
        }
    }

    if want("fig7.threads") {
        match hsm_bench::thread_folding(&[48, 64, 96]) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("thread folding failed: {e}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Writes a machine-readable artifact under `bench-out/`, creating the
/// directory on demand (the create-on-demand behaviour itself lives in
/// and is unit-tested by `hsm_bench::write_artifact`).
fn write_artifact(path: &str, content: &str) -> Result<(), ()> {
    match hsm_bench::write_artifact(path, content) {
        Ok(()) => {
            println!("wrote {path}");
            Ok(())
        }
        Err(e) => {
            eprintln!("writing {path} failed: {e}");
            Err(())
        }
    }
}

/// Fills an empty program list with the manifest corpus, so `--client`
/// and `--rows` sweep the same default set the manifest reports.
fn with_default_programs(spec: &hsm_core::spec::SweepSpec) -> hsm_core::spec::SweepSpec {
    use hsm_core::api::SpecProgram;
    let mut spec = spec.clone();
    if spec.programs.is_empty() {
        spec.programs = hsm_bench::manifest::MANIFEST_PROGRAMS
            .iter()
            .map(|&(name, cores)| SpecProgram::corpus(name, cores))
            .collect();
    }
    spec
}

/// Serializes sweep rows as newline-delimited compact JSON — one
/// `SweepRow` per line, in matrix order. The encoding is deterministic,
/// so the in-process and `--client` paths produce identical bytes for
/// the same spec; CI diffs the two files directly.
fn write_rows(path: &str, rows: &[hsm_core::api::SweepRow]) -> Result<(), String> {
    let mut doc = rows
        .iter()
        .map(|row| row.to_json().render_compact())
        .collect::<Vec<_>>()
        .join("\n");
    doc.push('\n');
    write_artifact_at(path, &doc)
}

/// [`write_artifact`] without the `bench-out/` convention baked into the
/// caller's constants: `--rows` takes an explicit destination.
fn write_artifact_at(path: &str, content: &str) -> Result<(), String> {
    hsm_bench::write_artifact(path, content)
        .map(|()| println!("wrote {path}"))
        .map_err(|e| format!("writing {path} failed: {e}"))
}

/// Runs the spec's sweep in this process and writes the row file —
/// the reference bytes the `--client --rows` transport must reproduce.
fn run_rows_local(spec: &hsm_core::spec::SweepSpec, path: &str) -> Result<(), String> {
    use hsm_core::api::SweepRow;
    use hsm_core::experiment::{sweep_with, SweepOptions};
    let spec = with_default_programs(spec);
    let cache = spec.open_cache().map_err(|e| e.to_string())?;
    let matrix = spec
        .to_matrix(&scc_sim::SccConfig::table_6_1())
        .map_err(|e| e.to_string())?
        .cache(cache);
    let report = sweep_with(
        &matrix,
        SweepOptions {
            predict_first: spec.predict_first,
            ..SweepOptions::default()
        },
    );
    let rows: Vec<SweepRow> = report.outcomes.iter().map(SweepRow::from_outcome).collect();
    write_rows(path, &rows)?;
    let failed = rows.iter().filter(|r| r.error.is_some()).count();
    println!("{} points, {failed} failed", rows.len());
    if failed > 0 {
        return Err(format!("{failed} sweep points failed"));
    }
    Ok(())
}

/// Runs the corpus sweep as a job on a running `hsmd` server, printing
/// one row per point as the server streams them back (matrix order).
fn run_client(
    addr: &str,
    spec: &hsm_core::spec::SweepSpec,
    rows_file: Option<&str>,
    shutdown: bool,
) -> Result<(), String> {
    use hsm_core::api::Client;
    let spec = with_default_programs(spec);
    let mut client = Client::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    println!("sweeping {} programs on {addr}\n", spec.programs.len());
    println!("{:<32}{:>6}{:>14}  Output FNV", "Point", "Exit", "Cycles");
    println!("{}", "-".repeat(72));
    let rows = client
        .sweep_streaming(&spec, None, |row| match &row.error {
            Some(e) => println!("{:<32}  ERROR: {e}", row.name),
            None => println!(
                "{:<32}{:>6}{:>14}  {}",
                row.name,
                row.exit_code.unwrap_or(-1),
                row.timed_cycles.unwrap_or(0),
                row.output_fnv
                    .map(|v| format!("{v:016x}"))
                    .unwrap_or_default(),
            ),
        })
        .map_err(|e| format!("sweep failed: {e}"))?;
    let failed = rows.iter().filter(|r| r.error.is_some()).count();
    println!("\n{} points, {failed} failed", rows.len());
    if let Some(path) = rows_file {
        write_rows(path, &rows)?;
    }
    if shutdown {
        client
            .shutdown()
            .map_err(|e| format!("shutdown failed: {e}"))?;
        println!("server shut down");
    }
    if failed > 0 {
        return Err(format!("{failed} sweep points failed"));
    }
    Ok(())
}

/// Prints the sharing-oracle verdict table for `--check-sharing`.
fn print_sharing(sharing: &hsm_bench::json::Json) {
    use hsm_bench::json::Json;
    println!("Sharing-soundness oracle — corpus sweep\n");
    println!(
        "{:<30}{:>14}{:>14}{:>8}",
        "Program", "Expected", "Observed", "Pass"
    );
    println!("{}", "-".repeat(66));
    let Some(Json::Arr(entries)) = sharing.get("programs") else {
        return;
    };
    for entry in entries {
        let name = match entry.get("name") {
            Some(Json::Str(s)) => s.clone(),
            _ => "?".to_string(),
        };
        let expected = match entry.get("expected") {
            Some(Json::Str(s)) => s.clone(),
            _ => "?".to_string(),
        };
        let observed = match entry.get("violations") {
            Some(Json::Arr(vs)) if vs.is_empty() => "clean".to_string(),
            Some(Json::Arr(vs)) => {
                let mut classes: Vec<String> = vs
                    .iter()
                    .filter_map(|v| match v.get("class") {
                        Some(Json::Str(c)) => Some(c.clone()),
                        _ => None,
                    })
                    .collect();
                classes.sort();
                classes.dedup();
                classes.join("+")
            }
            _ => "?".to_string(),
        };
        let pass = entry.get("pass") == Some(&Json::Bool(true));
        println!(
            "{:<30}{:>14}{:>14}{:>8}",
            name,
            expected,
            observed,
            if pass { "ok" } else { "FAIL" }
        );
    }
    println!();
}
