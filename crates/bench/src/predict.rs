//! The `--predict` validation harness: predicted vs ground-truth sweep
//! surfaces on held-out corpus programs.
//!
//! The cycle predictor (`hsm-predict`) is fitted from **one** profiled
//! seed run per (program, scenario) pair and asked for the rest of the
//! core-count axis. This module measures how honest that shortcut is on
//! programs the model was *not* tuned against: `dot_product` in its
//! barrier (RCCE HSM) and task-dataflow forms, swept over 2–32 cores
//! under all three memory models. Every point is also fully simulated,
//! so each row carries the predicted and actual makespans plus their
//! absolute and relative errors.
//!
//! Relative errors are encoded as integer **basis points** (1 bp =
//! 0.01%) so the JSON stays float-free and byte-deterministic; the gate
//! in `scripts/check_predict.py` fails the build when the mean error of
//! the extrapolated points exceeds [`MEAN_ERROR_LIMIT_BP`]. The seed
//! point is reproduced exactly by construction, so it is excluded from
//! the means (it would only flatter them).

use crate::json::Json;
use crate::manifest::{corpus_source, MANIFEST_SCHEMA_VERSION};
use hsm_core::experiment::{
    absolute_error, fit_options_for, relative_error, CyclePredictor, Mode, Scenario,
};
use hsm_core::{ArtifactCache, Pipeline, PipelineError};
use hsm_exec::ExecModel;
use scc_sim::SccConfig;
use std::fmt::Write as _;
use std::sync::Arc;

/// The held-out validation pair: the same dot product decomposed 32
/// ways, once as a barrier program and once as a task-dataflow program.
/// Neither is in [`crate::manifest::MANIFEST_PROGRAMS`], so the
/// predictor is graded on programs that played no part in its tuning.
pub const PREDICT_PROGRAMS: [(&str, Mode); 2] = [
    ("dot_product", Mode::RcceHsm),
    ("task_dot_product", Mode::TaskDataflow),
];

/// The swept core-count axis (the thesis' 2–32 range).
pub const PREDICT_CORES: [usize; 5] = [2, 4, 8, 16, 32];

/// The core count the one profiled seed run executes at.
pub const SEED_CORES: usize = 2;

/// The CI gate: mean relative error of the extrapolated points, in
/// basis points (1500 bp = 15%).
pub const MEAN_ERROR_LIMIT_BP: u64 = 1500;

/// A relative error as integer basis points (rounded).
fn basis_points(rel: f64) -> u64 {
    (rel * 10_000.0).round() as u64
}

/// One (program, scenario) surface: fits the predictor from the seed
/// profile, simulates every core count for ground truth, and renders
/// the per-point comparison rows.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn predict_entry(
    name: &str,
    mode: Mode,
    exec_model: ExecModel,
    config: &SccConfig,
    cache: &Arc<ArtifactCache>,
) -> Result<Json, PipelineError> {
    let scenario = Scenario::new(mode).exec_model(exec_model);
    let session = Pipeline::new(corpus_source(name))
        .config(config.clone())
        .cache(Arc::clone(cache))
        .scenario(scenario);
    let profile = session.clone().cores(SEED_CORES).profile()?;
    let predictor = CyclePredictor::fit(&profile, SEED_CORES, config, fit_options_for(scenario));
    let mut points = Vec::with_capacity(PREDICT_CORES.len());
    let mut error_sum = 0u64;
    let mut extrapolated = 0u64;
    for cores in PREDICT_CORES {
        let actual = session.clone().cores(cores).run_scenario()?.total_cycles;
        let predicted = predictor.predict(cores);
        let rel_bp = basis_points(relative_error(predicted, actual));
        if cores != SEED_CORES {
            error_sum += rel_bp;
            extrapolated += 1;
        }
        points.push(Json::obj(vec![
            ("cores", Json::UInt(cores as u64)),
            ("seed", Json::Bool(cores == SEED_CORES)),
            ("predicted_cycles", Json::UInt(predicted)),
            ("actual_cycles", Json::UInt(actual)),
            ("abs_error", Json::UInt(absolute_error(predicted, actual))),
            ("rel_error_bp", Json::UInt(rel_bp)),
        ]));
    }
    Ok(Json::obj(vec![
        ("name", Json::str(name)),
        ("mode", Json::str(mode.label())),
        ("exec_model", Json::str(exec_model.label())),
        ("seed_cores", Json::UInt(SEED_CORES as u64)),
        (
            "mean_rel_error_bp",
            Json::UInt(error_sum / extrapolated.max(1)),
        ),
        ("points", Json::Arr(points)),
    ]))
}

/// The manifest's `predict` section: both held-out programs under the
/// manifest's exec model, sharing the manifest sweep's artifact cache.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn predict_json(
    exec_model: ExecModel,
    config: &SccConfig,
    cache: &Arc<ArtifactCache>,
) -> Result<Json, PipelineError> {
    let mut entries = Vec::with_capacity(PREDICT_PROGRAMS.len());
    for (name, mode) in PREDICT_PROGRAMS {
        entries.push(predict_entry(name, mode, exec_model, config, cache)?);
    }
    Ok(Json::obj(vec![
        ("seed_cores", Json::UInt(SEED_CORES as u64)),
        ("mean_rel_error_bp", Json::UInt(mean_error_bp(&entries))),
        ("surfaces", Json::Arr(entries)),
    ]))
}

/// Mean of the entries' per-surface mean errors (they cover equally
/// many extrapolated points each).
fn mean_error_bp(entries: &[Json]) -> u64 {
    let sum: u64 = entries
        .iter()
        .filter_map(|e| match e.get("mean_rel_error_bp") {
            Some(&Json::UInt(v)) => Some(v),
            _ => None,
        })
        .sum();
    sum / (entries.len().max(1) as u64)
}

/// The full `--predict` report: both held-out programs × all three
/// memory models, as a standalone versioned document
/// (`bench-out/BENCH_predict.json`, gated by `scripts/check_predict.py`
/// against the committed `BENCH_predict.json` baseline).
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn predict_report() -> Result<Json, PipelineError> {
    let config = SccConfig::table_6_1();
    let cache = ArtifactCache::shared();
    let mut entries = Vec::new();
    for exec_model in ExecModel::ALL {
        for (name, mode) in PREDICT_PROGRAMS {
            entries.push(predict_entry(name, mode, exec_model, &config, &cache)?);
        }
    }
    Ok(Json::obj(vec![
        ("schema_version", Json::UInt(MANIFEST_SCHEMA_VERSION)),
        ("seed_cores", Json::UInt(SEED_CORES as u64)),
        ("error_limit_bp", Json::UInt(MEAN_ERROR_LIMIT_BP)),
        ("mean_rel_error_bp", Json::UInt(mean_error_bp(&entries))),
        ("surfaces", Json::Arr(entries)),
    ]))
}

/// Renders the `--predict` report as the stdout table.
pub fn render_predict_table(report: &Json) -> String {
    let mut out = String::from(
        "Predicted vs simulated makespan — held-out dot_product surfaces\n\
         (fit from one profiled seed run; errors in % of simulated cycles)\n\n",
    );
    let _ = writeln!(
        out,
        "{:<18}{:<8}{:<16}{:>6}{:>14}{:>14}{:>9}",
        "Program", "Mode", "Model", "Cores", "Predicted", "Simulated", "Err"
    );
    out.push_str(&"-".repeat(85));
    out.push('\n');
    let Some(Json::Arr(surfaces)) = report.get("surfaces") else {
        return out;
    };
    let text = |e: &Json, k: &str| match e.get(k) {
        Some(Json::Str(s)) => s.clone(),
        _ => "?".to_string(),
    };
    let uint = |e: &Json, k: &str| match e.get(k) {
        Some(&Json::UInt(v)) => v,
        _ => 0,
    };
    for surface in surfaces {
        let Some(Json::Arr(points)) = surface.get("points") else {
            continue;
        };
        for point in points {
            let seed = point.get("seed") == Some(&Json::Bool(true));
            let _ = writeln!(
                out,
                "{:<18}{:<8}{:<16}{:>6}{:>14}{:>14}{:>8.2}%{}",
                text(surface, "name"),
                text(surface, "mode"),
                text(surface, "exec_model"),
                uint(point, "cores"),
                uint(point, "predicted_cycles"),
                uint(point, "actual_cycles"),
                uint(point, "rel_error_bp") as f64 / 100.0,
                if seed { "  (seed)" } else { "" }
            );
        }
    }
    let _ = writeln!(
        out,
        "\nmean extrapolation error {:.2}% (gate: {:.0}%)",
        uint(report, "mean_rel_error_bp") as f64 / 100.0,
        MEAN_ERROR_LIMIT_BP as f64 / 100.0
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn held_out_surfaces_meet_the_error_gate() {
        let report = predict_report().expect("report");
        println!("{}", render_predict_table(&report));
        let Some(&Json::UInt(mean)) = report.get("mean_rel_error_bp") else {
            panic!("mean missing");
        };
        assert!(
            mean <= MEAN_ERROR_LIMIT_BP,
            "mean extrapolation error {mean} bp exceeds {MEAN_ERROR_LIMIT_BP} bp\n{}",
            render_predict_table(&report)
        );
        // Every surface's seed point is reproduced exactly — the
        // residual calibration guarantee, now on real programs.
        let Some(Json::Arr(surfaces)) = report.get("surfaces") else {
            panic!("surfaces missing");
        };
        assert_eq!(surfaces.len(), 6, "2 programs x 3 exec models");
        for surface in surfaces {
            let Some(Json::Arr(points)) = surface.get("points") else {
                panic!("points missing");
            };
            assert_eq!(points.len(), PREDICT_CORES.len());
            let seed = &points[0];
            assert_eq!(seed.get("seed"), Some(&Json::Bool(true)));
            assert_eq!(seed.get("rel_error_bp"), Some(&Json::UInt(0)));
        }
    }

    #[test]
    fn predict_report_is_deterministic() {
        let a = predict_report().expect("first");
        let b = predict_report().expect("second");
        assert_eq!(a.render(), b.render());
    }
}
