//! The machine-readable run manifest.
//!
//! `figures --json` writes `BENCH_pipeline.json`: a versioned snapshot of
//! the chip configuration, per-core × per-region memory counters, MPB
//! occupancy and per-stage pipeline metrics for a fixed set of corpus
//! programs. Everything except the `host_wall_nanos` fields is a pure
//! function of the program sources and the simulator, so the manifest is
//! diffable against the checked-in goldens in `goldens/` — the CI gate
//! that pins the simulator's observable behaviour.

use crate::json::Json;
use hsm_core::metrics::PipelineMetrics;
use hsm_core::{PipelineError, Policy};
use hsm_exec::RunResult;
use scc_sim::{Region, SccConfig};
use std::path::PathBuf;

/// Version of the manifest layout. Bump when renaming or moving fields so
/// downstream consumers can dispatch.
pub const MANIFEST_SCHEMA_VERSION: u64 = 1;

/// The corpus programs the manifest replays, with the core counts the
/// corpus integration tests use.
pub const MANIFEST_PROGRAMS: [(&str, usize); 5] = [
    ("example_4_1", 3),
    ("matrix_vector", 4),
    ("mutex_histogram", 4),
    ("switch_classifier", 2),
    ("escaping_local", 4),
];

/// The subset of [`MANIFEST_PROGRAMS`] covered by the checked-in goldens
/// (kept small so the debug-mode regression test stays fast).
pub const GOLDEN_PROGRAMS: [(&str, usize); 2] = [("example_4_1", 3), ("matrix_vector", 4)];

/// Timed runs behind each entry's `host_timing` block.
const HOST_TIMING_RUNS: usize = 3;

/// Manifest generation knobs.
#[derive(Debug, Clone, Copy)]
pub struct ManifestOptions {
    /// Include host wall-clock stage timings (`host_wall_nanos`). These
    /// vary run to run; goldens are built without them.
    pub include_host_timings: bool,
}

impl Default for ManifestOptions {
    fn default() -> Self {
        ManifestOptions {
            include_host_timings: true,
        }
    }
}

/// Absolute path of a corpus program.
pub(crate) fn corpus_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../corpus")
        .join(format!("{name}.c"))
}

/// The chip-configuration block.
pub fn config_json(config: &SccConfig) -> Json {
    Json::obj(vec![
        ("cores", Json::UInt(config.cores as u64)),
        ("mesh_cols", Json::UInt(config.mesh_cols as u64)),
        ("mesh_rows", Json::UInt(config.mesh_rows as u64)),
        ("core_freq_mhz", Json::UInt(u64::from(config.core_freq_mhz))),
        ("l1_bytes", Json::UInt(config.l1_bytes as u64)),
        ("l2_bytes", Json::UInt(config.l2_bytes as u64)),
        ("line_bytes", Json::UInt(config.line_bytes as u64)),
        (
            "mpb_bytes_per_core",
            Json::UInt(config.mpb_bytes_per_core as u64),
        ),
        (
            "memory_controllers",
            Json::UInt(config.memory_controllers as u64),
        ),
    ])
}

/// One run's counter block: chip-global aggregate, per-region totals with
/// latency histograms, and per-core rows for every core that issued at
/// least one access.
pub fn run_json(r: &RunResult) -> Json {
    let agg = &r.mem_stats;
    let matrix = &r.stats_matrix;
    let regions = Json::Obj(
        Region::ALL
            .iter()
            .map(|&region| {
                let hist = matrix.region_histogram(region);
                let reads: u64 = matrix
                    .per_core
                    .iter()
                    .map(|c| c.reads[region.index()])
                    .sum();
                let writes: u64 = matrix
                    .per_core
                    .iter()
                    .map(|c| c.writes[region.index()])
                    .sum();
                (
                    region.name().to_string(),
                    Json::obj(vec![
                        ("reads", Json::UInt(reads)),
                        ("writes", Json::UInt(writes)),
                        ("cycles", Json::UInt(hist.total_cycles)),
                        ("max_latency", Json::UInt(hist.max)),
                        ("latency_buckets", Json::uints(hist.buckets)),
                    ]),
                )
            })
            .collect(),
    );
    let per_core = Json::Arr(
        matrix
            .per_core
            .iter()
            .enumerate()
            .filter(|(_, c)| c.total_accesses() > 0)
            .map(|(i, c)| {
                Json::obj(vec![
                    ("core", Json::UInt(i as u64)),
                    ("reads", Json::uints(c.reads)),
                    ("writes", Json::uints(c.writes)),
                    ("cycles", Json::uints(c.region_cycles)),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("total_cycles", Json::UInt(r.total_cycles)),
        ("timed_cycles", Json::UInt(r.timed_cycles)),
        ("exit_code", Json::Int(r.exit_code)),
        ("l1_hits", Json::UInt(agg.l1_hits)),
        ("l2_hits", Json::UInt(agg.l2_hits)),
        ("private_dram", Json::UInt(agg.private_dram)),
        ("shared_dram", Json::UInt(agg.shared_dram)),
        ("mpb", Json::UInt(agg.mpb)),
        ("mc_queue_cycles", Json::UInt(agg.mc_queue_cycles)),
        ("active_cores", Json::UInt(matrix.active_cores() as u64)),
        ("mpb_high_water_bytes", Json::UInt(r.mpb_high_water as u64)),
        ("regions", regions),
        ("per_core", per_core),
    ])
}

/// The per-stage pipeline block (region sizes always; wall times only when
/// requested, since they are host-dependent).
pub fn metrics_json(m: &PipelineMetrics, opts: ManifestOptions) -> Json {
    Json::Arr(
        m.stages
            .iter()
            .map(|s| {
                let mut pairs = vec![
                    ("stage", Json::str(s.stage)),
                    ("ir_size", Json::UInt(s.ir_size as u64)),
                ];
                if opts.include_host_timings {
                    pairs.push(("host_wall_nanos", Json::UInt(s.wall_nanos as u64)));
                }
                Json::obj(pairs)
            })
            .collect(),
    )
}

/// Replays one corpus program (baseline + HSM) and builds its manifest
/// entry.
///
/// # Errors
///
/// Propagates pipeline failures; panics only if the corpus file itself is
/// missing (a build-tree corruption, not a runtime condition).
pub fn program_entry(
    name: &str,
    cores: usize,
    config: &SccConfig,
    opts: ManifestOptions,
) -> Result<Json, PipelineError> {
    let path = corpus_path(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read corpus program {}: {e}", path.display()));
    let (base, base_metrics) = hsm_core::run_baseline_metered(&src, config)?;
    let (hsm, hsm_metrics) =
        hsm_core::run_translated_metered(&src, cores, Policy::SizeAscending, config)?;
    let mut pairs = vec![
        ("name", Json::str(name)),
        ("cores", Json::UInt(cores as u64)),
        ("pipeline", metrics_json(&hsm_metrics, opts)),
        ("baseline_pipeline", metrics_json(&base_metrics, opts)),
        ("baseline", run_json(&base)),
        ("hsm", run_json(&hsm)),
    ];
    if opts.include_host_timings {
        // Median-of-N wall time of the whole translate-and-simulate path
        // (host-dependent, so `host_`-prefixed and absent from goldens).
        let report = testkit::time_median(name, HOST_TIMING_RUNS, || {
            let _ = std::hint::black_box(hsm_core::run_translated(
                &src,
                cores,
                Policy::SizeAscending,
                config,
            ));
        });
        pairs.push((
            "host_timing",
            Json::obj(vec![
                ("runs", Json::UInt(report.runs as u64)),
                ("median_nanos", Json::UInt(report.median_nanos as u64)),
                ("min_nanos", Json::UInt(report.min_nanos as u64)),
                ("max_nanos", Json::UInt(report.max_nanos as u64)),
            ]),
        ));
    }
    Ok(Json::obj(pairs))
}

/// Builds a manifest for an explicit program list.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn manifest_for(
    programs: &[(&str, usize)],
    opts: ManifestOptions,
) -> Result<Json, PipelineError> {
    let config = SccConfig::table_6_1();
    let entries = programs
        .iter()
        .map(|&(name, cores)| program_entry(name, cores, &config, opts))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Json::obj(vec![
        ("schema_version", Json::UInt(MANIFEST_SCHEMA_VERSION)),
        ("config", config_json(&config)),
        ("programs", Json::Arr(entries)),
    ]))
}

/// The full manifest `figures --json` writes.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn full_manifest(opts: ManifestOptions) -> Result<Json, PipelineError> {
    manifest_for(&MANIFEST_PROGRAMS, opts)
}

/// The deterministic golden manifest (no host timings, golden program
/// subset) the regression test pins.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn golden_manifest() -> Result<Json, PipelineError> {
    manifest_for(
        &GOLDEN_PROGRAMS,
        ManifestOptions {
            include_host_timings: false,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_structure_is_versioned_and_complete() {
        let m = manifest_for(
            &[("example_4_1", 3)],
            ManifestOptions {
                include_host_timings: false,
            },
        )
        .expect("manifest");
        assert_eq!(
            m.get("schema_version"),
            Some(&Json::UInt(MANIFEST_SCHEMA_VERSION))
        );
        assert_eq!(
            m.get("config").and_then(|c| c.get("cores")),
            Some(&Json::UInt(48))
        );
        let Some(Json::Arr(programs)) = m.get("programs") else {
            panic!("programs array missing");
        };
        let entry = &programs[0];
        assert_eq!(entry.get("name"), Some(&Json::str("example_4_1")));
        // The HSM pipeline has all five stages, the baseline two.
        let Some(Json::Arr(stages)) = entry.get("pipeline") else {
            panic!("pipeline missing");
        };
        assert_eq!(stages.len(), 5);
        let Some(Json::Arr(base_stages)) = entry.get("baseline_pipeline") else {
            panic!("baseline pipeline missing");
        };
        assert_eq!(base_stages.len(), 2);
        // Counter blocks are present and populated.
        let hsm = entry.get("hsm").expect("hsm block");
        assert!(matches!(hsm.get("total_cycles"), Some(Json::UInt(c)) if *c > 0));
        let shared = hsm.get("regions").and_then(|r| r.get("shared_dram"));
        assert!(shared.is_some(), "per-region block missing");
        // Without host timings the rendering is deterministic.
        let again = manifest_for(
            &[("example_4_1", 3)],
            ManifestOptions {
                include_host_timings: false,
            },
        )
        .expect("manifest");
        assert_eq!(m.render(), again.render());
    }

    #[test]
    fn host_timings_are_opt_in() {
        let with = program_entry(
            "example_4_1",
            3,
            &SccConfig::table_6_1(),
            ManifestOptions {
                include_host_timings: true,
            },
        )
        .expect("entry");
        let without = program_entry(
            "example_4_1",
            3,
            &SccConfig::table_6_1(),
            ManifestOptions {
                include_host_timings: false,
            },
        )
        .expect("entry");
        assert!(with.render().contains("host_wall_nanos"));
        assert!(!without.render().contains("host_wall_nanos"));
    }
}
