//! The machine-readable run manifest.
//!
//! `figures --json` writes `BENCH_pipeline.json`: a versioned snapshot of
//! the chip configuration, the sweep engine's artifact-cache counters,
//! per-core × per-region memory counters, MPB occupancy and per-stage
//! pipeline metrics for a fixed set of corpus programs. The whole corpus
//! is executed as one parallel [`hsm_core::experiment::sweep`] over a
//! shared [`hsm_core::ArtifactCache`], so each program's source is parsed
//! once for its baseline and HSM runs and the per-point wall times shrink
//! with the host's core count.
//!
//! Everything except the `host_*` fields is a pure function of the
//! program sources and the simulator — including the cache hit/miss
//! counters, which the pending-slot cache keeps schedule-independent — so
//! the manifest is diffable against the checked-in goldens in `goldens/`,
//! the CI gate that pins the simulator's observable behaviour.

use crate::json::Json;
use hsm_core::experiment::{
    outputs_equivalent, sweep, Mode, Scenario, SweepMatrix, SweepReport, SweepTask, TimingStats,
};
use hsm_core::metrics::PipelineMetrics;
use hsm_core::spec::SweepSpec;
use hsm_core::{ArtifactCache, OptLevel, Pipeline, PipelineError, StageCounters};
use hsm_exec::{ExecModel, RunResult};
use scc_sim::{Region, SccConfig};
use std::path::PathBuf;
use std::sync::Arc;

/// Version of the manifest layout. Bump when renaming or moving fields so
/// downstream consumers can dispatch. Version 2 added the `sweep` section
/// (artifact-cache counters plus host parallelism figures) and moved the
/// per-entry `host_timing` block onto the sweep's cache-hot re-runs.
/// Version 3 records the memory model each entry executed under in a
/// per-entry `exec_model` field. Version 4 records the bytecode
/// optimization level in a per-entry `opt_level` field and adds the
/// top-level `opt` section with per-program `O0`-vs-`O2` instruction and
/// simulated-cycle deltas. Version 5 adds the top-level `tasks` section:
/// for each ported corpus pair, the barrier (RCCE HSM) run of the
/// original against the task-dataflow run of the port, with cycle counts
/// and an output-equivalence verdict; entry axes now come from the
/// spec's [`Scenario`] list. Version 6 adds the top-level `predict`
/// section: for the held-out `dot_product`/`task_dot_product` pair, the
/// cycle predictor's surface (fitted from one profiled seed run) against
/// full simulation across the 2–32 core axis, with per-point absolute
/// and relative errors (see [`crate::predict`]).
pub const MANIFEST_SCHEMA_VERSION: u64 = 6;

/// The corpus programs the manifest replays, with the core counts the
/// corpus integration tests use.
pub const MANIFEST_PROGRAMS: [(&str, usize); 5] = [
    ("example_4_1", 3),
    ("matrix_vector", 4),
    ("mutex_histogram", 4),
    ("switch_classifier", 2),
    ("escaping_local", 4),
];

/// The barrier-program → task-annotated-port pairs behind the `tasks`
/// section: the original pthread corpus program, its
/// `task_spawn`-annotated port, and the core count both run at. A pair is
/// included when its barrier program is in the manifest's program list.
pub const TASK_PROGRAMS: [(&str, &str, usize); 2] = [
    ("matrix_vector", "task_matrix_vector", 4),
    ("mutex_histogram", "task_histogram", 4),
];

/// The subset of [`MANIFEST_PROGRAMS`] covered by the checked-in goldens
/// (kept small so the debug-mode regression test stays fast).
pub const GOLDEN_PROGRAMS: [(&str, usize); 2] = [("example_4_1", 3), ("matrix_vector", 4)];

/// Timed runs behind each entry's `host_timing` block.
const HOST_TIMING_RUNS: usize = 3;

/// Manifest generation knobs. The execution axes — worker threads, the
/// memory model and optimization level every entry executes under, and
/// the optional persistent cache directory — live in the embedded
/// [`SweepSpec`], the same value the `figures` CLI parses its flags into
/// and `hsmd` jobs carry (the spec's own program list is ignored here:
/// the manifest's corpus is its own pinned axis). The defaults pin what
/// the goldens pin: coherent, `O0`, no store. The `opt` delta section
/// always compares `O0` against `O2` regardless of the spec's level.
#[derive(Debug, Clone)]
pub struct ManifestOptions {
    /// Include host wall-clock timings (`host_*` fields). These vary run
    /// to run; goldens are built without them.
    pub include_host_timings: bool,
    /// The execution knobs (workers, exec model, opt level, cache dir).
    pub spec: SweepSpec,
}

impl Default for ManifestOptions {
    fn default() -> Self {
        ManifestOptions {
            include_host_timings: true,
            spec: SweepSpec::default(),
        }
    }
}

impl ManifestOptions {
    /// The memory model manifest entries execute under (the first
    /// spec scenario's — the manifest's mode axis is its own).
    fn exec_model(&self) -> ExecModel {
        self.spec
            .scenarios
            .first()
            .map_or(ExecModel::Coherent, |s| s.exec_model)
    }

    /// The optimization level manifest entries execute at.
    fn opt_level(&self) -> OptLevel {
        self.spec
            .scenarios
            .first()
            .map_or(OptLevel::O0, |s| s.opt_level)
    }

    /// The manifest's scenario for `mode` (the spec's shared model and
    /// level applied to the given mode).
    fn scenario(&self, mode: Mode) -> Scenario {
        Scenario::new(mode)
            .exec_model(self.exec_model())
            .opt_level(self.opt_level())
    }
}

/// Opens the spec's artifact cache. A failing store directory is a host
/// environment error, reported like a missing corpus file (the `figures`
/// CLI validates the directory before building a manifest).
fn open_cache(spec: &SweepSpec) -> Arc<ArtifactCache> {
    spec.open_cache()
        .unwrap_or_else(|e| panic!("opening the artifact store failed: {e}"))
}

/// Absolute path of a corpus program.
pub(crate) fn corpus_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../corpus")
        .join(format!("{name}.c"))
}

/// Reads a corpus program's source.
pub(crate) fn corpus_source(name: &str) -> Arc<str> {
    let path = corpus_path(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read corpus program {}: {e}", path.display()))
        .into()
}

/// The chip-configuration block.
pub fn config_json(config: &SccConfig) -> Json {
    Json::obj(vec![
        ("cores", Json::UInt(config.cores as u64)),
        ("mesh_cols", Json::UInt(config.mesh_cols as u64)),
        ("mesh_rows", Json::UInt(config.mesh_rows as u64)),
        ("core_freq_mhz", Json::UInt(u64::from(config.core_freq_mhz))),
        ("l1_bytes", Json::UInt(config.l1_bytes as u64)),
        ("l2_bytes", Json::UInt(config.l2_bytes as u64)),
        ("line_bytes", Json::UInt(config.line_bytes as u64)),
        (
            "mpb_bytes_per_core",
            Json::UInt(config.mpb_bytes_per_core as u64),
        ),
        (
            "memory_controllers",
            Json::UInt(config.memory_controllers as u64),
        ),
    ])
}

/// One run's counter block: chip-global aggregate, per-region totals with
/// latency histograms, and per-core rows for every core that issued at
/// least one access.
pub fn run_json(r: &RunResult) -> Json {
    let agg = &r.mem_stats;
    let matrix = &r.stats_matrix;
    let regions = Json::Obj(
        Region::ALL
            .iter()
            .map(|&region| {
                let hist = matrix.region_histogram(region);
                let reads: u64 = matrix
                    .per_core
                    .iter()
                    .map(|c| c.reads[region.index()])
                    .sum();
                let writes: u64 = matrix
                    .per_core
                    .iter()
                    .map(|c| c.writes[region.index()])
                    .sum();
                (
                    region.name().to_string(),
                    Json::obj(vec![
                        ("reads", Json::UInt(reads)),
                        ("writes", Json::UInt(writes)),
                        ("cycles", Json::UInt(hist.total_cycles)),
                        ("max_latency", Json::UInt(hist.max)),
                        ("latency_buckets", Json::uints(hist.buckets)),
                    ]),
                )
            })
            .collect(),
    );
    let per_core = Json::Arr(
        matrix
            .per_core
            .iter()
            .enumerate()
            .filter(|(_, c)| c.total_accesses() > 0)
            .map(|(i, c)| {
                Json::obj(vec![
                    ("core", Json::UInt(i as u64)),
                    ("reads", Json::uints(c.reads)),
                    ("writes", Json::uints(c.writes)),
                    ("cycles", Json::uints(c.region_cycles)),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("total_cycles", Json::UInt(r.total_cycles)),
        ("timed_cycles", Json::UInt(r.timed_cycles)),
        ("exit_code", Json::Int(r.exit_code)),
        ("l1_hits", Json::UInt(agg.l1_hits)),
        ("l2_hits", Json::UInt(agg.l2_hits)),
        ("private_dram", Json::UInt(agg.private_dram)),
        ("shared_dram", Json::UInt(agg.shared_dram)),
        ("mpb", Json::UInt(agg.mpb)),
        ("mc_queue_cycles", Json::UInt(agg.mc_queue_cycles)),
        ("active_cores", Json::UInt(matrix.active_cores() as u64)),
        ("mpb_high_water_bytes", Json::UInt(r.mpb_high_water as u64)),
        ("regions", regions),
        ("per_core", per_core),
    ])
}

/// The per-stage pipeline block (region sizes always; wall times only when
/// requested, since they are host-dependent).
pub fn metrics_json(m: &PipelineMetrics, opts: &ManifestOptions) -> Json {
    Json::Arr(
        m.stages
            .iter()
            .map(|s| {
                let mut pairs = vec![
                    ("stage", Json::str(s.stage)),
                    ("ir_size", Json::UInt(s.ir_size as u64)),
                ];
                if opts.include_host_timings {
                    pairs.push(("host_wall_nanos", Json::UInt(s.wall_nanos as u64)));
                }
                Json::obj(pairs)
            })
            .collect(),
    )
}

/// One cache stage's hit/miss counter pair.
fn counters_json(c: StageCounters) -> Json {
    Json::obj(vec![
        ("hits", Json::UInt(c.hits)),
        ("misses", Json::UInt(c.misses)),
    ])
}

/// The `sweep` section: the shared artifact cache's hit/miss counters
/// (deterministic — identical for every worker count, and unchanged by a
/// persistent store, which only intercepts misses) plus, when host
/// timings are requested, the host-side parallelism figures and the
/// `host_store` disk-traffic block (present only with a `--cache-dir`).
pub fn sweep_json(report: &SweepReport, opts: &ManifestOptions) -> Json {
    let c = report.cache;
    let mut pairs = vec![(
        "cache",
        Json::obj(vec![
            ("parse", counters_json(c.parse)),
            ("analyze", counters_json(c.analyze)),
            ("partition", counters_json(c.partition)),
            ("translate", counters_json(c.translate)),
            ("compile", counters_json(c.compile)),
            ("total_hits", Json::UInt(c.total_hits())),
            ("total_misses", Json::UInt(c.total_misses())),
        ]),
    )];
    if opts.include_host_timings {
        pairs.push(("host_workers", Json::UInt(report.workers as u64)));
        pairs.push(("host_points", Json::UInt(report.outcomes.len() as u64)));
        pairs.push((
            "host_wall_nanos",
            Json::UInt(u64::try_from(report.host_wall_nanos).unwrap_or(u64::MAX)),
        ));
        if let Some(s) = c.store {
            pairs.push((
                "host_store",
                Json::obj(vec![
                    ("loads", Json::UInt(s.total_loads())),
                    ("misses", Json::UInt(s.total_misses())),
                    ("writes", Json::UInt(s.total_writes())),
                    ("corrupt", Json::UInt(s.total_corrupt())),
                    ("evictions", Json::UInt(s.evictions)),
                ]),
            ));
        }
    }
    Json::obj(pairs)
}

/// A `host_timing` block from the sweep's cache-hot re-run statistics.
fn timing_json(t: TimingStats) -> Json {
    Json::obj(vec![
        ("runs", Json::UInt(t.runs as u64)),
        (
            "median_nanos",
            Json::UInt(u64::try_from(t.median_nanos).unwrap_or(u64::MAX)),
        ),
        (
            "min_nanos",
            Json::UInt(u64::try_from(t.min_nanos).unwrap_or(u64::MAX)),
        ),
        (
            "max_nanos",
            Json::UInt(u64::try_from(t.max_nanos).unwrap_or(u64::MAX)),
        ),
    ])
}

/// The sweep matrix behind a manifest: per program, one metered baseline
/// point and one metered HSM point (the latter carrying the cache-hot
/// timing re-runs when host timings are requested).
fn manifest_matrix(
    programs: &[(&str, usize)],
    opts: &ManifestOptions,
    config: &SccConfig,
    cache: &Arc<ArtifactCache>,
) -> SweepMatrix {
    let timing_runs = if opts.include_host_timings {
        HOST_TIMING_RUNS
    } else {
        0
    };
    let mut matrix = SweepMatrix::new(config.clone())
        .workers(opts.spec.workers)
        .cache(Arc::clone(cache));
    for &(name, cores) in programs {
        let src = corpus_source(name);
        matrix = matrix
            .point(
                format!("{name}/baseline"),
                Arc::clone(&src),
                SweepTask::RunMetered(opts.scenario(Mode::PthreadBaseline)),
                cores,
            )
            .timed_point(
                format!("{name}/hsm"),
                src,
                SweepTask::RunMetered(opts.scenario(Mode::RcceHsm)),
                cores,
                timing_runs,
            );
    }
    matrix
}

/// Unwraps a metered sweep payload.
fn metered_run(
    outcome: hsm_core::experiment::SweepOutcome,
) -> Result<(RunResult, PipelineMetrics, Option<TimingStats>), PipelineError> {
    let timing = outcome.timing;
    let payload = outcome.result?;
    match payload {
        hsm_core::experiment::SweepPayload::Run(r, Some(m)) => Ok((r, m, timing)),
        _ => unreachable!("manifest points are always metered runs"),
    }
}

/// Builds one program's manifest entry from its two sweep outcomes.
fn entry_json(
    name: &str,
    cores: usize,
    base: (RunResult, PipelineMetrics, Option<TimingStats>),
    hsm: (RunResult, PipelineMetrics, Option<TimingStats>),
    opts: &ManifestOptions,
) -> Json {
    let mut pairs = vec![
        ("name", Json::str(name)),
        ("cores", Json::UInt(cores as u64)),
        ("exec_model", Json::str(opts.exec_model().label())),
        ("opt_level", Json::str(opts.opt_level().label())),
        ("pipeline", metrics_json(&hsm.1, opts)),
        ("baseline_pipeline", metrics_json(&base.1, opts)),
        ("baseline", run_json(&base.0)),
        ("hsm", run_json(&hsm.0)),
    ];
    if let Some(timing) = hsm.2 {
        pairs.push(("host_timing", timing_json(timing)));
    }
    Json::obj(pairs)
}

/// Replays one corpus program (baseline + HSM) through a single-program
/// sweep and builds its manifest entry.
///
/// # Errors
///
/// Propagates pipeline failures; panics only if the corpus file itself is
/// missing (a build-tree corruption, not a runtime condition).
pub fn program_entry(
    name: &str,
    cores: usize,
    config: &SccConfig,
    opts: &ManifestOptions,
) -> Result<Json, PipelineError> {
    let cache = open_cache(&opts.spec);
    let report = sweep(&manifest_matrix(&[(name, cores)], opts, config, &cache));
    let mut outcomes = report.outcomes.into_iter();
    let base = metered_run(outcomes.next().expect("baseline point"))?;
    let hsm = metered_run(outcomes.next().expect("hsm point"))?;
    Ok(entry_json(name, cores, base, hsm, opts))
}

/// One optimization level's measurement of one program's HSM run:
/// static instruction count of the compiled program, dynamically retired
/// instructions, and simulated timed cycles.
fn opt_level_json(pipeline: &Pipeline) -> Result<Json, PipelineError> {
    let program = pipeline.program()?;
    let run = pipeline.run_scenario()?;
    Ok(Json::obj(vec![
        ("instr_static", Json::UInt(program.code_len() as u64)),
        ("instructions", Json::UInt(run.instructions)),
        ("timed_cycles", Json::UInt(run.timed_cycles)),
    ]))
}

/// The `opt` section: for every program, the HSM run measured at `O0`
/// and at `O2` (same exec model as the rest of the manifest) plus the
/// dynamic instruction and timed-cycle deltas. All pipelines share the
/// manifest sweep's cache (and its store, when one is attached), so each
/// program is parsed, analyzed, partitioned and translated once — only
/// the compile stage forks per level.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn opt_json(
    programs: &[(&str, usize)],
    opts: &ManifestOptions,
    config: &SccConfig,
    cache: &Arc<ArtifactCache>,
) -> Result<Json, PipelineError> {
    let mut entries = Vec::with_capacity(programs.len());
    for &(name, cores) in programs {
        let session = Pipeline::new(corpus_source(name))
            .cores(cores)
            .config(config.clone())
            .cache(Arc::clone(cache));
        let hsm = Scenario::new(Mode::RcceHsm).exec_model(opts.exec_model());
        let o0 = opt_level_json(&session.clone().scenario(hsm.opt_level(OptLevel::O0)))?;
        let o2 = opt_level_json(&session.scenario(hsm.opt_level(OptLevel::O2)))?;
        let delta = |field: &str| {
            let a = match o0.get(field) {
                Some(&Json::UInt(v)) => v,
                _ => 0,
            };
            let b = match o2.get(field) {
                Some(&Json::UInt(v)) => v,
                _ => 0,
            };
            Json::Int(a as i64 - b as i64)
        };
        entries.push(Json::obj(vec![
            ("name", Json::str(name)),
            ("cores", Json::UInt(cores as u64)),
            ("instr_static_delta", delta("instr_static")),
            ("instructions_delta", delta("instructions")),
            ("timed_cycles_delta", delta("timed_cycles")),
            ("O0", o0),
            ("O2", o2),
        ]));
    }
    Ok(Json::Arr(entries))
}

/// The `tasks` section: for every [`TASK_PROGRAMS`] pair whose barrier
/// program is in the manifest's program list, the barrier (RCCE HSM) run
/// of the original against the task-dataflow run of the annotated port —
/// same memory model and opt level as the rest of the manifest. Each
/// entry pins both runs' timed and total cycles, exit codes, and whether
/// the two programs produced equivalent output (the paper's
/// barrier-vs-task comparison as a manifest axis).
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn tasks_json(
    programs: &[(&str, usize)],
    opts: &ManifestOptions,
    config: &SccConfig,
    cache: &Arc<ArtifactCache>,
) -> Result<Json, PipelineError> {
    let mut entries = Vec::new();
    for &(barrier_name, task_name, cores) in &TASK_PROGRAMS {
        if !programs.iter().any(|&(name, _)| name == barrier_name) {
            continue;
        }
        let barrier_run = Pipeline::new(corpus_source(barrier_name))
            .cores(cores)
            .config(config.clone())
            .cache(Arc::clone(cache))
            .scenario(opts.scenario(Mode::RcceHsm))
            .run_scenario()?;
        let task_run = Pipeline::new(corpus_source(task_name))
            .cores(cores)
            .config(config.clone())
            .cache(Arc::clone(cache))
            .scenario(opts.scenario(Mode::TaskDataflow))
            .run_scenario()?;
        let run_block = |r: &RunResult| {
            Json::obj(vec![
                ("timed_cycles", Json::UInt(r.timed_cycles)),
                ("total_cycles", Json::UInt(r.total_cycles)),
                ("instructions", Json::UInt(r.instructions)),
                ("exit_code", Json::Int(r.exit_code)),
            ])
        };
        let outputs_match = outputs_equivalent(&barrier_run, &task_run)
            && barrier_run.exit_code == task_run.exit_code;
        entries.push(Json::obj(vec![
            ("name", Json::str(barrier_name)),
            ("task_program", Json::str(task_name)),
            ("cores", Json::UInt(cores as u64)),
            ("outputs_match", Json::Bool(outputs_match)),
            ("barrier", run_block(&barrier_run)),
            ("task", run_block(&task_run)),
        ]));
    }
    Ok(Json::Arr(entries))
}

/// Builds a manifest for an explicit program list by sweeping every
/// program's points in parallel over one shared artifact cache.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn manifest_for(
    programs: &[(&str, usize)],
    opts: &ManifestOptions,
) -> Result<Json, PipelineError> {
    let config = SccConfig::table_6_1();
    let cache = open_cache(&opts.spec);
    let report = sweep(&manifest_matrix(programs, opts, &config, &cache));
    // The sweep section snapshots the counters here, before the `opt`
    // section reuses the cache, so the pinned `sweep.cache` numbers keep
    // meaning "the manifest sweep alone" (what the goldens fix).
    let sweep_section = sweep_json(&report, opts);
    let mut outcomes = report.outcomes.into_iter();
    let mut entries = Vec::with_capacity(programs.len());
    for &(name, cores) in programs {
        let base = metered_run(outcomes.next().expect("baseline point"))?;
        let hsm = metered_run(outcomes.next().expect("hsm point"))?;
        entries.push(entry_json(name, cores, base, hsm, opts));
    }
    let opt_section = opt_json(programs, opts, &config, &cache)?;
    let tasks_section = tasks_json(programs, opts, &config, &cache)?;
    let predict_section = crate::predict::predict_json(opts.exec_model(), &config, &cache)?;
    Ok(Json::obj(vec![
        ("schema_version", Json::UInt(MANIFEST_SCHEMA_VERSION)),
        ("config", config_json(&config)),
        ("sweep", sweep_section),
        ("opt", opt_section),
        ("tasks", tasks_section),
        ("predict", predict_section),
        ("programs", Json::Arr(entries)),
    ]))
}

/// The full manifest `figures --json` writes.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn full_manifest(opts: &ManifestOptions) -> Result<Json, PipelineError> {
    manifest_for(&MANIFEST_PROGRAMS, opts)
}

/// The deterministic golden manifest (no host timings, golden program
/// subset) the regression test pins. Runs through the same parallel sweep
/// engine as the full manifest: the cache counters it pins are identical
/// for every worker count.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn golden_manifest() -> Result<Json, PipelineError> {
    manifest_for(
        &GOLDEN_PROGRAMS,
        &ManifestOptions {
            include_host_timings: false,
            spec: SweepSpec::default(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Options with the given worker count and no host timings.
    fn quiet_opts(workers: usize) -> ManifestOptions {
        ManifestOptions {
            include_host_timings: false,
            spec: SweepSpec {
                workers,
                ..SweepSpec::default()
            },
        }
    }

    #[test]
    fn manifest_structure_is_versioned_and_complete() {
        let m = manifest_for(&[("example_4_1", 3)], &quiet_opts(1)).expect("manifest");
        assert_eq!(
            m.get("schema_version"),
            Some(&Json::UInt(MANIFEST_SCHEMA_VERSION))
        );
        assert_eq!(
            m.get("config").and_then(|c| c.get("cores")),
            Some(&Json::UInt(48))
        );
        let Some(Json::Arr(programs)) = m.get("programs") else {
            panic!("programs array missing");
        };
        let entry = &programs[0];
        assert_eq!(entry.get("name"), Some(&Json::str("example_4_1")));
        // The HSM pipeline has all five stages, the baseline two.
        let Some(Json::Arr(stages)) = entry.get("pipeline") else {
            panic!("pipeline missing");
        };
        assert_eq!(stages.len(), 5);
        let Some(Json::Arr(base_stages)) = entry.get("baseline_pipeline") else {
            panic!("baseline pipeline missing");
        };
        assert_eq!(base_stages.len(), 2);
        // Counter blocks are present and populated.
        let hsm = entry.get("hsm").expect("hsm block");
        assert!(matches!(hsm.get("total_cycles"), Some(Json::UInt(c)) if *c > 0));
        let shared = hsm.get("regions").and_then(|r| r.get("shared_dram"));
        assert!(shared.is_some(), "per-region block missing");
        // The sweep section records the shared cache: the HSM point reused
        // the baseline point's parse.
        let cache = m.get("sweep").and_then(|s| s.get("cache")).expect("cache");
        assert_eq!(
            cache.get("parse"),
            Some(&Json::obj(vec![
                ("hits", Json::UInt(1)),
                ("misses", Json::UInt(1)),
            ]))
        );
        assert!(matches!(cache.get("total_hits"), Some(Json::UInt(h)) if *h > 0));
        // Without host timings the rendering is deterministic.
        let again = manifest_for(&[("example_4_1", 3)], &quiet_opts(1)).expect("manifest");
        assert_eq!(m.render(), again.render());
    }

    #[test]
    fn host_timings_are_opt_in() {
        let base_opts = ManifestOptions {
            include_host_timings: true,
            spec: SweepSpec {
                workers: 1,
                ..SweepSpec::default()
            },
        };
        let with =
            program_entry("example_4_1", 3, &SccConfig::table_6_1(), &base_opts).expect("entry");
        let without = program_entry("example_4_1", 3, &SccConfig::table_6_1(), &quiet_opts(1))
            .expect("entry");
        assert!(with.render().contains("host_wall_nanos"));
        assert!(with.render().contains("host_timing"));
        assert!(!without.render().contains("host_wall_nanos"));
        assert!(!without.render().contains("host_timing"));
    }

    /// The tentpole's determinism guarantee at the manifest level: a
    /// serial and a 4-worker sweep render byte-identical manifests when
    /// host timings are excluded — including the cache counters.
    #[test]
    fn manifest_is_worker_count_invariant() {
        let serial = manifest_for(&GOLDEN_PROGRAMS, &quiet_opts(1)).expect("serial");
        let parallel = manifest_for(&GOLDEN_PROGRAMS, &quiet_opts(4)).expect("parallel");
        assert_eq!(serial.render(), parallel.render());
    }

    /// The tentpole's warm-cache guarantee at the manifest level: two
    /// manifests built over the same store directory render identically
    /// (host timings off), and the warm build never misses the store.
    #[test]
    fn manifest_is_byte_identical_cold_vs_warm() {
        let dir = std::env::temp_dir().join(format!("hsm-manifest-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = ManifestOptions {
            include_host_timings: false,
            spec: SweepSpec {
                workers: 1,
                cache_dir: Some(dir.to_string_lossy().into_owned()),
                ..SweepSpec::default()
            },
        };
        let cold = manifest_for(&[("example_4_1", 3)], &opts).expect("cold");
        let warm = manifest_for(&[("example_4_1", 3)], &opts).expect("warm");
        assert_eq!(cold.render(), warm.render());
        // And against a storeless build: the store must not leak into
        // the deterministic sections.
        let plain = manifest_for(&[("example_4_1", 3)], &quiet_opts(1)).expect("plain");
        assert_eq!(plain.render(), warm.render());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
