//! Wall-clock benches: one per paper table/figure, timing the simulation
//! harness that regenerates it (reduced sizes keep the timed iterations
//! tractable — the `figures` binary runs the full-size versions).
//!
//! Built with `harness = false` on `testkit::time_median`, so `cargo
//! bench` needs nothing beyond the workspace.

use hsm_core::experiment::{run, run_all_modes, Mode};
use hsm_workloads::Bench;
use scc_sim::SccConfig;
use testkit::time_median;

const RUNS: usize = 10;

fn reduced(bench: Bench, units: usize) -> hsm_workloads::Params {
    let mut p = bench.default_params(units);
    p.size = match bench {
        Bench::CountPrimes => 3_000,
        Bench::PiApprox => 20_000,
        Bench::Sum35 => 40_000,
        Bench::DotProduct => 1_024,
        Bench::LuDecomp => 8,
        Bench::Stream => 1_024,
    };
    p.reps = if bench == Bench::LuDecomp { 16 } else { 1 };
    p
}

/// Figure 6.1: each benchmark through baseline + off-chip modes.
fn fig6_1() {
    let config = SccConfig::table_6_1();
    println!("fig6_1");
    for bench in Bench::all() {
        let p = reduced(bench, 16);
        let name = bench.name().replace(' ', "_");
        let report = time_median(&name, RUNS, || {
            let base = run(bench, &p, Mode::PthreadBaseline, &config).expect("base");
            let off = run(bench, &p, Mode::RcceOffChip, &config).expect("off");
            std::hint::black_box(base.timed_cycles as f64 / off.timed_cycles as f64);
        });
        println!("  {report}");
    }
}

/// Figure 6.2: off-chip vs MPB placement.
fn fig6_2() {
    let config = SccConfig::table_6_1();
    println!("fig6_2");
    for bench in [Bench::Stream, Bench::DotProduct] {
        let p = reduced(bench, 16);
        let name = bench.name().replace(' ', "_");
        let report = time_median(&name, RUNS, || {
            let r = run_all_modes(bench, &p, &config).expect("modes");
            std::hint::black_box(r.hsm_improvement());
        });
        println!("  {report}");
    }
}

/// Figure 6.3: Pi at several core counts.
fn fig6_3() {
    let config = SccConfig::table_6_1();
    println!("fig6_3");
    for cores in [4usize, 16, 32] {
        let p = reduced(Bench::PiApprox, cores);
        let report = time_median(&format!("pi_{cores}_cores"), RUNS, || {
            let r = run(Bench::PiApprox, &p, Mode::RcceHsm, &config).expect("run");
            std::hint::black_box(r.timed_cycles);
        });
        println!("  {report}");
    }
}

/// Tables 4.1/4.2: the analysis stages on Example Code 4.1.
fn analysis_tables() {
    let report = time_median("table4_1_and_4_2", RUNS, || {
        std::hint::black_box(hsm_bench::analysis_tables());
    });
    println!("{report}");
}

/// Example 4.2: the full source-to-source translation.
fn translation() {
    let report = time_median("example4_2_translation", RUNS, || {
        std::hint::black_box(hsm_bench::render_example_4_2());
    });
    println!("{report}");
}

fn main() {
    fig6_1();
    fig6_2();
    fig6_3();
    analysis_tables();
    translation();
}
