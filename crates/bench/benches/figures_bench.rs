//! Criterion benches: one per paper table/figure, timing the simulation
//! harness that regenerates it (reduced sizes keep Criterion iterations
//! tractable — the `figures` binary runs the full-size versions).

use criterion::{criterion_group, criterion_main, Criterion};
use hsm_core::experiment::{run, run_all_modes, Mode};
use hsm_workloads::Bench;
use scc_sim::SccConfig;

fn reduced(bench: Bench, units: usize) -> hsm_workloads::Params {
    let mut p = bench.default_params(units);
    p.size = match bench {
        Bench::CountPrimes => 3_000,
        Bench::PiApprox => 20_000,
        Bench::Sum35 => 40_000,
        Bench::DotProduct => 1_024,
        Bench::LuDecomp => 8,
        Bench::Stream => 1_024,
    };
    p.reps = if bench == Bench::LuDecomp { 16 } else { 1 };
    p
}

/// Figure 6.1: each benchmark through baseline + off-chip modes.
fn fig6_1(c: &mut Criterion) {
    let config = SccConfig::table_6_1();
    let mut group = c.benchmark_group("fig6_1");
    group.sample_size(10);
    for bench in Bench::all() {
        let p = reduced(bench, 16);
        group.bench_function(bench.name().replace(' ', "_"), |b| {
            b.iter(|| {
                let base = run(bench, &p, Mode::PthreadBaseline, &config).expect("base");
                let off = run(bench, &p, Mode::RcceOffChip, &config).expect("off");
                std::hint::black_box(base.timed_cycles as f64 / off.timed_cycles as f64)
            })
        });
    }
    group.finish();
}

/// Figure 6.2: off-chip vs MPB placement.
fn fig6_2(c: &mut Criterion) {
    let config = SccConfig::table_6_1();
    let mut group = c.benchmark_group("fig6_2");
    group.sample_size(10);
    for bench in [Bench::Stream, Bench::DotProduct] {
        let p = reduced(bench, 16);
        group.bench_function(bench.name().replace(' ', "_"), |b| {
            b.iter(|| {
                let r = run_all_modes(bench, &p, &config).expect("modes");
                std::hint::black_box(r.hsm_improvement())
            })
        });
    }
    group.finish();
}

/// Figure 6.3: Pi at several core counts.
fn fig6_3(c: &mut Criterion) {
    let config = SccConfig::table_6_1();
    let mut group = c.benchmark_group("fig6_3");
    group.sample_size(10);
    for cores in [4usize, 16, 32] {
        let p = reduced(Bench::PiApprox, cores);
        group.bench_function(format!("pi_{cores}_cores"), |b| {
            b.iter(|| {
                let r = run(Bench::PiApprox, &p, Mode::RcceHsm, &config).expect("run");
                std::hint::black_box(r.timed_cycles)
            })
        });
    }
    group.finish();
}

/// Tables 4.1/4.2: the analysis stages on Example Code 4.1.
fn analysis_tables(c: &mut Criterion) {
    c.bench_function("table4_1_and_4_2", |b| {
        b.iter(|| std::hint::black_box(hsm_bench::analysis_tables()))
    });
}

/// Example 4.2: the full source-to-source translation.
fn translation(c: &mut Criterion) {
    c.bench_function("example4_2_translation", |b| {
        b.iter(|| std::hint::black_box(hsm_bench::render_example_4_2()))
    });
}

criterion_group!(benches, fig6_1, fig6_2, fig6_3, analysis_tables, translation);
criterion_main!(benches);
