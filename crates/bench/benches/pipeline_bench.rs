//! Microbenchmarks of the pipeline stages themselves (parser, analysis,
//! partitioner, translator, bytecode compiler) and of the simulator's
//! memory system.
//!
//! Built with `harness = false` on `testkit::time_median`, so `cargo
//! bench` needs nothing beyond the workspace.

use scc_sim::{memory::SHARED_DRAM_BASE, MemorySystem, SccConfig};
use testkit::time_median;

const RUNS: usize = 20;

/// Iterations folded into each memory-system sample so a sample is long
/// enough for the host clock to resolve.
const MEM_ITERS: usize = 100_000;

fn pipeline_stages() {
    let src = hsm_workloads::source(
        hsm_workloads::Bench::Stream,
        &hsm_workloads::Bench::Stream.default_params(32),
    );
    println!(
        "{}",
        time_median("parse_stream", RUNS, || {
            std::hint::black_box(hsm_cir::parse(&src).expect("parse"));
        })
    );
    let tu = hsm_cir::parse(&src).expect("parse");
    println!(
        "{}",
        time_median("analyze_stream", RUNS, || {
            std::hint::black_box(hsm_analysis::ProgramAnalysis::analyze(&tu));
        })
    );
    println!(
        "{}",
        time_median("translate_stream", RUNS, || {
            std::hint::black_box(
                hsm_translate::translate(&tu, Default::default()).expect("translate"),
            );
        })
    );
    let translated = hsm_translate::translate(&tu, Default::default()).expect("translate");
    println!(
        "{}",
        time_median("bytecode_compile_stream", RUNS, || {
            std::hint::black_box(hsm_vm::compile(&translated.unit).expect("compile"));
        })
    );
}

fn memory_system() {
    let mut chip = MemorySystem::new(SccConfig::table_6_1());
    chip.access(0, 0x1000, false, 0);
    let mut now = 0u64;
    println!(
        "{}",
        time_median("memsys_private_hits_100k", RUNS, || {
            for _ in 0..MEM_ITERS {
                now += 2;
                std::hint::black_box(chip.access(0, 0x1000, false, now));
            }
        })
    );

    let mut chip = MemorySystem::new(SccConfig::table_6_1());
    let mut now = 0u64;
    let mut core = 0usize;
    println!(
        "{}",
        time_median("memsys_shared_contended_100k", RUNS, || {
            for _ in 0..MEM_ITERS {
                core = (core + 1) % 8;
                now += 1;
                std::hint::black_box(chip.access(
                    core,
                    SHARED_DRAM_BASE + 64 * core as u64,
                    false,
                    now,
                ));
            }
        })
    );
}

fn main() {
    pipeline_stages();
    memory_system();
}
