//! Microbenchmarks of the pipeline stages themselves (parser, analysis,
//! partitioner, translator, bytecode compiler) and of the simulator's
//! memory system.

use criterion::{criterion_group, criterion_main, Criterion};
use scc_sim::{memory::SHARED_DRAM_BASE, MemorySystem, SccConfig};

fn pipeline_stages(c: &mut Criterion) {
    let src = hsm_workloads::source(
        hsm_workloads::Bench::Stream,
        &hsm_workloads::Bench::Stream.default_params(32),
    );
    c.bench_function("parse_stream", |b| {
        b.iter(|| std::hint::black_box(hsm_cir::parse(&src).expect("parse")))
    });
    let tu = hsm_cir::parse(&src).expect("parse");
    c.bench_function("analyze_stream", |b| {
        b.iter(|| std::hint::black_box(hsm_analysis::ProgramAnalysis::analyze(&tu)))
    });
    c.bench_function("translate_stream", |b| {
        b.iter(|| {
            std::hint::black_box(
                hsm_translate::translate(&tu, Default::default()).expect("translate"),
            )
        })
    });
    let translated = hsm_translate::translate(&tu, Default::default()).expect("translate");
    c.bench_function("bytecode_compile_stream", |b| {
        b.iter(|| std::hint::black_box(hsm_vm::compile(&translated.unit).expect("compile")))
    });
}

fn memory_system(c: &mut Criterion) {
    c.bench_function("memsys_private_hits", |b| {
        let mut chip = MemorySystem::new(SccConfig::table_6_1());
        chip.access(0, 0x1000, false, 0);
        let mut now = 0u64;
        b.iter(|| {
            now += 2;
            std::hint::black_box(chip.access(0, 0x1000, false, now))
        })
    });
    c.bench_function("memsys_shared_contended", |b| {
        let mut chip = MemorySystem::new(SccConfig::table_6_1());
        let mut now = 0u64;
        let mut core = 0usize;
        b.iter(|| {
            core = (core + 1) % 8;
            now += 1;
            std::hint::black_box(chip.access(core, SHARED_DRAM_BASE + 64 * core as u64, false, now))
        })
    });
}

criterion_group!(benches, pipeline_stages, memory_system);
criterion_main!(benches);
