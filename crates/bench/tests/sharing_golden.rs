//! Golden regression test of the sharing-oracle sweep.
//!
//! Runs every corpus program (including the adversarial ones) under the
//! sharing-soundness oracle and asserts the rendered `sharing` section —
//! verdict counts, violation classes, culprit variables and pass flags —
//! is byte-identical to the checked-in golden. The section deliberately
//! contains no cycle stamps or raw addresses, so it only moves when the
//! oracle's *semantic* output moves:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p hsm-bench --test sharing_golden
//! ```

use hsm_bench::sharing::{all_pass, sharing_manifest};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("goldens/sharing_golden.json")
}

#[test]
fn sharing_section_matches_golden() {
    let sharing = sharing_manifest().expect("corpus sweep runs");
    assert!(
        all_pass(&sharing),
        "an expectation failed:\n{}",
        sharing.render()
    );
    let rendered = sharing.render();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, &rendered).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {} (regenerate with UPDATE_GOLDENS=1): {e}",
            path.display()
        )
    });
    if rendered != expected {
        let mismatch = rendered
            .lines()
            .zip(expected.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b);
        match mismatch {
            Some((i, (got, want))) => panic!(
                "sharing section diverged from golden at line {}:\n  golden: {want}\n  now:    {got}\n\
                 If the change is intentional, regenerate with UPDATE_GOLDENS=1.",
                i + 1
            ),
            None => panic!(
                "sharing section length changed: golden {} lines, now {} lines.\n\
                 If the change is intentional, regenerate with UPDATE_GOLDENS=1.",
                expected.lines().count(),
                rendered.lines().count()
            ),
        }
    }
}
