//! Golden regression test of the run manifest.
//!
//! Replays the golden corpus programs (Example 4.1 and the matrix-vector
//! product) through the full pipeline and asserts the deterministic
//! manifest — every memory counter, latency histogram bucket, cycle count
//! and IR size — is byte-identical to the checked-in golden. Any change to
//! the simulator's observable behaviour must come with a conscious golden
//! update:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p hsm-bench --test manifest_golden
//! ```

use hsm_bench::manifest::golden_manifest;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("goldens/manifest_golden.json")
}

#[test]
fn manifest_matches_golden() {
    let rendered = golden_manifest().expect("golden programs run").render();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, &rendered).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {} (regenerate with UPDATE_GOLDENS=1): {e}",
            path.display()
        )
    });
    if rendered != expected {
        // Find the first differing line for a readable failure.
        let mismatch = rendered
            .lines()
            .zip(expected.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b);
        match mismatch {
            Some((i, (got, want))) => panic!(
                "manifest diverged from golden at line {}:\n  golden: {want}\n  now:    {got}\n\
                 If the change is intentional, regenerate with UPDATE_GOLDENS=1.",
                i + 1
            ),
            None => panic!(
                "manifest length changed: golden {} lines, now {} lines.\n\
                 If the change is intentional, regenerate with UPDATE_GOLDENS=1.",
                expected.lines().count(),
                rendered.lines().count()
            ),
        }
    }
}

#[test]
fn golden_runs_are_reproducible() {
    // The property the golden file rests on: two fresh replays agree.
    let a = golden_manifest().expect("first run").render();
    let b = golden_manifest().expect("second run").render();
    assert_eq!(a, b);
}
