//! Pthread execution mode: the baseline of Figure 6.1.
//!
//! Multithreaded applications "do run on the SCC, however they can only
//! take advantage of a single core" (§6). This mode runs every thread of a
//! pthread program on **core 0**, round-robin time-sliced with an OS
//! quantum and a context-switch penalty, sharing one address space and one
//! cache hierarchy.
//!
//! The interpreter itself is [`ExecutionCore`]; this module contributes
//! only the pthread semantics as a [`SyncModel`]: the ready queue,
//! quantum preemption, and the create/join/mutex/barrier syscalls.

use crate::coherence::{
    CoherenceModel, Coherent, ExecModel, NonCoherentWriteBack, SeqCstReference,
};
use crate::engine::{Charge, ExecEnv, ExecutionCore, Flow, SyncModel, UnitState};
use crate::machine::{ExecError, RunResult};
use crate::syscall_cost;
use crate::trace::{NullSink, SyncEvent, TraceSink};
use hsm_vm::compile::{Program, STACKS_BASE, STACK_SIZE};
use hsm_vm::{Intrinsic, MemKind, Value};
use scc_sim::SccConfig;
use std::collections::{HashMap, VecDeque};

#[derive(Debug, Clone, PartialEq)]
enum ThreadState {
    Ready,
    Running,
    WaitingJoin { target: usize },
    WaitingMutex { key: u64 },
    WaitingBarrier { key: u64 },
    Done { exit: i64 },
}

/// The pthread [`SyncModel`]: all threads share core 0, one address
/// space, one heap, and one global clock; scheduling is round-robin with
/// an OS quantum.
struct PthreadSync {
    states: Vec<ThreadState>,
    ready: VecDeque<usize>,
    joiners: HashMap<usize, Vec<usize>>,
    mutex_owner: HashMap<u64, usize>,
    mutex_waiters: HashMap<u64, VecDeque<usize>>,
    // pthread barriers keyed by the barrier object's address:
    // (required count, currently waiting thread ids).
    barriers: HashMap<u64, (usize, Vec<usize>)>,
    // The process-wide clock; the running thread's unit clock mirrors it.
    clock: u64,
    current: usize,
    quantum_used: u64,
}

impl PthreadSync {
    fn new() -> Self {
        PthreadSync {
            states: vec![ThreadState::Running],
            ready: VecDeque::new(),
            joiners: HashMap::new(),
            mutex_owner: HashMap::new(),
            mutex_waiters: HashMap::new(),
            barriers: HashMap::new(),
            clock: 0,
            current: 0,
            quantum_used: 0,
        }
    }

    /// Marks `tid` done and wakes its joiners.
    fn finish<C: CoherenceModel, S: TraceSink>(
        &mut self,
        env: &mut ExecEnv<C>,
        sink: &mut S,
        tid: usize,
        exit: i64,
    ) {
        self.states[tid] = ThreadState::Done { exit };
        if let Some(waiting) = self.joiners.remove(&tid) {
            for w in waiting {
                sink.sync(SyncEvent::ThreadJoin {
                    unit: w,
                    target: tid,
                    cycle: self.clock,
                });
                self.states[w] = ThreadState::Ready;
                env.units[w].vm.syscall_return(Value::I(0));
                self.ready.push_back(w);
            }
        }
    }
}

impl SyncModel for PthreadSync {
    fn unit_count(&self) -> usize {
        1
    }

    fn space_count(&self) -> usize {
        1
    }

    fn heap_slots(&self) -> usize {
        1
    }

    fn wtime_slots(&self) -> usize {
        1024
    }

    fn core_of(&self, _unit: usize) -> usize {
        0
    }

    fn heap_slot(&self, _unit: usize) -> usize {
        0
    }

    fn stack_base(&self, _unit: usize) -> u64 {
        STACKS_BASE
    }

    fn schedule<C: CoherenceModel>(
        &mut self,
        env: &mut ExecEnv<C>,
    ) -> Result<Option<usize>, ExecError> {
        loop {
            // If the current thread cannot run, schedule another (round
            // robin) and charge a context switch.
            if self.states[self.current] != ThreadState::Running {
                let Some(next) = self.ready.pop_front() else {
                    // Nothing ready: either done or deadlocked.
                    if matches!(self.states[0], ThreadState::Done { .. }) {
                        return Ok(None);
                    }
                    return Err(ExecError::new("thread deadlock: no runnable thread"));
                };
                if self.states[next] == ThreadState::Ready {
                    self.states[next] = ThreadState::Running;
                }
                if next != self.current {
                    self.clock += env.config.context_switch_cycles;
                }
                self.current = next;
                self.quantum_used = 0;
                continue;
            }

            // Preempt at quantum expiry when someone else is waiting.
            if self.quantum_used >= env.config.sched_quantum_cycles && !self.ready.is_empty() {
                self.states[self.current] = ThreadState::Ready;
                self.ready.push_back(self.current);
                continue;
            }

            env.units[self.current].clock = self.clock;
            return Ok(Some(self.current));
        }
    }

    fn charge(&mut self, unit: &mut UnitState, cycles: u64, kind: Charge) {
        self.clock += cycles;
        unit.clock = self.clock;
        match kind {
            Charge::Progress => {
                self.quantum_used += cycles;
                unit.busy_cycles += cycles;
            }
            Charge::Dispatch => self.quantum_used += cycles,
            Charge::Service => {}
        }
    }

    fn syscall<C: CoherenceModel, S: TraceSink>(
        &mut self,
        env: &mut ExecEnv<C>,
        sink: &mut S,
        unit: usize,
        intr: Intrinsic,
        args: &[Value],
    ) -> Result<Flow, ExecError> {
        let current = unit;
        match intr {
            Intrinsic::PthreadCreate => {
                self.clock += syscall_cost::THREAD_CREATE;
                let handle_addr = args.first().copied().unwrap_or(Value::I(0)).as_addr();
                let func = args.get(2).copied().unwrap_or(Value::I(0)).as_i();
                let arg = args.get(3).copied().unwrap_or(Value::I(0));
                if func < 0 || func as usize >= env.program.funcs.len() {
                    return Err(ExecError::new("pthread_create: bad thread function"));
                }
                let tid = env.units.len();
                if tid >= 1024 {
                    return Err(ExecError::new("too many threads (max 1024)"));
                }
                let stack = STACKS_BASE + tid as u64 * STACK_SIZE;
                env.units
                    .push(UnitState::new(env.program, func as u32, vec![arg], stack));
                self.states.push(ThreadState::Ready);
                self.ready.push_back(tid);
                sink.sync(SyncEvent::ThreadStart {
                    parent: current,
                    unit: tid,
                    func: func as u32,
                    cycle: self.clock,
                });
                // Store the thread id into the pthread_t handle (through
                // the coherence model: under a non-coherent model the
                // parent's later read of the handle can go stale too).
                env.mem_store(current, 0, handle_addr, MemKind::I64, Value::I(tid as i64));
                env.units[current].vm.syscall_return(Value::I(0));
            }
            Intrinsic::PthreadJoin => {
                self.clock += syscall_cost::JOIN;
                let target = args.first().copied().unwrap_or(Value::I(0)).as_i();
                if target < 0 || target as usize >= env.units.len() {
                    return Err(ExecError::new(format!(
                        "pthread_join of unknown thread {target}"
                    )));
                }
                let target = target as usize;
                if matches!(self.states[target], ThreadState::Done { .. }) {
                    sink.sync(SyncEvent::ThreadJoin {
                        unit: current,
                        target,
                        cycle: self.clock,
                    });
                    env.units[current].vm.syscall_return(Value::I(0));
                } else {
                    self.states[current] = ThreadState::WaitingJoin { target };
                    self.joiners.entry(target).or_default().push(current);
                }
            }
            Intrinsic::PthreadExit => {
                self.finish(env, sink, current, 0);
            }
            Intrinsic::PthreadSelf => {
                env.units[current]
                    .vm
                    .syscall_return(Value::I(current as i64));
            }
            Intrinsic::MutexInit | Intrinsic::MutexDestroy => {
                env.units[current].vm.syscall_return(Value::I(0));
            }
            Intrinsic::BarrierInit => {
                // pthread_barrier_init(&b, attr, count)
                let key = args.first().copied().unwrap_or(Value::I(0)).as_addr();
                let count = args.get(2).copied().unwrap_or(Value::I(1)).as_i().max(1) as usize;
                self.barriers.insert(key, (count, Vec::new()));
                env.units[current].vm.syscall_return(Value::I(0));
            }
            Intrinsic::BarrierDestroy => {
                let key = args.first().copied().unwrap_or(Value::I(0)).as_addr();
                self.barriers.remove(&key);
                env.units[current].vm.syscall_return(Value::I(0));
            }
            Intrinsic::BarrierWait => {
                self.clock += syscall_cost::MUTEX;
                let key = args.first().copied().unwrap_or(Value::I(0)).as_addr();
                let Some((count, waiting)) = self.barriers.get_mut(&key) else {
                    return Err(ExecError::new(
                        "pthread_barrier_wait on an uninitialized barrier",
                    ));
                };
                waiting.push(current);
                if waiting.len() >= *count {
                    // Release everyone; the last arriver returns
                    // PTHREAD_BARRIER_SERIAL_THREAD (-1), others 0.
                    let released = std::mem::take(waiting);
                    let epoch = env.barrier_epoch;
                    env.barrier_epoch += 1;
                    for tid in &released {
                        sink.sync(SyncEvent::BarrierArrive {
                            unit: *tid,
                            epoch,
                            cycle: self.clock,
                        });
                    }
                    for (i, tid) in released.iter().enumerate() {
                        let rv = if i + 1 == released.len() { -1 } else { 0 };
                        sink.sync(SyncEvent::BarrierRelease {
                            unit: *tid,
                            epoch,
                            cycle: self.clock,
                        });
                        env.units[*tid].vm.syscall_return(Value::I(rv));
                        if *tid != current {
                            self.states[*tid] = ThreadState::Ready;
                            self.ready.push_back(*tid);
                        }
                    }
                } else {
                    self.states[current] = ThreadState::WaitingBarrier { key };
                }
            }
            Intrinsic::MutexLock => {
                self.clock += syscall_cost::MUTEX;
                let key = args.first().copied().unwrap_or(Value::I(0)).as_addr();
                if let Some(owner) = self.mutex_owner.get(&key) {
                    if *owner == current {
                        return Err(ExecError::new("recursive mutex lock would self-deadlock"));
                    }
                    self.mutex_waiters
                        .entry(key)
                        .or_default()
                        .push_back(current);
                    self.states[current] = ThreadState::WaitingMutex { key };
                } else {
                    self.mutex_owner.insert(key, current);
                    sink.sync(SyncEvent::LockAcquire {
                        unit: current,
                        lock: key,
                        cycle: self.clock,
                    });
                    env.units[current].vm.syscall_return(Value::I(0));
                }
            }
            Intrinsic::MutexUnlock => {
                self.clock += syscall_cost::MUTEX;
                let key = args.first().copied().unwrap_or(Value::I(0)).as_addr();
                if self.mutex_owner.get(&key) != Some(&current) {
                    return Err(ExecError::new("unlocking a mutex the thread does not hold"));
                }
                self.mutex_owner.remove(&key);
                sink.sync(SyncEvent::LockRelease {
                    unit: current,
                    lock: key,
                    cycle: self.clock,
                });
                if let Some(waiter) = self.mutex_waiters.get_mut(&key).and_then(|q| q.pop_front()) {
                    self.mutex_owner.insert(key, waiter);
                    sink.sync(SyncEvent::LockAcquire {
                        unit: waiter,
                        lock: key,
                        cycle: self.clock,
                    });
                    self.states[waiter] = ThreadState::Ready;
                    env.units[waiter].vm.syscall_return(Value::I(0));
                    self.ready.push_back(waiter);
                }
                env.units[current].vm.syscall_return(Value::I(0));
            }
            Intrinsic::Exit => {
                let code = args.first().copied().unwrap_or(Value::I(0)).as_i();
                self.finish(env, sink, 0, code);
                return Ok(Flow::Stop);
            }
            other => {
                return Err(ExecError::new(format!(
                    "RCCE call {other:?} in a pthread program"
                )));
            }
        }
        Ok(Flow::Continue)
    }

    fn finished<C: CoherenceModel, S: TraceSink>(
        &mut self,
        env: &mut ExecEnv<C>,
        sink: &mut S,
        unit: usize,
        exit: i64,
    ) -> Result<Flow, ExecError> {
        self.finish(env, sink, unit, exit);
        // main returning ends the process.
        Ok(if unit == 0 {
            Flow::Stop
        } else {
            Flow::Continue
        })
    }

    fn post_step<C: CoherenceModel, S: TraceSink>(
        &mut self,
        _env: &mut ExecEnv<C>,
        _sink: &mut S,
    ) -> Result<(), ExecError> {
        Ok(())
    }

    fn finalize<C: CoherenceModel>(&self, env: &ExecEnv<C>) -> (u64, Vec<u64>, i64) {
        let exit = match self.states[0] {
            ThreadState::Done { exit } => exit,
            _ => 0,
        };
        let per_unit = env.units.iter().map(|u| u.busy_cycles).collect();
        (self.clock, per_unit, exit)
    }
}

/// Runs `program` as a multithreaded process on a single simulated SCC
/// core (the paper's baseline configuration), under the [`Coherent`]
/// memory model.
///
/// # Errors
///
/// Returns [`ExecError`] on VM faults, deadlock, joins of unknown thread
/// ids, or RCCE calls appearing in a pthread program.
pub fn run_pthread(program: &Program, config: &SccConfig) -> Result<RunResult, ExecError> {
    run_pthread_traced(program, config, &mut NullSink)
}

/// [`run_pthread`] with every memory access streamed to `sink`.
///
/// The loop is monomorphized over the sink type; with [`NullSink`] this is
/// exactly [`run_pthread`].
///
/// # Errors
///
/// Same failure modes as [`run_pthread`].
pub fn run_pthread_traced<S: TraceSink>(
    program: &Program,
    config: &SccConfig,
    sink: &mut S,
) -> Result<RunResult, ExecError> {
    run_pthread_model_traced(program, config, ExecModel::Coherent, sink)
}

/// Runs `program` in pthread mode under an explicit [`ExecModel`].
///
/// # Errors
///
/// Same failure modes as [`run_pthread`].
pub fn run_pthread_model(
    program: &Program,
    config: &SccConfig,
    model: ExecModel,
) -> Result<RunResult, ExecError> {
    run_pthread_model_traced(program, config, model, &mut NullSink)
}

/// [`run_pthread_model`] with a
/// [`ProfileCollector`](crate::profile::ProfileCollector) attached:
/// returns the run result together with its
/// [`Profile`](crate::profile::Profile).
///
/// # Errors
///
/// Same failure modes as [`run_pthread`].
pub fn run_pthread_model_profiled(
    program: &Program,
    config: &SccConfig,
    model: ExecModel,
) -> Result<(RunResult, crate::profile::Profile), ExecError> {
    let mut collector = crate::profile::ProfileCollector::new(config.line_bytes);
    let result = run_pthread_model_traced(program, config, model, &mut collector)?;
    let profile = collector.into_profile(&result);
    Ok((result, profile))
}

/// [`run_pthread_model`] with every memory access streamed to `sink`.
///
/// # Errors
///
/// Same failure modes as [`run_pthread`].
pub fn run_pthread_model_traced<S: TraceSink>(
    program: &Program,
    config: &SccConfig,
    model: ExecModel,
    sink: &mut S,
) -> Result<RunResult, ExecError> {
    match model {
        ExecModel::Coherent => {
            ExecutionCore::run(program, config, PthreadSync::new(), Coherent, sink)
        }
        ExecModel::NonCoherentWriteBack => ExecutionCore::run(
            program,
            config,
            PthreadSync::new(),
            NonCoherentWriteBack::new(config.line_bytes),
            sink,
        ),
        ExecModel::SeqCstReference => {
            ExecutionCore::run(program, config, PthreadSync::new(), SeqCstReference, sink)
        }
    }
}
