//! Pthread execution mode: the baseline of Figure 6.1.
//!
//! Multithreaded applications "do run on the SCC, however they can only
//! take advantage of a single core" (§6). This mode runs every thread of a
//! pthread program on **core 0**, round-robin time-sliced with an OS
//! quantum and a context-switch penalty, sharing one address space and one
//! cache hierarchy.

use crate::machine::{DataSpaces, ExecError, OutputLine, RunResult, WtimeTracker};
use crate::rcce::format_printf;
use crate::syscall_cost;
use crate::trace::{NullSink, SyncEvent, TraceEvent, TraceSink};
use hsm_vm::compile::{Program, HEAP_BASE, STACKS_BASE, STACK_SIZE};
use hsm_vm::{Intrinsic, StepOutcome, Value, Vm};
use scc_sim::{MemorySystem, SccConfig};
use std::collections::{HashMap, VecDeque};

#[derive(Debug, Clone, PartialEq)]
enum ThreadState {
    Ready,
    Running,
    WaitingJoin { target: usize },
    WaitingMutex { key: u64 },
    WaitingBarrier { key: u64 },
    Done { exit: i64 },
}

struct Thread {
    vm: Vm,
    state: ThreadState,
    busy_cycles: u64,
}

/// Runs `program` as a multithreaded process on a single simulated SCC
/// core (the paper's baseline configuration).
///
/// # Errors
///
/// Returns [`ExecError`] on VM faults, deadlock, joins of unknown thread
/// ids, or RCCE calls appearing in a pthread program.
pub fn run_pthread(program: &Program, config: &SccConfig) -> Result<RunResult, ExecError> {
    run_pthread_traced(program, config, &mut NullSink)
}

/// [`run_pthread`] with every memory access streamed to `sink`.
///
/// The loop is monomorphized over the sink type; with [`NullSink`] this is
/// exactly [`run_pthread`].
///
/// # Errors
///
/// Same failure modes as [`run_pthread`].
pub fn run_pthread_traced<S: TraceSink>(
    program: &Program,
    config: &SccConfig,
    sink: &mut S,
) -> Result<RunResult, ExecError> {
    let mut chip = MemorySystem::new(config.clone());
    let mut spaces = DataSpaces::new(1);
    spaces.load_image(0, &program.image);

    let mut threads: Vec<Thread> = vec![Thread {
        vm: Vm::new(program, program.entry, vec![], STACKS_BASE),
        state: ThreadState::Running,
        busy_cycles: 0,
    }];
    let mut ready: VecDeque<usize> = VecDeque::new();
    let mut joiners: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut mutex_owner: HashMap<u64, usize> = HashMap::new();
    let mut mutex_waiters: HashMap<u64, VecDeque<usize>> = HashMap::new();
    // pthread barriers keyed by the barrier object's address:
    // (required count, currently waiting thread ids).
    let mut barriers: HashMap<u64, (usize, Vec<usize>)> = HashMap::new();
    // Monotone counter naming barrier episodes in the sync-event stream.
    let mut barrier_epoch: u64 = 0;

    let mut clock: u64 = 0;
    let mut current: usize = 0;
    let mut quantum_used: u64 = 0;
    let mut heap_brk: u64 = HEAP_BASE;
    let mut output: Vec<OutputLine> = Vec::new();
    // Wtime is tracked per thread, but the process shares one clock.
    let mut wtimes = WtimeTracker::new(1024);
    let mut steps: u64 = 0;
    const STEP_LIMIT: u64 = 2_000_000_000;

    // Helper invoked when `current` can no longer run: pick the next ready
    // thread (round robin) and charge a context switch.
    macro_rules! reschedule {
        ($threads:ident) => {{
            if let Some(next) = ready.pop_front() {
                if $threads[next].state == ThreadState::Ready {
                    $threads[next].state = ThreadState::Running;
                }
                if next != current {
                    clock += config.context_switch_cycles;
                }
                current = next;
                quantum_used = 0;
                true
            } else {
                false
            }
        }};
    }

    loop {
        steps += 1;
        if steps > STEP_LIMIT {
            return Err(ExecError::new("simulation exceeded the step limit"));
        }

        // If the current thread cannot run, schedule another.
        if threads[current].state != ThreadState::Running {
            if !reschedule!(threads) {
                // Nothing ready: either done or deadlocked.
                if matches!(threads[0].state, ThreadState::Done { .. }) {
                    break;
                }
                return Err(ExecError::new("thread deadlock: no runnable thread"));
            }
            continue;
        }

        // Preempt at quantum expiry when someone else is waiting.
        if quantum_used >= config.sched_quantum_cycles && !ready.is_empty() {
            threads[current].state = ThreadState::Ready;
            ready.push_back(current);
            let ok = reschedule!(threads);
            debug_assert!(ok);
            continue;
        }

        let outcome = threads[current].vm.run_until_event(program)?;
        match outcome {
            StepOutcome::Ran { cycles } => {
                clock += cycles;
                quantum_used += cycles;
                threads[current].busy_cycles += cycles;
            }
            StepOutcome::Load { addr, kind, cycles } => {
                clock += cycles;
                let lat = chip.access(0, addr, false, clock);
                sink.record(TraceEvent {
                    core: 0,
                    unit: current,
                    cycle: clock,
                    addr,
                    region: MemorySystem::region_of(addr),
                    latency: lat,
                    write: false,
                });
                clock += lat;
                quantum_used += cycles + lat;
                threads[current].busy_cycles += cycles + lat;
                let v = spaces.load(0, addr, kind);
                threads[current].vm.provide_load(v);
            }
            StepOutcome::Store {
                addr,
                kind,
                value,
                cycles,
            } => {
                clock += cycles;
                let lat = chip.access(0, addr, true, clock);
                sink.record(TraceEvent {
                    core: 0,
                    unit: current,
                    cycle: clock,
                    addr,
                    region: MemorySystem::region_of(addr),
                    latency: lat,
                    write: true,
                });
                clock += lat;
                quantum_used += cycles + lat;
                threads[current].busy_cycles += cycles + lat;
                spaces.store(0, addr, kind, value);
                threads[current].vm.store_done();
            }
            StepOutcome::Syscall {
                intrinsic,
                args,
                cycles,
            } => {
                clock += cycles;
                quantum_used += cycles;
                match intrinsic {
                    Intrinsic::PthreadCreate => {
                        clock += syscall_cost::THREAD_CREATE;
                        let handle_addr = args.first().copied().unwrap_or(Value::I(0)).as_addr();
                        let func = args.get(2).copied().unwrap_or(Value::I(0)).as_i();
                        let arg = args.get(3).copied().unwrap_or(Value::I(0));
                        if func < 0 || func as usize >= program.funcs.len() {
                            return Err(ExecError::new("pthread_create: bad thread function"));
                        }
                        let tid = threads.len();
                        if tid >= 1024 {
                            return Err(ExecError::new("too many threads (max 1024)"));
                        }
                        let stack = STACKS_BASE + tid as u64 * STACK_SIZE;
                        threads.push(Thread {
                            vm: Vm::new(program, func as u32, vec![arg], stack),
                            state: ThreadState::Ready,
                            busy_cycles: 0,
                        });
                        ready.push_back(tid);
                        sink.sync(SyncEvent::ThreadStart {
                            parent: current,
                            unit: tid,
                            func: func as u32,
                            cycle: clock,
                        });
                        // Store the thread id into the pthread_t handle.
                        spaces.store(0, handle_addr, hsm_vm::MemKind::I64, Value::I(tid as i64));
                        threads[current].vm.syscall_return(Value::I(0));
                    }
                    Intrinsic::PthreadJoin => {
                        clock += syscall_cost::JOIN;
                        let target = args.first().copied().unwrap_or(Value::I(0)).as_i();
                        if target < 0 || target as usize >= threads.len() {
                            return Err(ExecError::new(format!(
                                "pthread_join of unknown thread {target}"
                            )));
                        }
                        let target = target as usize;
                        if matches!(threads[target].state, ThreadState::Done { .. }) {
                            sink.sync(SyncEvent::ThreadJoin {
                                unit: current,
                                target,
                                cycle: clock,
                            });
                            threads[current].vm.syscall_return(Value::I(0));
                        } else {
                            threads[current].state = ThreadState::WaitingJoin { target };
                            joiners.entry(target).or_default().push(current);
                        }
                    }
                    Intrinsic::PthreadExit => {
                        finish_thread(
                            current,
                            0,
                            &mut threads,
                            &mut joiners,
                            &mut ready,
                            clock,
                            sink,
                        );
                    }
                    Intrinsic::PthreadSelf => {
                        threads[current].vm.syscall_return(Value::I(current as i64));
                    }
                    Intrinsic::MutexInit | Intrinsic::MutexDestroy => {
                        threads[current].vm.syscall_return(Value::I(0));
                    }
                    Intrinsic::BarrierInit => {
                        // pthread_barrier_init(&b, attr, count)
                        let key = args.first().copied().unwrap_or(Value::I(0)).as_addr();
                        let count =
                            args.get(2).copied().unwrap_or(Value::I(1)).as_i().max(1) as usize;
                        barriers.insert(key, (count, Vec::new()));
                        threads[current].vm.syscall_return(Value::I(0));
                    }
                    Intrinsic::BarrierDestroy => {
                        let key = args.first().copied().unwrap_or(Value::I(0)).as_addr();
                        barriers.remove(&key);
                        threads[current].vm.syscall_return(Value::I(0));
                    }
                    Intrinsic::BarrierWait => {
                        clock += syscall_cost::MUTEX;
                        let key = args.first().copied().unwrap_or(Value::I(0)).as_addr();
                        let Some((count, waiting)) = barriers.get_mut(&key) else {
                            return Err(ExecError::new(
                                "pthread_barrier_wait on an uninitialized barrier",
                            ));
                        };
                        waiting.push(current);
                        if waiting.len() >= *count {
                            // Release everyone; the last arriver returns
                            // PTHREAD_BARRIER_SERIAL_THREAD (-1), others 0.
                            let released = std::mem::take(waiting);
                            let epoch = barrier_epoch;
                            barrier_epoch += 1;
                            for tid in &released {
                                sink.sync(SyncEvent::BarrierArrive {
                                    unit: *tid,
                                    epoch,
                                    cycle: clock,
                                });
                            }
                            for (i, tid) in released.iter().enumerate() {
                                let rv = if i + 1 == released.len() { -1 } else { 0 };
                                sink.sync(SyncEvent::BarrierRelease {
                                    unit: *tid,
                                    epoch,
                                    cycle: clock,
                                });
                                threads[*tid].vm.syscall_return(Value::I(rv));
                                if *tid != current {
                                    threads[*tid].state = ThreadState::Ready;
                                    ready.push_back(*tid);
                                }
                            }
                        } else {
                            threads[current].state = ThreadState::WaitingBarrier { key };
                        }
                    }
                    Intrinsic::MutexLock => {
                        clock += syscall_cost::MUTEX;
                        let key = args.first().copied().unwrap_or(Value::I(0)).as_addr();
                        if let Some(owner) = mutex_owner.get(&key) {
                            if *owner == current {
                                return Err(ExecError::new(
                                    "recursive mutex lock would self-deadlock",
                                ));
                            }
                            mutex_waiters.entry(key).or_default().push_back(current);
                            threads[current].state = ThreadState::WaitingMutex { key };
                        } else {
                            mutex_owner.insert(key, current);
                            sink.sync(SyncEvent::LockAcquire {
                                unit: current,
                                lock: key,
                                cycle: clock,
                            });
                            threads[current].vm.syscall_return(Value::I(0));
                        }
                    }
                    Intrinsic::MutexUnlock => {
                        clock += syscall_cost::MUTEX;
                        let key = args.first().copied().unwrap_or(Value::I(0)).as_addr();
                        if mutex_owner.get(&key) != Some(&current) {
                            return Err(ExecError::new(
                                "unlocking a mutex the thread does not hold",
                            ));
                        }
                        mutex_owner.remove(&key);
                        sink.sync(SyncEvent::LockRelease {
                            unit: current,
                            lock: key,
                            cycle: clock,
                        });
                        if let Some(waiter) =
                            mutex_waiters.get_mut(&key).and_then(|q| q.pop_front())
                        {
                            mutex_owner.insert(key, waiter);
                            sink.sync(SyncEvent::LockAcquire {
                                unit: waiter,
                                lock: key,
                                cycle: clock,
                            });
                            threads[waiter].state = ThreadState::Ready;
                            threads[waiter].vm.syscall_return(Value::I(0));
                            ready.push_back(waiter);
                        }
                        threads[current].vm.syscall_return(Value::I(0));
                    }
                    Intrinsic::Wtime | Intrinsic::RcceWtime => {
                        wtimes.record(current.min(1023), clock);
                        let secs = clock as f64 / (f64::from(config.core_freq_mhz) * 1e6);
                        threads[current].vm.syscall_return(Value::F(secs));
                    }
                    Intrinsic::Printf => {
                        clock += syscall_cost::PRINTF;
                        let text = format_printf(0, &args, &spaces);
                        output.push(OutputLine {
                            at: clock,
                            who: current,
                            text,
                        });
                        threads[current].vm.syscall_return(Value::I(0));
                    }
                    Intrinsic::Malloc => {
                        clock += syscall_cost::ALLOC;
                        let bytes =
                            args.first().copied().unwrap_or(Value::I(0)).as_i().max(0) as u64;
                        let addr = heap_brk;
                        heap_brk += (bytes + 31) & !31;
                        threads[current].vm.syscall_return(Value::I(addr as i64));
                    }
                    Intrinsic::Exit => {
                        let code = args.first().copied().unwrap_or(Value::I(0)).as_i();
                        finish_thread(0, code, &mut threads, &mut joiners, &mut ready, clock, sink);
                        break;
                    }
                    Intrinsic::Sqrt | Intrinsic::Fabs => {
                        unreachable!("pure intrinsics run inline")
                    }
                    other => {
                        return Err(ExecError::new(format!(
                            "RCCE call {other:?} in a pthread program"
                        )));
                    }
                }
            }
            StepOutcome::Finished { exit } => {
                finish_thread(
                    current,
                    exit.as_i(),
                    &mut threads,
                    &mut joiners,
                    &mut ready,
                    clock,
                    sink,
                );
                if current == 0 {
                    // main returning ends the process.
                    break;
                }
            }
        }
    }

    let timed = wtimes.widest_interval().unwrap_or(clock);
    output.sort_by_key(|l| (l.at, l.who));
    let exit_code = match threads[0].state {
        ThreadState::Done { exit } => exit,
        _ => 0,
    };
    Ok(RunResult {
        total_cycles: clock,
        timed_cycles: timed,
        output,
        exit_code,
        mem_stats: chip.stats(),
        stats_matrix: chip.stats_matrix().clone(),
        mpb_high_water: chip.mpb_high_water(),
        per_unit_cycles: threads.iter().map(|t| t.busy_cycles).collect(),
    })
}

#[allow(clippy::too_many_arguments)]
fn finish_thread<S: TraceSink>(
    tid: usize,
    exit: i64,
    threads: &mut [Thread],
    joiners: &mut HashMap<usize, Vec<usize>>,
    ready: &mut VecDeque<usize>,
    clock: u64,
    sink: &mut S,
) {
    threads[tid].state = ThreadState::Done { exit };
    if let Some(waiting) = joiners.remove(&tid) {
        for w in waiting {
            sink.sync(SyncEvent::ThreadJoin {
                unit: w,
                target: tid,
                cycle: clock,
            });
            threads[w].state = ThreadState::Ready;
            threads[w].vm.syscall_return(Value::I(0));
            ready.push_back(w);
        }
    }
}
