//! Optional event tracing of the simulated machines.
//!
//! Every memory access the discrete-event engine performs can be streamed
//! to a [`TraceSink`]. The run loops are generic over the sink and the
//! default [`NullSink`] is a zero-sized no-op, so the traced and untraced
//! paths compile to the same code when tracing is off — observability
//! must never perturb the experiment it observes.
//!
//! [`RingTrace`] is the bundled sink: a bounded ring buffer that keeps the
//! most recent `capacity` events and counts what it evicted, so tracing a
//! billion-access run costs a fixed amount of memory.
//!
//! ```
//! use hsm_exec::trace::{RingTrace, TraceEvent, TraceSink};
//! use scc_sim::Region;
//!
//! let mut ring = RingTrace::new(2);
//! for cycle in 0..3 {
//!     ring.record(TraceEvent {
//!         core: 0,
//!         cycle,
//!         addr: 0x1000,
//!         region: Region::Private,
//!         latency: 1,
//!         write: false,
//!     });
//! }
//! assert_eq!(ring.len(), 2);
//! assert_eq!(ring.dropped(), 1);
//! assert_eq!(ring.events()[0].cycle, 1, "oldest surviving event");
//! ```

use scc_sim::Region;

/// One memory access observed by the execution engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Issuing core (RCCE mode) or 0 (pthread mode runs on core 0).
    pub core: usize,
    /// The issuing core's local clock when the access started.
    pub cycle: u64,
    /// Simulated address.
    pub addr: u64,
    /// Address-space region the access landed in.
    pub region: Region,
    /// Cycles the access cost (cache/mesh/queue/service combined).
    pub latency: u64,
    /// Store (`true`) or load (`false`).
    pub write: bool,
}

/// A consumer of [`TraceEvent`]s.
///
/// The run loops are monomorphized over the sink type, so a no-op
/// implementation costs nothing.
pub trait TraceSink {
    /// Observes one event.
    fn record(&mut self, event: TraceEvent);
}

/// The default sink: discards everything, compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn record(&mut self, _event: TraceEvent) {}
}

/// A bounded ring buffer of the most recent events.
#[derive(Debug, Clone)]
pub struct RingTrace {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl RingTrace {
    /// A ring keeping at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingTrace {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever observed (held + dropped).
    pub fn total_seen(&self) -> u64 {
        self.buf.len() as u64 + self.dropped
    }
}

impl TraceSink for RingTrace {
    fn record(&mut self, event: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            core: 1,
            cycle,
            addr: 0x8000_0000,
            region: Region::SharedDram,
            latency: 50,
            write: cycle.is_multiple_of(2),
        }
    }

    #[test]
    fn ring_holds_everything_under_capacity() {
        let mut r = RingTrace::new(8);
        for c in 0..5 {
            r.record(ev(c));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        assert_eq!(
            r.events().iter().map(|e| e.cycle).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn ring_keeps_most_recent_when_full() {
        let mut r = RingTrace::new(3);
        for c in 0..10 {
            r.record(ev(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        assert_eq!(r.total_seen(), 10);
        assert_eq!(
            r.events().iter().map(|e| e.cycle).collect::<Vec<_>>(),
            vec![7, 8, 9],
            "oldest-first order survives wraparound"
        );
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = RingTrace::new(0);
        r.record(ev(1));
        r.record(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.events()[0].cycle, 2);
    }

    #[test]
    fn null_sink_discards() {
        let mut n = NullSink;
        n.record(ev(1));
    }
}
