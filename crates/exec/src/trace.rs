//! Optional event tracing of the simulated machines.
//!
//! Every memory access the discrete-event engine performs can be streamed
//! to a [`TraceSink`]. The run loops are generic over the sink and the
//! default [`NullSink`] is a zero-sized no-op, so the traced and untraced
//! paths compile to the same code when tracing is off — observability
//! must never perturb the experiment it observes.
//!
//! [`RingTrace`] is the bundled sink: a bounded ring buffer that keeps the
//! most recent `capacity` events and counts what it evicted, so tracing a
//! billion-access run costs a fixed amount of memory.
//!
//! ```
//! use hsm_exec::trace::{RingTrace, TraceEvent, TraceSink};
//! use scc_sim::Region;
//!
//! let mut ring = RingTrace::new(2);
//! for cycle in 0..3 {
//!     ring.record(TraceEvent {
//!         core: 0,
//!         unit: 0,
//!         cycle,
//!         addr: 0x1000,
//!         region: Region::Private,
//!         latency: 1,
//!         write: false,
//!     });
//! }
//! assert_eq!(ring.len(), 2);
//! assert_eq!(ring.dropped(), 1);
//! assert_eq!(ring.events()[0].cycle, 1, "oldest surviving event");
//! ```
//!
//! Alongside the access stream, the engines report synchronization
//! operations as [`SyncEvent`]s through [`TraceSink::sync`]. These carry
//! the happens-before structure of a run (thread create/join, lock
//! hand-offs, barrier epochs, message rendezvous) and are what lets the
//! sharing-soundness oracle in [`crate::oracle`] distinguish an ordered
//! access from a data race. The default implementation is a no-op, so
//! existing sinks and the untraced path are unaffected.

use scc_sim::Region;

/// One memory access observed by the execution engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Issuing core (RCCE mode) or 0 (pthread mode runs on core 0).
    pub core: usize,
    /// Issuing logical execution unit: the pthread thread id in pthread
    /// mode (all threads share core 0), the core id in RCCE mode.
    pub unit: usize,
    /// The issuing core's local clock when the access started.
    pub cycle: u64,
    /// Simulated address.
    pub addr: u64,
    /// Address-space region the access landed in.
    pub region: Region,
    /// Cycles the access cost (cache/mesh/queue/service combined).
    pub latency: u64,
    /// Store (`true`) or load (`false`).
    pub write: bool,
}

/// One synchronization operation observed by the execution engine.
///
/// Each variant is a happens-before edge (or half of one): everything the
/// source unit did before the event is ordered before everything the
/// destination unit does after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncEvent {
    /// `parent` spawned `unit`, whose entry function is `func` (an index
    /// into the compiled program's function table).
    ThreadStart {
        /// The spawning unit.
        parent: usize,
        /// The new unit.
        unit: usize,
        /// Entry function index of the new unit.
        func: u32,
        /// Parent-side clock at the spawn.
        cycle: u64,
    },
    /// `unit` observed the termination of `target` (pthread_join).
    ThreadJoin {
        /// The joining unit.
        unit: usize,
        /// The unit that finished.
        target: usize,
        /// Joiner-side clock when the join completed.
        cycle: u64,
    },
    /// `unit` acquired lock `lock` (mutex or RCCE test-and-set).
    LockAcquire {
        /// The acquiring unit.
        unit: usize,
        /// Lock identity: address (pthread mutex) or lock id (RCCE).
        lock: u64,
        /// Clock at the acquisition.
        cycle: u64,
    },
    /// `unit` released lock `lock`.
    LockRelease {
        /// The releasing unit.
        unit: usize,
        /// Lock identity: address (pthread mutex) or lock id (RCCE).
        lock: u64,
        /// Clock at the release.
        cycle: u64,
    },
    /// `unit` arrived at barrier epoch `epoch`. Emitted for every
    /// participant when the barrier opens, before any
    /// [`SyncEvent::BarrierRelease`] of the same epoch.
    BarrierArrive {
        /// The arriving unit.
        unit: usize,
        /// Monotone barrier-episode counter.
        epoch: u64,
        /// Clock at the arrival.
        cycle: u64,
    },
    /// `unit` left barrier epoch `epoch`: ordered after every arrival of
    /// that epoch.
    BarrierRelease {
        /// The released unit.
        unit: usize,
        /// Monotone barrier-episode counter.
        epoch: u64,
        /// Clock at the release.
        cycle: u64,
    },
    /// A point-to-point hand-off from `from` to `to` (message rendezvous
    /// or an observed flag write).
    Message {
        /// The sending unit.
        from: usize,
        /// The receiving unit.
        to: usize,
        /// Receiver-side clock at the hand-off.
        cycle: u64,
    },
}

/// A consumer of [`TraceEvent`]s and [`SyncEvent`]s.
///
/// The run loops are monomorphized over the sink type, so a no-op
/// implementation costs nothing.
pub trait TraceSink {
    /// Compile-time switch the engine checks before *building* events:
    /// sinks that discard everything (the default [`NullSink`]) set this
    /// to `false`, so the untraced hot path skips event construction
    /// entirely rather than constructing and then discarding. Observing
    /// sinks keep the default `true`.
    const ENABLED: bool = true;

    /// Observes one memory access.
    fn record(&mut self, event: TraceEvent);

    /// Observes one synchronization operation. Defaults to a no-op so
    /// access-only sinks need not care.
    #[inline(always)]
    fn sync(&mut self, _event: SyncEvent) {}

    /// Observes one bulk data transfer (the task runtime's explicit
    /// canonical↔worker DMA). `bytes` is the payload size; the cycle is
    /// the initiating unit's clock when the transfer was billed. Defaults
    /// to a no-op so access-only sinks need not care.
    #[inline(always)]
    fn dma(&mut self, _from: usize, _to: usize, _bytes: u64, _cycle: u64) {}
}

/// The default sink: discards everything, compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: TraceEvent) {}
}

/// A bounded ring buffer of the most recent events.
#[derive(Debug, Clone)]
pub struct RingTrace {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl RingTrace {
    /// A ring keeping at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingTrace {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever observed (held + dropped).
    pub fn total_seen(&self) -> u64 {
        self.buf.len() as u64 + self.dropped
    }
}

impl TraceSink for RingTrace {
    fn record(&mut self, event: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            core: 1,
            unit: 1,
            cycle,
            addr: 0x8000_0000,
            region: Region::SharedDram,
            latency: 50,
            write: cycle.is_multiple_of(2),
        }
    }

    #[test]
    fn ring_holds_everything_under_capacity() {
        let mut r = RingTrace::new(8);
        for c in 0..5 {
            r.record(ev(c));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        assert_eq!(
            r.events().iter().map(|e| e.cycle).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn ring_keeps_most_recent_when_full() {
        let mut r = RingTrace::new(3);
        for c in 0..10 {
            r.record(ev(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        assert_eq!(r.total_seen(), 10);
        assert_eq!(
            r.events().iter().map(|e| e.cycle).collect::<Vec<_>>(),
            vec![7, 8, 9],
            "oldest-first order survives wraparound"
        );
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = RingTrace::new(0);
        r.record(ev(1));
        r.record(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.events()[0].cycle, 2);
    }

    #[test]
    fn null_sink_discards() {
        let mut n = NullSink;
        n.record(ev(1));
    }
}
