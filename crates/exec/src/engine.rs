//! The unified execution core: one scheduler loop, one VM-step dispatch,
//! one printf/trace/sync-event emission path — parameterized by a
//! [`SyncModel`] (what create/join/barrier/put/get mean) and a
//! [`CoherenceModel`] (what value a load observes and what an access
//! costs).
//!
//! Both execution modes are thin [`SyncModel`] impls over this core:
//! pthread (round-robin time slicing on core 0) and RCCE (discrete-event
//! interleaving of per-core processes). The core owns everything they
//! used to duplicate: the step loop, memory-access timing + tracing, the
//! `printf`/`malloc`/`wtime` syscalls, output collection, and result
//! assembly.

use crate::coherence::CoherenceModel;
use crate::machine::{DataSpaces, ExecError, OutputLine, RunResult, WtimeTracker};
use crate::printf;
use crate::syscall_cost;
use crate::trace::{TraceEvent, TraceSink};
use hsm_vm::compile::{Program, HEAP_BASE};
use hsm_vm::{Intrinsic, MemKind, StepOutcome, UnitVm, Value};
use scc_sim::{MemorySystem, SccConfig};

/// What a slice of simulated time was spent on, so each sync model can
/// bill it to the right clocks. The pthread model advances one global
/// clock and additionally bills `Progress` to the running thread's busy
/// time and `Progress`/`Dispatch` to its scheduling quantum; the RCCE
/// model bills everything to the unit's local clock alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Charge {
    /// Forward progress of the unit: instruction execution and memory
    /// access latency.
    Progress,
    /// Syscall dispatch overhead measured by the VM.
    Dispatch,
    /// Fixed service cost of a syscall (allocator, printf, sync ops).
    Service,
}

/// Whether the run continues after a syscall or unit completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep scheduling.
    Continue,
    /// The process is over (pthread `exit`/main return); stop the loop.
    Stop,
}

/// One schedulable execution context: a thread (pthread mode) or a core's
/// process (RCCE mode).
#[derive(Debug)]
pub struct UnitState {
    /// The suspendable VM driving this unit.
    pub vm: UnitVm,
    /// The unit's view of simulated time. In pthread mode every unit's
    /// clock mirrors the single global clock while it runs.
    pub clock: u64,
    /// Cycles this unit spent making progress (the pthread load-balance
    /// metric; unused by RCCE, whose balance metric is clock-based).
    pub busy_cycles: u64,
}

impl UnitState {
    /// Creates a unit poised at `func` with `args` on the private stack
    /// region at `stack_base`.
    pub fn new(program: &Program, func: u32, args: Vec<Value>, stack_base: u64) -> Self {
        UnitState {
            vm: UnitVm::new(program, func, args, stack_base),
            clock: 0,
            busy_cycles: 0,
        }
    }
}

/// Everything the core and the sync model share: the machine (chip
/// timing, data spaces and coherence model), the unit table, heap break
/// pointers, program output and wtime marks.
pub struct ExecEnv<'p, C: CoherenceModel> {
    /// The compiled program every unit executes.
    pub program: &'p Program,
    /// Chip configuration.
    pub config: &'p SccConfig,
    /// Timing model of the chip.
    pub chip: MemorySystem,
    /// Backing bytes of all address spaces.
    pub spaces: DataSpaces,
    /// The value-visibility model every memory operation routes through.
    pub coherence: C,
    /// All units, indexed by unit id (thread id / core id).
    pub units: Vec<UnitState>,
    /// Heap break per allocation arena (one shared arena in pthread mode,
    /// one per core in RCCE mode).
    pub heap_brk: Vec<u64>,
    /// Program output collected so far.
    pub output: Vec<OutputLine>,
    /// `wtime()` marks per unit.
    pub wtimes: WtimeTracker,
    /// Monotone counter naming barrier episodes in the sync-event stream.
    pub barrier_epoch: u64,
}

impl<'p, C: CoherenceModel> ExecEnv<'p, C> {
    fn new<M: SyncModel>(
        program: &'p Program,
        config: &'p SccConfig,
        coherence: C,
        model: &M,
    ) -> Self {
        let mut spaces = DataSpaces::new(model.space_count());
        for s in 0..model.space_count() {
            spaces.load_image(s, &program.image);
        }
        let units = (0..model.unit_count())
            .map(|i| UnitState::new(program, program.entry, vec![], model.stack_base(i)))
            .collect();
        ExecEnv {
            program,
            config,
            chip: MemorySystem::new(config.clone()),
            spaces,
            coherence,
            units,
            heap_brk: vec![HEAP_BASE; model.heap_slots()],
            output: Vec::new(),
            wtimes: WtimeTracker::new(model.wtime_slots()),
            barrier_epoch: 0,
        }
    }

    /// Loads a value as observed by `unit` on `core` — the single path for
    /// all data reads, VM-issued and syscall-side alike.
    pub fn mem_load(&mut self, unit: usize, core: usize, addr: u64, kind: MemKind) -> Value {
        self.coherence.load(unit, core, addr, kind, &self.spaces)
    }

    /// Stores a value on behalf of `unit` on `core`.
    pub fn mem_store(&mut self, unit: usize, core: usize, addr: u64, kind: MemKind, v: Value) {
        self.coherence
            .store(unit, core, addr, kind, v, &mut self.spaces);
    }

    /// Byte copy between two addresses in `unit`'s view (`RCCE_put`/`RCCE_get`).
    pub fn copy_bytes(&mut self, unit: usize, core: usize, dst: u64, src: u64, bytes: usize) {
        for i in 0..bytes as u64 {
            let v = self.mem_load(unit, core, src + i, MemKind::I8);
            self.mem_store(unit, core, dst + i, MemKind::I8, v);
        }
    }

    /// Byte copy across two units' views (the `RCCE_send`/`RCCE_recv`
    /// rendezvous data movement). Each side is a `(unit, core, addr)`
    /// triple.
    pub fn copy_cross(&mut self, src: (usize, usize, u64), dst: (usize, usize, u64), bytes: usize) {
        let (src_unit, src_core, src_addr) = src;
        let (dst_unit, dst_core, dst_addr) = dst;
        for i in 0..bytes as u64 {
            let v = self.mem_load(src_unit, src_core, src_addr + i, MemKind::I8);
            self.mem_store(dst_unit, dst_core, dst_addr + i, MemKind::I8, v);
        }
    }

    /// Reads a NUL-terminated string as observed by `unit` (capped at
    /// 64 KB like [`hsm_vm::data::ByteMemory::read_cstr`]).
    pub fn read_cstr(&mut self, unit: usize, core: usize, addr: u64) -> String {
        let mut out = Vec::new();
        for i in 0..65536 {
            let b = self.mem_load(unit, core, addr + i, MemKind::I8).as_i() as u8;
            if b == 0 {
                break;
            }
            out.push(b);
        }
        String::from_utf8_lossy(&out).into_owned()
    }

    /// Formats a `printf` syscall with the format string and `%s`
    /// arguments resolved through `unit`'s memory view.
    pub fn format_printf(&mut self, unit: usize, core: usize, args: &[Value]) -> String {
        printf::format_syscall(args, &mut |addr| self.read_cstr(unit, core, addr))
    }
}

/// The synchronization semantics of an execution mode: which units exist,
/// how time is billed, which unit runs next, and what the mode-specific
/// syscalls (thread and RCCE primitives) mean.
///
/// The core loop handles everything else: VM stepping, memory timing +
/// value resolution, tracing, and the mode-independent syscalls
/// (`printf`, `malloc`, `wtime`).
pub trait SyncModel: Sized {
    /// Number of units at boot (pthread: 1, the main thread; RCCE: one
    /// per core). Units may be added later (`pthread_create`).
    fn unit_count(&self) -> usize;

    /// Number of private address spaces (pthread: 1 shared by all
    /// threads; RCCE: one per core).
    fn space_count(&self) -> usize;

    /// Number of heap arenas (indexed by [`SyncModel::heap_slot`]).
    fn heap_slots(&self) -> usize;

    /// Capacity of the wtime tracker.
    fn wtime_slots(&self) -> usize;

    /// The simulated core `unit` executes on.
    fn core_of(&self, unit: usize) -> usize;

    /// The heap arena `unit` allocates from.
    fn heap_slot(&self, unit: usize) -> usize;

    /// Stack region base for boot unit `unit`.
    fn stack_base(&self, unit: usize) -> u64;

    /// Picks the next unit to step, or `Ok(None)` when the run completed.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on deadlock.
    fn schedule<C: CoherenceModel>(
        &mut self,
        env: &mut ExecEnv<C>,
    ) -> Result<Option<usize>, ExecError>;

    /// Advances the clocks by `cycles` of the given [`Charge`] kind on
    /// behalf of `unit`.
    fn charge(&mut self, unit: &mut UnitState, cycles: u64, kind: Charge);

    /// Handles a mode-specific syscall (`intr` is never one of the
    /// mode-independent intrinsics the core consumed already).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on semantic violations (unknown thread
    /// joins, foreign-mode intrinsics, lock misuse, ...).
    fn syscall<C: CoherenceModel, S: TraceSink>(
        &mut self,
        env: &mut ExecEnv<C>,
        sink: &mut S,
        unit: usize,
        intr: Intrinsic,
        args: &[Value],
    ) -> Result<Flow, ExecError>;

    /// Handles the entry function of `unit` returning `exit`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if completion is itself a violation.
    fn finished<C: CoherenceModel, S: TraceSink>(
        &mut self,
        env: &mut ExecEnv<C>,
        sink: &mut S,
        unit: usize,
        exit: i64,
    ) -> Result<Flow, ExecError>;

    /// Called after every step outcome (the RCCE model re-checks barrier
    /// release here; pthread needs nothing).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on violations detectable only globally
    /// (barrier deadlock with exited cores).
    fn post_step<C: CoherenceModel, S: TraceSink>(
        &mut self,
        env: &mut ExecEnv<C>,
        sink: &mut S,
    ) -> Result<(), ExecError>;

    /// Extracts `(total_cycles, per_unit_cycles, exit_code)` at the end
    /// of the run.
    fn finalize<C: CoherenceModel>(&self, env: &ExecEnv<C>) -> (u64, Vec<u64>, i64);
}

/// The unified interpreter: the one place a program steps, accesses
/// memory, prints, and gets traced. See the module docs for the split of
/// responsibilities between the core and the two trait axes.
pub struct ExecutionCore;

const STEP_LIMIT: u64 = 2_000_000_000;

impl ExecutionCore {
    /// Runs `program` under `model` (synchronization semantics) and
    /// `coherence` (memory semantics), streaming accesses to `sink`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on VM faults, deadlock, or semantic
    /// violations reported by the sync model.
    pub fn run<M: SyncModel, C: CoherenceModel, S: TraceSink>(
        program: &Program,
        config: &SccConfig,
        mut model: M,
        coherence: C,
        sink: &mut S,
    ) -> Result<RunResult, ExecError> {
        let mut env = ExecEnv::new(program, config, coherence, &model);
        let mut steps: u64 = 0;
        while let Some(u) = model.schedule(&mut env)? {
            steps += 1;
            if steps > STEP_LIMIT {
                return Err(ExecError::new("simulation exceeded the step limit"));
            }

            let outcome = env.units[u].vm.run_until_event(program)?;
            let flow = match outcome {
                StepOutcome::Ran { cycles } => {
                    model.charge(&mut env.units[u], cycles, Charge::Progress);
                    Flow::Continue
                }
                StepOutcome::Load { addr, kind, cycles } => {
                    Self::memory_access(&mut model, &mut env, sink, u, addr, kind, None, cycles);
                    Flow::Continue
                }
                StepOutcome::Store {
                    addr,
                    kind,
                    value,
                    cycles,
                } => {
                    Self::memory_access(
                        &mut model,
                        &mut env,
                        sink,
                        u,
                        addr,
                        kind,
                        Some(value),
                        cycles,
                    );
                    Flow::Continue
                }
                StepOutcome::Syscall {
                    intrinsic,
                    args,
                    cycles,
                } => {
                    model.charge(&mut env.units[u], cycles, Charge::Dispatch);
                    Self::syscall(&mut model, &mut env, sink, u, intrinsic, &args)?
                }
                StepOutcome::Finished { exit } => model.finished(&mut env, sink, u, exit.as_i())?,
            };
            if flow == Flow::Stop {
                break;
            }
            model.post_step(&mut env, sink)?;
        }

        let (total_cycles, per_unit_cycles, exit_code) = model.finalize(&env);
        let timed = env.wtimes.widest_interval().unwrap_or(total_cycles);
        let instructions = env.units.iter().map(|u| u.vm.instructions_retired()).sum();
        env.output.sort_by_key(|l| (l.at, l.who));
        Ok(RunResult {
            total_cycles,
            timed_cycles: timed,
            output: env.output,
            exit_code,
            mem_stats: env.chip.stats(),
            stats_matrix: env.chip.stats_matrix().clone(),
            mpb_high_water: env.chip.mpb_high_water(),
            per_unit_cycles,
            instructions,
            events: steps,
        })
    }

    /// One VM-issued load or store: charge issue cycles, resolve the
    /// latency through the coherence model, trace it, charge the latency,
    /// then move the data and resume the VM.
    #[allow(clippy::too_many_arguments)]
    fn memory_access<M: SyncModel, C: CoherenceModel, S: TraceSink>(
        model: &mut M,
        env: &mut ExecEnv<C>,
        sink: &mut S,
        unit: usize,
        addr: u64,
        kind: MemKind,
        store: Option<Value>,
        cycles: u64,
    ) {
        let core = model.core_of(unit);
        let write = store.is_some();
        model.charge(&mut env.units[unit], cycles, Charge::Progress);
        let now = env.units[unit].clock;
        let lat = env.coherence.latency(&mut env.chip, core, addr, write, now);
        // `ENABLED` is a compile-time constant of the sink type: with the
        // default `NullSink` the event (and its region classification) is
        // never even built.
        if S::ENABLED {
            sink.record(TraceEvent {
                core,
                unit,
                cycle: now,
                addr,
                region: MemorySystem::region_of(addr),
                latency: lat,
                write,
            });
        }
        model.charge(&mut env.units[unit], lat, Charge::Progress);
        match store {
            Some(value) => {
                env.mem_store(unit, core, addr, kind, value);
                env.units[unit].vm.store_done();
            }
            None => {
                let v = env.mem_load(unit, core, addr, kind);
                env.units[unit].vm.provide_load(v);
            }
        }
    }

    /// Dispatches a syscall: the mode-independent ones (`printf`,
    /// `malloc`, `wtime`) are handled here, everything else goes to the
    /// sync model.
    fn syscall<M: SyncModel, C: CoherenceModel, S: TraceSink>(
        model: &mut M,
        env: &mut ExecEnv<C>,
        sink: &mut S,
        unit: usize,
        intr: Intrinsic,
        args: &[Value],
    ) -> Result<Flow, ExecError> {
        match intr {
            Intrinsic::Printf => {
                model.charge(&mut env.units[unit], syscall_cost::PRINTF, Charge::Service);
                let core = model.core_of(unit);
                let text = env.format_printf(unit, core, args);
                let at = env.units[unit].clock;
                env.output.push(OutputLine {
                    at,
                    who: unit,
                    text,
                });
                env.units[unit].vm.syscall_return(Value::I(0));
                Ok(Flow::Continue)
            }
            Intrinsic::Malloc => {
                model.charge(&mut env.units[unit], syscall_cost::ALLOC, Charge::Service);
                let bytes = args.first().copied().unwrap_or(Value::I(0)).as_i().max(0) as u64;
                let slot = model.heap_slot(unit);
                let addr = env.heap_brk[slot];
                env.heap_brk[slot] += (bytes + 31) & !31;
                env.units[unit].vm.syscall_return(Value::I(addr as i64));
                Ok(Flow::Continue)
            }
            Intrinsic::Wtime | Intrinsic::RcceWtime => {
                let clock = env.units[unit].clock;
                env.wtimes.record(unit.min(model.wtime_slots() - 1), clock);
                let secs = clock as f64 / (f64::from(env.config.core_freq_mhz) * 1e6);
                env.units[unit].vm.syscall_return(Value::F(secs));
                Ok(Flow::Continue)
            }
            Intrinsic::Sqrt | Intrinsic::Fabs => {
                unreachable!("pure intrinsics run inline")
            }
            other => model.syscall(env, sink, unit, other, args),
        }
    }
}
