//! RCCE execution mode: N cores, each running the translated program,
//! interleaved by a discrete-event scheduler that always advances the core
//! with the smallest local clock.
//!
//! The interpreter itself is [`ExecutionCore`]; this module contributes
//! only the RCCE semantics as a [`SyncModel`]: the discrete-event
//! schedule, the symmetric heap/flag allocation discipline, barriers,
//! test-and-set locks, flags, and send/recv rendezvous.

use crate::coherence::{
    CoherenceModel, Coherent, ExecModel, NonCoherentWriteBack, SeqCstReference,
};
use crate::engine::{Charge, ExecEnv, ExecutionCore, Flow, SyncModel, UnitState};
use crate::machine::{ExecError, RunResult};
use crate::syscall_cost;
use crate::trace::{NullSink, SyncEvent, TraceSink};
use hsm_vm::compile::{Program, STACKS_BASE, STACK_SIZE};
use hsm_vm::{Intrinsic, MemKind, Value};
use rcce_rt::RcceRuntime;
use scc_sim::SccConfig;
use std::collections::VecDeque;

#[derive(Debug, Clone, PartialEq)]
enum CoreState {
    Running,
    InBarrier {
        arrived_at: u64,
    },
    WaitingLock {
        id: usize,
    },
    /// Spinning on its own copy of a flag (`RCCE_wait_until`).
    WaitingFlag {
        flag: usize,
        value: i64,
    },
    /// Blocked in `RCCE_send(buf, size, dst)` until `dst` posts the recv.
    WaitingSend {
        dst: usize,
        buf: u64,
        size: usize,
    },
    /// Blocked in `RCCE_recv(buf, size, src)` until `src` posts the send.
    WaitingRecv {
        src: usize,
        buf: u64,
        size: usize,
    },
    Done {
        exit: i64,
    },
}

/// The RCCE [`SyncModel`]: one unit per core, one private address space
/// and heap arena each, discrete-event interleaving by local clock.
struct RcceSync {
    cores: usize,
    rt: RcceRuntime,
    states: Vec<CoreState>,
    alloc_seq: Vec<usize>,
    flag_seq: Vec<usize>,
    /// Local clock at the most recent barrier arrival: the per-core work
    /// completion time, before the barrier equalizes the clocks (used for
    /// the load-imbalance metric).
    last_barrier_arrival: Vec<u64>,
    /// Symmetric allocation log: the k-th allocation call returns the same
    /// address on every core (RCCE's symmetric heap discipline).
    alloc_log: Vec<u64>,
    /// Flags: flag id -> per-UE value (each UE owns one copy in its MPB
    /// slice, as in the real library). Allocation is symmetric like the
    /// heap: the k-th RCCE_flag_alloc on every core names the same flag.
    flags: Vec<Vec<i64>>,
    /// Last core that wrote each flag copy, for the sync-event stream: a
    /// satisfied RCCE_wait_until is a hand-off from that writer.
    flag_writer: Vec<Vec<Option<usize>>>,
    /// Lock state (test-and-set registers, managed at event level so
    /// waiters block instead of spinning the DES).
    lock_owner: Vec<Option<usize>>,
    lock_waiters: Vec<VecDeque<usize>>,
}

impl RcceSync {
    fn new(cores: usize, config: &SccConfig) -> Self {
        RcceSync {
            cores,
            rt: RcceRuntime::new(cores, config),
            states: vec![CoreState::Running; cores],
            alloc_seq: vec![0; cores],
            flag_seq: vec![0; cores],
            last_barrier_arrival: vec![0; cores],
            alloc_log: Vec::new(),
            flags: Vec::new(),
            flag_writer: Vec::new(),
            lock_owner: vec![None; config.cores],
            lock_waiters: vec![VecDeque::new(); config.cores],
        }
    }

    /// Resolves a flag handle argument to a flag id, through the calling
    /// unit's memory view.
    fn flag_id<C: CoherenceModel>(
        &mut self,
        env: &mut ExecEnv<C>,
        core: usize,
        handle: Option<&Value>,
    ) -> Result<usize, ExecError> {
        let Some(handle) = handle else {
            return Err(ExecError::new("flag call without a flag handle"));
        };
        let id = env
            .mem_load(core, core, handle.as_addr(), MemKind::I64)
            .as_i();
        let count = self.flags.len();
        if id < 0 || id as usize >= count {
            return Err(ExecError::new(format!(
                "flag handle {id} out of range (allocated: {count})"
            )));
        }
        Ok(id as usize)
    }

    /// Performs the rendezvous data movement of one send/recv pair: the
    /// payload moves sender -> MPB -> receiver, both cores resuming at the
    /// completion time. Each side is a `(core, buffer)` pair.
    fn transfer<C: CoherenceModel, S: TraceSink>(
        &mut self,
        env: &mut ExecEnv<C>,
        sink: &mut S,
        (src, src_buf): (usize, u64),
        (dst, dst_buf): (usize, u64),
        bytes: usize,
    ) {
        env.copy_cross((src, src, src_buf), (dst, dst, dst_buf), bytes);
        let meet = env.units[src].clock.max(env.units[dst].clock);
        let cost = self.rt.put_get_cost(&env.chip, src, dst, bytes)
            + self.rt.put_get_cost(&env.chip, dst, dst, bytes);
        let done = meet + cost;
        env.units[src].clock = done;
        env.units[dst].clock = done;
        // The rendezvous orders both sides against each other.
        sink.sync(SyncEvent::Message {
            from: src,
            to: dst,
            cycle: done,
        });
        sink.sync(SyncEvent::Message {
            from: dst,
            to: src,
            cycle: done,
        });
    }
}

impl SyncModel for RcceSync {
    fn unit_count(&self) -> usize {
        self.cores
    }

    fn space_count(&self) -> usize {
        self.cores
    }

    fn heap_slots(&self) -> usize {
        self.cores
    }

    fn wtime_slots(&self) -> usize {
        self.cores
    }

    fn core_of(&self, unit: usize) -> usize {
        unit
    }

    fn heap_slot(&self, unit: usize) -> usize {
        unit
    }

    fn stack_base(&self, unit: usize) -> u64 {
        STACKS_BASE + unit as u64 * STACK_SIZE
    }

    fn schedule<C: CoherenceModel>(
        &mut self,
        env: &mut ExecEnv<C>,
    ) -> Result<Option<usize>, ExecError> {
        // Pick the running core with the smallest clock.
        let next = self
            .states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == CoreState::Running)
            .min_by_key(|(i, _)| (env.units[*i].clock, *i))
            .map(|(i, _)| i);
        match next {
            Some(core) => Ok(Some(core)),
            None => {
                if self
                    .states
                    .iter()
                    .all(|s| matches!(s, CoreState::Done { .. }))
                {
                    Ok(None)
                } else {
                    Err(ExecError::new(
                        "deadlock: no runnable core but not all cores finished",
                    ))
                }
            }
        }
    }

    fn charge(&mut self, unit: &mut UnitState, cycles: u64, _kind: Charge) {
        // RCCE bills everything to the core's local clock; balance is
        // measured by barrier-arrival time, not busy cycles.
        unit.clock += cycles;
    }

    fn syscall<C: CoherenceModel, S: TraceSink>(
        &mut self,
        env: &mut ExecEnv<C>,
        sink: &mut S,
        unit: usize,
        intr: Intrinsic,
        args: &[Value],
    ) -> Result<Flow, ExecError> {
        let core = unit;
        let cores = self.cores;
        let ret = match intr {
            Intrinsic::RcceInit => {
                env.units[core].clock += syscall_cost::RCCE_INIT;
                Value::I(0)
            }
            Intrinsic::RcceFinalize => {
                env.units[core].clock += syscall_cost::RCCE_FINALIZE;
                Value::I(0)
            }
            Intrinsic::RcceUe => Value::I(core as i64),
            Intrinsic::RcceNumUes => Value::I(cores as i64),
            Intrinsic::RcceShmalloc | Intrinsic::RcceMpbMalloc => {
                let bytes = args.first().copied().unwrap_or(Value::I(0)).as_i().max(0) as usize;
                env.units[core].clock += syscall_cost::ALLOC;
                let seq = self.alloc_seq[core];
                self.alloc_seq[core] += 1;
                let addr = if seq < self.alloc_log.len() {
                    self.alloc_log[seq]
                } else {
                    let a = match intr {
                        Intrinsic::RcceShmalloc => self
                            .rt
                            .shmalloc(bytes)
                            .map_err(|e| ExecError::new(e.to_string()))?,
                        _ => self
                            .rt
                            .mpb_malloc(&mut env.chip, bytes)
                            .map_err(|e| ExecError::new(e.to_string()))?,
                    };
                    self.alloc_log.push(a);
                    a
                };
                Value::I(addr as i64)
            }
            Intrinsic::RcceBarrier => {
                // The software coherence point: translated programs write
                // their modified shared lines back before waiting.
                env.coherence
                    .flush_unit(unit, core, &mut env.spaces, &mut env.chip);
                let now = env.units[core].clock;
                self.last_barrier_arrival[core] = now;
                self.states[core] = CoreState::InBarrier { arrived_at: now };
                // No syscall_return: the VM stays pending until released.
                return Ok(Flow::Continue);
            }
            Intrinsic::RcceAcquireLock => {
                let id = args.first().copied().unwrap_or(Value::I(0)).as_i().max(0) as usize
                    % self.lock_owner.len();
                let trip = env.chip.mesh.mpb_round_trip(core, id).max(2);
                env.units[core].clock += trip;
                if self.lock_owner[id].is_none() {
                    self.lock_owner[id] = Some(core);
                    sink.sync(SyncEvent::LockAcquire {
                        unit: core,
                        lock: id as u64,
                        cycle: env.units[core].clock,
                    });
                    Value::I(0)
                } else {
                    self.lock_waiters[id].push_back(core);
                    self.states[core] = CoreState::WaitingLock { id };
                    return Ok(Flow::Continue);
                }
            }
            Intrinsic::RcceReleaseLock => {
                let id = args.first().copied().unwrap_or(Value::I(0)).as_i().max(0) as usize
                    % self.lock_owner.len();
                let trip = env.chip.mesh.mpb_round_trip(core, id).max(2);
                env.units[core].clock += trip;
                if self.lock_owner[id] != Some(core) {
                    return Err(ExecError::new(format!(
                        "core {core} released lock {id} it does not hold"
                    )));
                }
                self.lock_owner[id] = None;
                sink.sync(SyncEvent::LockRelease {
                    unit: core,
                    lock: id as u64,
                    cycle: env.units[core].clock,
                });
                if let Some(waiter) = self.lock_waiters[id].pop_front() {
                    self.lock_owner[id] = Some(waiter);
                    let grant = env.units[core].clock.max(env.units[waiter].clock)
                        + env.chip.mesh.mpb_round_trip(waiter, id).max(2);
                    env.units[waiter].clock = grant;
                    sink.sync(SyncEvent::LockAcquire {
                        unit: waiter,
                        lock: id as u64,
                        cycle: grant,
                    });
                    self.states[waiter] = CoreState::Running;
                    env.units[waiter].vm.syscall_return(Value::I(0));
                }
                Value::I(0)
            }
            Intrinsic::RccePut | Intrinsic::RcceGet => {
                let dst = args.first().copied().unwrap_or(Value::I(0)).as_addr();
                let src = args.get(1).copied().unwrap_or(Value::I(0)).as_addr();
                let bytes = args.get(2).copied().unwrap_or(Value::I(0)).as_i().max(0) as usize;
                let target = args.get(3).copied().unwrap_or(Value::I(0)).as_i().max(0) as usize
                    % cores.max(1);
                env.copy_bytes(unit, core, dst, src, bytes);
                env.units[core].clock += self.rt.put_get_cost(&env.chip, core, target, bytes);
                Value::I(0)
            }
            Intrinsic::Exit => {
                let code = args.first().copied().unwrap_or(Value::I(0)).as_i();
                self.states[core] = CoreState::Done { exit: code };
                return Ok(Flow::Continue);
            }
            Intrinsic::RcceFlagAlloc => {
                env.units[core].clock += syscall_cost::ALLOC;
                let seq = self.flag_seq[core];
                self.flag_seq[core] += 1;
                if seq >= self.flags.len() {
                    self.flags.push(vec![0; cores]);
                    self.flag_writer.push(vec![None; cores]);
                }
                if let Some(handle) = args.first() {
                    env.mem_store(
                        core,
                        core,
                        handle.as_addr(),
                        MemKind::I64,
                        Value::I(seq as i64),
                    );
                }
                Value::I(0)
            }
            Intrinsic::RcceFlagWrite => {
                // RCCE_flag_write(&flag, value, ue)
                let id = self.flag_id(env, core, args.first())?;
                let value = args.get(1).copied().unwrap_or(Value::I(0)).as_i();
                let ue = args.get(2).copied().unwrap_or(Value::I(0)).as_i().max(0) as usize % cores;
                env.units[core].clock += env.chip.mesh.mpb_round_trip(core, ue).max(2)
                    + env.chip.config.mpb_access_cycles;
                self.flags[id][ue] = value;
                self.flag_writer[id][ue] = Some(core);
                // Wake a waiter spinning on this copy.
                if self.states[ue] == (CoreState::WaitingFlag { flag: id, value }) {
                    let wake = env.units[core].clock.max(env.units[ue].clock)
                        + env.chip.config.mpb_access_cycles;
                    env.units[ue].clock = wake;
                    if ue != core {
                        sink.sync(SyncEvent::Message {
                            from: core,
                            to: ue,
                            cycle: wake,
                        });
                    }
                    self.states[ue] = CoreState::Running;
                    env.units[ue].vm.syscall_return(Value::I(0));
                }
                Value::I(0)
            }
            Intrinsic::RcceFlagRead => {
                // RCCE_flag_read(&flag, &out, ue)
                let id = self.flag_id(env, core, args.first())?;
                let ue = args.get(2).copied().unwrap_or(Value::I(0)).as_i().max(0) as usize % cores;
                env.units[core].clock += env.chip.mesh.mpb_round_trip(core, ue).max(2)
                    + env.chip.config.mpb_access_cycles;
                let v = self.flags[id][ue];
                // Observing a remote write through a flag read is a hand-off.
                if let Some(writer) = self.flag_writer[id][ue] {
                    if writer != core {
                        sink.sync(SyncEvent::Message {
                            from: writer,
                            to: core,
                            cycle: env.units[core].clock,
                        });
                    }
                }
                if let Some(out) = args.get(1) {
                    if out.as_i() != 0 {
                        env.mem_store(core, core, out.as_addr(), MemKind::I64, Value::I(v));
                    }
                }
                Value::I(v)
            }
            Intrinsic::RcceWaitUntil => {
                // RCCE_wait_until(&flag, value) — spins on the caller's copy.
                let id = self.flag_id(env, core, args.first())?;
                let value = args.get(1).copied().unwrap_or(Value::I(0)).as_i();
                env.units[core].clock += env.chip.config.mpb_access_cycles;
                if self.flags[id][core] == value {
                    // Already satisfied: the last writer of this copy handed
                    // off to us without blocking.
                    if let Some(writer) = self.flag_writer[id][core] {
                        if writer != core {
                            sink.sync(SyncEvent::Message {
                                from: writer,
                                to: core,
                                cycle: env.units[core].clock,
                            });
                        }
                    }
                    Value::I(0)
                } else {
                    self.states[core] = CoreState::WaitingFlag { flag: id, value };
                    return Ok(Flow::Continue);
                }
            }
            Intrinsic::RcceSend => {
                // RCCE_send(buf, size, dest) — synchronous rendezvous.
                let buf = args.first().copied().unwrap_or(Value::I(0)).as_addr();
                let size = args.get(1).copied().unwrap_or(Value::I(0)).as_i().max(0) as usize;
                let dst =
                    args.get(2).copied().unwrap_or(Value::I(0)).as_i().max(0) as usize % cores;
                if let CoreState::WaitingRecv {
                    src,
                    buf: rbuf,
                    size: rsize,
                } = self.states[dst]
                {
                    if src == core {
                        let n = size.min(rsize);
                        self.transfer(env, sink, (core, buf), (dst, rbuf), n);
                        self.states[dst] = CoreState::Running;
                        env.units[dst].vm.syscall_return(Value::I(0));
                        Value::I(0)
                    } else {
                        self.states[core] = CoreState::WaitingSend { dst, buf, size };
                        return Ok(Flow::Continue);
                    }
                } else {
                    self.states[core] = CoreState::WaitingSend { dst, buf, size };
                    return Ok(Flow::Continue);
                }
            }
            Intrinsic::RcceRecv => {
                // RCCE_recv(buf, size, src).
                let buf = args.first().copied().unwrap_or(Value::I(0)).as_addr();
                let size = args.get(1).copied().unwrap_or(Value::I(0)).as_i().max(0) as usize;
                let src =
                    args.get(2).copied().unwrap_or(Value::I(0)).as_i().max(0) as usize % cores;
                if let CoreState::WaitingSend {
                    dst,
                    buf: sbuf,
                    size: ssize,
                } = self.states[src]
                {
                    if dst == core {
                        let n = size.min(ssize);
                        self.transfer(env, sink, (src, sbuf), (core, buf), n);
                        self.states[src] = CoreState::Running;
                        env.units[src].vm.syscall_return(Value::I(0));
                        Value::I(0)
                    } else {
                        self.states[core] = CoreState::WaitingRecv { src, buf, size };
                        return Ok(Flow::Continue);
                    }
                } else {
                    self.states[core] = CoreState::WaitingRecv { src, buf, size };
                    return Ok(Flow::Continue);
                }
            }
            other => {
                return Err(ExecError::new(format!(
                    "pthread call {other:?} reached RCCE mode: translation incomplete"
                )));
            }
        };
        env.units[core].vm.syscall_return(ret);
        Ok(Flow::Continue)
    }

    fn finished<C: CoherenceModel, S: TraceSink>(
        &mut self,
        _env: &mut ExecEnv<C>,
        _sink: &mut S,
        unit: usize,
        exit: i64,
    ) -> Result<Flow, ExecError> {
        self.states[unit] = CoreState::Done { exit };
        // The run ends when the scheduler finds every core Done.
        Ok(Flow::Continue)
    }

    fn post_step<C: CoherenceModel, S: TraceSink>(
        &mut self,
        env: &mut ExecEnv<C>,
        sink: &mut S,
    ) -> Result<(), ExecError> {
        // Barrier release check: all live cores waiting?
        let total = self.states.len();
        let in_barrier = self
            .states
            .iter()
            .filter(|s| matches!(s, CoreState::InBarrier { .. }))
            .count();
        if in_barrier == 0 {
            return Ok(());
        }
        let done = self
            .states
            .iter()
            .filter(|s| matches!(s, CoreState::Done { .. }))
            .count();
        // RCCE_barrier(&RCCE_COMM_WORLD) involves every UE: if any core has
        // already exited, the arrivals can never complete — on silicon the
        // program would hang.
        if done > 0 && in_barrier + done == total {
            return Err(ExecError::new(
                "barrier deadlock: some cores exited before the barrier",
            ));
        }
        if in_barrier < total {
            return Ok(());
        }
        let latest = self
            .states
            .iter()
            .filter_map(|s| match s {
                CoreState::InBarrier { arrived_at } => Some(*arrived_at),
                _ => None,
            })
            .max()
            .expect("at least one in barrier");
        let release = latest + self.rt.barrier_cost(&env.chip);
        let epoch = env.barrier_epoch;
        env.barrier_epoch += 1;
        for (i, s) in self.states.iter().enumerate() {
            if let CoreState::InBarrier { arrived_at } = s {
                sink.sync(SyncEvent::BarrierArrive {
                    unit: i,
                    epoch,
                    cycle: *arrived_at,
                });
            }
        }
        for (i, s) in self.states.iter_mut().enumerate() {
            if matches!(s, CoreState::InBarrier { .. }) {
                sink.sync(SyncEvent::BarrierRelease {
                    unit: i,
                    epoch,
                    cycle: release,
                });
                env.units[i].clock = release;
                *s = CoreState::Running;
                env.units[i].vm.syscall_return(Value::I(0));
            }
        }
        Ok(())
    }

    fn finalize<C: CoherenceModel>(&self, env: &ExecEnv<C>) -> (u64, Vec<u64>, i64) {
        let total = env.units.iter().map(|u| u.clock).max().unwrap_or(0);
        let per_unit = env
            .units
            .iter()
            .enumerate()
            .map(|(i, u)| {
                if self.last_barrier_arrival[i] > 0 {
                    self.last_barrier_arrival[i]
                } else {
                    u.clock
                }
            })
            .collect();
        let exit = match self.states[0] {
            CoreState::Done { exit } => exit,
            _ => 0,
        };
        (total, per_unit, exit)
    }
}

/// Runs `program` on `cores` simulated SCC cores in RCCE mode, under the
/// [`Coherent`] memory model.
///
/// Every core executes the whole program (the RCCE model: one binary per
/// UE); they synchronize through barriers and test-and-set locks and share
/// the off-chip shared window and the MPB.
///
/// # Errors
///
/// Returns [`ExecError`] on VM faults, allocation failures, deadlock
/// (barrier reached by only a subset of live cores), or pthread calls
/// that survived translation.
pub fn run_rcce(
    program: &Program,
    cores: usize,
    config: &SccConfig,
) -> Result<RunResult, ExecError> {
    run_rcce_traced(program, cores, config, &mut NullSink)
}

/// [`run_rcce`] with every memory access streamed to `sink`.
///
/// The loop is monomorphized over the sink type; with [`NullSink`] this is
/// exactly [`run_rcce`].
///
/// # Errors
///
/// Same failure modes as [`run_rcce`].
pub fn run_rcce_traced<S: TraceSink>(
    program: &Program,
    cores: usize,
    config: &SccConfig,
    sink: &mut S,
) -> Result<RunResult, ExecError> {
    run_rcce_model_traced(program, cores, config, ExecModel::Coherent, sink)
}

/// Runs `program` in RCCE mode under an explicit [`ExecModel`].
///
/// # Errors
///
/// Same failure modes as [`run_rcce`].
pub fn run_rcce_model(
    program: &Program,
    cores: usize,
    config: &SccConfig,
    model: ExecModel,
) -> Result<RunResult, ExecError> {
    run_rcce_model_traced(program, cores, config, model, &mut NullSink)
}

/// [`run_rcce_model`] with a
/// [`ProfileCollector`](crate::profile::ProfileCollector) attached:
/// returns the run result together with its
/// [`Profile`](crate::profile::Profile).
///
/// # Errors
///
/// Same failure modes as [`run_rcce`].
pub fn run_rcce_model_profiled(
    program: &Program,
    cores: usize,
    config: &SccConfig,
    model: ExecModel,
) -> Result<(RunResult, crate::profile::Profile), ExecError> {
    let mut collector = crate::profile::ProfileCollector::new(config.line_bytes);
    let result = run_rcce_model_traced(program, cores, config, model, &mut collector)?;
    let profile = collector.into_profile(&result);
    Ok((result, profile))
}

/// [`run_rcce_model`] with every memory access streamed to `sink`.
///
/// # Errors
///
/// Same failure modes as [`run_rcce`].
pub fn run_rcce_model_traced<S: TraceSink>(
    program: &Program,
    cores: usize,
    config: &SccConfig,
    model: ExecModel,
    sink: &mut S,
) -> Result<RunResult, ExecError> {
    if cores == 0 || cores > config.cores {
        return Err(ExecError::new(format!(
            "core count {cores} outside 1..={}",
            config.cores
        )));
    }
    match model {
        ExecModel::Coherent => ExecutionCore::run(
            program,
            config,
            RcceSync::new(cores, config),
            Coherent,
            sink,
        ),
        ExecModel::NonCoherentWriteBack => ExecutionCore::run(
            program,
            config,
            RcceSync::new(cores, config),
            NonCoherentWriteBack::new(config.line_bytes),
            sink,
        ),
        ExecModel::SeqCstReference => ExecutionCore::run(
            program,
            config,
            RcceSync::new(cores, config),
            SeqCstReference,
            sink,
        ),
    }
}
