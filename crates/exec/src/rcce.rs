//! RCCE execution mode: N cores, each running the translated program,
//! interleaved by a discrete-event scheduler that always advances the core
//! with the smallest local clock.

use crate::machine::{DataSpaces, ExecError, OutputLine, RunResult, WtimeTracker};
use crate::printf;
use crate::syscall_cost;
use crate::trace::{NullSink, SyncEvent, TraceEvent, TraceSink};
use hsm_vm::compile::{Program, HEAP_BASE, STACKS_BASE, STACK_SIZE};
use hsm_vm::{Intrinsic, StepOutcome, Value, Vm};
use rcce_rt::RcceRuntime;
use scc_sim::{MemorySystem, SccConfig};
use std::collections::VecDeque;

#[derive(Debug, Clone, PartialEq)]
enum CoreState {
    Running,
    InBarrier {
        arrived_at: u64,
    },
    WaitingLock {
        id: usize,
    },
    /// Spinning on its own copy of a flag (`RCCE_wait_until`).
    WaitingFlag {
        flag: usize,
        value: i64,
    },
    /// Blocked in `RCCE_send(buf, size, dst)` until `dst` posts the recv.
    WaitingSend {
        dst: usize,
        buf: u64,
        size: usize,
    },
    /// Blocked in `RCCE_recv(buf, size, src)` until `src` posts the send.
    WaitingRecv {
        src: usize,
        buf: u64,
        size: usize,
    },
    Done {
        exit: i64,
    },
}

struct Core {
    vm: Vm,
    clock: u64,
    state: CoreState,
    alloc_seq: usize,
    flag_seq: usize,
    heap_brk: u64,
    /// Local clock at the most recent barrier arrival: the per-core work
    /// completion time, before the barrier equalizes the clocks (used for
    /// the load-imbalance metric).
    last_barrier_arrival: u64,
}

/// Runs `program` on `cores` simulated SCC cores in RCCE mode.
///
/// Every core executes the whole program (the RCCE model: one binary per
/// UE); they synchronize through barriers and test-and-set locks and share
/// the off-chip shared window and the MPB.
///
/// # Errors
///
/// Returns [`ExecError`] on VM faults, allocation failures, deadlock
/// (barrier reached by only a subset of live cores), or pthread calls
/// that survived translation.
pub fn run_rcce(
    program: &Program,
    cores: usize,
    config: &SccConfig,
) -> Result<RunResult, ExecError> {
    run_rcce_traced(program, cores, config, &mut NullSink)
}

/// [`run_rcce`] with every memory access streamed to `sink`.
///
/// The loop is monomorphized over the sink type; with [`NullSink`] this is
/// exactly [`run_rcce`].
///
/// # Errors
///
/// Same failure modes as [`run_rcce`].
pub fn run_rcce_traced<S: TraceSink>(
    program: &Program,
    cores: usize,
    config: &SccConfig,
    sink: &mut S,
) -> Result<RunResult, ExecError> {
    if cores == 0 || cores > config.cores {
        return Err(ExecError::new(format!(
            "core count {cores} outside 1..={}",
            config.cores
        )));
    }
    let mut chip = MemorySystem::new(config.clone());
    let mut rt = RcceRuntime::new(cores, config);
    let mut spaces = DataSpaces::new(cores);
    for core in 0..cores {
        spaces.load_image(core, &program.image);
    }

    let mut cs: Vec<Core> = (0..cores)
        .map(|i| Core {
            vm: Vm::new(
                program,
                program.entry,
                vec![],
                STACKS_BASE + i as u64 * STACK_SIZE,
            ),
            clock: 0,
            state: CoreState::Running,
            alloc_seq: 0,
            flag_seq: 0,
            heap_brk: HEAP_BASE,
            last_barrier_arrival: 0,
        })
        .collect();

    // Symmetric allocation log: the k-th allocation call returns the same
    // address on every core (RCCE's symmetric heap discipline).
    let mut alloc_log: Vec<u64> = Vec::new();
    // Flags: flag id -> per-UE value (each UE owns one copy in its MPB
    // slice, as in the real library). Allocation is symmetric like the
    // heap: the k-th RCCE_flag_alloc on every core names the same flag.
    let mut flags: Vec<Vec<i64>> = Vec::new();
    // Last core that wrote each flag copy, for the sync-event stream: a
    // satisfied RCCE_wait_until is a hand-off from that writer.
    let mut flag_writer: Vec<Vec<Option<usize>>> = Vec::new();
    // Monotone counter naming barrier episodes in the sync-event stream.
    let mut barrier_epoch: u64 = 0;

    // Lock state (test-and-set registers, managed at event level so
    // waiters block instead of spinning the DES).
    let mut lock_owner: Vec<Option<usize>> = vec![None; config.cores];
    let mut lock_waiters: Vec<VecDeque<usize>> = vec![VecDeque::new(); config.cores];

    let mut output: Vec<OutputLine> = Vec::new();
    let mut wtimes = WtimeTracker::new(cores);
    let mut steps: u64 = 0;
    const STEP_LIMIT: u64 = 2_000_000_000;

    loop {
        // Pick the running core with the smallest clock.
        let next = cs
            .iter()
            .enumerate()
            .filter(|(_, c)| c.state == CoreState::Running)
            .min_by_key(|(i, c)| (c.clock, *i))
            .map(|(i, _)| i);
        let Some(core) = next else {
            if cs.iter().all(|c| matches!(c.state, CoreState::Done { .. })) {
                break;
            }
            return Err(ExecError::new(
                "deadlock: no runnable core but not all cores finished",
            ));
        };
        steps += 1;
        if steps > STEP_LIMIT {
            return Err(ExecError::new("simulation exceeded the step limit"));
        }

        let outcome = cs[core].vm.run_until_event(program)?;
        match outcome {
            StepOutcome::Ran { cycles } => cs[core].clock += cycles,
            StepOutcome::Load { addr, kind, cycles } => {
                cs[core].clock += cycles;
                let lat = chip.access(core, addr, false, cs[core].clock);
                sink.record(TraceEvent {
                    core,
                    unit: core,
                    cycle: cs[core].clock,
                    addr,
                    region: MemorySystem::region_of(addr),
                    latency: lat,
                    write: false,
                });
                cs[core].clock += lat;
                let v = spaces.load(core, addr, kind);
                cs[core].vm.provide_load(v);
            }
            StepOutcome::Store {
                addr,
                kind,
                value,
                cycles,
            } => {
                cs[core].clock += cycles;
                let lat = chip.access(core, addr, true, cs[core].clock);
                sink.record(TraceEvent {
                    core,
                    unit: core,
                    cycle: cs[core].clock,
                    addr,
                    region: MemorySystem::region_of(addr),
                    latency: lat,
                    write: true,
                });
                cs[core].clock += lat;
                spaces.store(core, addr, kind, value);
                cs[core].vm.store_done();
            }
            StepOutcome::Syscall {
                intrinsic,
                args,
                cycles,
            } => {
                cs[core].clock += cycles;
                handle_syscall(
                    core,
                    intrinsic,
                    &args,
                    &mut cs,
                    &mut chip,
                    &mut rt,
                    &mut spaces,
                    &mut alloc_log,
                    &mut flags,
                    &mut flag_writer,
                    &mut lock_owner,
                    &mut lock_waiters,
                    &mut output,
                    &mut wtimes,
                    cores,
                    sink,
                )?;
            }
            StepOutcome::Finished { exit } => {
                cs[core].state = CoreState::Done { exit: exit.as_i() };
            }
        }

        // Barrier release check: all live cores waiting?
        try_release_barrier(&mut cs, &rt, &chip, &mut barrier_epoch, sink)?;
    }

    let total = cs.iter().map(|c| c.clock).max().unwrap_or(0);
    let timed = wtimes.widest_interval().unwrap_or(total);
    output.sort_by_key(|l| (l.at, l.who));
    let exit_code = match cs[0].state {
        CoreState::Done { exit } => exit,
        _ => 0,
    };
    Ok(RunResult {
        total_cycles: total,
        timed_cycles: timed,
        output,
        exit_code,
        mem_stats: chip.stats(),
        stats_matrix: chip.stats_matrix().clone(),
        mpb_high_water: chip.mpb_high_water(),
        per_unit_cycles: cs
            .iter()
            .map(|c| {
                if c.last_barrier_arrival > 0 {
                    c.last_barrier_arrival
                } else {
                    c.clock
                }
            })
            .collect(),
    })
}

fn try_release_barrier<S: TraceSink>(
    cs: &mut [Core],
    rt: &RcceRuntime,
    chip: &MemorySystem,
    barrier_epoch: &mut u64,
    sink: &mut S,
) -> Result<(), ExecError> {
    let total = cs.len();
    let in_barrier = cs
        .iter()
        .filter(|c| matches!(c.state, CoreState::InBarrier { .. }))
        .count();
    if in_barrier == 0 {
        return Ok(());
    }
    let done = cs
        .iter()
        .filter(|c| matches!(c.state, CoreState::Done { .. }))
        .count();
    // RCCE_barrier(&RCCE_COMM_WORLD) involves every UE: if any core has
    // already exited, the arrivals can never complete — on silicon the
    // program would hang.
    if done > 0 && in_barrier + done == total {
        return Err(ExecError::new(
            "barrier deadlock: some cores exited before the barrier",
        ));
    }
    if in_barrier < total {
        return Ok(());
    }
    let latest = cs
        .iter()
        .filter_map(|c| match c.state {
            CoreState::InBarrier { arrived_at } => Some(arrived_at),
            _ => None,
        })
        .max()
        .expect("at least one in barrier");
    let release = latest + rt.barrier_cost(chip);
    let epoch = *barrier_epoch;
    *barrier_epoch += 1;
    for (i, c) in cs.iter().enumerate() {
        if let CoreState::InBarrier { arrived_at } = c.state {
            sink.sync(SyncEvent::BarrierArrive {
                unit: i,
                epoch,
                cycle: arrived_at,
            });
        }
    }
    for (i, c) in cs.iter_mut().enumerate() {
        if matches!(c.state, CoreState::InBarrier { .. }) {
            sink.sync(SyncEvent::BarrierRelease {
                unit: i,
                epoch,
                cycle: release,
            });
            c.clock = release;
            c.state = CoreState::Running;
            c.vm.syscall_return(Value::I(0));
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn handle_syscall<S: TraceSink>(
    core: usize,
    intr: Intrinsic,
    args: &[Value],
    cs: &mut [Core],
    chip: &mut MemorySystem,
    rt: &mut RcceRuntime,
    spaces: &mut DataSpaces,
    alloc_log: &mut Vec<u64>,
    flags: &mut Vec<Vec<i64>>,
    flag_writer: &mut Vec<Vec<Option<usize>>>,
    lock_owner: &mut [Option<usize>],
    lock_waiters: &mut [VecDeque<usize>],
    output: &mut Vec<OutputLine>,
    wtimes: &mut WtimeTracker,
    cores: usize,
    sink: &mut S,
) -> Result<(), ExecError> {
    let ret = match intr {
        Intrinsic::RcceInit => {
            cs[core].clock += syscall_cost::RCCE_INIT;
            Value::I(0)
        }
        Intrinsic::RcceFinalize => {
            cs[core].clock += syscall_cost::RCCE_FINALIZE;
            Value::I(0)
        }
        Intrinsic::RcceUe => Value::I(core as i64),
        Intrinsic::RcceNumUes => Value::I(cores as i64),
        Intrinsic::RcceShmalloc | Intrinsic::RcceMpbMalloc => {
            let bytes = args.first().copied().unwrap_or(Value::I(0)).as_i().max(0) as usize;
            cs[core].clock += syscall_cost::ALLOC;
            let seq = cs[core].alloc_seq;
            cs[core].alloc_seq += 1;
            let addr = if seq < alloc_log.len() {
                alloc_log[seq]
            } else {
                let a = match intr {
                    Intrinsic::RcceShmalloc => rt
                        .shmalloc(bytes)
                        .map_err(|e| ExecError::new(e.to_string()))?,
                    _ => rt
                        .mpb_malloc(chip, bytes)
                        .map_err(|e| ExecError::new(e.to_string()))?,
                };
                alloc_log.push(a);
                a
            };
            Value::I(addr as i64)
        }
        Intrinsic::RcceBarrier => {
            cs[core].last_barrier_arrival = cs[core].clock;
            cs[core].state = CoreState::InBarrier {
                arrived_at: cs[core].clock,
            };
            // No syscall_return: the VM stays pending until released.
            return Ok(());
        }
        Intrinsic::RcceAcquireLock => {
            let id = args.first().copied().unwrap_or(Value::I(0)).as_i().max(0) as usize
                % lock_owner.len();
            let trip = chip.mesh.mpb_round_trip(core, id).max(2);
            cs[core].clock += trip;
            if lock_owner[id].is_none() {
                lock_owner[id] = Some(core);
                sink.sync(SyncEvent::LockAcquire {
                    unit: core,
                    lock: id as u64,
                    cycle: cs[core].clock,
                });
                Value::I(0)
            } else {
                lock_waiters[id].push_back(core);
                cs[core].state = CoreState::WaitingLock { id };
                return Ok(());
            }
        }
        Intrinsic::RcceReleaseLock => {
            let id = args.first().copied().unwrap_or(Value::I(0)).as_i().max(0) as usize
                % lock_owner.len();
            let trip = chip.mesh.mpb_round_trip(core, id).max(2);
            cs[core].clock += trip;
            if lock_owner[id] != Some(core) {
                return Err(ExecError::new(format!(
                    "core {core} released lock {id} it does not hold"
                )));
            }
            lock_owner[id] = None;
            sink.sync(SyncEvent::LockRelease {
                unit: core,
                lock: id as u64,
                cycle: cs[core].clock,
            });
            if let Some(waiter) = lock_waiters[id].pop_front() {
                lock_owner[id] = Some(waiter);
                let grant = cs[core].clock.max(cs[waiter].clock)
                    + chip.mesh.mpb_round_trip(waiter, id).max(2);
                cs[waiter].clock = grant;
                sink.sync(SyncEvent::LockAcquire {
                    unit: waiter,
                    lock: id as u64,
                    cycle: grant,
                });
                cs[waiter].state = CoreState::Running;
                cs[waiter].vm.syscall_return(Value::I(0));
            }
            Value::I(0)
        }
        Intrinsic::RcceWtime | Intrinsic::Wtime => {
            wtimes.record(core, cs[core].clock);
            Value::F(rt.wtime(cs[core].clock))
        }
        Intrinsic::RccePut | Intrinsic::RcceGet => {
            let dst = args.first().copied().unwrap_or(Value::I(0)).as_addr();
            let src = args.get(1).copied().unwrap_or(Value::I(0)).as_addr();
            let bytes = args.get(2).copied().unwrap_or(Value::I(0)).as_i().max(0) as usize;
            let target =
                args.get(3).copied().unwrap_or(Value::I(0)).as_i().max(0) as usize % cores.max(1);
            spaces.copy_bytes(core, dst, src, bytes);
            cs[core].clock += rt.put_get_cost(chip, core, target, bytes);
            Value::I(0)
        }
        Intrinsic::Printf => {
            cs[core].clock += syscall_cost::PRINTF;
            let text = format_printf(core, args, spaces);
            output.push(OutputLine {
                at: cs[core].clock,
                who: core,
                text,
            });
            Value::I(0)
        }
        Intrinsic::Malloc => {
            let bytes = args.first().copied().unwrap_or(Value::I(0)).as_i().max(0) as u64;
            cs[core].clock += syscall_cost::ALLOC;
            let addr = cs[core].heap_brk;
            cs[core].heap_brk += (bytes + 31) & !31;
            Value::I(addr as i64)
        }
        Intrinsic::Exit => {
            let code = args.first().copied().unwrap_or(Value::I(0)).as_i();
            cs[core].state = CoreState::Done { exit: code };
            return Ok(());
        }
        Intrinsic::RcceFlagAlloc => {
            cs[core].clock += syscall_cost::ALLOC;
            let seq = cs[core].flag_seq;
            cs[core].flag_seq += 1;
            if seq >= flags.len() {
                flags.push(vec![0; cores]);
                flag_writer.push(vec![None; cores]);
            }
            if let Some(handle) = args.first() {
                spaces.store(
                    core,
                    handle.as_addr(),
                    hsm_vm::MemKind::I64,
                    Value::I(seq as i64),
                );
            }
            Value::I(0)
        }
        Intrinsic::RcceFlagWrite => {
            // RCCE_flag_write(&flag, value, ue)
            let id = flag_id(core, args.first(), spaces, flags.len())?;
            let value = args.get(1).copied().unwrap_or(Value::I(0)).as_i();
            let ue = args.get(2).copied().unwrap_or(Value::I(0)).as_i().max(0) as usize % cores;
            cs[core].clock +=
                chip.mesh.mpb_round_trip(core, ue).max(2) + chip.config.mpb_access_cycles;
            flags[id][ue] = value;
            flag_writer[id][ue] = Some(core);
            // Wake a waiter spinning on this copy.
            if cs[ue].state == (CoreState::WaitingFlag { flag: id, value }) {
                let wake = cs[core].clock.max(cs[ue].clock) + chip.config.mpb_access_cycles;
                cs[ue].clock = wake;
                if ue != core {
                    sink.sync(SyncEvent::Message {
                        from: core,
                        to: ue,
                        cycle: wake,
                    });
                }
                cs[ue].state = CoreState::Running;
                cs[ue].vm.syscall_return(Value::I(0));
            }
            Value::I(0)
        }
        Intrinsic::RcceFlagRead => {
            // RCCE_flag_read(&flag, &out, ue)
            let id = flag_id(core, args.first(), spaces, flags.len())?;
            let ue = args.get(2).copied().unwrap_or(Value::I(0)).as_i().max(0) as usize % cores;
            cs[core].clock +=
                chip.mesh.mpb_round_trip(core, ue).max(2) + chip.config.mpb_access_cycles;
            let v = flags[id][ue];
            // Observing a remote write through a flag read is a hand-off.
            if let Some(writer) = flag_writer[id][ue] {
                if writer != core {
                    sink.sync(SyncEvent::Message {
                        from: writer,
                        to: core,
                        cycle: cs[core].clock,
                    });
                }
            }
            if let Some(out) = args.get(1) {
                if out.as_i() != 0 {
                    spaces.store(core, out.as_addr(), hsm_vm::MemKind::I64, Value::I(v));
                }
            }
            Value::I(v)
        }
        Intrinsic::RcceWaitUntil => {
            // RCCE_wait_until(&flag, value) — spins on the caller's copy.
            let id = flag_id(core, args.first(), spaces, flags.len())?;
            let value = args.get(1).copied().unwrap_or(Value::I(0)).as_i();
            cs[core].clock += chip.config.mpb_access_cycles;
            if flags[id][core] == value {
                // Already satisfied: the last writer of this copy handed
                // off to us without blocking.
                if let Some(writer) = flag_writer[id][core] {
                    if writer != core {
                        sink.sync(SyncEvent::Message {
                            from: writer,
                            to: core,
                            cycle: cs[core].clock,
                        });
                    }
                }
                Value::I(0)
            } else {
                cs[core].state = CoreState::WaitingFlag { flag: id, value };
                return Ok(());
            }
        }
        Intrinsic::RcceSend => {
            // RCCE_send(buf, size, dest) — synchronous rendezvous.
            let buf = args.first().copied().unwrap_or(Value::I(0)).as_addr();
            let size = args.get(1).copied().unwrap_or(Value::I(0)).as_i().max(0) as usize;
            let dst = args.get(2).copied().unwrap_or(Value::I(0)).as_i().max(0) as usize % cores;
            if let CoreState::WaitingRecv {
                src,
                buf: rbuf,
                size: rsize,
            } = cs[dst].state
            {
                if src == core {
                    let n = size.min(rsize);
                    transfer(core, buf, dst, rbuf, n, cs, chip, rt, spaces, sink);
                    cs[dst].state = CoreState::Running;
                    cs[dst].vm.syscall_return(Value::I(0));
                    Value::I(0)
                } else {
                    cs[core].state = CoreState::WaitingSend { dst, buf, size };
                    return Ok(());
                }
            } else {
                cs[core].state = CoreState::WaitingSend { dst, buf, size };
                return Ok(());
            }
        }
        Intrinsic::RcceRecv => {
            // RCCE_recv(buf, size, src).
            let buf = args.first().copied().unwrap_or(Value::I(0)).as_addr();
            let size = args.get(1).copied().unwrap_or(Value::I(0)).as_i().max(0) as usize;
            let src = args.get(2).copied().unwrap_or(Value::I(0)).as_i().max(0) as usize % cores;
            if let CoreState::WaitingSend {
                dst,
                buf: sbuf,
                size: ssize,
            } = cs[src].state
            {
                if dst == core {
                    let n = size.min(ssize);
                    transfer(src, sbuf, core, buf, n, cs, chip, rt, spaces, sink);
                    cs[src].state = CoreState::Running;
                    cs[src].vm.syscall_return(Value::I(0));
                    Value::I(0)
                } else {
                    cs[core].state = CoreState::WaitingRecv { src, buf, size };
                    return Ok(());
                }
            } else {
                cs[core].state = CoreState::WaitingRecv { src, buf, size };
                return Ok(());
            }
        }
        Intrinsic::Sqrt | Intrinsic::Fabs => unreachable!("pure intrinsics run inline"),
        Intrinsic::PthreadCreate
        | Intrinsic::PthreadJoin
        | Intrinsic::PthreadExit
        | Intrinsic::PthreadSelf
        | Intrinsic::MutexInit
        | Intrinsic::MutexLock
        | Intrinsic::MutexUnlock
        | Intrinsic::MutexDestroy
        | Intrinsic::BarrierInit
        | Intrinsic::BarrierWait
        | Intrinsic::BarrierDestroy => {
            return Err(ExecError::new(format!(
                "pthread call {intr:?} reached RCCE mode: translation incomplete"
            )));
        }
    };
    cs[core].vm.syscall_return(ret);
    Ok(())
}

/// Resolves a flag handle argument to a flag id.
fn flag_id(
    core: usize,
    handle: Option<&Value>,
    spaces: &DataSpaces,
    count: usize,
) -> Result<usize, ExecError> {
    let Some(handle) = handle else {
        return Err(ExecError::new("flag call without a flag handle"));
    };
    let id = spaces
        .load(core, handle.as_addr(), hsm_vm::MemKind::I64)
        .as_i();
    if id < 0 || id as usize >= count {
        return Err(ExecError::new(format!(
            "flag handle {id} out of range (allocated: {count})"
        )));
    }
    Ok(id as usize)
}

/// Performs the rendezvous data movement of one send/recv pair: the
/// payload moves sender -> MPB -> receiver, both cores resuming at the
/// completion time.
#[allow(clippy::too_many_arguments)]
fn transfer<S: TraceSink>(
    src: usize,
    src_buf: u64,
    dst: usize,
    dst_buf: u64,
    bytes: usize,
    cs: &mut [Core],
    chip: &mut MemorySystem,
    rt: &RcceRuntime,
    spaces: &mut DataSpaces,
    sink: &mut S,
) {
    spaces.copy_cross(src, src_buf, dst, dst_buf, bytes);
    let meet = cs[src].clock.max(cs[dst].clock);
    let cost = rt.put_get_cost(chip, src, dst, bytes) + rt.put_get_cost(chip, dst, dst, bytes);
    let done = meet + cost;
    cs[src].clock = done;
    cs[dst].clock = done;
    // The rendezvous orders both sides against each other.
    sink.sync(SyncEvent::Message {
        from: src,
        to: dst,
        cycle: done,
    });
    sink.sync(SyncEvent::Message {
        from: dst,
        to: src,
        cycle: done,
    });
}

/// Formats a printf syscall, resolving the format string and any `%s`
/// arguments from the caller's visible memory.
pub(crate) fn format_printf(core: usize, args: &[Value], spaces: &DataSpaces) -> String {
    let Some(fmt_addr) = args.first() else {
        return String::new();
    };
    let fmt = spaces.read_cstr(core, fmt_addr.as_addr());
    let rest = &args[1..];
    let string_positions = printf::count_string_args(&fmt);
    let strings: Vec<String> = string_positions
        .iter()
        .filter_map(|&i| rest.get(i))
        .map(|v| spaces.read_cstr(core, v.as_addr()))
        .collect();
    printf::format(&fmt, rest, &strings)
}
