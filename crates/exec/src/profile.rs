//! First-class run profiles.
//!
//! Before this module, the observable signal of a simulated run was
//! fragmented across three layers: raw [`TraceEvent`]s/[`SyncEvent`]s in
//! [`crate::trace`], per-core × per-region counters in
//! [`scc_sim::StatsMatrix`], and whatever ad-hoc numbers each figure
//! script pulled out of a [`RunResult`]. A [`Profile`] unifies them into
//! one serializable, mergeable artifact per run:
//!
//! * **per-core reuse-distance histograms** over private-region cache
//!   lines, computed online with Olken's algorithm (a last-access map plus
//!   a Fenwick tree over the access sequence) while the run streams
//!   through a [`ProfileCollector`];
//! * **per-region access/sharing counts** (reads, writes, cycles, and how
//!   many cores touched each region);
//! * **sync-event summaries** — barrier epochs and wait cycles, lock
//!   acquires and cross-unit hand-offs, thread create/join counts, message
//!   rendezvous, and the task runtime's DMA transfer count and byte
//!   volume (via [`TraceSink::dma`]);
//! * **cycle totals** — makespan, `wtime`-bracketed cycles, per-unit
//!   clocks, retired instructions and the exit code, copied from the
//!   [`RunResult`].
//!
//! The collector is an ordinary [`TraceSink`], so profiling rides the
//! existing monomorphized trace path: the engine's cycle accounting is
//! identical with and without a collector attached (pinned by the
//! `profiling_does_not_perturb_timing` test). [`Profile::to_text`] is a
//! deterministic line-oriented codec (`hsmprofile 1` header) suitable for
//! content-addressed artifact stores; [`Profile::merge`] aggregates
//! repeated runs counter-wise.
//!
//! Reuse distance is the number of *distinct* cache lines touched between
//! two accesses to the same line. On a machine whose private caches are
//! (approximately) LRU, an access hits a cache of `C` lines iff its reuse
//! distance is `< C` — which is what lets `crates/predict` turn one
//! profiled run into a predicted core-count sweep surface: halving the
//! per-core working set shifts the histogram one power-of-two bucket down.

use crate::machine::{ExecError, RunResult};
use crate::trace::{SyncEvent, TraceEvent, TraceSink};
use scc_sim::Region;
use std::collections::HashMap;

/// Number of log₂ buckets in a [`ReuseHistogram`]: bucket 0 is distance
/// 0 (immediate re-reference), bucket `b` covers `[2^(b-1), 2^b)`, and the
/// last bucket absorbs everything larger.
pub const REUSE_BUCKETS: usize = 24;

/// Version tag of the [`Profile::to_text`] wire form.
pub const PROFILE_FORMAT_VERSION: u32 = 1;

/// A log₂-bucketed histogram of cache-line reuse distances plus the cold
/// (first-touch) count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReuseHistogram {
    /// Bucket counts (see [`REUSE_BUCKETS`] for the bucket boundaries).
    pub buckets: [u64; REUSE_BUCKETS],
    /// First accesses to a line (infinite reuse distance — compulsory
    /// misses under any cache size).
    pub cold: u64,
}

impl ReuseHistogram {
    /// The bucket a distance falls into.
    pub fn bucket_of(distance: u64) -> usize {
        if distance == 0 {
            0
        } else {
            ((64 - distance.leading_zeros()) as usize).min(REUSE_BUCKETS - 1)
        }
    }

    /// Records one re-reference at `distance` distinct lines.
    pub fn record(&mut self, distance: u64) {
        self.buckets[Self::bucket_of(distance)] += 1;
    }

    /// Re-references recorded (excludes cold misses).
    pub fn reuses(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// All accesses observed: re-references plus cold misses.
    pub fn total(&self) -> u64 {
        self.reuses() + self.cold
    }

    /// Counter-wise sum with another histogram.
    pub fn merge(&mut self, other: &ReuseHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.cold += other.cold;
    }

    /// The histogram with every distance scaled by `2^shift` (positive
    /// `shift` doubles distances, negative halves them) — the working-set
    /// transform the sweep predictor applies when the per-core data share
    /// changes by a power of two. Cold misses are unaffected.
    pub fn shifted(&self, shift: i32) -> ReuseHistogram {
        let mut out = ReuseHistogram {
            buckets: [0; REUSE_BUCKETS],
            cold: self.cold,
        };
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let target = if b == 0 {
                0
            } else {
                (b as i64 + i64::from(shift)).clamp(0, REUSE_BUCKETS as i64 - 1) as usize
            };
            out.buckets[target] += n;
        }
        out
    }

    /// Fraction of re-references with distance `< lines` — the hit rate of
    /// an idealized fully-associative LRU cache of that many lines
    /// (ignoring cold misses, which miss any cache).
    pub fn hit_fraction(&self, lines: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let limit = Self::bucket_of(lines.saturating_sub(1));
        let mut hits = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            // Bucket b covers [2^(b-1), 2^b); it is entirely < lines when
            // its upper bound fits. Partial buckets are counted whole —
            // the predictor calibrates the residual away at the seed.
            if b <= limit {
                hits += n;
            }
        }
        hits as f64 / total as f64
    }
}

/// One core's slice of a [`Profile`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CoreProfile {
    /// Reuse-distance histogram over private-region cache lines.
    pub reuse: ReuseHistogram,
    /// Accesses (loads + stores) per region, indexed by [`Region::index`].
    pub accesses: [u64; 3],
    /// Stores per region.
    pub writes: [u64; 3],
    /// Cycles spent in memory accesses per region.
    pub cycles: [u64; 3],
}

impl CoreProfile {
    /// Counter-wise sum with another core's slice.
    pub fn merge(&mut self, other: &CoreProfile) {
        self.reuse.merge(&other.reuse);
        for i in 0..3 {
            self.accesses[i] += other.accesses[i];
            self.writes[i] += other.writes[i];
            self.cycles[i] += other.cycles[i];
        }
    }
}

/// Chip-wide totals for one address-space region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegionProfile {
    /// Loads.
    pub reads: u64,
    /// Stores.
    pub writes: u64,
    /// Cycles spent accessing the region.
    pub cycles: u64,
    /// Cores that touched the region at least once — the sharing degree.
    pub sharers: u64,
}

/// Aggregated synchronization activity of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SyncSummary {
    /// Distinct barrier epochs observed.
    pub barrier_epochs: u64,
    /// Barrier arrivals (participants × epochs).
    pub barrier_arrivals: u64,
    /// Cycles units spent between arriving at a barrier and being
    /// released from it — the load-imbalance wait bill.
    pub barrier_wait_cycles: u64,
    /// Lock acquisitions (pthread mutex or RCCE test-and-set).
    pub lock_acquires: u64,
    /// Acquisitions where the previous holder was a *different* unit — a
    /// conservative proxy for contended hand-offs.
    pub lock_handoffs: u64,
    /// Threads/units spawned.
    pub thread_starts: u64,
    /// Join edges observed.
    pub thread_joins: u64,
    /// Point-to-point message rendezvous.
    pub messages: u64,
    /// Bulk DMA transfers billed by the task runtime.
    pub dma_transfers: u64,
    /// Bytes moved by those transfers.
    pub dma_bytes: u64,
}

impl SyncSummary {
    /// Counter-wise sum with another summary.
    pub fn merge(&mut self, other: &SyncSummary) {
        self.barrier_epochs += other.barrier_epochs;
        self.barrier_arrivals += other.barrier_arrivals;
        self.barrier_wait_cycles += other.barrier_wait_cycles;
        self.lock_acquires += other.lock_acquires;
        self.lock_handoffs += other.lock_handoffs;
        self.thread_starts += other.thread_starts;
        self.thread_joins += other.thread_joins;
        self.messages += other.messages;
        self.dma_transfers += other.dma_transfers;
        self.dma_bytes += other.dma_bytes;
    }
}

/// The unified, serializable observation record of one (or, after
/// [`Profile::merge`], several) simulated runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Profile {
    /// Runs aggregated into this profile (1 for a fresh profile).
    pub runs: u64,
    /// Makespan cycles, summed across merged runs.
    pub total_cycles: u64,
    /// `wtime`-bracketed cycles, summed across merged runs.
    pub timed_cycles: u64,
    /// Bytecode instructions retired, summed across merged runs.
    pub instructions: u64,
    /// Exit code of the (first) run.
    pub exit_code: i64,
    /// Final per-unit clocks (element-wise sums across merged runs).
    pub per_unit_cycles: Vec<u64>,
    /// Per-core observation slices, indexed by physical core id.
    pub per_core: Vec<CoreProfile>,
    /// Chip-wide per-region totals, indexed by [`Region::index`].
    pub regions: [RegionProfile; 3],
    /// Synchronization summary.
    pub sync: SyncSummary,
}

impl Profile {
    /// Cores with at least one recorded access.
    pub fn active_cores(&self) -> usize {
        self.per_core
            .iter()
            .filter(|c| c.accesses.iter().any(|&a| a > 0))
            .count()
    }

    /// The chip-wide reuse histogram: all cores' private-region
    /// histograms summed.
    pub fn reuse_total(&self) -> ReuseHistogram {
        let mut out = ReuseHistogram::default();
        for core in &self.per_core {
            out.merge(&core.reuse);
        }
        out
    }

    /// Aggregates another profile into this one: counters and cycle
    /// totals sum, `per_unit_cycles`/`per_core` extend to the longer
    /// length, and the exit code of `self` is retained. Merging is
    /// commutative up to the retained exit code and associative, so
    /// shard-and-merge pipelines produce identical bytes regardless of
    /// merge order.
    pub fn merge(&mut self, other: &Profile) {
        self.runs += other.runs;
        self.total_cycles += other.total_cycles;
        self.timed_cycles += other.timed_cycles;
        self.instructions += other.instructions;
        if self.per_unit_cycles.len() < other.per_unit_cycles.len() {
            self.per_unit_cycles.resize(other.per_unit_cycles.len(), 0);
        }
        for (i, &c) in other.per_unit_cycles.iter().enumerate() {
            self.per_unit_cycles[i] += c;
        }
        if self.per_core.len() < other.per_core.len() {
            self.per_core
                .resize(other.per_core.len(), CoreProfile::default());
        }
        for (i, c) in other.per_core.iter().enumerate() {
            self.per_core[i].merge(c);
        }
        for i in 0..3 {
            self.regions[i].reads += other.regions[i].reads;
            self.regions[i].writes += other.regions[i].writes;
            self.regions[i].cycles += other.regions[i].cycles;
            self.regions[i].sharers = self.regions[i].sharers.max(other.regions[i].sharers);
        }
        self.sync.merge(&other.sync);
    }

    /// Serializes to the deterministic `hsmprofile 1` text form: a fixed
    /// header, one line per chip-wide field, then one dense `core` line
    /// per core. Two equal profiles always produce identical bytes.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "hsmprofile {PROFILE_FORMAT_VERSION}");
        let _ = writeln!(
            s,
            "run {} {} {} {} {}",
            self.runs, self.total_cycles, self.timed_cycles, self.instructions, self.exit_code
        );
        let _ = write!(s, "units {}", self.per_unit_cycles.len());
        for c in &self.per_unit_cycles {
            let _ = write!(s, " {c}");
        }
        s.push('\n');
        for (i, r) in self.regions.iter().enumerate() {
            let _ = writeln!(
                s,
                "region {} {} {} {} {}",
                Region::ALL[i].name(),
                r.reads,
                r.writes,
                r.cycles,
                r.sharers
            );
        }
        let y = &self.sync;
        let _ = writeln!(
            s,
            "sync {} {} {} {} {} {} {} {} {} {}",
            y.barrier_epochs,
            y.barrier_arrivals,
            y.barrier_wait_cycles,
            y.lock_acquires,
            y.lock_handoffs,
            y.thread_starts,
            y.thread_joins,
            y.messages,
            y.dma_transfers,
            y.dma_bytes
        );
        let _ = writeln!(s, "cores {}", self.per_core.len());
        for (id, core) in self.per_core.iter().enumerate() {
            let _ = write!(s, "core {id} {}", core.reuse.cold);
            for b in &core.reuse.buckets {
                let _ = write!(s, " {b}");
            }
            for v in core
                .accesses
                .iter()
                .chain(core.writes.iter())
                .chain(core.cycles.iter())
            {
                let _ = write!(s, " {v}");
            }
            s.push('\n');
        }
        s
    }

    /// Parses the [`Profile::to_text`] form.
    ///
    /// # Errors
    ///
    /// Rejects a missing/unknown header and malformed or truncated lines.
    pub fn from_text(text: &str) -> Result<Profile, ExecError> {
        fn num<T: std::str::FromStr>(t: Option<&str>, what: &str) -> Result<T, ExecError> {
            t.ok_or_else(|| ExecError::new(format!("profile: missing {what}")))?
                .parse::<T>()
                .map_err(|_| ExecError::new(format!("profile: malformed {what}")))
        }
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default();
        if header != format!("hsmprofile {PROFILE_FORMAT_VERSION}") {
            return Err(ExecError::new(format!(
                "profile: unknown header `{header}`"
            )));
        }
        let mut p = Profile::default();
        let mut region_idx = 0usize;
        for line in lines {
            let mut t = line.split_whitespace();
            match t.next() {
                Some("run") => {
                    p.runs = num(t.next(), "runs")?;
                    p.total_cycles = num(t.next(), "total_cycles")?;
                    p.timed_cycles = num(t.next(), "timed_cycles")?;
                    p.instructions = num(t.next(), "instructions")?;
                    p.exit_code = num(t.next(), "exit_code")?;
                }
                Some("units") => {
                    let n: usize = num(t.next(), "unit count")?;
                    p.per_unit_cycles = (0..n)
                        .map(|_| num(t.next(), "unit cycles"))
                        .collect::<Result<_, _>>()?;
                }
                Some("region") => {
                    if region_idx >= 3 {
                        return Err(ExecError::new("profile: too many region lines"));
                    }
                    let name = t.next().unwrap_or_default();
                    if name != Region::ALL[region_idx].name() {
                        return Err(ExecError::new(format!(
                            "profile: region `{name}` out of order"
                        )));
                    }
                    let r = &mut p.regions[region_idx];
                    r.reads = num(t.next(), "region reads")?;
                    r.writes = num(t.next(), "region writes")?;
                    r.cycles = num(t.next(), "region cycles")?;
                    r.sharers = num(t.next(), "region sharers")?;
                    region_idx += 1;
                }
                Some("sync") => {
                    let y = &mut p.sync;
                    y.barrier_epochs = num(t.next(), "barrier_epochs")?;
                    y.barrier_arrivals = num(t.next(), "barrier_arrivals")?;
                    y.barrier_wait_cycles = num(t.next(), "barrier_wait_cycles")?;
                    y.lock_acquires = num(t.next(), "lock_acquires")?;
                    y.lock_handoffs = num(t.next(), "lock_handoffs")?;
                    y.thread_starts = num(t.next(), "thread_starts")?;
                    y.thread_joins = num(t.next(), "thread_joins")?;
                    y.messages = num(t.next(), "messages")?;
                    y.dma_transfers = num(t.next(), "dma_transfers")?;
                    y.dma_bytes = num(t.next(), "dma_bytes")?;
                }
                Some("cores") => {
                    let n: usize = num(t.next(), "core count")?;
                    p.per_core = vec![CoreProfile::default(); n];
                }
                Some("core") => {
                    let id: usize = num(t.next(), "core id")?;
                    let core = p
                        .per_core
                        .get_mut(id)
                        .ok_or_else(|| ExecError::new("profile: core id out of range"))?;
                    core.reuse.cold = num(t.next(), "cold count")?;
                    for b in 0..REUSE_BUCKETS {
                        core.reuse.buckets[b] = num(t.next(), "reuse bucket")?;
                    }
                    for i in 0..3 {
                        core.accesses[i] = num(t.next(), "core accesses")?;
                    }
                    for i in 0..3 {
                        core.writes[i] = num(t.next(), "core writes")?;
                    }
                    for i in 0..3 {
                        core.cycles[i] = num(t.next(), "core cycles")?;
                    }
                }
                Some(other) => {
                    return Err(ExecError::new(format!(
                        "profile: unknown line tag `{other}`"
                    )));
                }
                None => {}
            }
        }
        if region_idx != 3 {
            return Err(ExecError::new("profile: truncated (missing regions)"));
        }
        Ok(p)
    }
}

/// A Fenwick (binary-indexed) tree over the access sequence, supporting
/// append, point update and prefix sum in `O(log n)` — the classic data
/// structure behind Olken's online reuse-distance algorithm.
#[derive(Debug, Clone, Default)]
struct Fenwick {
    // 1-based; tree[i-1] covers the range (i - lowbit(i), i].
    tree: Vec<i64>,
}

impl Fenwick {
    /// Appends position `len+1` holding `value`.
    fn push(&mut self, value: i64) {
        let i = self.tree.len() + 1;
        let lowbit = i & i.wrapping_neg();
        // The new node covers (i - lowbit, i]; everything but `value`
        // is already known from existing prefix sums.
        let node = value + self.prefix(i - 1) - self.prefix(i - lowbit);
        self.tree.push(node);
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        while i <= self.tree.len() {
            self.tree[i - 1] += delta;
            i += i & i.wrapping_neg();
        }
    }

    fn prefix(&self, mut i: usize) -> i64 {
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i - 1];
            i -= i & i.wrapping_neg();
        }
        sum
    }
}

/// Per-core working state of the collector.
#[derive(Debug, Default)]
struct CoreState {
    /// 1-based index of the last access to each private line.
    last: HashMap<u64, usize>,
    /// +1 at the current last access of every line, 0 elsewhere; prefix
    /// sums count distinct lines in an index range.
    marks: Fenwick,
    /// Private-region accesses observed (the Fenwick length).
    time: usize,
    out: CoreProfile,
}

impl CoreState {
    fn observe(&mut self, line: u64) {
        self.time += 1;
        self.marks.push(1);
        match self.last.insert(line, self.time) {
            Some(prev) => {
                // Distinct lines touched strictly between the two
                // accesses to `line` = marked positions in (prev, time).
                let distance = self.marks.prefix(self.time - 1) - self.marks.prefix(prev);
                self.marks.add(prev, -1);
                self.out.reuse.record(distance as u64);
            }
            None => self.out.reuse.cold += 1,
        }
    }
}

/// A [`TraceSink`] that builds a [`Profile`] online as the engine runs.
///
/// Attach one to any `*_traced` entry point (or use the `*_profiled`
/// wrappers) and convert it with [`ProfileCollector::into_profile`] once
/// the run finishes. Reuse distances are exact (Olken's algorithm), not
/// sampled; memory cost is proportional to the private working set plus
/// one tree node per private access.
#[derive(Debug, Default)]
pub struct ProfileCollector {
    line_bytes: u64,
    cores: Vec<CoreState>,
    sync: SyncSummary,
    /// Pending (epoch, arrival cycle) per unit between arrive and release.
    pending_barrier: Vec<Option<(u64, u64)>>,
    last_epoch: Option<u64>,
    lock_owner: HashMap<u64, usize>,
}

impl ProfileCollector {
    /// A collector bucketing addresses into `line_bytes`-sized cache
    /// lines (use the config's `line_bytes`; 32 on the SCC).
    pub fn new(line_bytes: usize) -> Self {
        ProfileCollector {
            line_bytes: line_bytes.max(1) as u64,
            ..ProfileCollector::default()
        }
    }

    fn core_mut(&mut self, core: usize) -> &mut CoreState {
        if self.cores.len() <= core {
            self.cores.resize_with(core + 1, CoreState::default);
        }
        &mut self.cores[core]
    }

    /// Finalizes the collector against the run it observed, pulling cycle
    /// totals from `result` and everything event-shaped from the
    /// collector itself.
    pub fn into_profile(self, result: &RunResult) -> Profile {
        let mut regions = [RegionProfile::default(); 3];
        for state in &self.cores {
            for (i, region) in regions.iter_mut().enumerate() {
                let acc = state.out.accesses[i];
                region.reads += acc - state.out.writes[i];
                region.writes += state.out.writes[i];
                region.cycles += state.out.cycles[i];
                if acc > 0 {
                    region.sharers += 1;
                }
            }
        }
        Profile {
            runs: 1,
            total_cycles: result.total_cycles,
            timed_cycles: result.timed_cycles,
            instructions: result.instructions,
            exit_code: result.exit_code,
            per_unit_cycles: result.per_unit_cycles.clone(),
            per_core: self.cores.into_iter().map(|s| s.out).collect(),
            regions,
            sync: self.sync,
        }
    }
}

impl TraceSink for ProfileCollector {
    fn record(&mut self, event: TraceEvent) {
        let line_bytes = self.line_bytes;
        let state = self.core_mut(event.core);
        let i = event.region.index();
        state.out.accesses[i] += 1;
        if event.write {
            state.out.writes[i] += 1;
        }
        state.out.cycles[i] += event.latency;
        if event.region == Region::Private {
            state.observe(event.addr / line_bytes);
        }
    }

    fn sync(&mut self, event: SyncEvent) {
        match event {
            SyncEvent::ThreadStart { .. } => self.sync.thread_starts += 1,
            SyncEvent::ThreadJoin { .. } => self.sync.thread_joins += 1,
            SyncEvent::LockAcquire { unit, lock, .. } => {
                self.sync.lock_acquires += 1;
                if let Some(prev) = self.lock_owner.insert(lock, unit) {
                    if prev != unit {
                        self.sync.lock_handoffs += 1;
                    }
                }
            }
            SyncEvent::LockRelease { .. } => {}
            SyncEvent::BarrierArrive { unit, epoch, cycle } => {
                self.sync.barrier_arrivals += 1;
                if self.last_epoch != Some(epoch) {
                    self.last_epoch = Some(epoch);
                    self.sync.barrier_epochs += 1;
                }
                if self.pending_barrier.len() <= unit {
                    self.pending_barrier.resize(unit + 1, None);
                }
                self.pending_barrier[unit] = Some((epoch, cycle));
            }
            SyncEvent::BarrierRelease { unit, epoch, cycle } => {
                if let Some(Some((e, at))) = self.pending_barrier.get_mut(unit).map(Option::take) {
                    if e == epoch {
                        self.sync.barrier_wait_cycles += cycle.saturating_sub(at);
                    }
                }
            }
            SyncEvent::Message { .. } => self.sync.messages += 1,
        }
    }

    fn dma(&mut self, _from: usize, _to: usize, bytes: u64, _cycle: u64) {
        self.sync.dma_transfers += 1;
        self.sync.dma_bytes += bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(core: usize, addr: u64, write: bool) -> TraceEvent {
        TraceEvent {
            core,
            unit: core,
            cycle: 0,
            addr,
            region: Region::Private,
            latency: 3,
            write,
        }
    }

    #[test]
    fn reuse_distances_follow_olken() {
        // Lines: A B C A B B  (line size 32).
        let mut c = ProfileCollector::new(32);
        for (i, line) in [0u64, 1, 2, 0, 1, 1].iter().enumerate() {
            c.record(access(0, line * 32 + (i as u64 % 4), false));
        }
        let result = empty_result();
        let p = c.into_profile(&result);
        let h = &p.per_core[0].reuse;
        assert_eq!(h.cold, 3, "A, B, C first touches");
        // A re-access: {B, C} in between → distance 2 → bucket 2.
        // B re-access: {C, A} in between → distance 2 → bucket 2.
        // B re-access: nothing in between → distance 0 → bucket 0.
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.reuses(), 3);
    }

    #[test]
    fn reuse_distance_counts_distinct_lines_not_accesses() {
        // A B B B A: three B accesses between the A pair, but only one
        // distinct line → distance 1.
        let mut c = ProfileCollector::new(32);
        for line in [0u64, 1, 1, 1, 0] {
            c.record(access(0, line * 32, false));
        }
        let p = c.into_profile(&empty_result());
        let h = &p.per_core[0].reuse;
        assert_eq!(h.buckets[1], 1, "distance 1 lands in [1,2)");
        assert_eq!(h.buckets[0], 2, "the two immediate B re-accesses");
    }

    #[test]
    fn histogram_shift_scales_distances() {
        let mut h = ReuseHistogram::default();
        h.record(0);
        h.record(6); // bucket 3
        h.record(600); // bucket 10
        h.cold = 5;
        let down = h.shifted(-1);
        assert_eq!(down.buckets[0], 1);
        assert_eq!(down.buckets[2], 1);
        assert_eq!(down.buckets[9], 1);
        assert_eq!(down.cold, 5);
        let up = h.shifted(2);
        assert_eq!(up.buckets[5], 1);
        assert_eq!(up.buckets[12], 1);
        assert_eq!(up.total(), h.total());
    }

    #[test]
    fn hit_fraction_tracks_cache_sizes() {
        let mut h = ReuseHistogram::default();
        for _ in 0..8 {
            h.record(3); // bucket 2: hits a 512-line cache
        }
        for _ in 0..2 {
            h.record(100_000); // bucket 17: misses both levels
        }
        assert!((h.hit_fraction(512) - 0.8).abs() < 1e-9);
        assert!((h.hit_fraction(1 << 20) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn text_codec_round_trips_and_is_deterministic() {
        let mut c = ProfileCollector::new(32);
        for line in [0u64, 1, 0, 2, 1] {
            c.record(access(1, line * 32, line == 2));
        }
        c.sync(SyncEvent::BarrierArrive {
            unit: 0,
            epoch: 0,
            cycle: 10,
        });
        c.sync(SyncEvent::BarrierRelease {
            unit: 0,
            epoch: 0,
            cycle: 25,
        });
        c.dma(0, 1, 256, 99);
        let p = c.into_profile(&empty_result());
        let text = p.to_text();
        assert!(text.starts_with("hsmprofile 1\n"));
        let back = Profile::from_text(&text).expect("parses");
        assert_eq!(p, back);
        assert_eq!(text, back.to_text(), "serialize∘parse is the identity");
        assert_eq!(back.sync.barrier_wait_cycles, 15);
        assert_eq!(back.sync.dma_bytes, 256);
    }

    #[test]
    fn malformed_profiles_are_rejected() {
        assert!(Profile::from_text("").is_err());
        assert!(Profile::from_text("hsmprofile 9\n").is_err());
        assert!(Profile::from_text("hsmprofile 1\nrun 1 2\n").is_err());
        assert!(Profile::from_text("hsmprofile 1\nbogus 1\n").is_err());
        let truncated = "hsmprofile 1\nrun 1 2 3 4 5\nunits 0\n";
        assert!(Profile::from_text(truncated).is_err(), "missing regions");
    }

    #[test]
    fn merge_sums_counters_and_is_associative() {
        let mut a = one_core_profile(0, 7);
        let b = one_core_profile(1, 11);
        let c = one_core_profile(0, 13);
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        a.merge(&bc);
        // Associative up to the retained exit code (both kept `a`'s).
        assert_eq!(a.to_text(), ab_c.to_text());
        assert_eq!(a.runs, 3);
        assert_eq!(a.total_cycles, 7 + 11 + 13);
    }

    fn one_core_profile(core: usize, cycles: u64) -> Profile {
        let mut c = ProfileCollector::new(32);
        c.record(access(core, 64, false));
        c.record(access(core, 64, true));
        let mut r = empty_result();
        r.total_cycles = cycles;
        c.into_profile(&r)
    }

    fn empty_result() -> RunResult {
        RunResult {
            total_cycles: 0,
            timed_cycles: 0,
            output: Vec::new(),
            exit_code: 0,
            mem_stats: scc_sim::MemStats::default(),
            stats_matrix: scc_sim::StatsMatrix::default(),
            mpb_high_water: 0,
            per_unit_cycles: Vec::new(),
            instructions: 0,
            events: 0,
        }
    }
}
