//! Pluggable coherence models: how a load's *value* resolves against the
//! simulated memory, independently of the synchronization semantics.
//!
//! The paper's entire argument turns on this axis. The SCC's hardware
//! provides no coherence for shared pages; software either avoids caching
//! shared data (the translated RCCE programs) or silently reads stale
//! lines (a naively ported pthread program). Historically the simulator
//! could only *flag* such staleness through the sharing oracle; a
//! [`CoherenceModel`] makes it part of execution, so a program running
//! under [`NonCoherentWriteBack`] really does observe stale values and
//! produce wrong output.
//!
//! Three models ship:
//!
//! | Model                    | Values                       | Timing              |
//! |--------------------------|------------------------------|---------------------|
//! | [`Coherent`]             | backing store, always fresh  | caches + mesh + MC  |
//! | [`NonCoherentWriteBack`] | per-unit write-back views    | caches + mesh + MC  |
//! | [`SeqCstReference`]      | backing store, always fresh  | flat, no caches     |
//!
//! Adding a model means implementing [`CoherenceModel`] (four methods,
//! two with defaults) and wiring a new [`ExecModel`] variant through the
//! `run_*_model` entry points — no engine changes.

use crate::machine::DataSpaces;
use hsm_vm::data::ByteMemory;
use hsm_vm::{MemKind, Value};
use scc_sim::{MemorySystem, Region};
use std::collections::BTreeSet;

/// Selects which [`CoherenceModel`] a run executes under. This is the
/// public, plumbable axis: pipelines, sweeps and the bench manifest carry
/// an `ExecModel`, and the engine monomorphizes over the matching model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecModel {
    /// Ground truth: every load sees the latest store (the behavior of
    /// all runs before models existed). Produces the golden numbers.
    #[default]
    Coherent,
    /// Private lines go stale: each thread/core keeps a write-back view
    /// of cacheable memory that is reconciled only at explicit flush
    /// points (RCCE barriers). Un-translated pthread programs never
    /// flush, so cross-thread sharing through private memory reads stale
    /// data — the hardware the paper ports *away from*.
    NonCoherentWriteBack,
    /// Differential-testing reference: sequentially consistent values on
    /// a flat, cacheless timing model. Any value divergence between this
    /// and [`ExecModel::Coherent`] is an engine bug, not a memory effect.
    SeqCstReference,
}

impl ExecModel {
    /// All models, in documentation order.
    pub const ALL: [ExecModel; 3] = [
        ExecModel::Coherent,
        ExecModel::NonCoherentWriteBack,
        ExecModel::SeqCstReference,
    ];

    /// Stable machine-readable name (manifest field, CLI value).
    pub fn label(self) -> &'static str {
        match self {
            ExecModel::Coherent => "coherent",
            ExecModel::NonCoherentWriteBack => "non_coherent_wb",
            ExecModel::SeqCstReference => "seq_cst_ref",
        }
    }

    /// Parses a [`ExecModel::label`] back into a model.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.label() == s)
    }
}

/// How memory accesses resolve: the value a load returns, the latency an
/// access costs, and what happens at an explicit flush point.
///
/// The engine calls [`latency`](CoherenceModel::latency) once per VM
/// load/store (the timing half) and [`load`](CoherenceModel::load) /
/// [`store`](CoherenceModel::store) for *every* byte of simulated data
/// movement — including syscall-side traffic such as `pthread_create`
/// writing the thread handle, `RCCE_put` payload copies, and `printf`
/// resolving its format string. Routing the syscall side through the
/// model is what lets staleness corrupt observable output rather than
/// just timing.
pub trait CoherenceModel {
    /// Stable name for diagnostics.
    fn label(&self) -> &'static str;

    /// Cycles one access by `core` costs at simulated time `now`.
    fn latency(
        &mut self,
        chip: &mut MemorySystem,
        core: usize,
        addr: u64,
        write: bool,
        now: u64,
    ) -> u64 {
        chip.access(core, addr, write, now)
    }

    /// The value `unit` (scheduled on `core`) observes at `addr`.
    fn load(
        &mut self,
        unit: usize,
        core: usize,
        addr: u64,
        kind: MemKind,
        spaces: &DataSpaces,
    ) -> Value;

    /// Applies a store by `unit` (scheduled on `core`).
    fn store(
        &mut self,
        unit: usize,
        core: usize,
        addr: u64,
        kind: MemKind,
        v: Value,
        spaces: &mut DataSpaces,
    );

    /// Software-managed coherence point: write `unit`'s modified lines
    /// back and drop its cached copies. Called by sync models at their
    /// flush semantics (RCCE barriers); a no-op for models whose loads
    /// are always fresh.
    fn flush_unit(
        &mut self,
        _unit: usize,
        _core: usize,
        _spaces: &mut DataSpaces,
        _chip: &mut MemorySystem,
    ) {
    }
}

/// Ground-truth model: values come straight from the backing store,
/// timing from the normal cache/mesh/DRAM path. Byte-identical to the
/// pre-model engines.
#[derive(Debug, Clone, Copy, Default)]
pub struct Coherent;

impl CoherenceModel for Coherent {
    fn label(&self) -> &'static str {
        ExecModel::Coherent.label()
    }

    // The golden-path model is a zero-sized pass-through: `#[inline]` lets
    // the monomorphized engine collapse a coherent load/store into a
    // direct `DataSpaces` access with no model-layer frame.
    #[inline]
    fn load(
        &mut self,
        _unit: usize,
        core: usize,
        addr: u64,
        kind: MemKind,
        spaces: &DataSpaces,
    ) -> Value {
        spaces.load(core, addr, kind)
    }

    #[inline]
    fn store(
        &mut self,
        _unit: usize,
        core: usize,
        addr: u64,
        kind: MemKind,
        v: Value,
        spaces: &mut DataSpaces,
    ) {
        spaces.store(core, addr, kind, v);
    }
}

/// Sequentially consistent values on a flat, cacheless machine (see
/// [`MemorySystem::access_flat`]). The reference arm of differential
/// tests: no caches means nothing can go stale, so output and exit codes
/// must match [`Coherent`] exactly; only timing differs.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqCstReference;

impl CoherenceModel for SeqCstReference {
    fn label(&self) -> &'static str {
        ExecModel::SeqCstReference.label()
    }

    fn latency(
        &mut self,
        chip: &mut MemorySystem,
        core: usize,
        addr: u64,
        write: bool,
        now: u64,
    ) -> u64 {
        chip.access_flat(core, addr, write, now)
    }

    fn load(
        &mut self,
        _unit: usize,
        core: usize,
        addr: u64,
        kind: MemKind,
        spaces: &DataSpaces,
    ) -> Value {
        spaces.load(core, addr, kind)
    }

    fn store(
        &mut self,
        _unit: usize,
        core: usize,
        addr: u64,
        kind: MemKind,
        v: Value,
        spaces: &mut DataSpaces,
    ) {
        spaces.store(core, addr, kind, v);
    }
}

/// Write-back caches with **no coherence**, at value level: each unit
/// keeps its own view of cacheable (private-region) memory, filled line
/// by line from the backing store on first touch and written back only
/// at an explicit [`flush_unit`](CoherenceModel::flush_unit).
///
/// * A load that hits a resident line returns the view's copy — however
///   stale it is.
/// * A store dirties the line in the unit's view; the backing store (and
///   therefore every other unit) does not see it until a flush.
/// * Shared-DRAM and MPB addresses bypass the views entirely, exactly as
///   the SCC's uncacheable shared pages bypass the L1/L2.
///
/// Translated RCCE programs keep shared data in uncacheable regions and
/// flush at barriers, so they stay correct under this model. Pthread
/// programs sharing globals through private memory — the adversarial
/// corpus — observably break, which is the paper's motivation made
/// executable.
#[derive(Debug, Default)]
pub struct NonCoherentWriteBack {
    line_bytes: u64,
    /// Per-unit copy of the private lines the unit has touched.
    views: Vec<ByteMemory>,
    /// Line base addresses resident in each unit's view (`BTreeSet` so
    /// flush order, and thus the run, is deterministic).
    resident: Vec<BTreeSet<u64>>,
    /// Line base addresses modified since the unit's last flush.
    dirty: Vec<BTreeSet<u64>>,
}

impl NonCoherentWriteBack {
    /// Creates the model for `line_bytes`-sized cache lines (the
    /// granularity at which staleness manifests).
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two.
    pub fn new(line_bytes: usize) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        NonCoherentWriteBack {
            line_bytes: line_bytes as u64,
            views: Vec::new(),
            resident: Vec::new(),
            dirty: Vec::new(),
        }
    }

    fn ensure_unit(&mut self, unit: usize) {
        while self.views.len() <= unit {
            self.views.push(ByteMemory::new());
            self.resident.push(BTreeSet::new());
            self.dirty.push(BTreeSet::new());
        }
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes - 1)
    }

    /// Fills every line the access `[addr, addr + size)` touches into
    /// `unit`'s view (write-allocate: stores fill first, then modify).
    fn make_resident(
        &mut self,
        unit: usize,
        core: usize,
        addr: u64,
        size: u64,
        spaces: &DataSpaces,
    ) {
        let first = self.line_of(addr);
        let last = self.line_of(addr + size.max(1) - 1);
        let mut base = first;
        loop {
            if self.resident[unit].insert(base) {
                for i in 0..self.line_bytes {
                    let v = spaces.load(core, base + i, MemKind::I8);
                    self.views[unit].store(base + i, MemKind::I8, v);
                }
            }
            if base == last {
                break;
            }
            base += self.line_bytes;
        }
    }
}

impl CoherenceModel for NonCoherentWriteBack {
    fn label(&self) -> &'static str {
        ExecModel::NonCoherentWriteBack.label()
    }

    fn load(
        &mut self,
        unit: usize,
        core: usize,
        addr: u64,
        kind: MemKind,
        spaces: &DataSpaces,
    ) -> Value {
        if MemorySystem::region_of(addr) != Region::Private {
            return spaces.load(core, addr, kind);
        }
        self.ensure_unit(unit);
        self.make_resident(unit, core, addr, kind.bytes() as u64, spaces);
        self.views[unit].load(addr, kind)
    }

    fn store(
        &mut self,
        unit: usize,
        core: usize,
        addr: u64,
        kind: MemKind,
        v: Value,
        spaces: &mut DataSpaces,
    ) {
        if MemorySystem::region_of(addr) != Region::Private {
            spaces.store(core, addr, kind, v);
            return;
        }
        self.ensure_unit(unit);
        let size = kind.bytes() as u64;
        self.make_resident(unit, core, addr, size, spaces);
        self.views[unit].store(addr, kind, v);
        let first = self.line_of(addr);
        let last = self.line_of(addr + size.max(1) - 1);
        let mut base = first;
        loop {
            self.dirty[unit].insert(base);
            if base == last {
                break;
            }
            base += self.line_bytes;
        }
    }

    fn flush_unit(
        &mut self,
        unit: usize,
        core: usize,
        spaces: &mut DataSpaces,
        chip: &mut MemorySystem,
    ) {
        self.ensure_unit(unit);
        let dirty = std::mem::take(&mut self.dirty[unit]);
        for base in dirty {
            for i in 0..self.line_bytes {
                let v = self.views[unit].load(base + i, MemKind::I8);
                spaces.store(core, base + i, MemKind::I8, v);
            }
        }
        // Drop the cached copies so post-flush loads refill from the
        // backing store, and mirror the flush into the timing caches.
        self.resident[unit].clear();
        chip.flush_core(core);
        chip.invalidate_core(core);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sim::memory::SHARED_DRAM_BASE;
    use scc_sim::SccConfig;

    #[test]
    fn exec_model_labels_round_trip() {
        for m in ExecModel::ALL {
            assert_eq!(ExecModel::parse(m.label()), Some(m));
        }
        assert_eq!(ExecModel::parse("mesi"), None);
        assert_eq!(ExecModel::default(), ExecModel::Coherent);
    }

    #[test]
    fn non_coherent_views_hide_cross_unit_stores() {
        let mut spaces = DataSpaces::new(1);
        let mut m = NonCoherentWriteBack::new(32);
        // Unit 0 reads addr 0x100 (fills its line), then unit 1 writes it.
        assert_eq!(m.load(0, 0, 0x100, MemKind::I32, &spaces), Value::I(0));
        m.store(1, 0, 0x100, MemKind::I32, Value::I(7), &mut spaces);
        // Unit 0 still sees its stale fill; the backing store is untouched
        // too (write-back, not write-through).
        assert_eq!(m.load(0, 0, 0x100, MemKind::I32, &spaces), Value::I(0));
        assert_eq!(spaces.load(0, 0x100, MemKind::I32), Value::I(0));
        // Unit 1 sees its own store.
        assert_eq!(m.load(1, 0, 0x100, MemKind::I32, &spaces), Value::I(7));
    }

    #[test]
    fn flush_publishes_and_refills() {
        let mut spaces = DataSpaces::new(1);
        let mut chip = MemorySystem::new(SccConfig::table_6_1());
        let mut m = NonCoherentWriteBack::new(32);
        m.load(0, 0, 0x100, MemKind::I32, &spaces); // stale fill of zero
        m.store(1, 0, 0x100, MemKind::I32, Value::I(7), &mut spaces);
        m.flush_unit(1, 0, &mut spaces, &mut chip);
        assert_eq!(spaces.load(0, 0x100, MemKind::I32), Value::I(7));
        // Unit 0's copy is still the stale pre-flush fill until *it*
        // flushes (or first touches the line after its own flush).
        assert_eq!(m.load(0, 0, 0x100, MemKind::I32, &spaces), Value::I(0));
        m.flush_unit(0, 0, &mut spaces, &mut chip);
        assert_eq!(m.load(0, 0, 0x100, MemKind::I32, &spaces), Value::I(7));
    }

    #[test]
    fn shared_regions_bypass_the_views() {
        let mut spaces = DataSpaces::new(1);
        let mut m = NonCoherentWriteBack::new(32);
        m.store(
            0,
            0,
            SHARED_DRAM_BASE,
            MemKind::I64,
            Value::I(9),
            &mut spaces,
        );
        assert_eq!(
            m.load(1, 0, SHARED_DRAM_BASE, MemKind::I64, &spaces),
            Value::I(9),
            "uncacheable shared DRAM is immediately visible to every unit"
        );
    }

    #[test]
    fn straddling_store_dirties_both_lines() {
        let mut spaces = DataSpaces::new(1);
        let mut chip = MemorySystem::new(SccConfig::table_6_1());
        let mut m = NonCoherentWriteBack::new(32);
        // An 8-byte store at 0x11C crosses the 0x100/0x120 line boundary.
        m.store(0, 0, 0x11C, MemKind::I64, Value::I(-1), &mut spaces);
        m.flush_unit(0, 0, &mut spaces, &mut chip);
        assert_eq!(spaces.load(0, 0x11C, MemKind::I64), Value::I(-1));
    }
}
