//! Shared machine state: data spaces, run results, and the execution error
//! type.

use hsm_vm::data::ByteMemory;
use hsm_vm::{MemKind, Value, VmError};
use scc_sim::{MemStats, MemorySystem, Region, StatsMatrix};
use std::fmt;

/// An execution failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecError {
    /// Description.
    pub message: String,
}

impl ExecError {
    /// Creates an error.
    pub fn new(m: impl Into<String>) -> Self {
        ExecError { message: m.into() }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "execution error: {}", self.message)
    }
}

impl std::error::Error for ExecError {}

impl From<VmError> for ExecError {
    fn from(e: VmError) -> Self {
        ExecError::new(e.to_string())
    }
}

impl From<hsm_vm::CompileError> for ExecError {
    fn from(e: hsm_vm::CompileError) -> Self {
        ExecError::new(e.to_string())
    }
}

/// The data contents of the simulated machine (timing lives in
/// [`MemorySystem`]; bytes live here).
#[derive(Debug)]
pub struct DataSpaces {
    /// Per-core private memories (a single one in pthread mode).
    pub private: Vec<ByteMemory>,
    /// Shared off-chip DRAM contents.
    pub shared: ByteMemory,
    /// MPB contents.
    pub mpb: ByteMemory,
}

impl DataSpaces {
    /// Creates spaces for `cores` cores.
    pub fn new(cores: usize) -> Self {
        DataSpaces {
            private: (0..cores).map(|_| ByteMemory::new()).collect(),
            shared: ByteMemory::new(),
            mpb: ByteMemory::new(),
        }
    }

    /// Loads a value, routing by address region.
    #[inline]
    pub fn load(&self, core: usize, addr: u64, kind: MemKind) -> Value {
        match MemorySystem::region_of(addr) {
            Region::Private => self.private[core].load(addr, kind),
            Region::SharedDram => self.shared.load(addr, kind),
            Region::Mpb => self.mpb.load(addr, kind),
        }
    }

    /// Stores a value, routing by address region.
    #[inline]
    pub fn store(&mut self, core: usize, addr: u64, kind: MemKind, v: Value) {
        match MemorySystem::region_of(addr) {
            Region::Private => self.private[core].store(addr, kind, v),
            Region::SharedDram => self.shared.store(addr, kind, v),
            Region::Mpb => self.mpb.store(addr, kind, v),
        }
    }

    /// Reads a NUL-terminated string visible to `core`.
    pub fn read_cstr(&self, core: usize, addr: u64) -> String {
        match MemorySystem::region_of(addr) {
            Region::Private => self.private[core].read_cstr(addr),
            Region::SharedDram => self.shared.read_cstr(addr),
            Region::Mpb => self.mpb.read_cstr(addr),
        }
    }

    /// Raw byte copy between (possibly different) regions, as seen by
    /// `core` (used by `RCCE_put`/`RCCE_get`).
    pub fn copy_bytes(&mut self, core: usize, dst: u64, src: u64, bytes: usize) {
        for i in 0..bytes as u64 {
            let v = self.load(core, src + i, MemKind::I8);
            self.store(core, dst + i, MemKind::I8, v);
        }
    }

    /// Byte copy across cores' address spaces (the data movement of
    /// `RCCE_send`/`RCCE_recv`): `src_addr` is interpreted in `src_core`'s
    /// view, `dst_addr` in `dst_core`'s.
    pub fn copy_cross(
        &mut self,
        src_core: usize,
        src_addr: u64,
        dst_core: usize,
        dst_addr: u64,
        bytes: usize,
    ) {
        for i in 0..bytes as u64 {
            let v = self.load(src_core, src_addr + i, MemKind::I8);
            self.store(dst_core, dst_addr + i, MemKind::I8, v);
        }
    }

    /// Applies a program's load-time image to one core's private memory.
    pub fn load_image(&mut self, core: usize, image: &[(u64, Vec<u8>)]) {
        for (addr, bytes) in image {
            self.private[core].write_bytes(*addr, bytes);
        }
    }
}

/// One line of simulated program output.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputLine {
    /// Simulated time (core cycles) of the `printf`.
    pub at: u64,
    /// Core (RCCE) or thread (pthread) that printed.
    pub who: usize,
    /// Formatted text.
    pub text: String,
}

/// The result of one simulated program run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Makespan: the largest core/thread clock at completion.
    pub total_cycles: u64,
    /// The benchmark's own measurement: the widest `wtime()`-to-`wtime()`
    /// interval observed on any core (the paper's timestamping protocol);
    /// falls back to the makespan when the program takes fewer than two
    /// timestamps.
    pub timed_cycles: u64,
    /// Everything printed, in time order.
    pub output: Vec<OutputLine>,
    /// Exit value of the entry function per core/thread 0.
    pub exit_code: i64,
    /// Memory system statistics (chip-global aggregate).
    pub mem_stats: MemStats,
    /// Per-core × per-region counter matrix with latency histograms.
    pub stats_matrix: StatsMatrix,
    /// Peak bytes ever allocated in the MPB during the run.
    pub mpb_high_water: usize,
    /// Final local clock per core (RCCE mode) or busy cycles per thread
    /// (pthread mode) — the load-balance picture.
    pub per_unit_cycles: Vec<u64>,
    /// Bytecode instructions retired across all units — the denominator
    /// of the host-performance steps/sec metric (`figures --host-timing`).
    /// Deterministic, but not part of the simulated timing model.
    pub instructions: u64,
    /// Scheduler events processed (VM resumptions) by the execution core.
    pub events: u64,
}

impl RunResult {
    /// All printed lines concatenated in time order.
    pub fn output_text(&self) -> String {
        self.output.iter().map(|l| l.text.as_str()).collect()
    }

    /// Printed lines sorted lexicographically — used for output
    /// equivalence between pthread and RCCE runs, whose interleavings
    /// differ.
    pub fn output_sorted(&self) -> Vec<String> {
        let text = self.output_text();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines.sort();
        lines
    }

    /// Simulated seconds at the given core frequency.
    pub fn seconds(&self, core_freq_mhz: u32) -> f64 {
        self.timed_cycles as f64 / (f64::from(core_freq_mhz) * 1e6)
    }

    /// Load imbalance: max over mean of the per-unit cycles (1.0 =
    /// perfectly balanced; Count Primes' block partition shows ~2).
    pub fn imbalance(&self) -> f64 {
        if self.per_unit_cycles.is_empty() {
            return 1.0;
        }
        let max = *self.per_unit_cycles.iter().max().expect("non-empty") as f64;
        let mean =
            self.per_unit_cycles.iter().sum::<u64>() as f64 / self.per_unit_cycles.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Tracks the `wtime()` bracketing per core/thread.
#[derive(Debug, Clone, Default)]
pub struct WtimeTracker {
    marks: Vec<Vec<u64>>,
}

impl WtimeTracker {
    /// Creates a tracker for `n` cores/threads.
    pub fn new(n: usize) -> Self {
        WtimeTracker {
            marks: vec![Vec::new(); n],
        }
    }

    /// Records a timestamp for `who` at `clock`.
    pub fn record(&mut self, who: usize, clock: u64) {
        self.marks[who].push(clock);
    }

    /// The widest first-to-last interval on any core, if any core took two
    /// or more timestamps.
    pub fn widest_interval(&self) -> Option<u64> {
        self.marks
            .iter()
            .filter(|m| m.len() >= 2)
            .map(|m| m.last().unwrap() - m.first().unwrap())
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sim::memory::{MPB_BASE, SHARED_DRAM_BASE};

    #[test]
    fn spaces_route_by_region() {
        let mut s = DataSpaces::new(2);
        s.store(0, 0x1000, MemKind::I32, Value::I(1));
        s.store(1, 0x1000, MemKind::I32, Value::I(2));
        // Private: per-core distinct.
        assert_eq!(s.load(0, 0x1000, MemKind::I32), Value::I(1));
        assert_eq!(s.load(1, 0x1000, MemKind::I32), Value::I(2));
        // Shared: visible to all.
        s.store(0, SHARED_DRAM_BASE, MemKind::I64, Value::I(99));
        assert_eq!(s.load(1, SHARED_DRAM_BASE, MemKind::I64), Value::I(99));
        // MPB: also globally visible.
        s.store(1, MPB_BASE + 8, MemKind::F64, Value::F(2.5));
        assert_eq!(s.load(0, MPB_BASE + 8, MemKind::F64), Value::F(2.5));
    }

    #[test]
    fn copy_bytes_moves_across_regions() {
        let mut s = DataSpaces::new(1);
        s.store(0, 0x100, MemKind::I32, Value::I(0x0A0B0C0D));
        s.copy_bytes(0, SHARED_DRAM_BASE, 0x100, 4);
        assert_eq!(
            s.load(0, SHARED_DRAM_BASE, MemKind::I32),
            Value::I(0x0A0B0C0D)
        );
    }

    #[test]
    fn wtime_tracker_widest() {
        let mut t = WtimeTracker::new(3);
        t.record(0, 100);
        t.record(0, 900);
        t.record(1, 50);
        t.record(1, 1500);
        t.record(2, 77); // only one mark: ignored
        assert_eq!(t.widest_interval(), Some(1450));
    }

    #[test]
    fn wtime_tracker_empty() {
        let t = WtimeTracker::new(2);
        assert_eq!(t.widest_interval(), None);
    }

    #[test]
    fn output_sorting_is_stable_across_interleavings() {
        let r = RunResult {
            total_cycles: 1,
            timed_cycles: 1,
            per_unit_cycles: vec![],
            output: vec![
                OutputLine {
                    at: 5,
                    who: 1,
                    text: "b\n".into(),
                },
                OutputLine {
                    at: 9,
                    who: 0,
                    text: "a\n".into(),
                },
            ],
            exit_code: 0,
            mem_stats: MemStats::default(),
            stats_matrix: StatsMatrix::default(),
            mpb_high_water: 0,
            instructions: 0,
            events: 0,
        };
        assert_eq!(r.output_sorted(), vec!["a", "b"]);
        assert_eq!(r.output_text(), "b\na\n");
    }
}
