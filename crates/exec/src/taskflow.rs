//! Task-dataflow execution mode (the BDDT-SCC programming model): `main`
//! spawns tasks whose data footprint is *declared* — up to two input
//! regions and one output region per task — and a runtime scheduler
//! derives the dependence graph from region overlaps and runs ready tasks
//! on free cores.
//!
//! The interpreter is [`ExecutionCore`]; this module contributes only the
//! task semantics as a [`SyncModel`]:
//!
//! * **Dependence tracking.** A new task depends on every earlier task
//!   whose *output* region overlaps its input or output regions (RAW and
//!   WAW), and on every earlier task whose *input* region its output
//!   overlaps (WAR) — the in/out versioning discipline of BDDT-SCC.
//!   Tasks whose dependences have all completed enter a ready queue in
//!   spawn order.
//! * **Explicit data movement.** This is why the annotations exist on
//!   non-coherent hardware: each core owns a private address space, and
//!   the runtime DMAs a task's declared input regions from the canonical
//!   space (core 0) into the worker's space at dispatch, and its output
//!   region back at completion. Data the program shares *without*
//!   declaring it is simply never moved — the same observable failure
//!   mode as an un-flushed pthread program on the SCC.
//! * **Coherence discipline.** The spawner's write-back view is flushed
//!   at every `task_spawn` (publishing freshly initialized inputs), a
//!   worker's view at task completion (publishing its output before the
//!   DMA), and the waiter's view at `task_wait_all` release — the task
//!   analogue of the RCCE barrier flush, so clean task programs stay
//!   output-identical under [`NonCoherentWriteBack`].
//! * **Timing.** Discrete-event scheduling by smallest local clock, like
//!   RCCE mode. Core 0 is the dedicated master: it runs `main` and owns
//!   the canonical data space, and tasks are dispatched only to cores
//!   `1..cores` (a worker's line-granular flush must never overwrite
//!   canonical data beyond its declared output). A task starts at
//!   `max(ready time, core free time)` plus the dispatch DMA cost, so
//!   the makespan reflects genuine pipeline parallelism.

use crate::coherence::{
    CoherenceModel, Coherent, ExecModel, NonCoherentWriteBack, SeqCstReference,
};
use crate::engine::{Charge, ExecEnv, ExecutionCore, Flow, SyncModel, UnitState};
use crate::machine::{ExecError, RunResult};
use crate::syscall_cost;
use crate::trace::{NullSink, SyncEvent, TraceSink};
use hsm_vm::compile::{Program, STACKS_BASE, STACK_SIZE};
use hsm_vm::{Intrinsic, Value};
use rcce_rt::RcceRuntime;
use scc_sim::SccConfig;
use std::collections::VecDeque;

/// Unit budget shared with the pthread engine (bounded by the stack
/// region): unit 0 is `main`, every executed task consumes one more.
const MAX_UNITS: usize = 1024;

/// One declared data region, `(base address, length in bytes)`.
type Regionspec = (u64, u64);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    /// Waiting on incomplete predecessors.
    Pending,
    /// Dependences resolved; queued for a free core.
    Ready,
    /// Executing on a unit.
    Running,
    /// Completed; output published to the canonical space.
    Done,
}

#[derive(Debug, Clone)]
struct TaskDesc {
    func: u32,
    arg: i64,
    ins: Vec<Regionspec>,
    out: Option<Regionspec>,
    state: TaskState,
    /// Unit that executed `task_spawn`.
    spawner: usize,
    /// Incomplete predecessors still holding this task back.
    deps_left: usize,
    /// Every predecessor (complete or not), for happens-before edges.
    deps: Vec<usize>,
    /// Successors to release when this task completes.
    dependents: Vec<usize>,
    /// Earliest simulated time the task may start.
    ready_at: u64,
    /// Unit the task ran (or is running) on.
    unit: Option<usize>,
    /// Local clock at completion (output DMA included).
    finished_at: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MainState {
    Running,
    /// Blocked in `task_wait_all`.
    WaitingAll,
    Done(i64),
}

/// The task-dataflow [`SyncModel`]: one private space and heap arena per
/// core, a dynamic unit per executed task, dependence-driven dispatch.
struct TaskDataflowSync {
    cores: usize,
    rt: RcceRuntime,
    tasks: Vec<TaskDesc>,
    /// Ready task ids in spawn order.
    ready: VecDeque<usize>,
    /// Task unit currently occupying each core (`main` is tracked via
    /// [`MainState`], not here).
    core_unit: Vec<Option<usize>>,
    /// Simulated time each core was last vacated by a task.
    core_free_at: Vec<u64>,
    /// Core assignment per unit (unit 0 = `main` on core 0).
    unit_core: Vec<usize>,
    /// Task id per unit (`None` for `main`).
    unit_task: Vec<Option<usize>>,
    main: MainState,
}

/// `true` when the two regions share at least one byte.
fn overlaps((a, alen): Regionspec, (b, blen): Regionspec) -> bool {
    alen > 0 && blen > 0 && a < b + blen && b < a + alen
}

impl TaskDataflowSync {
    fn new(cores: usize, config: &SccConfig) -> Self {
        TaskDataflowSync {
            cores,
            rt: RcceRuntime::new(cores, config),
            tasks: Vec::new(),
            ready: VecDeque::new(),
            core_unit: vec![None; cores],
            core_free_at: vec![0; cores],
            unit_core: vec![0],
            unit_task: vec![None],
            main: MainState::Running,
        }
    }

    /// All regions a task reads (its declared inputs plus its output,
    /// which it may read-modify-write).
    fn read_set(t: &TaskDesc) -> Vec<Regionspec> {
        let mut rs = t.ins.clone();
        if let Some(o) = t.out {
            rs.push(o);
        }
        rs
    }

    /// Whether spawning `new` after `old` creates a dependence edge:
    /// RAW (new reads old's output), WAW (outputs collide), or WAR (new
    /// overwrites what old reads).
    fn conflicts(new: &TaskDesc, old: &TaskDesc) -> bool {
        if let Some(oout) = old.out {
            if Self::read_set(new).iter().any(|&r| overlaps(r, oout)) {
                return true;
            }
        }
        if let Some(nout) = new.out {
            if Self::read_set(old).iter().any(|&r| overlaps(r, nout)) {
                return true;
            }
        }
        false
    }

    /// DMA one region between the canonical space (core 0) and `core`,
    /// bypassing the coherence views (the SCC's DMA engines bypass the
    /// caches). Returns the transfer's cycle cost.
    fn dma<C: CoherenceModel>(
        &self,
        env: &mut ExecEnv<C>,
        (addr, len): Regionspec,
        from: usize,
        to: usize,
    ) -> u64 {
        if len == 0 || from == to {
            return 0;
        }
        env.spaces.copy_cross(from, addr, to, addr, len as usize);
        self.rt.put_get_cost(&env.chip, from, to, len as usize)
    }

    /// Moves every ready task onto a free core, creating its unit and
    /// emitting its happens-before edges.
    fn dispatch<C: CoherenceModel, S: TraceSink>(
        &mut self,
        env: &mut ExecEnv<C>,
        sink: &mut S,
    ) -> Result<(), ExecError> {
        while !self.ready.is_empty() {
            // Core 0 is the dedicated master running main (BDDT-SCC keeps
            // the control thread on its own core); it also owns the
            // canonical data space, which a worker's line-granular cache
            // flush must never overwrite beyond its declared output.
            let core = (1..self.cores).find(|&c| self.core_unit[c].is_none());
            let Some(core) = core else { break };
            let id = self.ready.pop_front().expect("non-empty ready queue");
            let uid = env.units.len();
            if uid >= MAX_UNITS {
                return Err(ExecError::new("too many tasks (max 1023)"));
            }
            let (func, arg, ins, start0, spawner, deps) = {
                let t = &self.tasks[id];
                (
                    t.func,
                    t.arg,
                    t.ins.clone(),
                    t.ready_at.max(self.core_free_at[core]),
                    t.spawner,
                    t.deps.clone(),
                )
            };
            let mut unit = UnitState::new(
                env.program,
                func,
                vec![Value::I(arg)],
                STACKS_BASE + uid as u64 * STACK_SIZE,
            );
            // Input DMA: canonical space -> worker space, billed to the
            // task's start time.
            let mut cost = syscall_cost::TASK_DISPATCH;
            for r in ins {
                if S::ENABLED && r.1 > 0 && core != 0 {
                    sink.dma(0, core, r.1, start0);
                }
                cost += self.dma(env, r, 0, core);
            }
            unit.clock = start0 + cost;
            let start = unit.clock;
            env.units.push(unit);
            self.unit_core.push(core);
            self.unit_task.push(Some(id));
            self.core_unit[core] = Some(uid);
            self.tasks[id].state = TaskState::Running;
            self.tasks[id].unit = Some(uid);
            sink.sync(SyncEvent::ThreadStart {
                parent: spawner,
                unit: uid,
                func,
                cycle: start,
            });
            // Each resolved dependence is a hand-off from the task that
            // produced (or last read) the region.
            for d in deps {
                if let Some(target) = self.tasks[d].unit {
                    sink.sync(SyncEvent::ThreadJoin {
                        unit: uid,
                        target,
                        cycle: start,
                    });
                }
            }
        }
        Ok(())
    }

    /// Releases `main` from `task_wait_all` once every task has
    /// completed: join edges against every task, a view flush so `main`
    /// rereads published outputs, and the wait cost.
    fn try_release_main<C: CoherenceModel, S: TraceSink>(
        &mut self,
        env: &mut ExecEnv<C>,
        sink: &mut S,
    ) {
        if self.main != MainState::WaitingAll {
            return;
        }
        if !self.tasks.iter().all(|t| t.state == TaskState::Done) {
            return;
        }
        let latest = self
            .tasks
            .iter()
            .map(|t| t.finished_at)
            .max()
            .unwrap_or(env.units[0].clock);
        let release = env.units[0].clock.max(latest) + syscall_cost::TASK_WAIT;
        env.units[0].clock = release;
        for t in &self.tasks {
            if let Some(target) = t.unit {
                sink.sync(SyncEvent::ThreadJoin {
                    unit: 0,
                    target,
                    cycle: release,
                });
            }
        }
        env.coherence
            .flush_unit(0, 0, &mut env.spaces, &mut env.chip);
        self.main = MainState::Running;
        env.units[0].vm.syscall_return(Value::I(0));
    }
}

impl SyncModel for TaskDataflowSync {
    fn unit_count(&self) -> usize {
        1
    }

    fn space_count(&self) -> usize {
        self.cores
    }

    fn heap_slots(&self) -> usize {
        self.cores
    }

    fn wtime_slots(&self) -> usize {
        MAX_UNITS
    }

    fn core_of(&self, unit: usize) -> usize {
        self.unit_core[unit]
    }

    fn heap_slot(&self, unit: usize) -> usize {
        self.unit_core[unit]
    }

    fn stack_base(&self, unit: usize) -> u64 {
        STACKS_BASE + unit as u64 * STACK_SIZE
    }

    fn schedule<C: CoherenceModel>(
        &mut self,
        env: &mut ExecEnv<C>,
    ) -> Result<Option<usize>, ExecError> {
        let mut best: Option<(u64, usize)> = None;
        if self.main == MainState::Running {
            best = Some((env.units[0].clock, 0));
        }
        for &u in self.core_unit.iter().flatten() {
            let cand = (env.units[u].clock, u);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        match best {
            Some((_, u)) => Ok(Some(u)),
            None => {
                if matches!(self.main, MainState::Done(_)) {
                    Ok(None)
                } else {
                    Err(ExecError::new(
                        "task deadlock: main is blocked but no task can run",
                    ))
                }
            }
        }
    }

    fn charge(&mut self, unit: &mut UnitState, cycles: u64, kind: Charge) {
        unit.clock += cycles;
        if kind == Charge::Progress {
            unit.busy_cycles += cycles;
        }
    }

    fn syscall<C: CoherenceModel, S: TraceSink>(
        &mut self,
        env: &mut ExecEnv<C>,
        sink: &mut S,
        unit: usize,
        intr: Intrinsic,
        args: &[Value],
    ) -> Result<Flow, ExecError> {
        let core = self.unit_core[unit];
        let ret = match intr {
            Intrinsic::TaskSpawn => {
                env.units[unit].clock += syscall_cost::TASK_SPAWN;
                let func = args.first().copied().unwrap_or(Value::I(-1)).as_i();
                if func < 0 || func as usize >= env.program.funcs.len() {
                    return Err(ExecError::new(format!(
                        "task_spawn with invalid function index {func}"
                    )));
                }
                if self.tasks.len() + 1 >= MAX_UNITS {
                    return Err(ExecError::new("too many tasks (max 1023)"));
                }
                let arg = args.get(1).copied().unwrap_or(Value::I(0)).as_i();
                let region = |p: usize| -> Regionspec {
                    let addr = args.get(p).copied().unwrap_or(Value::I(0)).as_addr();
                    let len = args.get(p + 1).copied().unwrap_or(Value::I(0)).as_i();
                    if addr == 0 || len <= 0 {
                        (0, 0)
                    } else {
                        (addr, len as u64)
                    }
                };
                let ins: Vec<Regionspec> = [region(2), region(4)]
                    .into_iter()
                    .filter(|&(_, l)| l > 0)
                    .collect();
                let out = Some(region(6)).filter(|&(_, l)| l > 0);
                // Publish everything the spawner wrote so far: the task's
                // input DMA reads the canonical space.
                env.coherence
                    .flush_unit(unit, core, &mut env.spaces, &mut env.chip);
                let mut t = TaskDesc {
                    func: func as u32,
                    arg,
                    ins,
                    out,
                    state: TaskState::Pending,
                    spawner: unit,
                    deps_left: 0,
                    deps: Vec::new(),
                    dependents: Vec::new(),
                    ready_at: env.units[unit].clock,
                    unit: None,
                    finished_at: 0,
                };
                let id = self.tasks.len();
                for (tid, old) in self.tasks.iter_mut().enumerate() {
                    if !Self::conflicts(&t, old) {
                        continue;
                    }
                    t.deps.push(tid);
                    if old.state == TaskState::Done {
                        t.ready_at = t.ready_at.max(old.finished_at);
                    } else {
                        t.deps_left += 1;
                        old.dependents.push(id);
                    }
                }
                if t.deps_left == 0 {
                    t.state = TaskState::Ready;
                    self.ready.push_back(id);
                }
                self.tasks.push(t);
                Value::I(id as i64 + 1)
            }
            Intrinsic::TaskWaitAll => {
                if unit != 0 {
                    return Err(ExecError::new(
                        "task_wait_all inside a task: express ordering as in/out dependences",
                    ));
                }
                if self.tasks.iter().all(|t| t.state == TaskState::Done) {
                    env.units[unit].clock += syscall_cost::TASK_WAIT;
                    env.coherence
                        .flush_unit(unit, core, &mut env.spaces, &mut env.chip);
                    Value::I(0)
                } else {
                    self.main = MainState::WaitingAll;
                    // No syscall_return: main stays pending until release.
                    return Ok(Flow::Continue);
                }
            }
            Intrinsic::TaskSelf => Value::I(self.unit_task[unit].map_or(0, |t| t as i64 + 1)),
            Intrinsic::TaskWorkers => Value::I(self.cores as i64),
            Intrinsic::Exit => {
                let code = args.first().copied().unwrap_or(Value::I(0)).as_i();
                self.main = MainState::Done(code);
                return Ok(Flow::Stop);
            }
            other => {
                return Err(ExecError::new(format!(
                    "{other:?} call in a task-dataflow program: only the task_* API, \
                     printf, malloc and wtime are available"
                )));
            }
        };
        env.units[unit].vm.syscall_return(ret);
        let _ = sink;
        Ok(Flow::Continue)
    }

    fn finished<C: CoherenceModel, S: TraceSink>(
        &mut self,
        env: &mut ExecEnv<C>,
        sink: &mut S,
        unit: usize,
        exit: i64,
    ) -> Result<Flow, ExecError> {
        if unit == 0 {
            // Main returning ends the program, as in pthread mode.
            self.main = MainState::Done(exit);
            return Ok(Flow::Stop);
        }
        let id = self.unit_task[unit].expect("task unit has a task");
        let core = self.unit_core[unit];
        // Publish the task's writes to its core's backing space, then DMA
        // the declared output back to the canonical space.
        env.coherence
            .flush_unit(unit, core, &mut env.spaces, &mut env.chip);
        if let Some(out) = self.tasks[id].out {
            if S::ENABLED && out.1 > 0 && core != 0 {
                sink.dma(core, 0, out.1, env.units[unit].clock);
            }
            let cost = self.dma(env, out, core, 0);
            env.units[unit].clock += cost;
        }
        let done_at = env.units[unit].clock;
        self.tasks[id].state = TaskState::Done;
        self.tasks[id].finished_at = done_at;
        self.core_free_at[core] = done_at;
        self.core_unit[core] = None;
        let dependents = std::mem::take(&mut self.tasks[id].dependents);
        for dep in dependents {
            let t = &mut self.tasks[dep];
            t.deps_left -= 1;
            t.ready_at = t.ready_at.max(done_at);
            if t.deps_left == 0 && t.state == TaskState::Pending {
                t.state = TaskState::Ready;
                self.ready.push_back(dep);
            }
        }
        Ok(Flow::Continue)
    }

    fn post_step<C: CoherenceModel, S: TraceSink>(
        &mut self,
        env: &mut ExecEnv<C>,
        sink: &mut S,
    ) -> Result<(), ExecError> {
        self.dispatch(env, sink)?;
        self.try_release_main(env, sink);
        Ok(())
    }

    fn finalize<C: CoherenceModel>(&self, env: &ExecEnv<C>) -> (u64, Vec<u64>, i64) {
        let total = env.units.iter().map(|u| u.clock).max().unwrap_or(0);
        let mut per_core = vec![0u64; self.cores];
        for (u, unit) in env.units.iter().enumerate() {
            per_core[self.unit_core[u]] += unit.busy_cycles;
        }
        let exit = match self.main {
            MainState::Done(code) => code,
            _ => 0,
        };
        (total, per_core, exit)
    }
}

/// Runs `program` as a task-dataflow program on `cores` simulated SCC
/// cores, under the [`Coherent`] memory model.
///
/// `main` runs on core 0; spawned tasks run on any free core (core 0
/// becomes available to tasks while `main` blocks in `task_wait_all`).
///
/// # Errors
///
/// Returns [`ExecError`] on VM faults, invalid spawns, `task_wait_all`
/// outside `main`, or pthread/RCCE calls in a task program.
pub fn run_task(
    program: &Program,
    cores: usize,
    config: &SccConfig,
) -> Result<RunResult, ExecError> {
    run_task_traced(program, cores, config, &mut NullSink)
}

/// [`run_task`] with every memory access streamed to `sink`.
///
/// # Errors
///
/// Same failure modes as [`run_task`].
pub fn run_task_traced<S: TraceSink>(
    program: &Program,
    cores: usize,
    config: &SccConfig,
    sink: &mut S,
) -> Result<RunResult, ExecError> {
    run_task_model_traced(program, cores, config, ExecModel::Coherent, sink)
}

/// Runs `program` in task-dataflow mode under an explicit [`ExecModel`].
///
/// # Errors
///
/// Same failure modes as [`run_task`].
pub fn run_task_model(
    program: &Program,
    cores: usize,
    config: &SccConfig,
    model: ExecModel,
) -> Result<RunResult, ExecError> {
    run_task_model_traced(program, cores, config, model, &mut NullSink)
}

/// [`run_task_model`] with a [`ProfileCollector`](crate::profile::ProfileCollector)
/// attached: returns the run result together with its
/// [`Profile`](crate::profile::Profile).
///
/// # Errors
///
/// Same failure modes as [`run_task`].
pub fn run_task_model_profiled(
    program: &Program,
    cores: usize,
    config: &SccConfig,
    model: ExecModel,
) -> Result<(RunResult, crate::profile::Profile), ExecError> {
    let mut collector = crate::profile::ProfileCollector::new(config.line_bytes);
    let result = run_task_model_traced(program, cores, config, model, &mut collector)?;
    let profile = collector.into_profile(&result);
    Ok((result, profile))
}

/// [`run_task_model`] with every memory access streamed to `sink`.
///
/// # Errors
///
/// Same failure modes as [`run_task`].
pub fn run_task_model_traced<S: TraceSink>(
    program: &Program,
    cores: usize,
    config: &SccConfig,
    model: ExecModel,
    sink: &mut S,
) -> Result<RunResult, ExecError> {
    if cores < 2 || cores > config.cores {
        return Err(ExecError::new(format!(
            "task mode needs a master plus at least one worker: core count \
             {cores} outside 2..={}",
            config.cores
        )));
    }
    match model {
        ExecModel::Coherent => ExecutionCore::run(
            program,
            config,
            TaskDataflowSync::new(cores, config),
            Coherent,
            sink,
        ),
        ExecModel::NonCoherentWriteBack => ExecutionCore::run(
            program,
            config,
            TaskDataflowSync::new(cores, config),
            NonCoherentWriteBack::new(config.line_bytes),
            sink,
        ),
        ExecModel::SeqCstReference => ExecutionCore::run(
            program,
            config,
            TaskDataflowSync::new(cores, config),
            SeqCstReference,
            sink,
        ),
    }
}
