//! A `printf` formatter for the simulated C library.

use hsm_vm::Value;

/// Formats `fmt` with `args` following C `printf` conventions for the
/// directives the benchmarks use: `%d %i %u %ld %lu %f %.Nf %e %g %s %c
/// %x %p %%` (field widths are honoured for integers and floats).
///
/// Missing arguments format as empty; `%s` consumes a string resolved by
/// the caller (see `args_strings`): string arguments are pre-resolved into
/// `strings` in consumption order.
pub fn format(fmt: &str, args: &[Value], strings: &[String]) -> String {
    let mut out = String::new();
    let mut chars = fmt.chars().peekable();
    let mut arg_i = 0usize;
    let mut str_i = 0usize;
    let next = |arg_i: &mut usize| -> Value {
        let v = args.get(*arg_i).copied().unwrap_or(Value::I(0));
        *arg_i += 1;
        v
    };
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        // Parse %[flags][width][.prec][length]conv
        let mut spec = String::new();
        let mut conv = '\0';
        loop {
            match chars.peek().copied() {
                Some(c2)
                    if c2.is_ascii_digit()
                        || c2 == '.'
                        || c2 == '-'
                        || c2 == '+'
                        || c2 == ' '
                        || c2 == '0' =>
                {
                    spec.push(c2);
                    chars.next();
                }
                Some('l') | Some('h') | Some('z') => {
                    chars.next();
                }
                Some(c2) => {
                    conv = c2;
                    chars.next();
                    break;
                }
                None => break,
            }
        }
        let (width, precision, left, zero) = parse_spec(&spec);
        let formatted = match conv {
            '%' => "%".to_string(),
            'd' | 'i' | 'u' => {
                let v = next(&mut arg_i).as_i();
                pad_int(v.to_string(), width, left, zero)
            }
            'x' => {
                let v = next(&mut arg_i).as_i();
                pad_int(format!("{v:x}"), width, left, zero)
            }
            'c' => {
                let v = next(&mut arg_i).as_i();
                char::from_u32(v as u32).unwrap_or('?').to_string()
            }
            'f' | 'F' => {
                let v = next(&mut arg_i).as_f();
                let p = precision.unwrap_or(6);
                pad_int(format!("{v:.p$}"), width, left, zero)
            }
            'e' => {
                let v = next(&mut arg_i).as_f();
                let p = precision.unwrap_or(6);
                format!("{v:.p$e}")
            }
            'g' => {
                let v = next(&mut arg_i).as_f();
                format!("{v}")
            }
            's' => {
                let _ = next(&mut arg_i);
                let s = strings.get(str_i).cloned().unwrap_or_default();
                str_i += 1;
                s
            }
            'p' => {
                let v = next(&mut arg_i).as_i();
                format!("0x{v:x}")
            }
            other => format!("%{other}"),
        };
        out.push_str(&formatted);
    }
    out
}

fn parse_spec(spec: &str) -> (usize, Option<usize>, bool, bool) {
    let left = spec.starts_with('-');
    let trimmed = spec.trim_start_matches(['-', '+', ' ']);
    let zero = trimmed.starts_with('0');
    let mut parts = trimmed.splitn(2, '.');
    let width = parts
        .next()
        .and_then(|w| w.trim_start_matches('0').parse().ok())
        .unwrap_or(0);
    let precision = parts.next().and_then(|p| p.parse().ok());
    (width, precision, left, zero)
}

fn pad_int(s: String, width: usize, left: bool, zero: bool) -> String {
    if s.len() >= width {
        return s;
    }
    let pad = width - s.len();
    if left {
        format!("{s}{}", " ".repeat(pad))
    } else if zero {
        // Zero-padding goes after a sign.
        if let Some(rest) = s.strip_prefix('-') {
            format!("-{}{rest}", "0".repeat(pad))
        } else {
            format!("{}{s}", "0".repeat(pad))
        }
    } else {
        format!("{}{s}", " ".repeat(pad))
    }
}

/// Formats one `printf` syscall end to end: resolves the format string
/// and every `%s` argument through `read_cstr` (the calling unit's view
/// of memory), then delegates to [`format()`].
///
/// This is the single formatting path both execution modes share; the
/// coherence model decides what `read_cstr` actually observes.
pub fn format_syscall(args: &[Value], read_cstr: &mut dyn FnMut(u64) -> String) -> String {
    let Some(fmt_addr) = args.first() else {
        return String::new();
    };
    let fmt = read_cstr(fmt_addr.as_addr());
    let rest = &args[1..];
    let strings: Vec<String> = count_string_args(&fmt)
        .iter()
        .filter_map(|&i| rest.get(i))
        .map(|v| read_cstr(v.as_addr()))
        .collect();
    format(&fmt, rest, &strings)
}

/// Counts how many `%s` directives `fmt` contains (the engine resolves
/// those argument addresses to strings before formatting).
pub fn count_string_args(fmt: &str) -> Vec<usize> {
    // Returns the argument indices (0-based, counting all conversion
    // directives) that are strings.
    let mut out = Vec::new();
    let mut chars = fmt.chars().peekable();
    let mut idx = 0usize;
    while let Some(c) = chars.next() {
        if c != '%' {
            continue;
        }
        // Skip flags/width/precision/length.
        while let Some(&c2) = chars.peek() {
            if c2.is_ascii_digit() || matches!(c2, '.' | '-' | '+' | ' ' | 'l' | 'h' | 'z') {
                chars.next();
            } else {
                break;
            }
        }
        match chars.next() {
            Some('%') => {}
            Some('s') => {
                out.push(idx);
                idx += 1;
            }
            Some(_) => idx += 1,
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_directives() {
        assert_eq!(
            format("Sum Array: %d\n", &[Value::I(7)], &[]),
            "Sum Array: 7\n"
        );
        assert_eq!(
            format("%d + %d = %d", &[1.into(), 2.into(), 3.into()], &[]),
            "1 + 2 = 3"
        );
        assert_eq!(format("100%%", &[], &[]), "100%");
    }

    #[test]
    fn float_precision() {
        assert_eq!(format("%f", &[Value::F(3.25159)], &[]), "3.251590");
        assert_eq!(format("%.2f", &[Value::F(3.25159)], &[]), "3.25");
        assert_eq!(format("%.10f", &[Value::F(0.5)], &[]), "0.5000000000");
    }

    #[test]
    fn widths_and_padding() {
        assert_eq!(format("%5d", &[Value::I(42)], &[]), "   42");
        assert_eq!(format("%-5d|", &[Value::I(42)], &[]), "42   |");
        assert_eq!(format("%05d", &[Value::I(42)], &[]), "00042");
        assert_eq!(format("%05d", &[Value::I(-42)], &[]), "-0042");
    }

    #[test]
    fn long_modifier_is_transparent() {
        assert_eq!(format("%ld", &[Value::I(1_000_000)], &[]), "1000000");
        assert_eq!(format("%lu", &[Value::I(9)], &[]), "9");
    }

    #[test]
    fn strings_and_chars() {
        assert_eq!(
            format(
                "%s world %c",
                &[Value::I(0), Value::I(33)],
                &["hello".into()]
            ),
            "hello world !"
        );
    }

    #[test]
    fn hex_and_pointer() {
        assert_eq!(format("%x", &[Value::I(255)], &[]), "ff");
        assert_eq!(format("%p", &[Value::I(0x1000)], &[]), "0x1000");
    }

    #[test]
    fn scientific() {
        let s = format("%e", &[Value::F(12345.0)], &[]);
        assert!(s.contains('e'), "{s}");
    }

    #[test]
    fn missing_args_default_to_zero() {
        assert_eq!(format("%d %d", &[Value::I(1)], &[]), "1 0");
    }

    #[test]
    fn string_arg_positions() {
        assert_eq!(count_string_args("%d %s %f %s"), vec![1, 3]);
        assert_eq!(count_string_args("no directives"), Vec::<usize>::new());
        assert_eq!(count_string_args("%%s"), Vec::<usize>::new());
    }
}
