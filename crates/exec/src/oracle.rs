//! The sharing-soundness oracle: a dynamic checker for Stages 1–3.
//!
//! The paper's translation is only correct if the static analyses
//! classify every variable's sharing status *soundly*: a variable marked
//! private lands in per-core non-coherent memory, so a missed sharing
//! relationship silently reads stale data on the SCC. This module turns
//! that soundness claim into a runtime check. The [`Oracle`] is a
//! [`TraceSink`]: it consumes the memory-access stream and the
//! synchronization stream of a run, resolves every address back to the
//! analyzed variable it belongs to (via the compiled program's layout),
//! and compares what actually happened against the
//! [`ClassificationManifest`] the analysis produced.
//!
//! Three violation classes are reported:
//!
//! * [`ViolationClass::Unsoundness`] — a unit other than the owner
//!   touched data whose verdict is *private*. On the real chip the
//!   translated program would give that unit its own unrelated copy.
//! * [`ViolationClass::StaleRead`] — a read of private-classified data
//!   whose cache line was last written by another unit with no
//!   happens-before edge in between: the non-coherent private cache would
//!   serve the stale line.
//! * [`ViolationClass::DataRace`] — two units accessed the same address
//!   without ordering and at least one access was a write. Detected with
//!   vector clocks over the sync-event stream (create/join, lock
//!   hand-offs, barrier epochs, message rendezvous), independent of any
//!   verdict.
//!
//! The oracle runs in two modes. [`OracleMode::Pthread`] checks the
//! baseline execution, where all threads share one address space — this
//! is where verdicts are validated against ground-truth thread semantics.
//! [`OracleMode::Rcce`] checks a translated run: private addresses are
//! physically distinct per core there (misclassification is no longer
//! *observable* as a cross-core touch, which is exactly why the pthread
//! baseline is the validation vehicle), so only shared regions are
//! race-checked, validating the translator's synchronization insertion.

use crate::trace::{SyncEvent, TraceEvent, TraceSink};
use hsm_analysis::manifest::ClassificationManifest;
use hsm_analysis::sharing::SharingStatus;
use hsm_vm::compile::{FrameVar, Program, GLOBALS_BASE, HEAP_BASE, STACKS_BASE, STACK_SIZE};
use scc_sim::{line_index, Region};
use std::collections::{HashMap, HashSet};

/// Which execution engine the oracle is observing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleMode {
    /// The pthread baseline: one address space, units are thread ids.
    Pthread,
    /// A translated RCCE run: units are cores; the private region is
    /// per-core physical memory, so only shared regions are checked.
    Rcce,
}

/// The class of a detected violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ViolationClass {
    /// A non-owner unit touched private-classified data.
    Unsoundness,
    /// A read of private-classified data served from a line last written
    /// by another unit with no intervening happens-before edge.
    StaleRead,
    /// Conflicting unsynchronized accesses (at least one write).
    DataRace,
}

impl ViolationClass {
    /// Stable lower-snake-case label used in JSON renderings.
    pub fn label(self) -> &'static str {
        match self {
            ViolationClass::Unsoundness => "unsoundness",
            ViolationClass::StaleRead => "stale_read",
            ViolationClass::DataRace => "data_race",
        }
    }
}

/// One detected violation (deduplicated per class × variable × unit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violation class.
    pub class: ViolationClass,
    /// The unit whose access triggered the report.
    pub unit: usize,
    /// The other party: the owner (unsoundness), the last writer (stale
    /// read) or the conflicting unit (data race), when known.
    pub other: Option<usize>,
    /// The accessed address.
    pub addr: u64,
    /// The resolved variable name, when the address maps to one.
    pub variable: Option<String>,
    /// Whether the triggering access was a write.
    pub write: bool,
    /// The triggering access's cycle stamp.
    pub cycle: u64,
}

/// The oracle's summary of one run.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// Deduplicated violations in detection order.
    pub violations: Vec<Violation>,
    /// Memory accesses observed.
    pub data_accesses: u64,
    /// Synchronization events observed.
    pub sync_events: u64,
}

impl OracleReport {
    /// True when no violation of any class was detected.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of violations of `class`.
    pub fn count(&self, class: ViolationClass) -> usize {
        self.violations.iter().filter(|v| v.class == class).count()
    }

    /// The distinct violation classes present, in severity order.
    pub fn classes(&self) -> Vec<ViolationClass> {
        let mut cs: Vec<ViolationClass> = self.violations.iter().map(|v| v.class).collect();
        cs.sort();
        cs.dedup();
        cs
    }
}

/// A grow-on-demand vector clock.
#[derive(Debug, Clone, Default)]
struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, u: usize) -> u64 {
        self.0.get(u).copied().unwrap_or(0)
    }

    fn set(&mut self, u: usize, v: u64) {
        if self.0.len() <= u {
            self.0.resize(u + 1, 0);
        }
        self.0[u] = v;
    }

    fn inc(&mut self, u: usize) {
        self.set(u, self.get(u) + 1);
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if v > self.0[i] {
                self.0[i] = v;
            }
        }
    }
}

/// Per-address access history for race detection: the last write epoch
/// and one read epoch per reading unit.
#[derive(Debug, Clone, Default)]
struct Loc {
    write: Option<(usize, u64)>,
    reads: Vec<(usize, u64)>,
}

/// The dynamic sharing-soundness checker. Implements [`TraceSink`]; feed
/// it to `run_pthread_traced` / `run_rcce_traced` and call
/// [`Oracle::finish`] afterwards.
#[derive(Debug)]
pub struct Oracle {
    mode: OracleMode,
    line_bytes: usize,
    manifest: ClassificationManifest,
    /// Global variables as (start, end, name), sorted by start.
    globals: Vec<(u64, u64, String)>,
    /// Per-function (name, frame_mem, frame layout), indexed like
    /// `Program::funcs`.
    funcs: Vec<(String, u32, Vec<FrameVar>)>,
    /// Root function index of each unit (set by `ThreadStart` in pthread
    /// mode; every core runs the entry function in RCCE mode).
    unit_roots: Vec<u32>,
    entry: u32,
    /// One vector clock per unit.
    clocks: Vec<VClock>,
    /// Lock-identity -> clock of its last release.
    lock_clocks: HashMap<u64, VClock>,
    /// Barrier epoch -> accumulated arrival clock.
    barrier_acc: HashMap<u64, VClock>,
    /// Private-region cache line -> (last writer unit, epoch, cycle).
    line_writers: HashMap<u64, (usize, u64, u64)>,
    /// Address -> race-detection history.
    locs: HashMap<u64, Loc>,
    /// First unit to touch each private-classified non-stack variable
    /// (its de-facto owner in the baseline run).
    first_toucher: HashMap<String, usize>,
    /// Dedup keys already reported: (class, variable-or-line key, unit).
    seen: HashSet<(ViolationClass, String, usize)>,
    report: OracleReport,
}

impl Oracle {
    /// Builds an oracle for one run of `program` against `manifest`.
    /// `line_bytes` is the simulated cache-line size (the granularity of
    /// the stale-read rule); pass the chip config's `line_bytes`.
    pub fn new(
        program: &Program,
        manifest: ClassificationManifest,
        mode: OracleMode,
        line_bytes: usize,
    ) -> Self {
        let mut globals: Vec<(u64, u64, String)> = program
            .globals
            .iter()
            .map(|g| (g.addr, g.addr + g.storage.max(1) as u64, g.name.clone()))
            .collect();
        globals.sort_by_key(|g| g.0);
        let funcs = program
            .funcs
            .iter()
            .map(|f| (f.name.clone(), f.frame_mem, f.frame_vars.clone()))
            .collect();
        Oracle {
            mode,
            line_bytes: line_bytes.max(1),
            manifest,
            globals,
            funcs,
            unit_roots: vec![program.entry],
            entry: program.entry,
            clocks: Vec::new(),
            lock_clocks: HashMap::new(),
            barrier_acc: HashMap::new(),
            line_writers: HashMap::new(),
            locs: HashMap::new(),
            first_toucher: HashMap::new(),
            seen: HashSet::new(),
            report: OracleReport::default(),
        }
    }

    /// Consumes the oracle and returns its report.
    pub fn finish(self) -> OracleReport {
        self.report
    }

    fn ensure_unit(&mut self, u: usize) {
        while self.clocks.len() <= u {
            let fresh = self.clocks.len();
            let mut vc = VClock::default();
            // Own components start at 1 so two units with untouched
            // clocks are *not* ordered against each other.
            vc.set(fresh, 1);
            self.clocks.push(vc);
        }
        while self.unit_roots.len() <= u {
            self.unit_roots.push(self.entry);
        }
    }

    /// Resolves `addr` to `(variable name, owning function)`:
    /// globals by address range, entry-frame locals by stack layout.
    fn resolve(&self, addr: u64) -> Option<(String, Option<String>)> {
        if (GLOBALS_BASE..STACKS_BASE).contains(&addr) {
            let i = self.globals.partition_point(|g| g.0 <= addr);
            let g = &self.globals[i.checked_sub(1)?];
            return (addr < g.1).then(|| (g.2.clone(), None));
        }
        if (STACKS_BASE..HEAP_BASE).contains(&addr) {
            let su = ((addr - STACKS_BASE) / STACK_SIZE) as usize;
            let off = (addr - STACKS_BASE) % STACK_SIZE;
            let root = *self.unit_roots.get(su)? as usize;
            let (fname, frame_mem, vars) = self.funcs.get(root)?;
            // Only the unit's root frame sits at a known offset; nested
            // frames are race-checked by address but stay anonymous.
            if off < u64::from(*frame_mem) {
                let v = vars
                    .iter()
                    .rev()
                    .find(|v| off >= u64::from(v.offset) && off < u64::from(v.offset + v.size))?;
                return Some((v.name.clone(), Some(fname.clone())));
            }
        }
        None
    }

    /// The stack unit owning `addr`, when it is a stack address.
    fn stack_owner(addr: u64) -> Option<usize> {
        (STACKS_BASE..HEAP_BASE)
            .contains(&addr)
            .then(|| ((addr - STACKS_BASE) / STACK_SIZE) as usize)
    }

    fn push(&mut self, v: Violation) {
        let key = (
            v.class,
            v.variable
                .clone()
                .unwrap_or_else(|| format!("@line:{}", line_index(v.addr, self.line_bytes))),
            v.unit,
        );
        if self.seen.insert(key) {
            self.report.violations.push(v);
        }
    }

    /// Whether `(unit, epoch)` happens-before the current access of the
    /// unit whose clock is `c`.
    fn ordered(c: &VClock, unit: usize, epoch: u64) -> bool {
        epoch <= c.get(unit)
    }

    fn check_race(&mut self, ev: &TraceEvent, variable: &Option<String>) {
        let c = self.clocks[ev.unit].clone();
        let epoch = c.get(ev.unit);
        let loc = self.locs.entry(ev.addr).or_default();
        let mut conflict: Option<usize> = None;
        if let Some((wu, we)) = loc.write {
            if wu != ev.unit && !Self::ordered(&c, wu, we) {
                conflict = Some(wu);
            }
        }
        if ev.write {
            for &(ru, re) in &loc.reads {
                if ru != ev.unit && !Self::ordered(&c, ru, re) {
                    conflict = Some(ru);
                    break;
                }
            }
            loc.write = Some((ev.unit, epoch));
            loc.reads.clear();
        } else {
            match loc.reads.iter_mut().find(|(ru, _)| *ru == ev.unit) {
                Some(r) => r.1 = epoch,
                None => loc.reads.push((ev.unit, epoch)),
            }
        }
        if let Some(other) = conflict {
            self.push(Violation {
                class: ViolationClass::DataRace,
                unit: ev.unit,
                other: Some(other),
                addr: ev.addr,
                variable: variable.clone(),
                write: ev.write,
                cycle: ev.cycle,
            });
        }
    }

    /// Verdict checks (unsoundness, stale read) for one pthread-mode
    /// access to a private-region address.
    fn check_verdict(&mut self, ev: &TraceEvent, name: &str, owner_fn: Option<&str>) {
        let Some(verdict) = self.manifest.verdict_of(name, owner_fn) else {
            return;
        };
        if verdict != SharingStatus::Private {
            return;
        }
        let owner = match Self::stack_owner(ev.addr) {
            Some(su) => su,
            None => *self
                .first_toucher
                .entry(name.to_string())
                .or_insert(ev.unit),
        };
        let line = line_index(ev.addr, self.line_bytes);
        if !ev.write {
            if let Some(&(wu, we, _)) = self.line_writers.get(&line) {
                if wu != ev.unit && !Self::ordered(&self.clocks[ev.unit], wu, we) {
                    self.push(Violation {
                        class: ViolationClass::StaleRead,
                        unit: ev.unit,
                        other: Some(wu),
                        addr: ev.addr,
                        variable: Some(name.to_string()),
                        write: false,
                        cycle: ev.cycle,
                    });
                    return;
                }
            }
        }
        if ev.unit != owner {
            self.push(Violation {
                class: ViolationClass::Unsoundness,
                unit: ev.unit,
                other: Some(owner),
                addr: ev.addr,
                variable: Some(name.to_string()),
                write: ev.write,
                cycle: ev.cycle,
            });
        }
    }
}

impl TraceSink for Oracle {
    fn record(&mut self, ev: TraceEvent) {
        self.report.data_accesses += 1;
        self.ensure_unit(ev.unit);
        match self.mode {
            OracleMode::Pthread => {
                let resolved = self.resolve(ev.addr);
                if let Some((name, owner_fn)) = &resolved {
                    self.check_verdict(&ev, name, owner_fn.as_deref());
                }
                let variable = resolved.map(|(n, _)| n);
                self.check_race(&ev, &variable);
                if ev.write && ev.region.is_cacheable() {
                    let epoch = self.clocks[ev.unit].get(ev.unit);
                    self.line_writers.insert(
                        line_index(ev.addr, self.line_bytes),
                        (ev.unit, epoch, ev.cycle),
                    );
                }
            }
            OracleMode::Rcce => {
                // Private memory is physically per-core in a translated
                // run: same address, different storage. Only the shared
                // regions can carry cross-core conflicts.
                if ev.region != Region::Private {
                    self.check_race(&ev, &None);
                }
            }
        }
    }

    fn sync(&mut self, ev: SyncEvent) {
        self.report.sync_events += 1;
        match ev {
            SyncEvent::ThreadStart {
                parent, unit, func, ..
            } => {
                self.ensure_unit(parent.max(unit));
                let parent_vc = self.clocks[parent].clone();
                self.clocks[unit].join(&parent_vc);
                self.clocks[parent].inc(parent);
                self.unit_roots[unit] = func;
            }
            SyncEvent::ThreadJoin { unit, target, .. } => {
                self.ensure_unit(unit.max(target));
                let target_vc = self.clocks[target].clone();
                self.clocks[unit].join(&target_vc);
            }
            SyncEvent::LockAcquire { unit, lock, .. } => {
                self.ensure_unit(unit);
                if let Some(lc) = self.lock_clocks.get(&lock) {
                    let lc = lc.clone();
                    self.clocks[unit].join(&lc);
                }
            }
            SyncEvent::LockRelease { unit, lock, .. } => {
                self.ensure_unit(unit);
                let vc = self.clocks[unit].clone();
                self.lock_clocks.entry(lock).or_default().join(&vc);
                self.clocks[unit].inc(unit);
            }
            SyncEvent::BarrierArrive { unit, epoch, .. } => {
                self.ensure_unit(unit);
                let vc = self.clocks[unit].clone();
                self.barrier_acc.entry(epoch).or_default().join(&vc);
            }
            SyncEvent::BarrierRelease { unit, epoch, .. } => {
                self.ensure_unit(unit);
                if let Some(acc) = self.barrier_acc.get(&epoch) {
                    let acc = acc.clone();
                    self.clocks[unit].join(&acc);
                }
                self.clocks[unit].inc(unit);
            }
            SyncEvent::Message { from, to, .. } => {
                self.ensure_unit(from.max(to));
                let from_vc = self.clocks[from].clone();
                self.clocks[to].join(&from_vc);
                self.clocks[from].inc(from);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsm_analysis::manifest::{RegionVerdict, VarVerdict};
    use hsm_vm::compile::compile;

    fn tiny_program() -> Program {
        let tu = hsm_cir::parse("int g; int main() { g = 1; return g; }").unwrap();
        compile(&tu).unwrap()
    }

    fn manifest_with(name: &str, verdict: SharingStatus) -> ClassificationManifest {
        ClassificationManifest {
            entries: vec![VarVerdict {
                name: name.to_string(),
                owner: None,
                is_global: true,
                mem_size: 4,
                stages: [verdict; 3],
                verdict,
                region: RegionVerdict::default(),
            }],
        }
    }

    fn access(unit: usize, addr: u64, write: bool, cycle: u64) -> TraceEvent {
        TraceEvent {
            core: 0,
            unit,
            cycle,
            addr,
            region: scc_sim::MemorySystem::region_of(addr),
            latency: 1,
            write,
        }
    }

    fn g_addr(p: &Program) -> u64 {
        p.global("g").unwrap().addr
    }

    #[test]
    fn unordered_conflicting_accesses_are_a_race() {
        let p = tiny_program();
        let a = g_addr(&p);
        let mut o = Oracle::new(
            &p,
            manifest_with("g", SharingStatus::Shared),
            OracleMode::Pthread,
            32,
        );
        o.record(access(0, a, true, 10));
        o.record(access(1, a, true, 20));
        let r = o.finish();
        assert_eq!(r.classes(), vec![ViolationClass::DataRace]);
        assert_eq!(r.violations[0].variable.as_deref(), Some("g"));
        assert_eq!(r.violations[0].other, Some(0));
    }

    #[test]
    fn lock_handoff_orders_accesses() {
        let p = tiny_program();
        let a = g_addr(&p);
        let mut o = Oracle::new(
            &p,
            manifest_with("g", SharingStatus::Shared),
            OracleMode::Pthread,
            32,
        );
        o.sync(SyncEvent::LockAcquire {
            unit: 0,
            lock: 7,
            cycle: 1,
        });
        o.record(access(0, a, true, 2));
        o.sync(SyncEvent::LockRelease {
            unit: 0,
            lock: 7,
            cycle: 3,
        });
        o.sync(SyncEvent::LockAcquire {
            unit: 1,
            lock: 7,
            cycle: 4,
        });
        o.record(access(1, a, true, 5));
        o.sync(SyncEvent::LockRelease {
            unit: 1,
            lock: 7,
            cycle: 6,
        });
        assert!(o.finish().is_clean());
    }

    #[test]
    fn barrier_epochs_order_accesses() {
        let p = tiny_program();
        let a = g_addr(&p);
        let mut o = Oracle::new(
            &p,
            manifest_with("g", SharingStatus::Shared),
            OracleMode::Pthread,
            32,
        );
        o.record(access(0, a, true, 1));
        for unit in 0..2 {
            o.sync(SyncEvent::BarrierArrive {
                unit,
                epoch: 0,
                cycle: 2,
            });
        }
        for unit in 0..2 {
            o.sync(SyncEvent::BarrierRelease {
                unit,
                epoch: 0,
                cycle: 3,
            });
        }
        o.record(access(1, a, false, 4));
        assert!(o.finish().is_clean());
    }

    #[test]
    fn create_and_join_order_accesses() {
        let p = tiny_program();
        let a = g_addr(&p);
        let mut o = Oracle::new(
            &p,
            manifest_with("g", SharingStatus::Shared),
            OracleMode::Pthread,
            32,
        );
        o.record(access(0, a, true, 1));
        o.sync(SyncEvent::ThreadStart {
            parent: 0,
            unit: 1,
            func: 0,
            cycle: 2,
        });
        o.record(access(1, a, true, 3));
        o.sync(SyncEvent::ThreadJoin {
            unit: 0,
            target: 1,
            cycle: 4,
        });
        o.record(access(0, a, false, 5));
        assert!(o.finish().is_clean());
    }

    #[test]
    fn cross_owner_touch_of_private_data_is_unsound() {
        let p = tiny_program();
        let a = g_addr(&p);
        let mut o = Oracle::new(
            &p,
            manifest_with("g", SharingStatus::Private),
            OracleMode::Pthread,
            32,
        );
        // Unit 0 touches first and becomes the owner; unit 1's ordered
        // write is still a cross-owner touch.
        o.record(access(0, a, true, 1));
        o.sync(SyncEvent::ThreadStart {
            parent: 0,
            unit: 1,
            func: 0,
            cycle: 2,
        });
        o.record(access(1, a, true, 3));
        let r = o.finish();
        assert_eq!(r.count(ViolationClass::Unsoundness), 1);
        assert_eq!(
            r.count(ViolationClass::DataRace),
            0,
            "create edge orders them"
        );
        let v = &r.violations[0];
        assert_eq!(v.unit, 1);
        assert_eq!(v.other, Some(0), "owner");
        assert_eq!(v.variable.as_deref(), Some("g"));
    }

    #[test]
    fn unsynchronized_read_after_remote_write_is_stale() {
        let p = tiny_program();
        let a = g_addr(&p);
        let mut o = Oracle::new(
            &p,
            manifest_with("g", SharingStatus::Private),
            OracleMode::Pthread,
            32,
        );
        o.record(access(0, a, true, 1));
        o.record(access(1, a, false, 2));
        let r = o.finish();
        assert_eq!(r.count(ViolationClass::StaleRead), 1);
        assert_eq!(
            r.count(ViolationClass::DataRace),
            1,
            "also an unordered conflict"
        );
        let stale = r
            .violations
            .iter()
            .find(|v| v.class == ViolationClass::StaleRead)
            .unwrap();
        assert_eq!(stale.other, Some(0), "last writer");
    }

    #[test]
    fn ordered_cross_owner_read_is_unsound_not_stale() {
        let p = tiny_program();
        let a = g_addr(&p);
        let mut o = Oracle::new(
            &p,
            manifest_with("g", SharingStatus::Private),
            OracleMode::Pthread,
            32,
        );
        o.record(access(0, a, true, 1));
        o.sync(SyncEvent::ThreadStart {
            parent: 0,
            unit: 1,
            func: 0,
            cycle: 2,
        });
        o.record(access(1, a, false, 3));
        let r = o.finish();
        assert_eq!(r.classes(), vec![ViolationClass::Unsoundness]);
    }

    #[test]
    fn duplicate_violations_are_reported_once() {
        let p = tiny_program();
        let a = g_addr(&p);
        let mut o = Oracle::new(
            &p,
            manifest_with("g", SharingStatus::Private),
            OracleMode::Pthread,
            32,
        );
        o.record(access(0, a, true, 1));
        for c in 0..5 {
            o.record(access(1, a, false, 10 + c));
        }
        let r = o.finish();
        assert_eq!(r.count(ViolationClass::StaleRead), 1);
    }

    #[test]
    fn rcce_mode_ignores_private_region_and_races_shared() {
        let p = tiny_program();
        let mut o = Oracle::new(&p, ClassificationManifest::empty(), OracleMode::Rcce, 32);
        // Same private address on two cores: distinct physical memory.
        o.record(access(0, g_addr(&p), true, 1));
        o.record(access(1, g_addr(&p), true, 2));
        // Same shared-DRAM address unsynchronized: a real conflict.
        o.record(access(0, 0x8000_0100, true, 3));
        o.record(access(1, 0x8000_0100, false, 4));
        let r = o.finish();
        assert_eq!(r.classes(), vec![ViolationClass::DataRace]);
        assert_eq!(r.count(ViolationClass::DataRace), 1);
        assert_eq!(r.violations[0].addr, 0x8000_0100);
    }

    #[test]
    fn message_edge_orders_rcce_accesses() {
        let p = tiny_program();
        let mut o = Oracle::new(&p, ClassificationManifest::empty(), OracleMode::Rcce, 32);
        o.record(access(0, 0x8000_0100, true, 1));
        o.sync(SyncEvent::Message {
            from: 0,
            to: 1,
            cycle: 2,
        });
        o.record(access(1, 0x8000_0100, false, 3));
        assert!(o.finish().is_clean());
    }

    #[test]
    fn report_counts_streams() {
        let p = tiny_program();
        let mut o = Oracle::new(&p, ClassificationManifest::empty(), OracleMode::Pthread, 32);
        o.record(access(0, g_addr(&p), true, 1));
        o.sync(SyncEvent::ThreadStart {
            parent: 0,
            unit: 1,
            func: 0,
            cycle: 2,
        });
        let r = o.finish();
        assert_eq!(r.data_accesses, 1);
        assert_eq!(r.sync_events, 1);
    }
}
