//! # hsm-exec — discrete-event execution of C programs on the simulated SCC
//!
//! One interpreter — the [`ExecutionCore`] — runs every program. It is
//! parameterized along two orthogonal axes:
//!
//! * a [`SyncModel`], the synchronization semantics of an execution mode.
//!   Two ship, reproducing the paper's experimental configurations
//!   (Table 6.1): [`run_pthread`] — the baseline: all threads of a
//!   pthread program time-sliced on **one** core, sharing its caches,
//!   with an OS quantum and context-switch penalty — and [`run_rcce`] —
//!   the converted program: one process per core, each running the whole
//!   translated binary, synchronized by RCCE barriers and test-and-set
//!   locks, with private/shared/MPB memory latencies from `scc-sim`.
//! * a [`CoherenceModel`], selected by [`ExecModel`]: what value a load
//!   observes. [`ExecModel::Coherent`] is ground truth;
//!   [`ExecModel::NonCoherentWriteBack`] makes the SCC's missing hardware
//!   coherence *executable* (stale reads really happen);
//!   [`ExecModel::SeqCstReference`] is a cacheless differential
//!   reference.
//!
//! The RCCE scheduler always advances the core with the smallest local
//! clock, so memory-controller queuing and lock contention resolve in
//! globally consistent simulated time, deterministically.
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use hsm_exec::run_pthread;
//! use scc_sim::SccConfig;
//!
//! let src = r#"
//!     int data[4];
//!     void *tf(void *tid) { data[(int)tid] = (int)tid * 10; return tid; }
//!     int main() {
//!         pthread_t t[4];
//!         int i;
//!         for (i = 0; i < 4; i++) pthread_create(&t[i], NULL, tf, (void *)i);
//!         for (i = 0; i < 4; i++) pthread_join(t[i], NULL);
//!         printf("%d %d %d %d\n", data[0], data[1], data[2], data[3]);
//!         return 0;
//!     }
//! "#;
//! let program = hsm_vm::compile(&hsm_cir::parse(src)?)?;
//! let result = run_pthread(&program, &SccConfig::table_6_1())?;
//! assert_eq!(result.output_text(), "0 10 20 30\n");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod coherence;
pub mod engine;
pub mod machine;
pub mod oracle;
pub mod printf;
pub mod profile;
mod pthread;
mod rcce;
mod taskflow;
pub mod trace;

pub use coherence::{CoherenceModel, Coherent, ExecModel, NonCoherentWriteBack, SeqCstReference};
pub use engine::{Charge, ExecEnv, ExecutionCore, Flow, SyncModel, UnitState};
pub use machine::{DataSpaces, ExecError, OutputLine, RunResult};
pub use oracle::{Oracle, OracleMode, OracleReport, Violation, ViolationClass};
pub use profile::{
    CoreProfile, Profile, ProfileCollector, RegionProfile, ReuseHistogram, SyncSummary,
};
pub use pthread::{
    run_pthread, run_pthread_model, run_pthread_model_profiled, run_pthread_model_traced,
    run_pthread_traced,
};
pub use rcce::{
    run_rcce, run_rcce_model, run_rcce_model_profiled, run_rcce_model_traced, run_rcce_traced,
};
pub use taskflow::{
    run_task, run_task_model, run_task_model_profiled, run_task_model_traced, run_task_traced,
};
pub use trace::{NullSink, RingTrace, SyncEvent, TraceEvent, TraceSink};

/// Fixed syscall overheads in core cycles (single place to tune).
pub mod syscall_cost {
    /// `RCCE_init` library setup.
    pub const RCCE_INIT: u64 = 2_000;
    /// `RCCE_finalize`.
    pub const RCCE_FINALIZE: u64 = 1_000;
    /// Any allocator call.
    pub const ALLOC: u64 = 400;
    /// `printf` formatting + console path.
    pub const PRINTF: u64 = 1_500;
    /// `pthread_create` (kernel thread setup on the baseline core).
    pub const THREAD_CREATE: u64 = 8_000;
    /// `pthread_join` bookkeeping.
    pub const JOIN: u64 = 600;
    /// Mutex fast path.
    pub const MUTEX: u64 = 120;
    /// `task_spawn` descriptor construction + dependence lookup (a
    /// user-level operation, far cheaper than a kernel thread spawn).
    pub const TASK_SPAWN: u64 = 900;
    /// Per-task dispatch bookkeeping on the worker side, on top of the
    /// input-region DMA cost.
    pub const TASK_DISPATCH: u64 = 300;
    /// `task_wait_all` completion check and return.
    pub const TASK_WAIT: u64 = 400;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsm_cir::parse;
    use hsm_vm::compile;
    use scc_sim::SccConfig;

    fn compile_src(src: &str) -> hsm_vm::Program {
        compile(&parse(src).expect("parse")).expect("compile")
    }

    fn cfg() -> SccConfig {
        SccConfig::table_6_1()
    }

    // ------------------------------------------------------ pthread mode --

    const PTHREAD_SUM: &str = r#"
int sum[4];
int nthreads;
void *tf(void *tid) {
    int id = (int)tid;
    int i;
    for (i = 0; i < 100; i++) sum[id] += 1;
    return tid;
}
int main() {
    pthread_t t[4];
    int i;
    nthreads = 4;
    for (i = 0; i < 4; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 4; i++) pthread_join(t[i], NULL);
    return sum[0] + sum[1] + sum[2] + sum[3];
}
"#;

    #[test]
    fn pthread_threads_compute_and_join() {
        let p = compile_src(PTHREAD_SUM);
        let r = run_pthread(&p, &cfg()).expect("run");
        assert_eq!(r.exit_code, 400);
    }

    #[test]
    fn pthread_output_is_captured() {
        let src = r#"
void *tf(void *tid) { printf("thread %d\n", (int)tid); return tid; }
int main() {
    pthread_t t[2];
    int i;
    for (i = 0; i < 2; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 2; i++) pthread_join(t[i], NULL);
    return 0;
}
"#;
        let p = compile_src(src);
        let r = run_pthread(&p, &cfg()).expect("run");
        let lines = r.output_sorted();
        assert_eq!(lines, vec!["thread 0", "thread 1"]);
    }

    #[test]
    fn pthread_mutex_protects_counter() {
        let src = r#"
pthread_mutex_t m;
int counter;
void *tf(void *tid) {
    int i;
    for (i = 0; i < 50; i++) {
        pthread_mutex_lock(&m);
        counter = counter + 1;
        pthread_mutex_unlock(&m);
    }
    return tid;
}
int main() {
    pthread_t t[4];
    int i;
    pthread_mutex_init(&m, NULL);
    for (i = 0; i < 4; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 4; i++) pthread_join(t[i], NULL);
    return counter;
}
"#;
        let p = compile_src(src);
        let r = run_pthread(&p, &cfg()).expect("run");
        assert_eq!(r.exit_code, 200);
    }

    #[test]
    fn pthread_exit_terminates_thread() {
        let src = r#"
int mark[2];
void *tf(void *tid) {
    mark[(int)tid] = 1;
    pthread_exit(NULL);
}
int main() {
    pthread_t t[2];
    int i;
    for (i = 0; i < 2; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 2; i++) pthread_join(t[i], NULL);
    return mark[0] + mark[1];
}
"#;
        let p = compile_src(src);
        let r = run_pthread(&p, &cfg()).expect("run");
        assert_eq!(r.exit_code, 2);
    }

    #[test]
    fn pthread_more_threads_take_longer_on_one_core() {
        let make = |threads: usize| {
            format!(
                r#"
int work[{threads}];
void *tf(void *tid) {{
    int i;
    int acc = 0;
    for (i = 0; i < 20000; i++) acc += i;
    work[(int)tid] = acc;
    return tid;
}}
int main() {{
    pthread_t t[{threads}];
    int i;
    double t0 = wtime();
    for (i = 0; i < {threads}; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < {threads}; i++) pthread_join(t[i], NULL);
    double t1 = wtime();
    return 0;
}}
"#
            )
        };
        let r4 = run_pthread(&compile_src(&make(4)), &cfg()).expect("run 4");
        let r16 = run_pthread(&compile_src(&make(16)), &cfg()).expect("run 16");
        let ratio = r16.timed_cycles as f64 / r4.timed_cycles as f64;
        assert!(
            (3.0..6.0).contains(&ratio),
            "16 threads should take ~4x the time of 4 on one core, got {ratio}"
        );
    }

    #[test]
    fn pthread_self_returns_distinct_ids() {
        let src = r#"
int ids[3];
void *tf(void *tid) { ids[(int)tid] = (int)pthread_self(); return tid; }
int main() {
    pthread_t t[3];
    int i;
    for (i = 0; i < 3; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 3; i++) pthread_join(t[i], NULL);
    if (ids[0] == ids[1]) return 1;
    if (ids[1] == ids[2]) return 2;
    if (ids[0] == 0) return 3;
    return 0;
}
"#;
        let p = compile_src(src);
        assert_eq!(run_pthread(&p, &cfg()).expect("run").exit_code, 0);
    }

    #[test]
    fn rcce_calls_rejected_in_pthread_mode() {
        let src = "int main() { int x = RCCE_ue(); return x; }";
        let p = compile_src(src);
        let err = run_pthread(&p, &cfg()).unwrap_err();
        assert!(err.to_string().contains("RCCE call"), "{err}");
    }

    // --------------------------------------------------------- rcce mode --

    const RCCE_SUM: &str = r#"
int *sum;
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(&argc, &argv);
    sum = (int *)RCCE_shmalloc(sizeof(int) * 8);
    int myID;
    myID = RCCE_ue();
    sum[myID] = myID * 10;
    RCCE_barrier(&RCCE_COMM_WORLD);
    int total = 0;
    int i;
    for (i = 0; i < 8; i++) total += sum[i];
    RCCE_finalize();
    return total;
}
"#;

    #[test]
    fn rcce_cores_share_shmalloc_data() {
        let p = compile_src(RCCE_SUM);
        let r = run_rcce(&p, 8, &cfg()).expect("run");
        assert_eq!(r.exit_code, 280);
    }

    #[test]
    fn rcce_symmetric_allocation_is_consistent() {
        let src = r#"
int *a;
int *b;
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(&argc, &argv);
    a = (int *)RCCE_shmalloc(sizeof(int) * 4);
    b = (int *)RCCE_shmalloc(sizeof(int) * 4);
    int myID;
    myID = RCCE_ue();
    if (myID == 0) { a[0] = 7; b[0] = 9; }
    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_finalize();
    return a[0] * 10 + b[0];
}
"#;
        let p = compile_src(src);
        let r = run_rcce(&p, 4, &cfg()).expect("run");
        assert_eq!(r.exit_code, 79);
    }

    #[test]
    fn rcce_barrier_synchronizes_clocks() {
        let src = r#"
int *flag;
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(&argc, &argv);
    flag = (int *)RCCE_shmalloc(sizeof(int) * 1);
    int myID;
    myID = RCCE_ue();
    if (myID == 0) {
        int i;
        int acc = 0;
        for (i = 0; i < 50000; i++) acc += i;
        flag[0] = 42;
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    int seen = flag[0];
    RCCE_finalize();
    return seen;
}
"#;
        let p = compile_src(src);
        let r = run_rcce(&p, 4, &cfg()).expect("run");
        assert_eq!(r.exit_code, 42);
    }

    #[test]
    fn rcce_locks_serialize_increments() {
        let src = r#"
int *counter;
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(&argc, &argv);
    counter = (int *)RCCE_shmalloc(sizeof(int) * 1);
    int myID;
    myID = RCCE_ue();
    int i;
    for (i = 0; i < 20; i++) {
        RCCE_acquire_lock(0);
        counter[0] = counter[0] + 1;
        RCCE_release_lock(0);
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    int total = counter[0];
    RCCE_finalize();
    return total;
}
"#;
        let p = compile_src(src);
        let r = run_rcce(&p, 4, &cfg()).expect("run");
        assert_eq!(r.exit_code, 80, "4 cores x 20 increments");
    }

    #[test]
    fn rcce_mpb_malloc_allocates_on_chip() {
        let src = r#"
int *fast;
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(&argc, &argv);
    fast = (int *)RCCE_malloc(sizeof(int) * 8);
    int myID;
    myID = RCCE_ue();
    fast[myID] = myID + 1;
    RCCE_barrier(&RCCE_COMM_WORLD);
    int total = 0;
    int i;
    for (i = 0; i < 8; i++) total += fast[i];
    RCCE_finalize();
    return total;
}
"#;
        let p = compile_src(src);
        let r = run_rcce(&p, 8, &cfg()).expect("run");
        assert_eq!(r.exit_code, 36);
        assert!(
            r.mem_stats.mpb > 0,
            "MPB must be exercised: {:?}",
            r.mem_stats
        );
    }

    #[test]
    fn rcce_mpb_is_faster_than_shared_dram() {
        let body = |alloc: &str| {
            format!(
                r#"
int *data;
int RCCE_APP(int *argc, char **argv) {{
    RCCE_init(&argc, &argv);
    data = (int *){alloc}(sizeof(int) * 64);
    int myID;
    myID = RCCE_ue();
    double t0 = RCCE_wtime();
    int i;
    int acc = 0;
    for (i = 0; i < 2000; i++) acc += data[(myID * 64 + i) % 64];
    data[myID] = acc;
    double t1 = RCCE_wtime();
    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_finalize();
    return 0;
}}
"#
            )
        };
        let slow = run_rcce(&compile_src(&body("RCCE_shmalloc")), 8, &cfg()).expect("dram");
        let fast = run_rcce(&compile_src(&body("RCCE_malloc")), 8, &cfg()).expect("mpb");
        assert!(
            fast.timed_cycles < slow.timed_cycles,
            "MPB {} should beat DRAM {}",
            fast.timed_cycles,
            slow.timed_cycles
        );
    }

    #[test]
    fn rcce_more_cores_scale_compute() {
        let src = r#"
int *partial;
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(&argc, &argv);
    partial = (int *)RCCE_shmalloc(sizeof(int) * 48);
    int myID;
    myID = RCCE_ue();
    int n;
    n = RCCE_num_ues();
    double t0 = RCCE_wtime();
    int i;
    int acc = 0;
    for (i = myID; i < 100000; i += n) acc += i & 7;
    partial[myID] = acc;
    double t1 = RCCE_wtime();
    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_finalize();
    return 0;
}
"#;
        let p = compile_src(src);
        let r1 = run_rcce(&p, 1, &cfg()).expect("1 core");
        let r8 = run_rcce(&p, 8, &cfg()).expect("8 cores");
        let speedup = r1.timed_cycles as f64 / r8.timed_cycles as f64;
        assert!(
            speedup > 5.0,
            "8 cores should be >5x one core, got {speedup:.2}"
        );
    }

    #[test]
    fn rcce_deadlock_detected_when_core_skips_barrier() {
        let src = r#"
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(&argc, &argv);
    int myID;
    myID = RCCE_ue();
    if (myID != 0) {
        RCCE_barrier(&RCCE_COMM_WORLD);
    }
    RCCE_finalize();
    return 0;
}
"#;
        let p = compile_src(src);
        let err = run_rcce(&p, 4, &cfg()).unwrap_err();
        assert!(err.to_string().contains("deadlock"), "{err}");
    }

    #[test]
    fn rcce_pthread_leftovers_are_rejected() {
        let src = r#"
int RCCE_APP(int *argc, char **argv) {
    pthread_t t;
    pthread_create(&t, NULL, RCCE_APP, NULL);
    return 0;
}
"#;
        let p = compile_src(src);
        let err = run_rcce(&p, 2, &cfg()).unwrap_err();
        assert!(err.to_string().contains("translation incomplete"), "{err}");
    }

    #[test]
    fn rcce_put_get_move_data_through_mpb() {
        let src = r#"
int *slot;
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(&argc, &argv);
    slot = (int *)RCCE_malloc(sizeof(int) * 2);
    int myID;
    myID = RCCE_ue();
    int local[2];
    local[0] = myID + 100;
    if (myID == 0) {
        RCCE_put(slot, local, 4, 1);
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    int got = slot[0];
    RCCE_finalize();
    return got;
}
"#;
        let p = compile_src(src);
        let r = run_rcce(&p, 2, &cfg()).expect("run");
        assert_eq!(r.exit_code, 100);
    }

    #[test]
    fn core_count_bounds_checked() {
        let p = compile_src(RCCE_SUM);
        assert!(run_rcce(&p, 0, &cfg()).is_err());
        assert!(run_rcce(&p, 49, &cfg()).is_err());
    }

    // ------------------------------------------------ message passing --

    #[test]
    fn rcce_send_recv_ring() {
        // Each core sends its id to the next core in the ring and adds
        // what it receives; core 0's exit is 0*10 + received.
        let src = r#"
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(&argc, &argv);
    int myID;
    myID = RCCE_ue();
    int n;
    n = RCCE_num_ues();
    int out[1];
    int in[1];
    out[0] = myID * 10;
    if (myID % 2 == 0) {
        RCCE_send(out, 4, (myID + 1) % n);
        RCCE_recv(in, 4, (myID + n - 1) % n);
    } else {
        RCCE_recv(in, 4, (myID + n - 1) % n);
        RCCE_send(out, 4, (myID + 1) % n);
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_finalize();
    return in[0];
}
"#;
        let p = compile_src(src);
        let r = run_rcce(&p, 4, &cfg()).expect("run");
        // Core 0 receives from core 3: 30.
        assert_eq!(r.exit_code, 30);
    }

    #[test]
    fn rcce_flags_signal_across_cores() {
        // Core 0 computes, then raises core 1's flag copy; core 1 waits on
        // its own copy before reading the shared result.
        let src = r#"
int *slot;
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(&argc, &argv);
    slot = (int *)RCCE_shmalloc(sizeof(int) * 1);
    RCCE_FLAG ready;
    RCCE_flag_alloc(&ready);
    int myID;
    myID = RCCE_ue();
    int got = 0;
    if (myID == 0) {
        slot[0] = 777;
        RCCE_flag_write(&ready, 1, 1);
        got = 777;
    }
    if (myID == 1) {
        RCCE_wait_until(&ready, 1);
        got = slot[0];
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_finalize();
    return got;
}
"#;
        let p = compile_src(src);
        let r = run_rcce(&p, 2, &cfg()).expect("run");
        assert_eq!(r.exit_code, 777, "core 0's exit");
    }

    #[test]
    fn rcce_flag_read_returns_value() {
        let src = r#"
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(&argc, &argv);
    RCCE_FLAG f;
    RCCE_flag_alloc(&f);
    int myID;
    myID = RCCE_ue();
    RCCE_flag_write(&f, myID + 5, myID);
    int v[1];
    RCCE_flag_read(&f, v, myID);
    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_finalize();
    return v[0];
}
"#;
        let p = compile_src(src);
        let r = run_rcce(&p, 3, &cfg()).expect("run");
        assert_eq!(r.exit_code, 5, "core 0 wrote 0+5 to its own copy");
    }

    #[test]
    fn rcce_send_without_recv_deadlocks_cleanly() {
        let src = r#"
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(&argc, &argv);
    int myID;
    myID = RCCE_ue();
    int out[1];
    out[0] = 1;
    if (myID == 0) {
        RCCE_send(out, 4, 1);
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_finalize();
    return 0;
}
"#;
        let p = compile_src(src);
        let err = run_rcce(&p, 2, &cfg()).unwrap_err();
        assert!(err.to_string().contains("deadlock"), "{err}");
    }

    #[test]
    fn rcce_pingpong_costs_scale_with_message_size() {
        let body = |bytes: usize| {
            format!(
                r#"
int RCCE_APP(int *argc, char **argv) {{
    RCCE_init(&argc, &argv);
    int myID;
    myID = RCCE_ue();
    char buf[{bytes}];
    double t0 = RCCE_wtime();
    int r;
    for (r = 0; r < 8; r++) {{
        if (myID == 0) {{
            RCCE_send(buf, {bytes}, 1);
            RCCE_recv(buf, {bytes}, 1);
        }} else {{
            RCCE_recv(buf, {bytes}, 0);
            RCCE_send(buf, {bytes}, 0);
        }}
    }}
    double t1 = RCCE_wtime();
    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_finalize();
    return 0;
}}
"#
            )
        };
        let small = run_rcce(&compile_src(&body(32)), 2, &cfg()).expect("small");
        let big = run_rcce(&compile_src(&body(4096)), 2, &cfg()).expect("big");
        assert!(
            big.timed_cycles > small.timed_cycles,
            "4 KB ping-pong {} must cost more than 32 B {}",
            big.timed_cycles,
            small.timed_cycles
        );
    }

    // ------------------------------------------------------ observability --

    #[test]
    fn trace_ring_captures_rcce_accesses() {
        use crate::trace::RingTrace;
        let p = compile_src(RCCE_SUM);
        let mut ring = RingTrace::new(100_000);
        let r = run_rcce_traced(&p, 4, &cfg(), &mut ring).expect("run");
        assert!(!ring.is_empty(), "a real program performs memory accesses");
        assert_eq!(ring.dropped(), 0, "capacity is ample for this program");
        // Every traced event is attributed in the counter matrix: totals
        // must agree exactly.
        let traced = ring.total_seen();
        let counted: u64 = r
            .stats_matrix
            .per_core
            .iter()
            .map(|c| c.total_accesses())
            .sum();
        assert_eq!(traced, counted, "trace and counters see the same stream");
        // The shared `sum` array lives in shared DRAM: shared accesses from
        // more than one core must appear.
        let shared_cores: std::collections::HashSet<usize> = ring
            .events()
            .iter()
            .filter(|e| e.region == scc_sim::Region::SharedDram)
            .map(|e| e.core)
            .collect();
        assert!(shared_cores.len() >= 2, "cores {shared_cores:?}");
    }

    #[test]
    fn tracing_does_not_perturb_timing() {
        use crate::trace::RingTrace;
        let p = compile_src(RCCE_SUM);
        let plain = run_rcce(&p, 4, &cfg()).expect("plain");
        let mut ring = RingTrace::new(64);
        let traced = run_rcce_traced(&p, 4, &cfg(), &mut ring).expect("traced");
        assert_eq!(plain.total_cycles, traced.total_cycles);
        assert_eq!(plain.exit_code, traced.exit_code);
        assert_eq!(plain.mem_stats, traced.mem_stats);
        assert!(
            ring.dropped() > 0,
            "a tiny ring overflows and stays bounded"
        );
        assert_eq!(ring.len(), 64);
    }

    #[test]
    fn profiling_does_not_perturb_timing() {
        // The ProfileCollector rides the same monomorphized trace path as
        // RingTrace: every cycle total must match the unprofiled run, in
        // all three sync models.
        let rcce = compile_src(RCCE_SUM);
        let plain = run_rcce(&rcce, 4, &cfg()).expect("plain");
        let (profiled, profile) =
            run_rcce_model_profiled(&rcce, 4, &cfg(), ExecModel::Coherent).expect("profiled");
        assert_eq!(plain.total_cycles, profiled.total_cycles);
        assert_eq!(plain.mem_stats, profiled.mem_stats);
        assert_eq!(profile.total_cycles, plain.total_cycles);
        assert_eq!(profile.exit_code, plain.exit_code);
        assert!(profile.sync.barrier_epochs > 0, "RCCE_SUM barriers");
        assert!(profile.reuse_total().total() > 0, "private accesses seen");

        let pth = compile_src(PTHREAD_SUM);
        let plain = run_pthread(&pth, &cfg()).expect("plain");
        let (profiled, profile) =
            run_pthread_model_profiled(&pth, &cfg(), ExecModel::Coherent).expect("profiled");
        assert_eq!(plain.total_cycles, profiled.total_cycles);
        assert_eq!(profile.active_cores(), 1, "baseline shares core 0");

        let task = compile_src(TASK_SUM);
        let plain = run_task(&task, 5, &cfg()).expect("plain");
        let (profiled, profile) =
            run_task_model_profiled(&task, 5, &cfg(), ExecModel::Coherent).expect("profiled");
        assert_eq!(plain.total_cycles, profiled.total_cycles);
        assert_eq!(profile.exit_code, 400);
        assert!(
            profile.sync.dma_transfers > 0 && profile.sync.dma_bytes > 0,
            "task DMA volume flows through TraceSink::dma: {:?}",
            profile.sync
        );
    }

    #[test]
    fn pthread_trace_stays_on_core_zero() {
        use crate::trace::RingTrace;
        let p = compile_src(PTHREAD_SUM);
        let mut ring = RingTrace::new(1_000_000);
        let r = run_pthread_traced(&p, &cfg(), &mut ring).expect("run");
        assert!(ring.events().iter().all(|e| e.core == 0));
        assert_eq!(r.stats_matrix.active_cores(), 1, "baseline uses one core");
        assert_eq!(r.exit_code, 400);
    }

    #[test]
    fn run_result_reports_mpb_high_water() {
        let src = r#"
int *fast;
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(&argc, &argv);
    fast = (int *)RCCE_malloc(sizeof(int) * 100);
    fast[RCCE_ue()] = 1;
    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_finalize();
    return 0;
}
"#;
        let p = compile_src(src);
        let r = run_rcce(&p, 2, &cfg()).expect("run");
        assert_eq!(r.mpb_high_water, 416, "400 B rounds to the 32 B line");
    }

    // ------------------------------------------------------- exec models --

    #[test]
    fn seq_cst_reference_matches_coherent_values() {
        let p = compile_src(PTHREAD_SUM);
        let coherent = run_pthread(&p, &cfg()).expect("coherent");
        let flat = run_pthread_model(&p, &cfg(), ExecModel::SeqCstReference).expect("seq_cst_ref");
        assert_eq!(coherent.exit_code, flat.exit_code);
        assert_eq!(coherent.output_text(), flat.output_text());
        // Timing differs: the flat model has no caches to hit.
        assert_ne!(coherent.total_cycles, flat.total_cycles);
    }

    #[test]
    fn non_coherent_model_breaks_unsynchronized_pthread_sharing() {
        // Threads publish through private-region globals and main reads
        // them after join. Without coherence (and with pthread code never
        // flushing), main's cached lines stay stale.
        let p = compile_src(PTHREAD_SUM);
        let truth = run_pthread(&p, &cfg()).expect("coherent");
        assert_eq!(truth.exit_code, 400);
        let stale = run_pthread_model(&p, &cfg(), ExecModel::NonCoherentWriteBack).expect("stale");
        assert_ne!(
            stale.exit_code, 400,
            "stale reads must corrupt the unsynchronized sum"
        );
    }

    #[test]
    fn non_coherent_model_keeps_translated_rcce_programs_correct() {
        // The translated program shares through uncacheable shared DRAM
        // and flushes at barriers: staleness cannot reach it.
        let p = compile_src(RCCE_SUM);
        let r = run_rcce_model(&p, 8, &cfg(), ExecModel::NonCoherentWriteBack).expect("run");
        assert_eq!(r.exit_code, 280, "same answer as the coherent model");
    }

    #[test]
    fn rcce_barrier_flush_publishes_private_writes() {
        // Core 0 writes a *private* global before the barrier; its own
        // re-read after the barrier must see the flushed value even under
        // the non-coherent model.
        let src = r#"
int mine;
int RCCE_APP(int *argc, char **argv) {
    RCCE_init(&argc, &argv);
    mine = RCCE_ue() + 7;
    RCCE_barrier(&RCCE_COMM_WORLD);
    int v = mine;
    RCCE_finalize();
    return v;
}
"#;
        let p = compile_src(src);
        let r = run_rcce_model(&p, 2, &cfg(), ExecModel::NonCoherentWriteBack).expect("run");
        assert_eq!(r.exit_code, 7, "core 0's exit");
    }

    // ------------------------------------------------------ task dataflow --

    const TASK_SUM: &str = r#"
int sum[4];
void tf(int id) {
    int i;
    for (i = 0; i < 100; i++) sum[id] += 1;
}
int main() {
    int i;
    for (i = 0; i < 4; i++) task_spawn(tf, i, 0, 0, 0, 0, &sum[i], 4);
    task_wait_all();
    return sum[0] + sum[1] + sum[2] + sum[3];
}
"#;

    const TASK_CHAIN: &str = r#"
int a[8];
int b[8];
void produce(int n) {
    int i;
    for (i = 0; i < 8; i++) a[i] = i + n;
}
void transform(int unused) {
    int i;
    for (i = 0; i < 8; i++) b[i] = a[i] * 2;
}
int main() {
    int s;
    int i;
    task_spawn(produce, 1, 0, 0, 0, 0, &a[0], 32);
    task_spawn(transform, 0, &a[0], 32, 0, 0, &b[0], 32);
    task_wait_all();
    s = 0;
    for (i = 0; i < 8; i++) s += b[i];
    return s;
}
"#;

    #[test]
    fn independent_tasks_run_and_publish_their_outputs() {
        let p = compile_src(TASK_SUM);
        let r = run_task(&p, 4, &cfg()).expect("task run");
        assert_eq!(r.exit_code, 400);
        // The four tasks really spread across cores: more than one core
        // accumulated busy cycles.
        let active = r.per_unit_cycles.iter().filter(|&&c| c > 0).count();
        assert!(
            active > 1,
            "expected parallel execution: {:?}",
            r.per_unit_cycles
        );
    }

    #[test]
    fn task_dataflow_is_deterministic() {
        let p = compile_src(TASK_SUM);
        let a = run_task(&p, 4, &cfg()).expect("run a");
        let b = run_task(&p, 4, &cfg()).expect("run b");
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn raw_dependences_order_producer_before_consumer() {
        let p = compile_src(TASK_CHAIN);
        for model in ExecModel::ALL {
            let r = run_task_model(&p, 4, &cfg(), model).expect("chain run");
            // sum(2 * (i + 1) for i in 0..8) = 72 — only right when the
            // transform task observed the producer's published output.
            assert_eq!(r.exit_code, 72, "{model:?}");
        }
    }

    #[test]
    fn task_programs_survive_non_coherent_caches() {
        let p = compile_src(TASK_SUM);
        let truth = run_task(&p, 4, &cfg()).expect("coherent");
        let wb = run_task_model(&p, 4, &cfg(), ExecModel::NonCoherentWriteBack).expect("wb");
        assert_eq!(
            truth.exit_code, wb.exit_code,
            "declared outputs are flushed and DMAed"
        );
    }

    #[test]
    fn undeclared_sharing_is_lost_like_an_unflushed_pthread_program() {
        // The task writes a global it never declares as an output: the
        // runtime has no reason to move it off the worker's core, so main
        // keeps seeing the load-image value.
        let src = r#"
int flag;
void tf(int unused) { flag = 1; }
int main() {
    task_spawn(tf, 0, 0, 0, 0, 0, 0, 0);
    task_wait_all();
    return flag;
}
"#;
        let p = compile_src(src);
        let r = run_task(&p, 4, &cfg()).expect("run");
        assert_eq!(
            r.exit_code, 0,
            "undeclared output never reaches main's space"
        );
    }

    #[test]
    fn task_self_and_workers_report() {
        let src = r#"
int ids[3];
void tf(int slot) { ids[slot] = task_self(); }
int main() {
    task_spawn(tf, 0, 0, 0, 0, 0, &ids[0], 4);
    task_spawn(tf, 1, 0, 0, 0, 0, &ids[1], 4);
    task_wait_all();
    return ids[0] * 10 + ids[1] + task_workers() * 100 + task_self() * 1000;
}
"#;
        let p = compile_src(src);
        let r = run_task(&p, 4, &cfg()).expect("run");
        // Task ids are 1 and 2 in spawn order; main is task 0; 4 workers:
        // 1*10 + 2 + 4*100.
        assert_eq!(r.exit_code, 412);
    }

    #[test]
    fn foreign_intrinsics_are_rejected_in_task_mode() {
        let src = r#"
pthread_mutex_t lock;
int main() {
    pthread_mutex_lock(&lock);
    return 0;
}
"#;
        let p = compile_src(src);
        let err = run_task(&p, 2, &cfg()).expect_err("mutex in task mode");
        assert!(err.message.contains("task"), "{}", err.message);
    }

    #[test]
    fn wait_all_inside_a_task_is_an_error() {
        let src = r#"
void tf(int unused) { task_wait_all(); }
int main() {
    task_spawn(tf, 0, 0, 0, 0, 0, 0, 0);
    task_wait_all();
    return 0;
}
"#;
        let p = compile_src(src);
        let err = run_task(&p, 2, &cfg()).expect_err("nested wait_all");
        assert!(err.message.contains("task_wait_all"), "{}", err.message);
    }
}
