//! Integration tests for the `hsmsim` command-line tool.

use std::process::Command;

const PROGRAM: &str = r#"
#include <pthread.h>
int sums[4];
void *tf(void *tid) {
    int id = (int)tid;
    int i;
    for (i = 0; i < 50; i++) sums[id] += id + 1;
    return tid;
}
int main() {
    pthread_t t[4];
    int i;
    for (i = 0; i < 4; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 4; i++) {
        pthread_join(t[i], NULL);
        printf("sum %d = %d\n", i, sums[i]);
    }
    return 0;
}
"#;

fn write_temp(name: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, PROGRAM).expect("write temp file");
    path
}

fn hsmsim(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_hsmsim"))
        .args(args)
        .output()
        .expect("spawn hsmsim")
}

#[test]
fn pthread_mode_prints_program_output() {
    let input = write_temp("sim_base.c");
    let out = hsmsim(&[input.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for expect in ["sum 0 = 50", "sum 1 = 100", "sum 2 = 150", "sum 3 = 200"] {
        assert!(stdout.contains(expect), "{stdout}");
    }
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("timed region"), "{stderr}");
}

#[test]
fn rcce_mode_matches_pthread_output() {
    let input = write_temp("sim_rcce.c");
    let base = hsmsim(&[input.to_str().unwrap()]);
    let rcce = hsmsim(&[input.to_str().unwrap(), "--mode", "rcce", "--cores", "4"]);
    assert!(rcce.status.success(), "{rcce:?}");
    let base_out = String::from_utf8_lossy(&base.stdout);
    let rcce_out = String::from_utf8_lossy(&rcce.stdout);
    let mut base_lines: Vec<&str> = base_out.lines().collect();
    let mut rcce_lines: Vec<&str> = rcce_out.lines().collect();
    base_lines.sort_unstable();
    base_lines.dedup();
    rcce_lines.sort_unstable();
    rcce_lines.dedup();
    assert_eq!(base_lines, rcce_lines);
}

#[test]
fn stats_flag_reports_memory_counters() {
    let input = write_temp("sim_stats.c");
    let out = hsmsim(&[
        input.to_str().unwrap(),
        "--mode",
        "rcce",
        "--cores",
        "4",
        "--stats",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("load imbalance"), "{stderr}");
    assert!(stderr.contains("L1 hits"), "{stderr}");
}

#[test]
fn bad_mode_is_rejected() {
    let input = write_temp("sim_badmode.c");
    let out = hsmsim(&[input.to_str().unwrap(), "--mode", "quantum"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad mode"), "{stderr}");
}
