//! The Profile artifact's determinism contract: its `hsmprofile` text
//! form must be byte-identical across fresh sessions, across sweep
//! worker counts, and across a cold-vs-warm persistent store — the
//! property that keeps predictor fits and manifest predict sections
//! reproducible.

use hsm_core::api::{
    sweep_with, ArtifactCache, Mode, Scenario, SweepMatrix, SweepOptions, SweepTask,
};
use hsm_core::Pipeline;
use scc_sim::SccConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// An 8-way decomposition that folds onto every core count in the
/// sweep below (2, 4, 8).
const SRC: &str = r#"
int sum[8];
void *tf(void *tid) {
    int i;
    int acc = 0;
    for (i = 0; i < 16; i++) acc = acc + (int)tid + i;
    sum[(int)tid] = acc;
    return tid;
}
int main() {
    pthread_t t[8];
    int i;
    int total = 0;
    for (i = 0; i < 8; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 8; i++) pthread_join(t[i], NULL);
    for (i = 0; i < 8; i++) total = total + sum[i];
    return total % 251;
}
"#;

/// A fresh store directory per test (under the system temp dir).
fn temp_store(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "hsm-profile-test-{}-{}-{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The seed-point pipeline of the predict-first sweep below, wired to
/// `cache` so its profile lookup resolves against what the sweep
/// deposited.
fn seed_pipeline(cache: &Arc<ArtifactCache>) -> Pipeline {
    Pipeline::new(SRC)
        .cores(2)
        .scenario(Scenario::new(Mode::RcceHsm))
        .cache(Arc::clone(cache))
}

/// A three-point core axis over one program: enough for predict-first
/// to profile the seed (2 cores), simulate the validation point
/// (8 cores) and predict the middle.
fn matrix(cache: &Arc<ArtifactCache>) -> SweepMatrix {
    let src: Arc<str> = Arc::from(SRC);
    let mut m = SweepMatrix::new(SccConfig::table_6_1()).cache(Arc::clone(cache));
    for cores in [2usize, 4, 8] {
        m = m.point(
            format!("det/{cores}"),
            Arc::clone(&src),
            SweepTask::Run(Scenario::new(Mode::RcceHsm)),
            cores,
        );
    }
    m
}

#[test]
fn profile_text_is_byte_identical_across_fresh_sessions() {
    let a = Pipeline::new(SRC)
        .cores(4)
        .profile()
        .expect("first session");
    let b = Pipeline::new(SRC)
        .cores(4)
        .profile()
        .expect("second session");
    let text = a.to_text();
    assert_eq!(
        text,
        b.to_text(),
        "independent sessions must agree byte-for-byte"
    );
    let parsed = hsm_core::Profile::from_text(&text).expect("round-trips");
    assert_eq!(parsed.to_text(), text, "serialize∘parse is the identity");
}

#[test]
fn sweep_worker_count_does_not_change_the_profile_text() {
    let options = SweepOptions {
        predict_first: true,
        ..SweepOptions::default()
    };

    let serial_cache = ArtifactCache::shared();
    let report = sweep_with(
        &matrix(&serial_cache).workers(1),
        SweepOptions {
            predict_first: true,
            ..SweepOptions::default()
        },
    );
    assert_eq!(report.outcomes.len(), 3);

    let parallel_cache = ArtifactCache::shared();
    let parallel = sweep_with(&matrix(&parallel_cache).workers(4), options);
    assert_eq!(parallel.outcomes.len(), 3);

    // The sweeps themselves computed the seed profile; reading it back
    // through an identically-keyed pipeline must be a pure cache hit.
    for cache in [&serial_cache, &parallel_cache] {
        let before = cache.stats().profile;
        assert!(before.misses > 0, "predict-first profiled the seed");
        seed_pipeline(cache).profile().expect("profile lookup");
        let after = cache.stats().profile;
        assert_eq!(after.misses, before.misses, "lookup recomputed nothing");
        assert!(after.hits > before.hits, "lookup hit the sweep's artifact");
    }

    let serial_text = seed_pipeline(&serial_cache)
        .profile()
        .expect("serial")
        .to_text();
    let parallel_text = seed_pipeline(&parallel_cache)
        .profile()
        .expect("parallel")
        .to_text();
    assert_eq!(
        serial_text, parallel_text,
        "worker fan-out must not perturb the profile"
    );
}

#[test]
fn profile_is_byte_identical_cold_vs_warm_store() {
    let dir = temp_store("profile");

    let cold_cache = ArtifactCache::persistent(&dir).expect("open store");
    let cold = seed_pipeline(&cold_cache).profile().expect("cold profile");
    let cold_stats = cold_cache.stats().store.expect("store stats present");
    assert!(cold_stats.profile.writes > 0, "cold profile written back");

    // A brand-new cache over the same directory: the profile loads from
    // disk through the text codec instead of re-simulating.
    let warm_cache = ArtifactCache::persistent(&dir).expect("reopen store");
    let warm = seed_pipeline(&warm_cache).profile().expect("warm profile");
    let warm_stats = warm_cache.stats().store.expect("store stats present");
    assert!(warm_stats.profile.loads > 0, "profile came from disk");
    assert_eq!(warm_stats.profile.misses, 0, "warm run never misses");
    assert_eq!(
        cold.to_text(),
        warm.to_text(),
        "the store round-trip must be byte-exact"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
