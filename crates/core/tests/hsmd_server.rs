//! Integration tests of the `hsmd` job server over a real socket:
//! ping/translate round-trips, two concurrent clients streaming sweeps
//! of overlapping corpora, malformed-line handling, per-job deadlines,
//! and graceful shutdown.

use hsm_core::api::{Client, Mode, Scenario, Server, ServerOptions, SpecProgram, SweepSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

const TINY_SRC: &str = r#"
int shared[2];
void *tf(void *tid) { shared[(int)tid] = (int)tid + 10; return tid; }
int main() {
    pthread_t t[2];
    int i;
    for (i = 0; i < 2; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 2; i++) pthread_join(t[i], NULL);
    printf("%d %d\n", shared[0], shared[1]);
    return 0;
}
"#;

/// Binds a server on an ephemeral port, runs it on its own thread, and
/// returns the address string plus the run-loop join handle.
fn start_server(
    options: ServerOptions,
) -> (String, Server, std::sync::Arc<hsm_core::api::ArtifactCache>) {
    let server = Server::bind("127.0.0.1:0", options).expect("bind");
    let addr = server.local_addr().to_string();
    let cache = server.cache();
    (addr, server, cache)
}

fn spec_for(programs: Vec<SpecProgram>) -> SweepSpec {
    SweepSpec {
        programs,
        scenarios: vec![
            Scenario::new(Mode::PthreadBaseline),
            Scenario::new(Mode::RcceHsm),
        ],
        workers: 2,
        ..SweepSpec::default()
    }
}

#[test]
fn ping_and_translate_round_trip() {
    let (addr, server, _cache) = start_server(ServerOptions::default());
    let run = std::thread::spawn(move || server.run());
    let mut client = Client::connect(&addr).expect("connect");
    client.ping().expect("pong");
    let rcce = client
        .translate("tiny", TINY_SRC, 2, None)
        .expect("translated");
    assert!(rcce.contains("RCCE_init"), "RCCE C source:\n{rcce}");
    client.shutdown().expect("shutdown ack");
    run.join().expect("run thread").expect("clean exit");
}

#[test]
fn two_concurrent_clients_stream_identical_ordered_rows() {
    let (addr, server, cache) = start_server(ServerOptions::default());
    let handle = server.handle();
    let run = std::thread::spawn(move || server.run());

    // Both clients sweep the same overlapping spec: one corpus program
    // plus one inline program, two modes each.
    let spec = spec_for(vec![
        SpecProgram::corpus("example_4_1", 3),
        SpecProgram::inline("tiny", 2, TINY_SRC),
    ]);
    let expected_names = [
        "example_4_1/baseline",
        "example_4_1/hsm",
        "tiny/baseline",
        "tiny/hsm",
    ];

    let sweeps: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            let spec = spec.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let mut streamed = Vec::new();
                let rows = client
                    .sweep_streaming(&spec, None, |row| streamed.push(row.name.clone()))
                    .expect("sweep");
                (streamed, rows)
            })
        })
        .collect();
    let results: Vec<_> = sweeps
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();

    for (streamed, rows) in &results {
        // Rows arrive in matrix order, one per point.
        assert_eq!(streamed, &expected_names);
        for row in rows {
            assert_eq!(row.error, None, "point {} failed", row.name);
            assert_eq!(row.exit_code, Some(0), "point {}", row.name);
            assert!(row.output_fnv.is_some(), "point {}", row.name);
        }
    }
    // Determinism across clients: every simulated field matches.
    assert_eq!(results[0].1, results[1].1, "clients observed the same rows");

    // The shared cache parsed each distinct source once even though two
    // clients swept concurrently (the pending-slot discipline).
    let stats = cache.stats();
    assert_eq!(stats.parse.misses, 2, "two distinct sources: {stats:?}");
    assert!(stats.parse.hits >= 2, "the second client hit: {stats:?}");

    handle.stop();
    run.join().expect("run thread").expect("clean exit");
}

#[test]
fn malformed_job_line_reports_an_error_and_keeps_the_connection() {
    let (addr, server, _cache) = start_server(ServerOptions::default());
    let handle = server.handle();
    let run = std::thread::spawn(move || server.run());

    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.write_all(b"this is not json\n").expect("write");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("error line");
    assert!(line.contains("\"error\""), "error response: {line}");
    assert!(line.contains("\"id\":0"), "no-job id: {line}");

    // The connection survives: a well-formed ping still answers.
    stream
        .write_all(b"{\"id\": 7, \"op\": \"ping\"}\n")
        .expect("write ping");
    line.clear();
    reader.read_line(&mut line).expect("pong line");
    assert!(line.contains("\"pong\""), "pong response: {line}");

    handle.stop();
    run.join().expect("run thread").expect("clean exit");
}

#[test]
fn expired_deadline_cancels_remaining_sweep_points() {
    let (addr, server, _cache) = start_server(ServerOptions::default());
    let handle = server.handle();
    let run = std::thread::spawn(move || server.run());

    // A program slow enough (in simulated work) that the 1ms deadline
    // has long expired by the time its first point finishes.
    let busy = r#"
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 200000; i++) s += i;
    return s != 0;
}
"#;
    let mut spec = spec_for(vec![SpecProgram::inline("busy", 2, busy)]);
    spec.workers = 1;
    let mut client = Client::connect(&addr).expect("connect");
    let rows = client.sweep(&spec, Some(1)).expect("sweep completes");
    assert_eq!(rows.len(), 2);
    // The deadline check runs before each point: the second point (and
    // possibly the first, depending on scheduling) is cancelled.
    assert_eq!(rows[1].error.as_deref(), Some("run cancelled"), "{rows:?}");
    for row in &rows {
        match row.error.as_deref() {
            None => assert!(row.exit_code.is_some(), "{row:?}"),
            Some("run cancelled") => assert_eq!(row.exit_code, None, "{row:?}"),
            Some(other) => panic!("unexpected error `{other}`: {row:?}"),
        }
    }

    // The same connection still serves an undeadlined sweep afterwards.
    let rows = client.sweep(&spec, None).expect("second sweep");
    assert!(rows.iter().all(|r| r.error.is_none()), "{rows:?}");

    handle.stop();
    run.join().expect("run thread").expect("clean exit");
}

#[test]
fn shutdown_job_stops_the_accept_loop() {
    let (addr, server, _cache) = start_server(ServerOptions::default());
    let run = std::thread::spawn(move || server.run());
    let mut client = Client::connect(&addr).expect("connect");
    client.ping().expect("pong");
    client.shutdown().expect("shutdown ack");
    run.join().expect("run thread").expect("clean exit");
    // The listener is gone: a fresh connection cannot complete a ping.
    std::thread::sleep(Duration::from_millis(100));
    let refused = match Client::connect(&addr) {
        Err(_) => true,
        Ok(mut client) => client.ping().is_err(),
    };
    assert!(refused, "server kept serving after shutdown");
}
