//! End-to-end test of the `hsmd` binary: spawn it on an ephemeral port,
//! drive it with the client API, and shut it down cleanly.

use hsm_core::api::{Client, Mode, Scenario, SpecProgram, SweepSpec};
use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};

#[test]
fn hsmd_binary_serves_a_sweep_and_exits_on_shutdown() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hsmd"))
        .args(["--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn hsmd");

    // The ready line carries the actual port.
    let stdout = child.stdout.take().expect("stdout");
    let mut ready = String::new();
    BufReader::new(stdout)
        .read_line(&mut ready)
        .expect("ready line");
    let addr = ready
        .trim()
        .strip_prefix("hsmd listening on ")
        .unwrap_or_else(|| panic!("unexpected ready line: {ready:?}"))
        .to_string();

    let mut client = Client::connect(&addr).expect("connect");
    client.ping().expect("pong");
    let spec = SweepSpec {
        programs: vec![SpecProgram::inline("ret", 2, "int main() { return 42; }")],
        scenarios: vec![
            Scenario::new(Mode::PthreadBaseline),
            Scenario::new(Mode::RcceHsm),
        ],
        workers: 1,
        ..SweepSpec::default()
    };
    let rows = client.sweep(&spec, None).expect("sweep");
    assert_eq!(rows.len(), 2);
    assert!(rows.iter().all(|r| r.exit_code == Some(42)), "{rows:?}");

    client.shutdown().expect("shutdown ack");
    let status = child.wait().expect("wait");
    assert!(status.success(), "hsmd exit status: {status:?}");
}

#[test]
fn hsmd_rejects_unknown_arguments() {
    let out = Command::new(env!("CARGO_BIN_EXE_hsmd"))
        .arg("--frobnicate")
        .output()
        .expect("run hsmd");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown argument"), "stderr: {stderr}");
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
}
