//! Integration tests of the persistent artifact store: a cold run
//! populates the on-disk store, a warm run over the same directory
//! reloads every artifact with zero store misses, corruption falls back
//! to recompute, and capacity eviction surfaces in the stats.

use hsm_core::api::{ArtifactCache, DiskStore, Pipeline, Policy};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

const SRC: &str = r#"
int sum[2];
void *tf(void *tid) { sum[(int)tid] = (int)tid + 1; return tid; }
int main() {
    pthread_t t[2];
    int i;
    for (i = 0; i < 2; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 2; i++) pthread_join(t[i], NULL);
    return sum[0] + sum[1];
}
"#;

/// A fresh store directory per test (under the system temp dir).
fn temp_store(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "hsm-cache-test-{}-{}-{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs baseline + off-chip + HSM through one session family over the
/// given cache, returning the three exit codes and timed cycles.
fn run_all(cache: &Arc<ArtifactCache>) -> Vec<(i64, u64)> {
    let session = Pipeline::new(SRC).cores(2).cache(Arc::clone(cache));
    let base = session.run_baseline().expect("baseline");
    let off = session
        .clone()
        .policy(Policy::OffChipOnly)
        .run()
        .expect("off-chip");
    let hsm = session.run().expect("hsm");
    vec![
        (base.exit_code, base.timed_cycles),
        (off.exit_code, off.timed_cycles),
        (hsm.exit_code, hsm.timed_cycles),
    ]
}

#[test]
fn cold_run_populates_warm_run_loads_with_zero_misses() {
    let dir = temp_store("warm");
    let cold_cache = ArtifactCache::persistent(&dir).expect("open store");
    let cold_runs = run_all(&cold_cache);
    let cold = cold_cache.stats();
    let cold_store = cold.store.expect("store stats present");
    assert!(cold_store.total_misses() > 0, "cold run misses the disk");
    assert_eq!(cold_store.total_loads(), 0, "nothing to load cold");
    assert!(cold_store.compile.writes >= 3, "programs written back");

    // A brand-new cache over the same directory: every artifact loads.
    let warm_cache = ArtifactCache::persistent(&dir).expect("reopen store");
    let warm_runs = run_all(&warm_cache);
    let warm = warm_cache.stats();
    let warm_store = warm.store.expect("store stats present");
    assert_eq!(warm_store.total_misses(), 0, "warm run never misses");
    assert_eq!(warm_store.total_corrupt(), 0);
    assert!(warm_store.total_loads() > 0, "artifacts came from disk");
    assert_eq!(
        warm_store.compile.writes, 0,
        "nothing recomputed, nothing rewritten"
    );
    assert_eq!(cold_runs, warm_runs, "identical results cold vs warm");

    // The in-memory hit/miss counters are process-local and identical
    // cold vs warm — what keeps manifests byte-identical across runs.
    assert_eq!(cold.parse, warm.parse);
    assert_eq!(cold.analyze, warm.analyze);
    assert_eq!(cold.partition, warm.partition);
    assert_eq!(cold.translate, warm.translate);
    assert_eq!(cold.compile, warm.compile);
}

#[test]
fn warm_programs_are_bit_identical_to_cold() {
    let dir = temp_store("bits");
    let cold_cache = ArtifactCache::persistent(&dir).expect("open store");
    let cold = Pipeline::new(SRC)
        .cores(2)
        .cache(cold_cache)
        .program()
        .expect("cold program");
    let warm_cache = ArtifactCache::persistent(&dir).expect("reopen store");
    let warm = Pipeline::new(SRC)
        .cores(2)
        .cache(Arc::clone(&warm_cache))
        .program()
        .expect("warm program");
    assert_eq!(*cold, *warm, "decoded bytecode identical to compiled");
    let store = warm_cache.stats().store.expect("store stats");
    assert_eq!(store.total_misses(), 0);
    assert!(store.compile.loads >= 1, "the program came from disk");
}

#[test]
fn corrupted_entry_falls_back_to_recompute() {
    let dir = temp_store("corrupt");
    let cold_cache = ArtifactCache::persistent(&dir).expect("open store");
    let cold_runs = run_all(&cold_cache);

    // Flip payload bytes in every compile entry.
    let compile_dir = dir.join("v1/compile");
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&compile_dir).expect("compile entries") {
        let path = entry.expect("dir entry").path();
        let mut bytes = std::fs::read(&path).expect("read entry");
        let len = bytes.len();
        bytes[len - 1] ^= 0xff;
        std::fs::write(&path, bytes).expect("rewrite entry");
        corrupted += 1;
    }
    assert!(corrupted >= 3, "all three programs were stored");

    let warm_cache = ArtifactCache::persistent(&dir).expect("reopen store");
    let warm_runs = run_all(&warm_cache);
    assert_eq!(cold_runs, warm_runs, "corruption never changes results");
    let store = warm_cache.stats().store.expect("store stats");
    assert_eq!(
        store.compile.corrupt, corrupted,
        "every tampered entry detected"
    );
    assert_eq!(
        store.compile.writes, corrupted,
        "recomputed programs written back"
    );
    assert_eq!(store.parse.corrupt, 0, "untouched shelves unaffected");

    // Third pass: the rewritten entries verify again.
    let healed_cache = ArtifactCache::persistent(&dir).expect("reopen store");
    run_all(&healed_cache);
    let healed = healed_cache.stats().store.expect("store stats");
    assert_eq!(healed.total_misses(), 0);
    assert_eq!(healed.total_corrupt(), 0);
}

#[test]
fn capacity_eviction_surfaces_in_cache_stats() {
    let dir = temp_store("evict");
    // A cap far below the combined entry sizes forces evictions.
    let store = DiskStore::with_capacity(&dir, 256).expect("open store");
    let cache = ArtifactCache::with_store(store);
    run_all(&cache);
    let stats = cache.stats().store.expect("store stats");
    assert!(stats.evictions > 0, "tiny cap must evict: {stats:?}");
}
