//! Transport parity: a sweep run in-process and the same sweep shipped
//! through a real `hsmd` server must produce byte-identical row files.
//!
//! `figures --rows FILE` and `figures --client ADDR --rows FILE` both
//! serialize one compact [`SweepRow`] JSON line per point; CI diffs the
//! two files. This test pins the property at the library level so a
//! protocol field that forgets to round-trip (or a server-side default
//! that diverges from the point's own [`Scenario`]) fails here first,
//! with a readable diff, rather than as an opaque CI byte mismatch.

use hsm_core::api::{
    sweep, Client, Mode, Scenario, Server, ServerOptions, SpecProgram, SweepRow, SweepSpec,
};
use scc_sim::SccConfig;

/// The rows of an in-process sweep of `spec`, serialized exactly the way
/// `figures --rows` writes them.
fn local_rows(spec: &SweepSpec) -> Vec<String> {
    let matrix = spec
        .to_matrix(&SccConfig::table_6_1())
        .expect("matrix")
        .cache(spec.open_cache().expect("cache"));
    sweep(&matrix)
        .outcomes
        .iter()
        .map(|outcome| SweepRow::from_outcome(outcome).to_json().render_compact())
        .collect()
}

/// The same spec swept through a live server, serialized identically.
fn server_rows(spec: &SweepSpec) -> Vec<String> {
    let server = Server::bind("127.0.0.1:0", ServerOptions::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let run = std::thread::spawn(move || server.run());
    let mut client = Client::connect(&addr).expect("connect");
    let rows = client.sweep(spec, None).expect("sweep");
    client.shutdown().expect("shutdown");
    run.join().expect("run thread").expect("clean exit");
    rows.iter()
        .map(|row| row.to_json().render_compact())
        .collect()
}

#[test]
fn client_and_local_sweep_rows_are_byte_identical() {
    // Three modes over the corpus original and two over its task port:
    // the task point exercises the TaskDataflow scenario end to end
    // through the wire format, and the baseline point on the task port
    // exercises error rows (task intrinsics are rejected in pthread
    // mode) — errors must round-trip byte-identically too.
    let spec = SweepSpec {
        programs: vec![
            SpecProgram::corpus("matrix_vector", 4),
            SpecProgram::corpus("task_matrix_vector", 4),
        ],
        scenarios: vec![
            Scenario::new(Mode::PthreadBaseline),
            Scenario::new(Mode::RcceHsm),
            Scenario::new(Mode::TaskDataflow),
        ],
        workers: 2,
        ..SweepSpec::default()
    };
    let local = local_rows(&spec);
    let remote = server_rows(&spec);
    assert_eq!(local.len(), remote.len(), "point counts differ");
    for (l, r) in local.iter().zip(&remote) {
        assert_eq!(l, r, "transport changed a row");
    }
    // Sanity: the sweep exercised both healthy and error rows.
    assert!(
        local
            .iter()
            .any(|row| row.contains("\"task\":\"task\"") && row.contains("\"exit_code\"")),
        "no successful task-dataflow row: {local:#?}"
    );
    assert!(
        local.iter().any(|row| row.contains("\"error\"")),
        "expected at least one error row (task port under pthread mode): {local:#?}"
    );
}
