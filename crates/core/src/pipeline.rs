//! The artifact-reuse `Pipeline` session.
//!
//! A [`Pipeline`] is a configured view of one C source through the
//! five-stage pipeline (parse → analyze → partition → translate →
//! compile) plus the simulated executions built on top of it. It is a
//! builder —
//!
//! ```
//! use hsm_core::{Pipeline, Policy};
//!
//! let src = "int main() { return 7; }";
//! let session = Pipeline::new(src).cores(4).policy(Policy::SizeAscending);
//! let result = session.run_baseline().expect("runs");
//! assert_eq!(result.exit_code, 7);
//! ```
//!
//! — and every intermediate artifact it computes ([`Pipeline::unit`],
//! [`Pipeline::analysis`], [`Pipeline::plan`], [`Pipeline::translation`],
//! [`Pipeline::program`]) is memoized in an [`ArtifactCache`] keyed by
//! *source hash × cores × policy × spec*. Cloning the session (or
//! sharing its cache handle across sessions) reuses those artifacts: the
//! baseline, off-chip and HSM runs of one benchmark parse and analyze the
//! source exactly once.
//!
//! The session never hardcodes the partition spec: unless
//! [`Pipeline::spec`] overrides it, the spec is [`MemorySpec::scc`] of
//! the configured core count, so the on-chip budget follows `.cores(n)`.
//!
//! [`Pipeline::scenario`] configures every execution axis — the mode
//! (baseline / RCCE / task-dataflow), the memory model and the opt level
//! — from one [`Scenario`] value; [`Pipeline::run_scenario`] dispatches
//! on it. The memory model is deliberately *not* part of any artifact
//! key: it changes what a run observes, not what the translator
//! produces, so a multi-model sweep of one benchmark still parses,
//! analyzes, translates and compiles exactly once.

use crate::cache::{source_hash, ArtifactCache, ArtifactKey};
use crate::metrics::PipelineMetrics;
use crate::scenario::{Mode, Scenario};
use crate::{PipelineError, SharingCheck};
use hsm_analysis::ProgramAnalysis;
use hsm_cir::TranslationUnit;
use hsm_exec::{ExecModel, RunResult};
use hsm_partition::{MemorySpec, PartitionPlan, Policy};
use hsm_translate::{TranslateOptions, Translation};
use hsm_vm::OptLevel;
use scc_sim::SccConfig;
use std::sync::Arc;

/// A configured pipeline session over one C source. See the
/// crate-level docs for the builder protocol and caching semantics.
#[derive(Debug, Clone)]
pub struct Pipeline {
    src: Arc<str>,
    src_hash: u64,
    cores: usize,
    mode: Mode,
    policy: Policy,
    spec: Option<MemorySpec>,
    config: SccConfig,
    exec_model: ExecModel,
    opt_level: OptLevel,
    cache: Arc<ArtifactCache>,
}

impl Pipeline {
    /// A session over `src` with the evaluation defaults: 32 cores,
    /// the default [`Scenario`] (HSM mode, coherent, `O0`,
    /// [`Policy::SizeAscending`]), a spec following the core count, the
    /// Table 6.1 chip, and a fresh private cache.
    pub fn new(src: impl Into<Arc<str>>) -> Self {
        let src = src.into();
        let src_hash = source_hash(&src);
        Pipeline {
            src,
            src_hash,
            cores: 32,
            mode: Mode::RcceHsm,
            policy: Policy::SizeAscending,
            spec: None,
            config: SccConfig::table_6_1(),
            exec_model: ExecModel::Coherent,
            opt_level: OptLevel::O0,
            cache: ArtifactCache::shared(),
        }
    }

    /// Configures every execution axis from one [`Scenario`]: mode,
    /// memory model, optimization level, and the placement policy the
    /// mode implies (a later [`Pipeline::policy`] call still overrides
    /// the policy). This is the only way to select axes — the old
    /// per-axis setters (`exec_model`, `opt_level`) are gone.
    #[must_use]
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.mode = scenario.mode;
        self.exec_model = scenario.exec_model;
        self.opt_level = scenario.opt_level;
        self.policy = scenario.mode.policy();
        self
    }

    /// Sets the participating core count (also sizes the default spec).
    #[must_use]
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Sets the Stage 4 placement policy.
    #[must_use]
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the partition spec (default: [`MemorySpec::scc`] of the
    /// configured core count).
    #[must_use]
    pub fn spec(mut self, spec: MemorySpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Sets the simulated chip configuration.
    #[must_use]
    pub fn config(mut self, config: SccConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a shared [`ArtifactCache`] so several sessions reuse each
    /// other's artifacts.
    #[must_use]
    pub fn cache(mut self, cache: Arc<ArtifactCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The session's source text.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// The configured core count.
    pub fn configured_cores(&self) -> usize {
        self.cores
    }

    /// The configured placement policy.
    pub fn configured_policy(&self) -> Policy {
        self.policy
    }

    /// The chip configuration runs execute on.
    pub fn chip(&self) -> &SccConfig {
        &self.config
    }

    /// The memory model runs execute under.
    pub fn configured_exec_model(&self) -> ExecModel {
        self.exec_model
    }

    /// The bytecode optimization level programs compile at.
    pub fn configured_opt_level(&self) -> OptLevel {
        self.opt_level
    }

    /// The session's axes as one [`Scenario`].
    pub fn configured_scenario(&self) -> Scenario {
        Scenario {
            mode: self.mode,
            exec_model: self.exec_model,
            opt_level: self.opt_level,
        }
    }

    /// The partition spec in effect: the explicit override, or the SCC
    /// spec sized to the configured core count.
    pub fn effective_spec(&self) -> MemorySpec {
        self.spec.unwrap_or_else(|| MemorySpec::scc(self.cores))
    }

    /// The session's cache handle (hand it to another session, or read
    /// its [`stats`](ArtifactCache::stats)).
    pub fn cache_handle(&self) -> Arc<ArtifactCache> {
        Arc::clone(&self.cache)
    }

    fn translation_key(&self) -> ArtifactKey {
        ArtifactKey::Translation {
            src: self.src_hash,
            cores: self.cores,
            policy: self.policy,
            spec: self.effective_spec(),
        }
    }

    fn profile_key(&self) -> ArtifactKey {
        ArtifactKey::Profile {
            src: self.src_hash,
            cores: self.cores,
            policy: self.policy,
            spec: self.effective_spec(),
            scenario: self.configured_scenario(),
        }
    }

    // ------------------------------------------------------ artifacts --
    //
    // Each public getter performs exactly one cache lookup per shelf: the
    // private `*_of` helpers take their dependencies as arguments instead
    // of re-resolving them, so the hit/miss counters read as "how many
    // operations reused this artifact", not as internal call chatter.

    /// The parsed translation unit (memoized per source).
    ///
    /// # Errors
    ///
    /// Propagates parse failures.
    pub fn unit(&self) -> Result<Arc<TranslationUnit>, PipelineError> {
        self.cache
            .unit_with(self.src_hash, &self.src, || Ok(hsm_cir::parse(&self.src)?))
    }

    /// Stage 1–3 over an already-parsed unit (one `analyze` lookup).
    fn analysis_of(&self, unit: &TranslationUnit) -> Result<Arc<ProgramAnalysis>, PipelineError> {
        self.cache
            .analysis_with(self.src_hash, unit, || Ok(ProgramAnalysis::analyze(unit)))
    }

    /// Stage 4 over an already-computed analysis (one `partition` lookup).
    fn plan_of(&self, analysis: &ProgramAnalysis) -> Result<Arc<PartitionPlan>, PipelineError> {
        let spec = self.effective_spec();
        let key = ArtifactKey::Plan {
            src: self.src_hash,
            policy: self.policy,
            spec,
        };
        self.cache.plan_with(key, || {
            let shared = hsm_partition::shared_vars_from_analysis(analysis);
            Ok(hsm_partition::partition(&shared, &spec, self.policy))
        })
    }

    /// Stage 5 over already-computed inputs (one `translate` lookup).
    fn translation_of(
        &self,
        unit: &TranslationUnit,
        analysis: &ProgramAnalysis,
        plan: &PartitionPlan,
    ) -> Result<Arc<Translation>, PipelineError> {
        self.cache
            .translation_with(self.translation_key(), analysis, plan, || {
                Ok(hsm_translate::translate_with_plan(
                    unit,
                    analysis,
                    plan,
                    TranslateOptions {
                        cores: self.cores,
                        policy: self.policy,
                    },
                )?)
            })
    }

    /// Bytecode of an already-computed translation (one `compile` lookup).
    fn program_of(&self, translation: &Translation) -> Result<Arc<hsm_vm::Program>, PipelineError> {
        let level = self.opt_level;
        let key = ArtifactKey::TranslatedProgram {
            src: self.src_hash,
            cores: self.cores,
            policy: self.policy,
            spec: self.effective_spec(),
            opt: level,
        };
        self.cache.program_with(key, || {
            let program = hsm_vm::compile(&translation.unit)?;
            Ok(match level {
                OptLevel::O0 => program,
                _ => hsm_vm::optimize(&program, level),
            })
        })
    }

    /// Baseline bytecode of an already-parsed unit (one `compile` lookup).
    fn baseline_program_of(
        &self,
        unit: &TranslationUnit,
    ) -> Result<Arc<hsm_vm::Program>, PipelineError> {
        let level = self.opt_level;
        let key = ArtifactKey::BaselineProgram {
            src: self.src_hash,
            opt: level,
        };
        self.cache.program_with(key, || {
            let program = hsm_vm::compile(unit)?;
            Ok(match level {
                OptLevel::O0 => program,
                _ => hsm_vm::optimize(&program, level),
            })
        })
    }

    /// The Stage 1–3 analysis (memoized per source).
    ///
    /// # Errors
    ///
    /// Propagates parse failures.
    pub fn analysis(&self) -> Result<Arc<ProgramAnalysis>, PipelineError> {
        let unit = self.unit()?;
        self.analysis_of(&unit)
    }

    /// The Stage 4 partition plan against [`Pipeline::effective_spec`]
    /// (memoized per source × policy × spec).
    ///
    /// # Errors
    ///
    /// Propagates parse failures.
    pub fn plan(&self) -> Result<Arc<PartitionPlan>, PipelineError> {
        let analysis = self.analysis()?;
        self.plan_of(&analysis)
    }

    /// The Stage 5 translation to RCCE C (memoized per source × cores ×
    /// policy × spec).
    ///
    /// # Errors
    ///
    /// Propagates parse and translation failures.
    pub fn translation(&self) -> Result<Arc<Translation>, PipelineError> {
        let unit = self.unit()?;
        let analysis = self.analysis_of(&unit)?;
        let plan = self.plan_of(&analysis)?;
        self.translation_of(&unit, &analysis, &plan)
    }

    /// The compiled bytecode of the translated RCCE program.
    ///
    /// # Errors
    ///
    /// Propagates parse, translation and compilation failures.
    pub fn program(&self) -> Result<Arc<hsm_vm::Program>, PipelineError> {
        let translation = self.translation()?;
        self.program_of(&translation)
    }

    /// The compiled bytecode of the unmodified pthread program.
    ///
    /// # Errors
    ///
    /// Propagates parse and compilation failures.
    pub fn baseline_program(&self) -> Result<Arc<hsm_vm::Program>, PipelineError> {
        let unit = self.unit()?;
        self.baseline_program_of(&unit)
    }

    // ----------------------------------------------------------- runs --

    /// Runs the program the way the configured [`Scenario`] selects:
    /// the pthread interpreter, the translated RCCE program, or the
    /// task-dataflow runtime.
    ///
    /// # Errors
    ///
    /// Propagates failures from any stage.
    pub fn run_scenario(&self) -> Result<RunResult, PipelineError> {
        match self.mode {
            Mode::PthreadBaseline => self.run_baseline(),
            Mode::RcceOffChip | Mode::RcceHsm => self.run(),
            Mode::TaskDataflow => self.run_task(),
        }
    }

    /// [`Pipeline::run_scenario`] with per-stage metering: the RCCE modes
    /// meter all five stages, the baseline and task modes their two
    /// (parse, compile).
    ///
    /// # Errors
    ///
    /// Propagates failures from any stage.
    pub fn run_scenario_metered(&self) -> Result<(RunResult, PipelineMetrics), PipelineError> {
        match self.mode {
            Mode::PthreadBaseline => self.run_baseline_metered(),
            Mode::RcceOffChip | Mode::RcceHsm => self.run_metered(),
            Mode::TaskDataflow => {
                let (program, metrics) = self.task_program_metered()?;
                Ok((
                    hsm_exec::run_task_model(&program, self.cores, &self.config, self.exec_model)?,
                    metrics,
                ))
            }
        }
    }

    /// The mode-matched profiled execution, without cache interaction.
    fn compute_profiled(&self) -> Result<(RunResult, hsm_exec::Profile), PipelineError> {
        Ok(match self.mode {
            Mode::PthreadBaseline => {
                let program = self.baseline_program()?;
                hsm_exec::run_pthread_model_profiled(&program, &self.config, self.exec_model)?
            }
            Mode::RcceOffChip | Mode::RcceHsm => {
                let program = self.program()?;
                hsm_exec::run_rcce_model_profiled(
                    &program,
                    self.cores,
                    &self.config,
                    self.exec_model,
                )?
            }
            Mode::TaskDataflow => {
                let program = self.baseline_program()?;
                hsm_exec::run_task_model_profiled(
                    &program,
                    self.cores,
                    &self.config,
                    self.exec_model,
                )?
            }
        })
    }

    /// [`Pipeline::run_scenario`] with profiling: always simulates, and
    /// deposits the resulting [`Profile`](hsm_exec::Profile) in the
    /// cache's `profile` shelf (keyed like any other stage artifact, so
    /// a warm sweep can reuse it without re-running) as a side effect.
    ///
    /// Profiling never perturbs timing — the returned [`RunResult`] is
    /// identical to what [`Pipeline::run_scenario`] reports.
    ///
    /// # Errors
    ///
    /// Propagates failures from any stage.
    pub fn run_profiled(&self) -> Result<(RunResult, hsm_exec::Profile), PipelineError> {
        let (result, profile) = self.compute_profiled()?;
        let stored = profile.clone();
        self.cache
            .profile_with(self.profile_key(), move || Ok::<_, PipelineError>(stored))?;
        Ok((result, profile))
    }

    /// The run profile for the configured scenario (memoized per source
    /// × cores × policy × spec × scenario). A cache hit — in memory or
    /// through the persistent store — skips simulation entirely; a miss
    /// simulates once via the mode-matched profiled entry point.
    ///
    /// # Errors
    ///
    /// Propagates failures from any stage.
    pub fn profile(&self) -> Result<Arc<hsm_exec::Profile>, PipelineError> {
        self.cache.profile_with(self.profile_key(), || {
            self.compute_profiled().map(|(_, profile)| profile)
        })
    }

    /// Runs the task-annotated program (`task_spawn`/`task_wait_all`)
    /// under the dependence-tracking task scheduler. The source is
    /// compiled directly — the pthread→RCCE translation stages do not
    /// apply to task programs.
    ///
    /// # Errors
    ///
    /// Propagates failures from any stage.
    pub fn run_task(&self) -> Result<RunResult, PipelineError> {
        let program = self.baseline_program()?;
        Ok(hsm_exec::run_task_model(
            &program,
            self.cores,
            &self.config,
            self.exec_model,
        )?)
    }

    /// Parses and compiles a task program with the two stages metered.
    fn task_program_metered(
        &self,
    ) -> Result<(Arc<hsm_vm::Program>, PipelineMetrics), PipelineError> {
        let mut metrics = PipelineMetrics::default();
        let unit = metrics.measure("parse", || {
            self.unit().map(|u| {
                let size = hsm_cir::print_unit(&u).len();
                (u, size)
            })
        })?;
        let program = metrics.measure("compile", || {
            self.baseline_program_of(&unit).map(|p| {
                let len = p.code_len();
                (p, len)
            })
        })?;
        Ok((program, metrics))
    }

    /// Translates (reusing cached artifacts) and runs the RCCE program on
    /// the configured cores.
    ///
    /// # Errors
    ///
    /// Propagates failures from any stage.
    pub fn run(&self) -> Result<RunResult, PipelineError> {
        let program = self.program()?;
        Ok(hsm_exec::run_rcce_model(
            &program,
            self.cores,
            &self.config,
            self.exec_model,
        )?)
    }

    /// Runs the unmodified pthread program on one simulated core.
    ///
    /// # Errors
    ///
    /// Propagates failures from any stage.
    pub fn run_baseline(&self) -> Result<RunResult, PipelineError> {
        let program = self.baseline_program()?;
        Ok(hsm_exec::run_pthread_model(
            &program,
            &self.config,
            self.exec_model,
        )?)
    }

    /// [`Pipeline::run`] with per-stage metering of all five stages.
    ///
    /// # Errors
    ///
    /// Propagates failures from any stage.
    pub fn run_metered(&self) -> Result<(RunResult, PipelineMetrics), PipelineError> {
        let (_, program, metrics) = self.compile_metered()?;
        Ok((
            hsm_exec::run_rcce_model(&program, self.cores, &self.config, self.exec_model)?,
            metrics,
        ))
    }

    /// [`Pipeline::run_baseline`] with metering of the baseline's two
    /// stages (parse, compile).
    ///
    /// # Errors
    ///
    /// Propagates failures from any stage.
    pub fn run_baseline_metered(&self) -> Result<(RunResult, PipelineMetrics), PipelineError> {
        let mut metrics = PipelineMetrics::default();
        let unit = metrics.measure("parse", || {
            self.unit().map(|u| {
                let size = hsm_cir::print_unit(&u).len();
                (u, size)
            })
        })?;
        let program = metrics.measure("compile", || {
            self.baseline_program_of(&unit).map(|p| {
                let len = p.code_len();
                (p, len)
            })
        })?;
        Ok((
            hsm_exec::run_pthread_model(&program, &self.config, self.exec_model)?,
            metrics,
        ))
    }

    /// Drives the five stages one at a time so each gets its own
    /// [`StageMetric`](crate::StageMetric). Cached stages still report
    /// their deterministic IR sizes; only the wall times shrink.
    ///
    /// # Errors
    ///
    /// Propagates parse, translation and compilation failures.
    pub fn compile_metered(
        &self,
    ) -> Result<(Arc<Translation>, Arc<hsm_vm::Program>, PipelineMetrics), PipelineError> {
        let mut metrics = PipelineMetrics::default();
        let unit = metrics.measure("parse", || {
            self.unit().map(|u| {
                let size = hsm_cir::print_unit(&u).len();
                (u, size)
            })
        })?;
        let analysis = metrics.measure("analyze", || {
            self.analysis_of(&unit).map(|a| {
                let vars = a.sharing.variables().count();
                (a, vars)
            })
        })?;
        let plan = metrics.measure("partition", || {
            self.plan_of(&analysis).map(|p| {
                let placements = p.placements.len();
                (p, placements)
            })
        })?;
        let translation = metrics.measure("translate", || {
            self.translation_of(&unit, &analysis, &plan).map(|t| {
                let size = t.to_source().len();
                (t, size)
            })
        })?;
        let program = metrics.measure("compile", || {
            self.program_of(&translation).map(|p| {
                let len = p.code_len();
                (p, len)
            })
        })?;
        Ok((translation, program, metrics))
    }

    // --------------------------------------------------------- oracle --

    /// Runs the pthread program under the sharing-soundness oracle,
    /// validating the Stage 1–3 classification (and the Stage 4 placement
    /// annotations, derived from the session's policy and spec) against
    /// the ground-truth thread semantics.
    ///
    /// # Errors
    ///
    /// Propagates parse, compile and execution failures.
    pub fn check_sharing(&self) -> Result<SharingCheck, PipelineError> {
        let unit = self.unit()?;
        let analysis = self.analysis_of(&unit)?;
        let mut manifest = hsm_analysis::ClassificationManifest::from_analysis(&analysis);
        let plan = self.plan_of(&analysis)?;
        hsm_partition::annotate_manifest(&plan, &mut manifest);
        let program = self.baseline_program_of(&unit)?;
        let mut oracle = hsm_exec::Oracle::new(
            &program,
            manifest.clone(),
            hsm_exec::OracleMode::Pthread,
            self.config.line_bytes,
        );
        let result = hsm_exec::run_pthread_model_traced(
            &program,
            &self.config,
            self.exec_model,
            &mut oracle,
        )?;
        Ok(SharingCheck {
            manifest,
            report: oracle.finish(),
            result,
        })
    }

    /// Translates and runs the RCCE program under the oracle in RCCE
    /// mode: pure happens-before race detection over the shared regions,
    /// validating the synchronization the translator inserted.
    ///
    /// # Errors
    ///
    /// Propagates parse, translation, compile and execution failures.
    pub fn check_sharing_rcce(&self) -> Result<SharingCheck, PipelineError> {
        let program = self.program()?;
        let mut oracle = hsm_exec::Oracle::new(
            &program,
            hsm_analysis::ClassificationManifest::empty(),
            hsm_exec::OracleMode::Rcce,
            self.config.line_bytes,
        );
        let result = hsm_exec::run_rcce_model_traced(
            &program,
            self.cores,
            &self.config,
            self.exec_model,
            &mut oracle,
        )?;
        Ok(SharingCheck {
            manifest: hsm_analysis::ClassificationManifest::empty(),
            report: oracle.finish(),
            result,
        })
    }

    /// Runs the task program under the oracle in pthread mode with an
    /// empty classification manifest: pure happens-before race detection
    /// over the spawn/dependence/wait edges the task runtime emits. A
    /// task program whose in/out annotations cover its sharing is clean;
    /// undeclared sharing shows up as a data race.
    ///
    /// # Errors
    ///
    /// Propagates parse, compile and execution failures.
    pub fn check_sharing_task(&self) -> Result<SharingCheck, PipelineError> {
        let program = self.baseline_program()?;
        let mut oracle = hsm_exec::Oracle::new(
            &program,
            hsm_analysis::ClassificationManifest::empty(),
            hsm_exec::OracleMode::Pthread,
            self.config.line_bytes,
        );
        let result = hsm_exec::run_task_model_traced(
            &program,
            self.cores,
            &self.config,
            self.exec_model,
            &mut oracle,
        )?;
        Ok(SharingCheck {
            manifest: hsm_analysis::ClassificationManifest::empty(),
            report: oracle.finish(),
            result,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
int sum[2];
void *tf(void *tid) { sum[(int)tid] = (int)tid + 1; return tid; }
int main() {
    pthread_t t[2];
    int i;
    for (i = 0; i < 2; i++) pthread_create(&t[i], NULL, tf, (void *)i);
    for (i = 0; i < 2; i++) pthread_join(t[i], NULL);
    return sum[0] + sum[1];
}
"#;

    #[test]
    fn spec_follows_core_count_unless_overridden() {
        let p = Pipeline::new(SRC).cores(4);
        assert_eq!(p.effective_spec(), MemorySpec::scc(4));
        let q = Pipeline::new(SRC).cores(4).spec(MemorySpec::scc(48));
        assert_eq!(q.effective_spec(), MemorySpec::scc(48));
        assert_eq!(q.plan().expect("plan").spec, MemorySpec::scc(48));
    }

    #[test]
    fn cloned_sessions_share_artifacts() {
        let base = Pipeline::new(SRC).cores(2);
        let off = base.clone().policy(Policy::OffChipOnly);
        let _ = base.run_baseline().expect("baseline");
        let _ = off.run().expect("off-chip");
        let stats = base.cache_handle().stats();
        assert_eq!(stats.parse.misses, 1, "one parse for both sessions");
        assert!(stats.parse.hits > 0, "the clone reused the parse");
    }

    #[test]
    fn artifacts_are_computed_once_per_key() {
        let p = Pipeline::new(SRC).cores(2);
        let a = p.translation().expect("first");
        let b = p.translation().expect("second");
        assert!(Arc::ptr_eq(&a, &b), "same memoized artifact");
        assert_eq!(p.cache_handle().stats().translate.misses, 1);
    }

    #[test]
    fn baseline_and_translated_agree() {
        let p = Pipeline::new(SRC).cores(2);
        let base = p.run_baseline().expect("baseline");
        let hsm = p.run().expect("hsm");
        assert_eq!(base.exit_code, 3);
        assert_eq!(hsm.exit_code, 3);
    }

    #[test]
    fn exec_models_share_every_artifact() {
        let p = Pipeline::new(SRC).cores(2);
        let coherent = p.run().expect("coherent");
        let stale = p
            .clone()
            .scenario(Scenario::default().exec_model(ExecModel::NonCoherentWriteBack))
            .run()
            .expect("non-coherent");
        // The translated program is staleness-immune by construction.
        assert_eq!(coherent.exit_code, stale.exit_code);
        let stats = p.cache_handle().stats();
        assert_eq!(stats.translate.misses, 1, "model is not an artifact key");
        assert_eq!(stats.compile.misses, 1);
        assert!(stats.compile.hits > 0, "second model reused the bytecode");
    }

    /// Ported from the deprecated-setter migration check (the per-axis
    /// setters are gone): `Pipeline::scenario` must configure every axis
    /// the setters used to reach, and the round trip through
    /// `configured_scenario` must be lossless.
    #[test]
    fn scenario_configures_every_axis() {
        let scenario = Scenario::default()
            .exec_model(ExecModel::SeqCstReference)
            .opt_level(hsm_vm::OptLevel::O2);
        let p = Pipeline::new(SRC).scenario(scenario);
        assert_eq!(p.configured_exec_model(), ExecModel::SeqCstReference);
        assert_eq!(p.configured_opt_level(), hsm_vm::OptLevel::O2);
        assert_eq!(p.configured_scenario(), scenario);
    }

    #[test]
    fn profiles_are_cached_and_match_the_plain_run() {
        let p = Pipeline::new(SRC).cores(2);
        let plain = p.run().expect("plain run");
        let (profiled, profile) = p.run_profiled().expect("profiled run");
        assert_eq!(plain.total_cycles, profiled.total_cycles);
        assert_eq!(profile.total_cycles, plain.total_cycles);
        assert_eq!(profile.exit_code, plain.exit_code);
        // run_profiled deposited the artifact: profile() is now a hit.
        let cached = p.profile().expect("cached profile");
        assert_eq!(cached.total_cycles, profile.total_cycles);
        let stats = p.cache_handle().stats();
        assert_eq!(stats.profile.misses, 1, "one profile computed");
        assert!(stats.profile.hits > 0, "the lookup reused it");
    }

    #[test]
    fn profile_keys_distinguish_scenarios() {
        let p = Pipeline::new(SRC).cores(2);
        let hsm = p.profile().expect("hsm profile");
        let base = p
            .clone()
            .scenario(Scenario::default().mode(Mode::PthreadBaseline))
            .profile()
            .expect("baseline profile");
        assert_eq!(hsm.exit_code, base.exit_code);
        assert!(base.active_cores() <= hsm.active_cores());
        assert_eq!(p.cache_handle().stats().profile.misses, 2);
    }
}
