//! The serializable sweep specification.
//!
//! A [`SweepSpec`] names everything a sweep varies — corpus programs ×
//! [`Scenario`]s (mode × exec model × opt level as one typed value) —
//! plus the execution knobs (worker threads, persistent cache directory)
//! that used to be plumbed through ad-hoc CLI flags. One spec value flows
//! unchanged through all three consumers: the `figures` CLI parses its
//! flags into one ([`SweepSpec::take_cli_flags`]), the `hsmd` job server
//! receives one as JSON inside a sweep job ([`SweepSpec::from_json`]),
//! and library callers build the [`SweepMatrix`] it describes with
//! [`SweepSpec::to_matrix`].
//!
//! Programs are corpus names by default (resolved against the
//! repository's `corpus/` directory); a program may instead carry its
//! source inline, which is how remote `hsmd` clients ship programs the
//! server has no file for.

use crate::experiment::{Mode, SweepMatrix, SweepTask};
use crate::json::{Json, JsonError};
use crate::scenario::Scenario;
use crate::{ArtifactCache, ExecModel, OptLevel};
use scc_sim::SccConfig;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// One program of a [`SweepSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecProgram {
    /// The program's name (a corpus file stem, and the prefix of its
    /// sweep point names).
    pub name: String,
    /// Participating core count.
    pub cores: usize,
    /// Inline C source. `None` resolves `name` against the corpus
    /// directory when the matrix is built.
    pub source: Option<String>,
}

impl SpecProgram {
    /// A corpus program reference (source resolved at matrix build).
    pub fn corpus(name: impl Into<String>, cores: usize) -> Self {
        SpecProgram {
            name: name.into(),
            cores,
            source: None,
        }
    }

    /// A program with inline source (what remote clients send).
    pub fn inline(name: impl Into<String>, cores: usize, source: impl Into<String>) -> Self {
        SpecProgram {
            name: name.into(),
            cores,
            source: Some(source.into()),
        }
    }
}

/// A serializable description of one sweep: which programs, run under
/// which [`Scenario`]s, with which execution knobs. See the module docs
/// for the consumers.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// The programs to sweep.
    pub programs: Vec<SpecProgram>,
    /// The scenarios each program runs under (point names are
    /// `"{program}/{scenario label}"`, in this order).
    pub scenarios: Vec<Scenario>,
    /// Sweep worker threads (0 = one per available host core).
    pub workers: usize,
    /// Persistent artifact-store directory ([`SweepSpec::open_cache`]
    /// attaches it); `None` = in-memory cache only.
    pub cache_dir: Option<String>,
    /// Predict-first triage: simulate only each prediction group's seed
    /// and validation points, predict the rest analytically (see
    /// [`SweepOptions::predict_first`](crate::experiment::SweepOptions)).
    pub predict_first: bool,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            programs: Vec::new(),
            scenarios: vec![
                Scenario::new(Mode::PthreadBaseline),
                Scenario::new(Mode::RcceHsm),
            ],
            workers: 0,
            cache_dir: None,
            predict_first: false,
        }
    }
}

/// A [`SweepSpec`] validation, parse or resolution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// What went wrong.
    pub message: String,
}

impl SpecError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        SpecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sweep spec: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

impl From<JsonError> for SpecError {
    fn from(e: JsonError) -> Self {
        SpecError::new(e.to_string())
    }
}

/// The repository's corpus directory (compile-time anchored, like the
/// bench crate's corpus loader).
pub fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

impl SweepSpec {
    /// The spec as a JSON document (the wire form `hsmd` sweep jobs
    /// carry, and the inverse of [`SweepSpec::from_json`]).
    pub fn to_json(&self) -> Json {
        let programs = self
            .programs
            .iter()
            .map(|p| {
                let mut pairs = vec![
                    ("name", Json::Str(p.name.clone())),
                    ("cores", Json::UInt(p.cores as u64)),
                ];
                if let Some(src) = &p.source {
                    pairs.push(("source", Json::Str(src.clone())));
                }
                Json::obj(pairs)
            })
            .collect();
        let scenarios = self.scenarios.iter().map(|s| s.to_json()).collect();
        let mut pairs = vec![
            ("programs", Json::Arr(programs)),
            ("scenarios", Json::Arr(scenarios)),
            ("workers", Json::UInt(self.workers as u64)),
        ];
        if let Some(dir) = &self.cache_dir {
            pairs.push(("cache_dir", Json::Str(dir.clone())));
        }
        if self.predict_first {
            pairs.push(("predict_first", Json::Bool(true)));
        }
        Json::obj(pairs)
    }

    /// Parses a spec from its JSON document. Missing fields take the
    /// [`Default`] values, so `{"programs": [...]}` is a valid spec.
    ///
    /// # Errors
    ///
    /// Rejects unknown mode/model/level labels and malformed programs.
    pub fn from_json(doc: &Json) -> Result<Self, SpecError> {
        let mut spec = SweepSpec::default();
        if let Some(programs) = doc.get("programs") {
            let Json::Arr(items) = programs else {
                return Err(SpecError::new("`programs` must be an array"));
            };
            spec.programs = items
                .iter()
                .map(|item| {
                    let name = match item.get("name") {
                        Some(Json::Str(s)) => s.clone(),
                        _ => return Err(SpecError::new("program without a `name` string")),
                    };
                    let cores = match item.get("cores") {
                        Some(Json::UInt(n)) if *n > 0 => *n as usize,
                        _ => {
                            return Err(SpecError::new(format!(
                                "program `{name}` needs a positive `cores` count"
                            )))
                        }
                    };
                    let source = match item.get("source") {
                        None => None,
                        Some(Json::Str(s)) => Some(s.clone()),
                        Some(_) => {
                            return Err(SpecError::new(format!(
                                "program `{name}`: `source` must be a string"
                            )))
                        }
                    };
                    Ok(SpecProgram {
                        name,
                        cores,
                        source,
                    })
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(scenarios) = doc.get("scenarios") {
            let Json::Arr(items) = scenarios else {
                return Err(SpecError::new("`scenarios` must be an array"));
            };
            spec.scenarios = items
                .iter()
                .map(Scenario::from_json)
                .collect::<Result<_, _>>()?;
        } else {
            // Legacy flat form: a `modes` list plus spec-wide
            // `exec_model`/`opt_level` fields expand to one scenario per
            // mode carrying the shared axes.
            let mut exec_model = ExecModel::Coherent;
            let mut opt_level = OptLevel::O0;
            if let Some(model) = doc.get("exec_model") {
                exec_model = match model {
                    Json::Str(label) => ExecModel::parse(label)
                        .ok_or_else(|| SpecError::new(format!("unknown exec model `{label}`")))?,
                    _ => return Err(SpecError::new("`exec_model` must be a string")),
                };
            }
            if let Some(level) = doc.get("opt_level") {
                opt_level = match level {
                    Json::Str(label) => OptLevel::parse(label)
                        .ok_or_else(|| SpecError::new(format!("unknown opt level `{label}`")))?,
                    _ => return Err(SpecError::new("`opt_level` must be a string")),
                };
            }
            if let Some(modes) = doc.get("modes") {
                let Json::Arr(items) = modes else {
                    return Err(SpecError::new("`modes` must be an array"));
                };
                spec.scenarios = items
                    .iter()
                    .map(|item| match item {
                        Json::Str(label) => Mode::parse(label)
                            .ok_or_else(|| SpecError::new(format!("unknown mode `{label}`"))),
                        _ => Err(SpecError::new("`modes` entries must be strings")),
                    })
                    .collect::<Result<Vec<_>, _>>()?
                    .into_iter()
                    .map(|mode| {
                        Scenario::new(mode)
                            .exec_model(exec_model)
                            .opt_level(opt_level)
                    })
                    .collect();
            } else {
                spec.scenarios = spec
                    .scenarios
                    .iter()
                    .map(|s| s.exec_model(exec_model).opt_level(opt_level))
                    .collect();
            }
        }
        if let Some(workers) = doc.get("workers") {
            spec.workers = match workers {
                Json::UInt(n) => *n as usize,
                _ => return Err(SpecError::new("`workers` must be a non-negative integer")),
            };
        }
        if let Some(dir) = doc.get("cache_dir") {
            spec.cache_dir = match dir {
                Json::Str(s) => Some(s.clone()),
                _ => return Err(SpecError::new("`cache_dir` must be a string")),
            };
        }
        if let Some(flag) = doc.get("predict_first") {
            spec.predict_first = match flag {
                Json::Bool(b) => *b,
                _ => return Err(SpecError::new("`predict_first` must be a boolean")),
            };
        }
        Ok(spec)
    }

    /// Resolves one program's source: inline if present, the corpus file
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Reports an unreadable corpus file.
    pub fn resolve_source(program: &SpecProgram) -> Result<Arc<str>, SpecError> {
        if let Some(src) = &program.source {
            return Ok(Arc::from(src.as_str()));
        }
        let path = corpus_dir().join(format!("{}.c", program.name));
        std::fs::read_to_string(&path).map(Arc::from).map_err(|e| {
            SpecError::new(format!(
                "program `{}`: reading {} failed: {e}",
                program.name,
                path.display()
            ))
        })
    }

    /// Builds the [`SweepMatrix`] the spec describes: every program ×
    /// scenario as a point named `"{program}/{scenario label}"`, the
    /// point's [`SweepTask::Run`] carrying the full scenario. The caller
    /// attaches the cache (typically from [`SweepSpec::open_cache`]) and
    /// the chip config stays a separate argument — it describes the
    /// simulated machine, not the sweep.
    ///
    /// # Errors
    ///
    /// Rejects an empty program or scenario list and unresolvable
    /// sources.
    pub fn to_matrix(&self, config: &SccConfig) -> Result<SweepMatrix, SpecError> {
        if self.programs.is_empty() {
            return Err(SpecError::new("no programs to sweep"));
        }
        if self.scenarios.is_empty() {
            return Err(SpecError::new("no scenarios to sweep"));
        }
        let mut matrix = SweepMatrix::new(config.clone()).workers(self.workers);
        for program in &self.programs {
            let src = Self::resolve_source(program)?;
            for &scenario in &self.scenarios {
                let task = SweepTask::Run(scenario);
                matrix = matrix.point(
                    format!("{}/{}", program.name, task.label()),
                    Arc::clone(&src),
                    task,
                    program.cores,
                );
            }
        }
        Ok(matrix)
    }

    /// Opens the artifact cache the spec asks for: persistent over
    /// `cache_dir` when set, a fresh in-memory cache otherwise.
    ///
    /// # Errors
    ///
    /// Reports store-directory creation failures.
    pub fn open_cache(&self) -> Result<Arc<ArtifactCache>, SpecError> {
        match &self.cache_dir {
            Some(dir) => ArtifactCache::persistent(dir)
                .map_err(|e| SpecError::new(format!("opening cache dir `{dir}` failed: {e}"))),
            None => Ok(ArtifactCache::shared()),
        }
    }

    /// Extracts the spec-owned CLI flags out of `args` (removing each
    /// flag and its value): `--workers N`, `--modes A,B,..`,
    /// `--exec-model NAME`, `--opt-level LEVEL`, `--cache-dir PATH`, the
    /// valueless `--predict-first`, and repeatable `--program
    /// NAME:CORES`. Unrelated arguments are left in place. This replaces
    /// the per-flag parsing the `figures` binary used to duplicate.
    ///
    /// `--modes` rebuilds the scenario list (one scenario per listed mode
    /// label, inheriting the first current scenario's model and level);
    /// `--exec-model`/`--opt-level` then apply to *every* scenario — so
    /// the flags compose in any order and nothing is silently dropped on
    /// the way to the wire.
    ///
    /// # Errors
    ///
    /// Reports missing or unparsable flag values, naming the valid
    /// labels.
    pub fn take_cli_flags(&mut self, args: &mut Vec<String>) -> Result<(), SpecError> {
        if let Some(value) = take_flag(args, "--workers")? {
            self.workers = value
                .parse()
                .map_err(|_| SpecError::new("--workers needs a number"))?;
        }
        if let Some(value) = take_flag(args, "--modes")? {
            let template = self.scenarios.first().copied().unwrap_or_default();
            self.scenarios = value
                .split(',')
                .map(str::trim)
                .filter(|label| !label.is_empty())
                .map(|label| {
                    Mode::parse(label)
                        .map(|mode| template.mode(mode))
                        .ok_or_else(|| {
                            let labels: Vec<&str> = Mode::ALL.iter().map(|m| m.label()).collect();
                            SpecError::new(format!(
                                "--modes needs labels from: {}",
                                labels.join(", ")
                            ))
                        })
                })
                .collect::<Result<_, _>>()?;
            if self.scenarios.is_empty() {
                return Err(SpecError::new("--modes needs at least one mode label"));
            }
        }
        if let Some(value) = take_flag(args, "--exec-model")? {
            let model = ExecModel::parse(&value).ok_or_else(|| {
                let labels: Vec<&str> = ExecModel::ALL.iter().map(|m| m.label()).collect();
                SpecError::new(format!("--exec-model needs one of: {}", labels.join(", ")))
            })?;
            self.scenarios = self.scenarios.iter().map(|s| s.exec_model(model)).collect();
        }
        if let Some(value) = take_flag(args, "--opt-level")? {
            let level = OptLevel::parse(&value).ok_or_else(|| {
                let labels: Vec<&str> = OptLevel::ALL.iter().map(|l| l.label()).collect();
                SpecError::new(format!("--opt-level needs one of: {}", labels.join(", ")))
            })?;
            self.scenarios = self.scenarios.iter().map(|s| s.opt_level(level)).collect();
        }
        if let Some(value) = take_flag(args, "--cache-dir")? {
            self.cache_dir = Some(value);
        }
        if take_bool_flag(args, "--predict-first") {
            self.predict_first = true;
        }
        while let Some(value) = take_flag(args, "--program")? {
            let (name, cores) = value.split_once(':').ok_or_else(|| {
                SpecError::new("--program needs NAME:CORES (e.g. matrix_vector:4)")
            })?;
            let cores: usize = cores
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| SpecError::new("--program needs a positive core count"))?;
            self.programs.push(SpecProgram::corpus(name, cores));
        }
        Ok(())
    }
}

/// Removes a valueless `flag` from `args`, reporting whether it was
/// present.
fn take_bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

/// Removes `flag` and its value from `args`, returning the value.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, SpecError> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(SpecError::new(format!("{flag} needs a value")));
    }
    let value = args[i + 1].clone();
    args.drain(i..=i + 1);
    Ok(Some(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepSpec {
        SweepSpec {
            programs: vec![
                SpecProgram::corpus("example_4_1", 3),
                SpecProgram::inline("inline_ret", 2, "int main() { return 5; }"),
            ],
            scenarios: vec![
                Scenario::new(Mode::PthreadBaseline).opt_level(OptLevel::O2),
                Scenario::new(Mode::RcceHsm).opt_level(OptLevel::O2),
            ],
            workers: 2,
            cache_dir: Some("/tmp/hsm-store".to_string()),
            predict_first: true,
        }
    }

    #[test]
    fn json_round_trips() {
        let spec = sample();
        let doc = spec.to_json();
        let back = SweepSpec::from_json(&doc).expect("parses");
        assert_eq!(spec, back);
        // And through the textual wire form.
        let wire = doc.render_compact();
        let reparsed = Json::parse(&wire).expect("wire parses");
        assert_eq!(SweepSpec::from_json(&reparsed).expect("spec"), spec);
    }

    /// Satellite coverage: every Scenario value survives the JSON wire
    /// form unchanged when carried inside a spec document.
    #[test]
    fn every_scenario_round_trips_through_the_wire_form() {
        for mode in Mode::ALL {
            for model in ExecModel::ALL {
                for level in OptLevel::ALL {
                    let spec = SweepSpec {
                        scenarios: vec![Scenario::new(mode).exec_model(model).opt_level(level)],
                        ..SweepSpec::default()
                    };
                    let wire = spec.to_json().render_compact();
                    let back =
                        SweepSpec::from_json(&Json::parse(&wire).expect("wire")).expect("spec");
                    assert_eq!(back.scenarios, spec.scenarios, "{wire}");
                }
            }
        }
    }

    #[test]
    fn minimal_document_takes_defaults() {
        let doc =
            Json::parse(r#"{"programs": [{"name": "example_4_1", "cores": 3}]}"#).expect("parses");
        let spec = SweepSpec::from_json(&doc).expect("spec");
        assert_eq!(
            spec.scenarios,
            vec![
                Scenario::new(Mode::PthreadBaseline),
                Scenario::new(Mode::RcceHsm),
            ]
        );
        assert_eq!(spec.workers, 0);
        assert_eq!(spec.cache_dir, None);
    }

    #[test]
    fn legacy_flat_documents_expand_to_scenarios() {
        let doc = Json::parse(
            r#"{"programs": [{"name": "example_4_1", "cores": 3}],
                "modes": ["hsm", "task"], "exec_model": "non_coherent_wb",
                "opt_level": "O2"}"#,
        )
        .expect("parses");
        let spec = SweepSpec::from_json(&doc).expect("spec");
        assert_eq!(
            spec.scenarios,
            vec![
                Scenario::new(Mode::RcceHsm)
                    .exec_model(ExecModel::NonCoherentWriteBack)
                    .opt_level(OptLevel::O2),
                Scenario::new(Mode::TaskDataflow)
                    .exec_model(ExecModel::NonCoherentWriteBack)
                    .opt_level(OptLevel::O2),
            ]
        );
        // Flat axes without a mode list still apply to the defaults.
        let doc = Json::parse(r#"{"opt_level": "O1"}"#).expect("parses");
        let spec = SweepSpec::from_json(&doc).expect("spec");
        assert!(spec.scenarios.iter().all(|s| s.opt_level == OptLevel::O1));
    }

    #[test]
    fn bad_labels_are_rejected_with_context() {
        let doc = Json::parse(r#"{"modes": ["warp"]}"#).expect("parses");
        let err = SweepSpec::from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("unknown mode `warp`"), "{err}");
        let doc = Json::parse(r#"{"opt_level": "O9"}"#).expect("parses");
        let err = SweepSpec::from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("unknown opt level"), "{err}");
    }

    #[test]
    fn matrix_covers_programs_times_modes() {
        let mut spec = sample();
        spec.cache_dir = None;
        let matrix = spec.to_matrix(&SccConfig::table_6_1()).expect("matrix");
        let names: Vec<&str> = matrix.points.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "example_4_1/baseline",
                "example_4_1/hsm",
                "inline_ret/baseline",
                "inline_ret/hsm",
            ]
        );
        assert!(matrix.points.iter().all(|p| {
            let s = p.task.scenario().expect("run point");
            s.opt_level == OptLevel::O2 && s.exec_model == ExecModel::Coherent
        }));
        assert_eq!(matrix.workers, 2);
        // The inline program's source came from the spec, not a file.
        assert!(matrix.points[2].src.contains("return 5"));
    }

    #[test]
    fn empty_spec_is_rejected() {
        let spec = SweepSpec::default();
        let err = spec.to_matrix(&SccConfig::table_6_1()).unwrap_err();
        assert!(err.to_string().contains("no programs"), "{err}");
    }

    #[test]
    fn cli_flags_are_extracted_in_place() {
        let mut spec = SweepSpec::default();
        let mut args: Vec<String> = [
            "fig6.1",
            "--workers",
            "3",
            "--opt-level",
            "O2",
            "--cache-dir",
            "/tmp/store",
            "--predict-first",
            "--json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        spec.take_cli_flags(&mut args).expect("flags");
        assert_eq!(spec.workers, 3);
        assert!(spec.scenarios.iter().all(|s| s.opt_level == OptLevel::O2));
        assert_eq!(spec.cache_dir.as_deref(), Some("/tmp/store"));
        assert!(spec.predict_first);
        assert_eq!(args, vec!["fig6.1", "--json"]);
    }

    #[test]
    fn mode_and_axis_flags_compose_over_every_scenario() {
        let mut spec = SweepSpec::default();
        let mut args: Vec<String> = [
            "--modes",
            "hsm,task",
            "--exec-model",
            "non_coherent_wb",
            "--program",
            "matrix_vector:4",
            "--program",
            "task_matrix_vector:4",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        spec.take_cli_flags(&mut args).expect("flags");
        assert!(args.is_empty());
        assert_eq!(
            spec.scenarios,
            vec![
                Scenario::new(Mode::RcceHsm).exec_model(ExecModel::NonCoherentWriteBack),
                Scenario::new(Mode::TaskDataflow).exec_model(ExecModel::NonCoherentWriteBack),
            ]
        );
        assert_eq!(
            spec.programs,
            vec![
                SpecProgram::corpus("matrix_vector", 4),
                SpecProgram::corpus("task_matrix_vector", 4),
            ]
        );
        let mut bad: Vec<String> = ["--modes", "warp"].iter().map(|s| s.to_string()).collect();
        let err = spec.take_cli_flags(&mut bad).unwrap_err();
        assert!(err.to_string().contains("task"), "{err}");
        let mut bad: Vec<String> = ["--program", "nocolon"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = spec.take_cli_flags(&mut bad).unwrap_err();
        assert!(err.to_string().contains("NAME:CORES"), "{err}");
    }

    #[test]
    fn bad_cli_values_name_the_valid_labels() {
        let mut spec = SweepSpec::default();
        let mut args: Vec<String> = ["--exec-model", "quantum"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = spec.take_cli_flags(&mut args).unwrap_err();
        assert!(err.to_string().contains("coherent"), "{err}");
        let mut args: Vec<String> = vec!["--workers".to_string()];
        let err = spec.take_cli_flags(&mut args).unwrap_err();
        assert!(err.to_string().contains("needs a value"), "{err}");
    }
}
