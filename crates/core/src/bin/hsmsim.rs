//! `hsmsim` — run a pthread C program on the simulated SCC.
//!
//! ```text
//! hsmsim prog.c                          # pthread baseline (1 core)
//! hsmsim prog.c --mode rcce --cores 32   # translate + run on 32 cores
//! hsmsim prog.c --mode rcce --off-chip   # force DRAM placement
//! hsmsim prog.c --mode native --cores 8  # run hand-written RCCE source
//! hsmsim prog.c --stats                  # print memory-system statistics
//! ```

use hsm_core::{Pipeline, Policy};
use scc_sim::SccConfig;
use std::process::ExitCode;

#[derive(PartialEq)]
enum Mode {
    Pthread,
    Rcce,
    Native,
}

fn main() -> ExitCode {
    let mut input: Option<String> = None;
    let mut mode = Mode::Pthread;
    let mut cores = 32usize;
    let mut policy = Policy::SizeAscending;
    let mut stats = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mode" => match it.next().as_deref() {
                Some("pthread") => mode = Mode::Pthread,
                Some("rcce") => mode = Mode::Rcce,
                Some("native") => mode = Mode::Native,
                other => {
                    eprintln!("hsmsim: bad mode {other:?} (pthread|rcce|native)");
                    return ExitCode::FAILURE;
                }
            },
            "--cores" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("hsmsim: bad --cores value");
                    return ExitCode::FAILURE;
                };
                cores = v;
            }
            "--off-chip" => policy = Policy::OffChipOnly,
            "--stats" => stats = true,
            "-h" | "--help" => {
                println!(
                    "usage: hsmsim <prog.c> [--mode pthread|rcce|native] \
                     [--cores N] [--off-chip] [--stats]"
                );
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && input.is_none() => {
                input = Some(other.to_string());
            }
            other => {
                eprintln!("hsmsim: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(input) = input else {
        eprintln!("hsmsim: no input file (try --help)");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hsmsim: cannot read `{input}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = SccConfig::table_6_1();

    let pipeline = Pipeline::new(source.as_str())
        .cores(cores)
        .policy(policy)
        .config(config.clone());
    let result = match mode {
        Mode::Pthread => pipeline.run_baseline(),
        Mode::Rcce => pipeline.run(),
        Mode::Native => (|| {
            let tu = hsm_cir::parse(&source)?;
            let program = hsm_vm::compile(&tu)?;
            Ok(hsm_exec::run_rcce(&program, cores, &config)?)
        })(),
    };
    let result = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hsmsim: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };

    print!("{}", result.output_text());
    let freq = f64::from(config.core_freq_mhz) * 1e6;
    eprintln!(
        "[hsmsim] exit {} | timed region {} cycles ({:.3} ms) | total {} cycles",
        result.exit_code,
        result.timed_cycles,
        result.timed_cycles as f64 / freq * 1e3,
        result.total_cycles,
    );
    if stats {
        eprintln!(
            "[hsmsim] {} units, load imbalance {:.2} (max/mean cycles)",
            result.per_unit_cycles.len(),
            result.imbalance()
        );
        let m = result.mem_stats;
        eprintln!(
            "[hsmsim] L1 hits {} | L2 hits {} | private DRAM {} | shared DRAM {} | MPB {} | MC queue cycles {}",
            m.l1_hits, m.l2_hits, m.private_dram, m.shared_dram, m.mpb, m.mc_queue_cycles
        );
    }
    ExitCode::from(u8::try_from(result.exit_code.rem_euclid(256)).unwrap_or(0))
}
