//! `hsmd` — the sweep-as-a-service job server.
//!
//! ```text
//! hsmd                                  # listen on 127.0.0.1:7411
//! hsmd --listen 127.0.0.1:0            # ephemeral port (printed on stdout)
//! hsmd --cache-dir /var/tmp/hsm-store  # persistent artifact store
//! hsmd --timeout-ms 60000              # default per-job deadline
//! ```
//!
//! The server accepts line-delimited JSON jobs (`ping`, `translate`,
//! `simulate`, `sweep`, `shutdown`) on a TCP socket; see
//! `hsm_core::protocol` for the wire format and DESIGN.md §12 for the
//! protocol walkthrough. All connections share one artifact cache, so
//! concurrent clients sweeping overlapping corpora parse, translate and
//! compile each program once between them. It prints
//! `hsmd listening on <addr>` once ready and exits cleanly on a
//! `shutdown` job.

use hsm_core::api::{Server, ServerOptions};
use std::process::ExitCode;

/// The default listen address.
const DEFAULT_LISTEN: &str = "127.0.0.1:7411";

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = DEFAULT_LISTEN.to_string();
    let mut options = ServerOptions::default();
    if let Some(value) = match take_flag(&mut args, "--listen") {
        Ok(v) => v,
        Err(e) => return usage(&e),
    } {
        listen = value;
    }
    match take_flag(&mut args, "--cache-dir") {
        Ok(v) => options.cache_dir = v,
        Err(e) => return usage(&e),
    }
    if let Some(value) = match take_flag(&mut args, "--timeout-ms") {
        Ok(v) => v,
        Err(e) => return usage(&e),
    } {
        match value.parse() {
            Ok(ms) => options.default_timeout_ms = ms,
            Err(_) => return usage("--timeout-ms needs a number"),
        }
    }
    if let Some(unknown) = args.first() {
        return usage(&format!("unknown argument `{unknown}`"));
    }
    let server = match Server::bind(&listen, options) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("hsmd: binding {listen} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("hsmd listening on {}", server.local_addr());
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hsmd: accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Removes `flag` and its value from `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args[i + 1].clone();
    args.drain(i..=i + 1);
    Ok(Some(value))
}

/// Prints a usage error.
fn usage(message: &str) -> ExitCode {
    eprintln!("hsmd: {message}");
    eprintln!("usage: hsmd [--listen ADDR] [--cache-dir DIR] [--timeout-ms N]");
    ExitCode::FAILURE
}
