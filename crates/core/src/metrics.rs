//! Per-stage instrumentation of the five-stage pipeline.
//!
//! Each run of the pipeline (parse → analyze → partition → translate →
//! compile) can report, per stage, the wall time it took on the host and a
//! stage-appropriate IR size — source bytes in, variables analyzed,
//! placements decided, RCCE bytes out, bytecode instructions. The wall
//! times feed the run manifest's `host_*_nanos` fields (informational,
//! host-dependent); the IR sizes are deterministic and golden-checked.

use std::time::Instant;

/// Canonical stage names, in pipeline order.
pub const STAGE_NAMES: [&str; 5] = ["parse", "analyze", "partition", "translate", "compile"];

/// One stage's measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageMetric {
    /// Stage name (one of [`STAGE_NAMES`]).
    pub stage: &'static str,
    /// Host wall time the stage took, in nanoseconds (not simulated time;
    /// varies run to run).
    pub wall_nanos: u128,
    /// Deterministic size of the stage's output IR:
    /// * `parse` — bytes of the parsed unit re-printed as C;
    /// * `analyze` — variables classified;
    /// * `partition` — placements decided;
    /// * `translate` — bytes of the emitted RCCE C source;
    /// * `compile` — bytecode instructions in the program.
    pub ir_size: usize,
}

/// All five stages of one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PipelineMetrics {
    /// Stage measurements in execution order.
    pub stages: Vec<StageMetric>,
}

impl PipelineMetrics {
    /// Looks up a stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageMetric> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// Total host wall time across all recorded stages.
    pub fn total_nanos(&self) -> u128 {
        self.stages.iter().map(|s| s.wall_nanos).sum()
    }

    /// Times `body` and records it as `stage` with the IR size it reports.
    pub(crate) fn measure<T, E>(
        &mut self,
        stage: &'static str,
        body: impl FnOnce() -> Result<(T, usize), E>,
    ) -> Result<T, E> {
        let start = Instant::now();
        let (value, ir_size) = body()?;
        self.stages.push(StageMetric {
            stage,
            wall_nanos: start.elapsed().as_nanos(),
            ir_size,
        });
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_records_in_order() {
        let mut m = PipelineMetrics::default();
        let v: Result<i32, ()> = m.measure("parse", || Ok((41, 7)));
        assert_eq!(v, Ok(41));
        let _: Result<(), ()> = m.measure("analyze", || Ok(((), 3)));
        assert_eq!(m.stages.len(), 2);
        assert_eq!(m.stages[0].stage, "parse");
        assert_eq!(m.stages[0].ir_size, 7);
        assert_eq!(m.stage("analyze").unwrap().ir_size, 3);
        assert!(m.stage("compile").is_none());
        assert_eq!(m.total_nanos(), m.stages.iter().map(|s| s.wall_nanos).sum());
    }

    #[test]
    fn measure_propagates_errors_without_recording() {
        let mut m = PipelineMetrics::default();
        let v: Result<(), &str> = m.measure("parse", || Err("boom"));
        assert_eq!(v, Err("boom"));
        assert!(m.stages.is_empty());
    }
}
