//! The one-stop public API surface.
//!
//! Everything a cache, pipeline, sweep, spec or job-server caller needs,
//! re-exported from one module so downstream code (the `figures` CLI,
//! the `hsmd` binary, integration tests, external tooling) imports from
//! `hsm_core::api` instead of chasing the individual modules:
//!
//! ```
//! use hsm_core::api::{ArtifactCache, Pipeline, SweepSpec};
//!
//! let cache = ArtifactCache::shared();
//! let run = Pipeline::new("int main() { return 7; }")
//!     .cache(cache)
//!     .run_baseline()
//!     .expect("runs");
//! assert_eq!(run.exit_code, 7);
//! let _ = SweepSpec::default();
//! ```

pub use crate::cache::{
    source_hash, ArtifactCache, ArtifactKey, CacheStats, StageCounters, StoreCounters, StoreStats,
};
pub use crate::experiment::{
    sweep, sweep_with, Mode, Scenario, SweepMatrix, SweepOptions, SweepOutcome, SweepPayload,
    SweepPoint, SweepReport, SweepTask, TimingStats,
};
pub use crate::json::{Json, JsonError};
pub use crate::metrics::{PipelineMetrics, StageMetric, STAGE_NAMES};
pub use crate::protocol::{
    encode_job, encode_response, parse_job, parse_response, Job, JobRequest, JobResponse,
    ProtocolError, SweepRow,
};
pub use crate::server::{Client, ClientError, Server, ServerHandle, ServerOptions};
pub use crate::spec::{corpus_dir, SpecError, SpecProgram, SweepSpec};
pub use crate::store::{fnv1a_bytes, DiskStore, LoadOutcome};
pub use crate::{ExecModel, MemorySpec, OptLevel, Pipeline, PipelineError, Policy, SharingCheck};
