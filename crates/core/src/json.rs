//! A minimal order-preserving JSON value, writer and reader.
//!
//! The run manifest must be reproducible byte for byte (it is diffed
//! against checked-in goldens), so keys keep their insertion order and the
//! rendering is fully deterministic — no external serialization crate, no
//! hash-map ordering, no locale-dependent formatting.
//!
//! Two renderings exist: [`Json::render`] pretty-prints for manifests and
//! goldens, [`Json::render_compact`] emits a single line for the `hsmd`
//! line-delimited socket protocol. [`Json::parse`] reads either form back
//! (the [`protocol`](crate::protocol) request/response codecs and tests
//! round-trip through it).

use std::fmt::Write as _;

/// A JSON value with insertion-ordered object keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (counters, sizes, cycles).
    UInt(u64),
    /// A signed integer (exit codes).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an array of unsigned integers.
    pub fn uints(values: impl IntoIterator<Item = u64>) -> Json {
        Json::Arr(values.into_iter().map(Json::UInt).collect())
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, when it is one (a non-negative
    /// `Int` also qualifies — the reader cannot know which was written).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, when it is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::UInt(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, when it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on a single line with no whitespace — one protocol frame.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Parses a JSON document (integers only — the manifest and protocol
    /// never write floats, so none are accepted).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first offending byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars render inline; nested structures
                // get one element per line.
                let scalar = items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)));
                if scalar {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        pad(out, indent + 1);
                        item.write(out, indent + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    pad(out, indent);
                    out.push(']');
                }
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

/// A JSON parse failure, with the byte offset of the offending input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character '{}'", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // The writer only emits \u for control bytes;
                            // surrogate pairs never appear.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // char boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floats are not part of the manifest/protocol schema"));
        }
        if let Some(stripped) = text.strip_prefix('-') {
            if stripped.is_empty() {
                return Err(self.err("lone '-'"));
            }
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_plainly() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::UInt(42).render(), "42\n");
        assert_eq!(Json::Int(-7).render(), "-7\n");
        assert_eq!(Json::str("hi").render(), "\"hi\"\n");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"\n");
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"\n");
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let j = Json::obj(vec![("zebra", Json::UInt(1)), ("apple", Json::UInt(2))]);
        assert_eq!(j.render(), "{\n  \"zebra\": 1,\n  \"apple\": 2\n}\n");
    }

    #[test]
    fn scalar_arrays_inline_nested_break() {
        assert_eq!(Json::uints([1, 2, 3]).render(), "[1, 2, 3]\n");
        let nested = Json::Arr(vec![Json::obj(vec![("k", Json::UInt(1))])]);
        assert_eq!(nested.render(), "[\n  {\n    \"k\": 1\n  }\n]\n");
    }

    #[test]
    fn get_finds_keys() {
        let j = Json::obj(vec![("a", Json::UInt(1))]);
        assert_eq!(j.get("a"), Some(&Json::UInt(1)));
        assert_eq!(j.get("b"), None);
        assert_eq!(Json::Null.get("a"), None);
    }

    #[test]
    fn compact_rendering_is_one_line() {
        let j = Json::obj(vec![
            ("op", Json::str("sweep")),
            ("rows", Json::uints([1, 2])),
            ("nested", Json::obj(vec![("ok", Json::Bool(true))])),
        ]);
        let line = j.render_compact();
        assert!(!line.contains('\n'));
        assert_eq!(line, r#"{"op":"sweep","rows":[1,2],"nested":{"ok":true}}"#);
    }

    #[test]
    fn parse_round_trips_both_renderings() {
        let j = Json::obj(vec![
            ("name", Json::str("pi/hsm \"quoted\"\n")),
            ("cores", Json::UInt(4)),
            ("exit", Json::Int(-3)),
            ("flags", Json::Arr(vec![Json::Null, Json::Bool(false)])),
            ("empty_obj", Json::Obj(vec![])),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        assert_eq!(Json::parse(&j.render()).expect("pretty"), j);
        assert_eq!(Json::parse(&j.render_compact()).expect("compact"), j);
    }

    #[test]
    fn parse_reports_errors_with_offsets() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("1.5").is_err(), "floats are rejected");
        assert!(Json::parse("{} trailing").is_err());
        let err = Json::parse("nulL").unwrap_err();
        assert!(err.to_string().contains("byte 0"));
    }

    #[test]
    fn parse_preserves_key_order() {
        let j = Json::parse(r#"{"z":1,"a":2}"#).expect("parses");
        assert_eq!(
            j,
            Json::Obj(vec![
                ("z".to_string(), Json::UInt(1)),
                ("a".to_string(), Json::UInt(2)),
            ])
        );
    }

    #[test]
    fn negative_numbers_parse_as_int() {
        assert_eq!(Json::parse("-12").expect("int"), Json::Int(-12));
        assert_eq!(Json::parse("12").expect("uint"), Json::UInt(12));
    }
}
