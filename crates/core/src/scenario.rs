//! The unified `Scenario` axis type.
//!
//! A [`Scenario`] names everything that selects *how* one program runs —
//! the execution [`Mode`] (pthread baseline, barrier-synchronized RCCE
//! off-chip or HSM, or the task-dataflow runtime), the memory model
//! ([`ExecModel`]) and the bytecode optimization level ([`OptLevel`]) —
//! as one typed value. Every consumer of those axes constructs and
//! consumes a `Scenario`: [`Pipeline::scenario`](crate::Pipeline::scenario)
//! configures a session from one, [`SweepTask::Run`](crate::sweep::SweepTask)
//! carries one per sweep point, [`SweepSpec`](crate::spec::SweepSpec)
//! serializes a list of them, and the `hsmd` protocol ships one inside
//! every `simulate` job. The old per-axis setters (one `#[deprecated]`
//! delegating wrapper per axis during the PR 9 migration) are gone;
//! DESIGN.md §13 keeps the migration table.

use crate::json::Json;
use crate::spec::SpecError;
use hsm_exec::ExecModel;
use hsm_partition::Policy;
use hsm_vm::OptLevel;

/// The evaluated configurations: the paper's three (baseline, off-chip
/// RCCE, HSM RCCE) plus the task-dataflow runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// 32 threads on one core (the Figure 6.1 denominator).
    PthreadBaseline,
    /// Converted program, shared data forced off-chip (Figure 6.1).
    RcceOffChip,
    /// Converted program with Algorithm 3 MPB placement (Figure 6.2).
    RcceHsm,
    /// Task-annotated program under the dependence-tracking task
    /// scheduler (`task_spawn`/`task_wait_all`; BDDT-SCC style). Runs the
    /// source directly — no pthread→RCCE translation stage.
    TaskDataflow,
}

impl Mode {
    /// All modes, in the canonical baseline/offchip/hsm/task order.
    pub const ALL: [Mode; 4] = [
        Mode::PthreadBaseline,
        Mode::RcceOffChip,
        Mode::RcceHsm,
        Mode::TaskDataflow,
    ];

    /// The placement policy the mode implies (the baseline and the task
    /// runtime never partition; they report the HSM default).
    pub fn policy(self) -> Policy {
        match self {
            Mode::RcceOffChip => Policy::OffChipOnly,
            Mode::PthreadBaseline | Mode::RcceHsm | Mode::TaskDataflow => Policy::SizeAscending,
        }
    }

    /// The stable wire/CLI spelling (`"baseline"`, `"offchip"`, `"hsm"`,
    /// `"task"`) used by sweep specs and the `hsmd` protocol.
    pub fn label(self) -> &'static str {
        match self {
            Mode::PthreadBaseline => "baseline",
            Mode::RcceOffChip => "offchip",
            Mode::RcceHsm => "hsm",
            Mode::TaskDataflow => "task",
        }
    }

    /// Inverse of [`Mode::label`].
    pub fn parse(label: &str) -> Option<Mode> {
        Mode::ALL.into_iter().find(|m| m.label() == label)
    }
}

/// One point of the axis space: program-independent selection of *how* a
/// run executes. `Copy`, totally ordered by construction of its parts,
/// and the single serialized currency for axes on the `hsmd` wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// The execution mode (which runtime the program goes through).
    pub mode: Mode,
    /// The memory model the run executes under.
    pub exec_model: ExecModel,
    /// The bytecode optimization level the program compiles at.
    pub opt_level: OptLevel,
}

impl Default for Scenario {
    /// The evaluation default: the HSM configuration under the coherent
    /// ground-truth model at `O0` — what a bare
    /// [`Pipeline::run`](crate::Pipeline::run) executes.
    fn default() -> Self {
        Scenario::new(Mode::RcceHsm)
    }
}

impl From<Mode> for Scenario {
    fn from(mode: Mode) -> Self {
        Scenario::new(mode)
    }
}

impl Scenario {
    /// A scenario in `mode` with the default axes (coherent, `O0`).
    pub fn new(mode: Mode) -> Self {
        Scenario {
            mode,
            exec_model: ExecModel::Coherent,
            opt_level: OptLevel::O0,
        }
    }

    /// Replaces the execution mode.
    #[must_use]
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Replaces the memory model.
    #[must_use]
    pub fn exec_model(mut self, model: ExecModel) -> Self {
        self.exec_model = model;
        self
    }

    /// Replaces the optimization level.
    #[must_use]
    pub fn opt_level(mut self, level: OptLevel) -> Self {
        self.opt_level = level;
        self
    }

    /// The stable point/row label (the mode's label — scenarios differing
    /// only in model or level share it, like the manifests always have).
    pub fn label(self) -> &'static str {
        self.mode.label()
    }

    /// The scenario as a JSON object — the wire form embedded in sweep
    /// specs and `simulate` jobs.
    pub fn to_json(self) -> Json {
        Json::obj(vec![
            ("mode", Json::str(self.mode.label())),
            ("exec_model", Json::str(self.exec_model.label())),
            ("opt_level", Json::str(self.opt_level.label())),
        ])
    }

    /// Parses the wire form. Missing `exec_model`/`opt_level` fields take
    /// their defaults; `mode` is required.
    ///
    /// # Errors
    ///
    /// Rejects unknown labels and a missing `mode`.
    pub fn from_json(doc: &Json) -> Result<Self, SpecError> {
        let mode = match doc.get("mode") {
            Some(Json::Str(label)) => Mode::parse(label)
                .ok_or_else(|| SpecError::new(format!("unknown mode `{label}`")))?,
            _ => return Err(SpecError::new("scenario missing a `mode` string")),
        };
        let mut scenario = Scenario::new(mode);
        if let Some(model) = doc.get("exec_model") {
            scenario.exec_model = match model {
                Json::Str(label) => ExecModel::parse(label)
                    .ok_or_else(|| SpecError::new(format!("unknown exec model `{label}`")))?,
                _ => return Err(SpecError::new("scenario `exec_model` must be a string")),
            };
        }
        if let Some(level) = doc.get("opt_level") {
            scenario.opt_level = match level {
                Json::Str(label) => OptLevel::parse(label)
                    .ok_or_else(|| SpecError::new(format!("unknown opt level `{label}`")))?,
                _ => return Err(SpecError::new("scenario `opt_level` must be a string")),
            };
        }
        Ok(scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_for_all_modes() {
        for mode in Mode::ALL {
            assert_eq!(Mode::parse(mode.label()), Some(mode));
        }
        assert_eq!(Mode::parse("warp"), None);
        assert_eq!(Mode::TaskDataflow.label(), "task");
    }

    #[test]
    fn scenario_json_round_trips() {
        let s = Scenario::new(Mode::TaskDataflow)
            .exec_model(ExecModel::NonCoherentWriteBack)
            .opt_level(OptLevel::O2);
        let back = Scenario::from_json(&s.to_json()).expect("parses");
        assert_eq!(s, back);
    }

    #[test]
    fn missing_axes_take_defaults() {
        let doc = Json::parse(r#"{"mode": "hsm"}"#).expect("parses");
        let s = Scenario::from_json(&doc).expect("scenario");
        assert_eq!(s, Scenario::default());
        let err = Scenario::from_json(&Json::parse("{}").expect("parses")).unwrap_err();
        assert!(err.to_string().contains("mode"), "{err}");
    }
}
